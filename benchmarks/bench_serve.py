"""Serving-layer load benchmark: throughput under coalescing pressure.

Reuses the load harness from ``tests/test_serve_load.py`` (rotating
3-point windows over a 6-point tiny pool, pipelined over a bounded
number of connections) and times three phases against an in-process
:class:`~repro.serve.server.BatchServer`:

* **cold** — the first wave of requests: every unique point is a miss,
  so the figure of merit is how well coalescing collapses N requests
  onto 6 simulations (reported as ``coalesce_ratio``);
* **warm** — the same wave again: everything is a cache hit, so this
  is pure protocol + event-loop throughput (requests/s);
* **mixed** — a larger wave with priority lanes sprinkled in, the
  closest thing to the steady-state traffic shape.

Every phase re-asserts the load-test invariants (byte-identical
results, counters add up, zero duplicate simulations) — a benchmark
that quietly serves wrong bytes measures nothing.

Writes ``BENCH_SERVE_<date>.json`` next to this file (or ``--out``).
``--check BASELINE.json`` fails (exit 1) if warm throughput regressed
more than ``--tolerance`` (default 0.30) against the baseline, or if
any invariant broke.  Used by the CI serve smoke job at a reduced
request count.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py \
        --requests 1000 --connections 50
    PYTHONPATH=src python benchmarks/bench_serve.py \
        --check benchmarks/BENCH_SERVE_2026-08-09.json
"""

from __future__ import annotations

import argparse
import asyncio
import datetime as _dt
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent))  # tests/ (harness reuse)

from tests.test_serve_load import (  # noqa: E402
    POINT_POOL,
    POINTS_PER_REQUEST,
    check_invariants,
    run_load,
    serial_references,
)

SCHEMA = 1


def bench_phase(cache_dir, requests: int, connections: int, workers: int,
                references, priority_mix: bool,
                expected_simulated: int = None) -> dict:
    start = time.perf_counter()
    server, outcomes = asyncio.run(
        run_load(
            cache_dir,
            total_requests=requests,
            connections=connections,
            workers=workers,
            priority_mix=priority_mix,
        )
    )
    elapsed = time.perf_counter() - start
    check_invariants(server, outcomes, requests, references,
                     expected_simulated=expected_simulated)
    stats = server.stats
    return {
        "requests": requests,
        "connections": connections,
        "points": requests * POINTS_PER_REQUEST,
        "elapsed_s": round(elapsed, 4),
        "requests_per_s": round(requests / elapsed, 2),
        "points_per_s": round(requests * POINTS_PER_REQUEST / elapsed, 2),
        "simulated": stats.simulated,
        "coalesced": stats.coalesced,
        "cache_hits": stats.cache_hits,
        "coalesce_ratio": round(
            (stats.coalesced + stats.cache_hits)
            / max(1, requests * POINTS_PER_REQUEST),
            4,
        ),
    }


def run_benchmark(args) -> dict:
    references = serial_references()
    base = Path(tempfile.mkdtemp(prefix="bench_serve_"))
    # cold + warm share one cache directory; mixed gets a fresh one so
    # its cold fraction is reproducible
    phases = {}
    phases["cold"] = bench_phase(
        base / "a", args.requests, args.connections, args.workers,
        references, priority_mix=False,
    )
    phases["warm"] = bench_phase(
        base / "a", args.requests, args.connections, args.workers,
        references, priority_mix=False, expected_simulated=0,
    )
    phases["mixed"] = bench_phase(
        base / "b", args.requests, args.connections, args.workers,
        references, priority_mix=True,
    )
    return {
        "schema": SCHEMA,
        "date": _dt.date.today().isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "pool_points": len(POINT_POOL),
        "points_per_request": POINTS_PER_REQUEST,
        "workers": args.workers,
        "phases": phases,
    }


def check_against(result: dict, baseline_path: Path, tolerance: float) -> int:
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failures = []
    for phase in ("warm", "mixed"):
        base_rps = baseline["phases"][phase]["requests_per_s"]
        now_rps = result["phases"][phase]["requests_per_s"]
        floor = base_rps * (1.0 - tolerance)
        line = (
            f"{phase}: {now_rps:.1f} req/s vs baseline {base_rps:.1f} "
            f"(floor {floor:.1f})"
        )
        if now_rps < floor:
            failures.append(line)
            print(f"REGRESSED  {line}")
        else:
            print(f"ok         {line}")
    if failures:
        print(f"\n{len(failures)} throughput regression(s) beyond "
              f"{tolerance:.0%}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=1000,
                        help="concurrent requests per phase (default 1000)")
    parser.add_argument("--connections", type=int, default=50,
                        help="pipelined client connections (default 50)")
    parser.add_argument("--workers", type=int, default=2,
                        help="server worker processes (default 2)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="result directory (default: benchmarks/)")
    parser.add_argument("--check", default=None, metavar="BASELINE.json",
                        help="compare against a baseline instead of "
                             "writing a new trajectory file")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed warm/mixed throughput regression "
                             "(default 0.30)")
    args = parser.parse_args(argv)

    result = run_benchmark(args)
    for name, phase in result["phases"].items():
        print(
            f"{name:>6}: {phase['requests_per_s']:>8.1f} req/s  "
            f"({phase['points_per_s']:.0f} points/s, "
            f"simulated={phase['simulated']}, "
            f"coalesce_ratio={phase['coalesce_ratio']:.2%})"
        )

    if args.check:
        return check_against(result, Path(args.check), args.tolerance)

    out_dir = Path(args.out) if args.out else HERE
    out_path = out_dir / f"BENCH_SERVE_{result['date']}.json"
    out_path.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
