"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` file regenerates one of the paper's tables/figures
(DESIGN.md's per-experiment index) at a reduced scale, times it under
pytest-benchmark, prints the table, and asserts the paper's qualitative
shape.  ``python -m repro.experiments.cli <exp>`` regenerates the same
artifacts at the default scale.

The fixtures hand the drivers a
:class:`~repro.experiments.parallel.ParallelRunner` backed by the same
persistent cache the CLI uses (``results/.simcache/`` by default), so a
second benchmark run — or a benchmark run after ``cli all`` — skips
every already-simulated point.  Knobs:

* ``REPRO_SIMCACHE`` — cache directory (empty string disables caching,
  e.g. to time cold simulations);
* ``REPRO_JOBS`` — worker processes per grid (default 1: keep the
  timed subject in-process so pytest-benchmark numbers stay
  comparable).
"""

import os

import pytest

from repro.experiments.parallel import DiskCache, ParallelRunner
from repro.workloads.params import DEFAULT_SCALE, SMALL_SCALE, TINY_SCALE

_CACHE_DIR = os.environ.get("REPRO_SIMCACHE", "results/.simcache")
_JOBS = int(os.environ.get("REPRO_JOBS", "1"))


def _runner(scale):
    cache = DiskCache(_CACHE_DIR) if _CACHE_DIR else None
    return ParallelRunner(scale=scale, jobs=_JOBS, cache=cache)


@pytest.fixture(scope="session")
def small_cache():
    """Shared build/run cache at the small scale (kernels + codecs)."""
    return _runner(SMALL_SCALE)


@pytest.fixture(scope="session")
def tiny_cache():
    return _runner(TINY_SCALE)


@pytest.fixture(scope="session")
def default_cache():
    """Default scale: the cache geometry the headline results use."""
    return _runner(DEFAULT_SCALE)


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (simulations are deterministic and
    expensive; variance comes from the host, not the subject)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
