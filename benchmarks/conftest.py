"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` file regenerates one of the paper's tables/figures
(DESIGN.md's per-experiment index) at a reduced scale, times it under
pytest-benchmark, prints the table, and asserts the paper's qualitative
shape.  ``python -m repro.experiments.cli <exp>`` regenerates the same
artifacts at the default scale.
"""

import pytest

from repro.experiments.runner import RunCache
from repro.workloads.params import DEFAULT_SCALE, SMALL_SCALE, TINY_SCALE


@pytest.fixture(scope="session")
def small_cache():
    """Shared build/run cache at the small scale (kernels + codecs)."""
    return RunCache(scale=SMALL_SCALE)


@pytest.fixture(scope="session")
def tiny_cache():
    return RunCache(scale=TINY_SCALE)


@pytest.fixture(scope="session")
def default_cache():
    """Default scale: the cache geometry the headline results use."""
    return RunCache(scale=DEFAULT_SCALE)


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (simulations are deterministic and
    expensive; variance comes from the host, not the subject)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
