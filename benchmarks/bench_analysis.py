"""E7 + E8 — the paper's supporting analyses.

* Branch misprediction (Section 3.2.2): VIS eliminates the
  hard-to-predict saturation/threshold/SAD-termination branches —
  conv 10%->0%, thresh 6%->0%, mpeg-enc 27%->10% in the paper; we
  assert the direction and a substantial relative reduction.
* MSHR/load-miss overlap (Section 3.1): overlap exists but is small
  (2-3 typical), and prefetching raises MSHR utilization (Section 4.2).
"""

from conftest import run_once

from repro.experiments import branch_stats, mshr_study
from repro.experiments.report import format_table
from repro.workloads import Variant


def test_branch_mispredictions(benchmark, small_cache):
    headers, rows, raw = run_once(
        benchmark,
        lambda: branch_stats(small_cache, benchmarks=("conv", "thresh", "scaling")),
    )
    print()
    print(format_table(headers, rows, title="Branch misprediction (small)"))
    # thresh is the robust case: double-limit tests on image data are
    # intrinsically hard to predict; conv/scaling saturate only on
    # bright inputs, so their rates are input-dependent (printed above)
    base, vis = raw["thresh"]
    assert base.mispredict_rate > 0.01
    assert vis.mispredict_rate < 0.6 * base.mispredict_rate


def test_mshr_overlap(benchmark, small_cache):
    headers, rows, raw = run_once(
        benchmark,
        lambda: mshr_study(small_cache, benchmarks=("addition", "dotprod")),
    )
    print()
    print(format_table(headers, rows, title="MSHR / load-miss overlap (small)"))
    for name in ("addition", "dotprod"):
        vis = raw[(name, Variant.VIS)]
        # some overlap, but far from the 12-MSHR capacity (Section 3.1)
        assert 1 <= vis.memory.max_load_miss_overlap <= 11
        pf = raw[(name, Variant.VIS_PREFETCH)]
        assert (
            pf.memory.max_load_miss_overlap
            >= vis.memory.max_load_miss_overlap
        )
