"""E7 + E8 — the paper's supporting analyses — plus the analyzer-cost
harness (``python benchmarks/bench_analysis.py``).

Under pytest-benchmark:

* Branch misprediction (Section 3.2.2): VIS eliminates the
  hard-to-predict saturation/threshold/SAD-termination branches —
  conv 10%->0%, thresh 6%->0%, mpeg-enc 27%->10% in the paper; we
  assert the direction and a substantial relative reduction.
* MSHR/load-miss overlap (Section 3.1): overlap exists but is small
  (2-3 typical), and prefetching raises MSHR utilization (Section 4.2).

As a script, this file times the static analyzer itself — the pre-run
verifier gate (``analyze_program``) and the cycle-bound analysis
(``analyze_throughput``) — per tiny program, and writes
``BENCH_ANALYSIS_<date>.json`` next to this file (the same committed-
trajectory convention as ``bench_engine.py`` / ``bench_serve.py``).
The summary checks the analyzer against its budget: the *total*
memo-cold analysis cost across all 48 tiny programs must stay under
2% of the warm serial tiny-grid wall time recorded when the gate
shipped (EXPERIMENTS.md, "The pre-run gate": 40.8 s), so the gate's
"<2% steady-state overhead" claim stays enforced as the analyzer
grows.  Exit 1 when over budget.
"""

from conftest import run_once

from repro.experiments import branch_stats, mshr_study
from repro.experiments.report import format_table
from repro.workloads import Variant


def test_branch_mispredictions(benchmark, small_cache):
    headers, rows, raw = run_once(
        benchmark,
        lambda: branch_stats(small_cache, benchmarks=("conv", "thresh", "scaling")),
    )
    print()
    print(format_table(headers, rows, title="Branch misprediction (small)"))
    # thresh is the robust case: double-limit tests on image data are
    # intrinsically hard to predict; conv/scaling saturate only on
    # bright inputs, so their rates are input-dependent (printed above)
    base, vis = raw["thresh"]
    assert base.mispredict_rate > 0.01
    assert vis.mispredict_rate < 0.6 * base.mispredict_rate


def test_mshr_overlap(benchmark, small_cache):
    headers, rows, raw = run_once(
        benchmark,
        lambda: mshr_study(small_cache, benchmarks=("addition", "dotprod")),
    )
    print()
    print(format_table(headers, rows, title="MSHR / load-miss overlap (small)"))
    for name in ("addition", "dotprod"):
        vis = raw[(name, Variant.VIS)]
        # some overlap, but far from the 12-MSHR capacity (Section 3.1)
        assert 1 <= vis.memory.max_load_miss_overlap <= 11
        pf = raw[(name, Variant.VIS_PREFETCH)]
        assert (
            pf.memory.max_load_miss_overlap
            >= vis.memory.max_load_miss_overlap
        )


# ---------------------------------------------------------------------------
# Analyzer-cost harness (script mode)
# ---------------------------------------------------------------------------

#: warm serial tiny-grid wall time when the pre-run gate shipped
#: (EXPERIMENTS.md, "The pre-run gate") — the denominator of the
#: analyzer's 2% budget
BUDGET_REFERENCE_S = 40.8
BUDGET_FRACTION = 0.02

ANALYSIS_SCHEMA = 1


def _time_median(fn, runs):
    import time as _time

    samples = []
    for _ in range(runs):
        t0 = _time.perf_counter()
        fn()
        samples.append(_time.perf_counter() - t0)
    import statistics as _statistics

    return _statistics.median(samples)


def measure_analyzer_costs(runs=3):
    """Per tiny program, three medians (ooo-4way, tiny memory):

    * ``gate_warm_s`` — the steady-state pre-run gate: digest the
      program and serve the verdict from a primed persistent memo
      (the path every warm experiment run pays; the 2% budget
      applies to the sum of these),
    * ``verify_cold_s`` — the full memo-cold analysis (what a
      first-ever run or an ``ANALYZER_VERSION`` bump pays once),
    * ``throughput_s`` — the static cycle-bound pass, incremental
      over the gate's abstract-interpretation facts (the added cost
      of ``lint --perf`` / ``analyze throughput`` per program).
    """
    import tempfile
    from pathlib import Path

    from repro.analyze import analyze_program, verify_program
    from repro.analyze.absint import analyze_values
    from repro.analyze.cfg import CFG
    from repro.analyze.throughput import analyze_throughput
    from repro.cpu.config import ProcessorConfig
    from repro.workloads.params import TINY_SCALE
    from repro.workloads.suite import get, names

    # the gate's in-process memo attributes; cleared between timed runs
    # so every sample pays the real cross-process (digest + memo-file)
    # path rather than an attribute read
    memo_attrs = (
        "_analysis_report", "_gate_verdict_digest", "_digest_cache",
    )

    cpu = ProcessorConfig.ooo_4way()
    mem = TINY_SCALE.memory_config()
    programs = {}
    with tempfile.TemporaryDirectory(prefix="bench-analysis-memo-") as tmp:
        memo_dir = Path(tmp)
        for name in names():
            workload = get(name)
            for variant in workload.supported_variants:
                built = workload.build(variant, TINY_SCALE)
                label = f"{name}[{variant.value}]"
                program = built.program

                def _clear(p=program):
                    for attr in memo_attrs:
                        if hasattr(p, attr):
                            delattr(p, attr)

                def _cold(p=program):
                    _clear(p)
                    analyze_program(p)

                def _warm(p=program):
                    _clear(p)
                    verify_program(p, memo_dir=memo_dir)

                _warm()  # prime the persistent memo
                gate_warm_s = _time_median(_warm, runs)
                verify_cold_s = _time_median(_cold, runs)
                cfg = CFG(program)
                facts = analyze_values(program, cfg, [])
                throughput_s = _time_median(
                    lambda p=program: analyze_throughput(
                        p, cpu, mem, facts=facts, cfg=cfg
                    ),
                    runs,
                )
                programs[label] = {
                    "instructions": len(program.instructions),
                    "gate_warm_s": round(gate_warm_s, 6),
                    "verify_cold_s": round(verify_cold_s, 6),
                    "throughput_s": round(throughput_s, 6),
                }
    return programs


def main(argv=None):
    import argparse
    import datetime
    import json
    import platform
    import sys
    from pathlib import Path

    parser = argparse.ArgumentParser(
        description="record analyzer cost per tiny program",
    )
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).resolve().parent,
        help="directory for BENCH_ANALYSIS_<date>.json",
    )
    parser.add_argument(
        "--runs", type=int, default=3,
        help="timing runs per program (median recorded)",
    )
    args = parser.parse_args(argv)

    programs = measure_analyzer_costs(runs=args.runs)
    gate_total = sum(p["gate_warm_s"] for p in programs.values())
    cold_total = sum(p["verify_cold_s"] for p in programs.values())
    throughput_total = sum(p["throughput_s"] for p in programs.values())
    fraction = gate_total / BUDGET_REFERENCE_S
    record = {
        "schema": ANALYSIS_SCHEMA,
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "runs": args.runs,
        "programs": programs,
        "totals": {
            "programs": len(programs),
            "gate_warm_s": round(gate_total, 6),
            "verify_cold_s": round(cold_total, 6),
            "throughput_s": round(throughput_total, 6),
        },
        "budget": {
            "reference_grid_s": BUDGET_REFERENCE_S,
            "limit_fraction": BUDGET_FRACTION,
            "fraction": round(fraction, 6),
            "ok": fraction < BUDGET_FRACTION,
        },
    }
    out = args.out / f"BENCH_ANALYSIS_{record['date']}.json"
    out.write_text(
        json.dumps(record, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    slowest = sorted(
        programs.items(),
        key=lambda kv: kv[1]["verify_cold_s"] + kv[1]["throughput_s"],
        reverse=True,
    )[:5]
    print(f"analyzer cost: {len(programs)} programs; steady-state gate "
          f"{gate_total * 1e3:.1f} ms "
          f"({fraction:.2%} of the {BUDGET_REFERENCE_S:.1f} s grid; "
          f"budget {BUDGET_FRACTION:.0%}); "
          f"cold analysis {cold_total:.2f} s; "
          f"bound pass {throughput_total:.2f} s")
    for label, cost in slowest:
        print(f"  {label:28s} gate {cost['gate_warm_s'] * 1e3:6.2f} ms   "
              f"cold {cost['verify_cold_s'] * 1e3:8.1f} ms   "
              f"bounds {cost['throughput_s'] * 1e3:8.1f} ms")
    print(f"wrote {out}")
    if not record["budget"]["ok"]:
        print("analyzer over budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
