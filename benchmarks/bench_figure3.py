"""E3/E9 — Figure 3: software prefetching on the VIS + out-of-order
system, at the *default* scale (the cache geometry the result needs).

Paper shape asserted: the streaming kernels speed up 1.4x-2.5x
(we accept 1.3x-3.0x), cjpeg/djpeg/mpeg-dec barely move, and with
prefetching every benchmark reverts to compute-bound (Section 4.2)."""

from conftest import run_once

from repro.experiments import figure3
from repro.experiments.report import format_table

STREAMING = ("addition", "blend", "dotprod", "scaling", "thresh")


def test_figure3_prefetching(benchmark, default_cache):
    headers, rows, raw = run_once(benchmark, lambda: figure3(default_cache))
    print()
    print(format_table(headers, rows, title="Figure 3 (default scale)"))

    for name in STREAMING:
        base, pf = raw[name]
        speedup = base.cycles / pf.cycles
        assert 1.3 < speedup < 3.0, (name, speedup)
        assert pf.memory.prefetch_useful > 0

    # conv is compute-heavy: small benefit (paper: 1.4x, the smallest)
    base, pf = raw["conv"]
    assert 0.95 < base.cycles / pf.cycles < 1.6

    # the codec benchmarks barely move (paper: 98.1 / 98.1 / 95.0)
    for name in ("cjpeg", "djpeg", "mpeg-dec"):
        base, pf = raw[name]
        assert 0.9 < base.cycles / pf.cycles < 1.3, name

    # with prefetching the kernels' *miss* component collapses: the
    # paper's "revert to compute-bound" claim.  (The codecs keep their
    # residual table/coefficient misses at our scale — prefetching of
    # indirectly addressed data cannot remove them, per Section 4.2 —
    # so the check covers the six kernels.)
    for name in STREAMING + ("conv",):
        base, pf = raw[name]
        miss_share = pf.l1_miss_stall / pf.cycles
        assert miss_share < 0.30, (name, miss_share)
