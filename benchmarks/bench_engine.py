"""Engine micro-benchmark: scalar vs. vector, with per-phase attribution.

Differential benchmarking in the style of the SIMD image-processing
analysis mode (SNIPPETS.md §2): three synthetic workloads isolate the
simulator's cost centers, and each is timed under both execution
engines so the vector engine's speedup multiple is tracked per PR.

* **MemOnly** — a load/store streaming loop: the memory hierarchy
  model dominates (``MemorySystem.access`` per event).
* **ComputeOnly** — a pure ALU/VIS dependency chain: functional
  execute and the simple-op timing closures dominate; the memory
  model is idle.
* **Shuffle** — data-dependent branches over loaded bytes: block
  transitions and the branch predictor path dominate (the adversarial
  case for block-compiled execution).

Per (workload, engine) the harness reports medians over ``--runs``
(default 5) full simulations plus a one-shot attribution:

* ``functional_s`` — the functional engine alone (chunks produced and
  discarded),
* ``memory_s`` — wall-time accumulated inside ``MemorySystem.access``
  during one instrumented run,
* ``timing_s`` — ``total - functional - memory``: issue/retire
  bookkeeping in the pipeline models.

Running it writes ``BENCH_<date>.json`` next to this file (or
``--out DIR``); the committed trajectory files make engine
regressions visible per PR.  ``--check BASELINE.json`` re-runs the
benchmark and fails (exit 1) if the vector engine regressed more than
``--tolerance`` (default 0.20 = 20%) against the baseline medians or
lost its speedup multiple over scalar.  Used by the CI perf-smoke job.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py
    PYTHONPATH=src python benchmarks/bench_engine.py \
        --check benchmarks/BENCH_2026-08-09.json --tolerance 0.25
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import platform
import statistics
import sys
import time
from pathlib import Path

from repro.asm import ProgramBuilder
from repro.cpu.config import ProcessorConfig
from repro.cpu.pipeline import make_model
from repro.mem import MemoryConfig
from repro.mem.system import MemorySystem
from repro.sim.engine import ENGINES, make_machine
from repro.sim.static_info import StaticProgramInfo

SCHEMA = 1
ITERS = 6_000  #: loop trips per synthetic workload (~100k instructions)
BUF = 1 << 16  #: streaming buffer (bytes); > tiny L2, so misses happen


# -- synthetic workloads ----------------------------------------------------


def _mem_only() -> "Program":
    """Streaming loads/stores: every iteration touches three lines."""
    b = ProgramBuilder("bench-memonly")
    b.buffer("buf", BUF)
    acc, p, t = b.iregs(3)
    b.la(p, "buf")
    b.li(acc, 0)
    with b.loop(0, ITERS):
        b.ldx(t, p, 0)
        b.add(acc, acc, t)
        b.ldx(t, p, 64)
        b.add(acc, acc, t)
        b.stx(acc, p, 128)
        b.add(p, p, 8)
    return b.build()


def _compute_only() -> "Program":
    """Pure ALU/VIS dependency chain; the memory model stays idle."""
    b = ProgramBuilder("bench-computeonly")
    b.buffer("buf", 64)
    acc, t = b.iregs(2)
    fa, fb = b.fregs(2)
    with b.scratch(iregs=1) as p:
        b.la(p, "buf")
        b.ldf(fa, p)
        b.ldf(fb, p, 8)
    b.li(acc, 1)
    with b.loop(0, ITERS):
        b.add(acc, acc, 3)
        b.xor(acc, acc, 0x55)
        b.mul(t, acc, 7)
        b.srl(t, t, 2)
        b.add(acc, acc, t)
        b.fpadd16(fa, fa, fb)
        b.fxor(fb, fa, fb)
    return b.build()


def _shuffle() -> "Program":
    """Data-dependent branches over loaded bytes: short blocks, hard
    to predict — the adversarial case for block compilation."""
    b = ProgramBuilder("bench-shuffle")
    import numpy as np

    rng = np.random.default_rng(0xC0FFEE)
    data = bytes(rng.integers(0, 256, BUF, dtype=np.uint8))
    b.buffer("buf", BUF, data=data)
    acc, p, t = b.iregs(3)
    b.la(p, "buf")
    b.li(acc, 0)
    with b.loop(0, ITERS):
        b.ldb(t, p, 0)
        skip = b.label()
        b.blt(t, 128, skip)
        b.add(acc, acc, t)
        b.bind(skip)
        b.ldb(t, p, 3)
        skip2 = b.label()
        b.bge(t, 64, skip2)
        b.sub(acc, acc, 1)
        b.bind(skip2)
        b.add(p, p, 7)
    return b.build()


WORKLOADS = {
    "MemOnly": _mem_only,
    "ComputeOnly": _compute_only,
    "Shuffle": _shuffle,
}


# -- measurement ------------------------------------------------------------


def _mem_config() -> MemoryConfig:
    return MemoryConfig().scaled(64)


def _simulate_once(program, engine: str, instrument: bool = False,
                   machine=None):
    """One full simulation; returns (wall_s, mem_s or None, machine).

    Passing ``machine`` back in re-times the same functional machine —
    under the vector engine that replays the memoized trace, which is
    exactly what an experiment grid does when it re-times one program
    under several processor configs.
    """
    if machine is None:
        machine = make_machine(program, engine)
    machine.reset()
    info = StaticProgramInfo(program)
    memory = MemorySystem(_mem_config())
    mem_acc = [0.0]
    if instrument:
        real = memory.access

        def timed_access(kind, addr, cycle, _real=real, _acc=mem_acc):
            t0 = time.perf_counter()
            out = _real(kind, addr, cycle)
            _acc[0] += time.perf_counter() - t0
            return out

        memory.access = timed_access  # instance shadow, as the tracer does
    model = make_model(info, ProcessorConfig.ooo_4way(), memory)
    t0 = time.perf_counter()
    stats = model.simulate(machine.run(), program.name)
    wall = time.perf_counter() - t0
    stats.check_consistency()
    return wall, (mem_acc[0] if instrument else None), machine


def _functional_once(program, engine: str) -> float:
    """Functional engine alone: produce and discard every chunk."""
    machine = make_machine(program, engine)
    machine.reset()
    t0 = time.perf_counter()
    for _chunk in machine.run():
        pass
    return time.perf_counter() - t0


def measure(runs: int = 5) -> dict:
    """The full benchmark matrix; medians over ``runs`` repetitions."""
    out = {
        "schema": SCHEMA,
        "date": _dt.date.today().isoformat(),
        "python": platform.python_version(),
        "runs": runs,
        "iters": ITERS,
        "workloads": {},
    }
    for name, build in WORKLOADS.items():
        program = build()
        row = {}
        for engine in sorted(ENGINES):
            totals = []
            replays = []
            for _ in range(runs):
                wall, _mem, machine = _simulate_once(program, engine)
                totals.append(wall)
                # grid-style re-timing of the same machine: under the
                # vector engine this replays the memoized trace
                replays.append(
                    _simulate_once(program, engine, machine=machine)[0]
                )
            functionals = [
                _functional_once(program, engine) for _ in range(runs)
            ]
            _wall, mem_s, _m = _simulate_once(
                program, engine, instrument=True
            )
            total = statistics.median(totals)
            functional = statistics.median(functionals)
            timing = max(0.0, total - functional - mem_s)
            row[engine] = {
                "total_s": round(total, 6),
                "replay_s": round(statistics.median(replays), 6),
                "functional_s": round(functional, 6),
                "memory_s": round(mem_s, 6),
                "timing_s": round(timing, 6),
            }
        # the two multiples the CI gate tracks: cold (one point, one
        # config) and grid-style (re-timing under a second config)
        row["cold_speedup"] = round(
            row["scalar"]["total_s"] / row["vector"]["total_s"], 3
        )
        row["speedup"] = round(
            row["scalar"]["replay_s"] / row["vector"]["replay_s"], 3
        )
        out["workloads"][name] = row
    return out


# -- reporting / regression gate --------------------------------------------


def _print_table(result: dict) -> None:
    print(f"# engine micro-benchmark  ({result['date']}, "
          f"python {result['python']}, {result['runs']} runs)")
    hdr = (f"{'workload':<14}{'engine':<9}{'total':>9}{'replay':>9}"
           f"{'functional':>12}{'memory':>9}{'timing':>9}")
    print(hdr)
    print("-" * len(hdr))
    for name, row in result["workloads"].items():
        for engine in ("scalar", "vector"):
            e = row[engine]
            print(f"{name:<14}{engine:<9}{e['total_s']:>9.4f}"
                  f"{e['replay_s']:>9.4f}"
                  f"{e['functional_s']:>12.4f}{e['memory_s']:>9.4f}"
                  f"{e['timing_s']:>9.4f}")
        print(f"{'':<14}{'speedup':<9}{row['cold_speedup']:>9.2f}x"
              f"{row['speedup']:>9.2f}x")


def check(result: dict, baseline: dict, tolerance: float) -> list:
    """Regression verdicts vs. a committed baseline; empty = pass."""
    problems = []
    for name, base_row in baseline.get("workloads", {}).items():
        row = result["workloads"].get(name)
        if row is None:
            problems.append(f"{name}: missing from current run")
            continue
        base_total = base_row["vector"]["total_s"]
        cur_total = row["vector"]["total_s"]
        if cur_total > base_total * (1.0 + tolerance):
            problems.append(
                f"{name}: vector total {cur_total:.4f}s regressed "
                f">{tolerance:.0%} vs baseline {base_total:.4f}s"
            )
        base_speedup = base_row.get("speedup", 1.0)
        cur_speedup = row["speedup"]
        if cur_speedup < base_speedup * (1.0 - tolerance):
            problems.append(
                f"{name}: speedup multiple {cur_speedup:.2f}x fell "
                f">{tolerance:.0%} below baseline {base_speedup:.2f}x"
            )
        if base_speedup >= 1.0 and cur_speedup < 1.0:
            problems.append(
                f"{name}: vector engine is now slower than scalar "
                f"({cur_speedup:.2f}x)"
            )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--runs", type=int, default=5,
                    help="repetitions per median (default 5)")
    ap.add_argument("--out", type=Path, default=Path(__file__).parent,
                    help="directory for BENCH_<date>.json")
    ap.add_argument("--check", type=Path, default=None,
                    help="baseline BENCH_*.json to gate against "
                         "(no trajectory file is written)")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed relative regression (default 0.20)")
    args = ap.parse_args(argv)

    result = measure(args.runs)
    _print_table(result)

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        problems = check(result, baseline, args.tolerance)
        if problems:
            print("\nPERF REGRESSION:")
            for p in problems:
                print("  -", p)
            return 1
        print(f"\nok: within {args.tolerance:.0%} of {args.check}")
        return 0

    path = args.out / f"BENCH_{result['date']}.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
