"""E4 — Section 4.1: L2 capacity sweep (scaled 128K..2M equivalents).

Paper shape asserted: the six streaming kernels and the blocked
non-progressive codecs are insensitive to L2 size; the multi-pass
benchmarks (cjpeg, djpeg, mpeg-enc, mpeg-dec) gain, but by a modest
factor (paper: 1.1x-1.2x; we accept up to 2x at the reduced scale)."""

from conftest import run_once

from repro.experiments import cache_sweep
from repro.experiments.report import format_table

INSENSITIVE = ("addition", "blend", "dotprod", "scaling", "thresh")
# The blocked codecs are insensitive in the paper because their
# entropy/quant tables (a few KB) vanish inside a 128K+ L2; our scaled
# L2 starts at 2KB, so the *unscaled* tables make them mildly
# sensitive.  EXPERIMENTS.md discusses this scaling artifact.
BLOCKED = ("cjpeg-np", "djpeg-np")
REUSERS = ("cjpeg", "djpeg", "mpeg-enc", "mpeg-dec")


def test_l2_sweep(benchmark, default_cache):
    headers, rows, raw = run_once(
        benchmark, lambda: cache_sweep(default_cache, "l2")
    )
    print()
    print(format_table(headers, rows, title="L2 sweep (default scale)"))

    sizes = sorted({size for _n, size in raw})
    for name in INSENSITIVE:
        small = raw[(name, sizes[0])].cycles
        large = raw[(name, sizes[-1])].cycles
        assert small / large < 1.25, (name, small / large)

    for name in BLOCKED:
        small = raw[(name, sizes[0])].cycles
        large = raw[(name, sizes[-1])].cycles
        assert small / large < 1.8, (name, small / large)

    # the data-reusing benchmarks benefit measurably but modestly
    gains = {
        name: raw[(name, sizes[0])].cycles / raw[(name, sizes[-1])].cycles
        for name in REUSERS
    }
    assert any(gain > 1.03 for gain in gains.values()), gains
    assert all(gain < 2.0 for gain in gains.values()), gains
