"""Simulator micro-benchmarks: throughput of the building blocks.

These are conventional pytest-benchmark timings (multiple rounds) of
the infrastructure itself — useful to track regressions in the
simulator rather than in the modeled machine."""

import pytest

from repro.asm import ProgramBuilder
from repro.cpu import ProcessorConfig
from repro.experiments.runner import simulate_program
from repro.mem import A_LOAD, MemoryConfig, MemorySystem
from repro.sim import Machine, StaticProgramInfo


def _alu_loop_program(iterations=20_000):
    b = ProgramBuilder("alu-loop")
    b.buffer("out", 8)
    acc = b.ireg()
    b.li(acc, 0)
    with b.loop(0, iterations):
        b.add(acc, acc, 1)
        b.xor(acc, acc, 3)
        b.sll(acc, acc, 1)
        b.srl(acc, acc, 1)
    with b.scratch(iregs=1) as p:
        b.la(p, "out")
        b.stx(acc, p)
    return b.build()


@pytest.fixture(scope="module")
def alu_program():
    return _alu_loop_program()


def test_functional_execution_throughput(benchmark, alu_program):
    machine = Machine(alu_program)

    def run():
        machine.reset()
        return machine.run_functional()

    count = benchmark(run)
    assert count > 100_000


def test_out_of_order_timing_throughput(benchmark, alu_program):
    machine = Machine(alu_program)
    trace = machine.run_to_completion()
    info = StaticProgramInfo(alu_program)
    config = ProcessorConfig.ooo_4way()
    mem_config = MemoryConfig().scaled(64)

    def run():
        from repro.cpu.pipeline import OutOfOrderModel

        model = OutOfOrderModel(info, config, MemorySystem(mem_config))
        return model.simulate([trace]).cycles

    cycles = benchmark(run)
    assert cycles > 0


def test_cache_access_throughput(benchmark):
    config = MemoryConfig().scaled(64)

    def run():
        mem = MemorySystem(config)
        t = 0
        for i in range(20_000):
            t, _ = mem.access(A_LOAD, (i * 8) & 0xFFFF, t)
        return mem.stats.l1_misses

    misses = benchmark(run)
    assert misses > 0


def test_program_build_and_decode(benchmark):
    def run():
        program = _alu_loop_program(2_000)
        return len(Machine(program)._code)

    assert benchmark(run) > 0


def test_end_to_end_small_kernel(benchmark):
    from repro.workloads import TINY_SCALE, Variant
    from repro.workloads.suite import get

    built = get("scaling").build(Variant.VIS, TINY_SCALE)
    config = ProcessorConfig.ooo_4way()
    mem = TINY_SCALE.memory_config()

    def run():
        stats, _ = simulate_program(built.program, config, mem)
        return stats.cycles

    assert benchmark(run) > 0
