"""E10 — footnote 3: the scalar-source tuning ablation.

The paper skewed concurrent array starting addresses and unrolled the
small inner loops of the VSDK kernels for 1.2x-6.7x gains.  We assert
the tuned builds are never slower and that the suite-wide geometric
benefit is material."""

import math

from conftest import run_once

from repro.experiments import ablation
from repro.experiments.report import format_table
from repro.workloads.params import DEFAULT_SCALE


def test_footnote3_ablation(benchmark):
    # run at the default scale: the skewing effect needs caches with a
    # non-degenerate number of sets
    headers, rows, raw = run_once(benchmark, lambda: ablation(None, DEFAULT_SCALE))
    print()
    print(format_table(headers, rows, title="Footnote-3 ablation (default)"))
    benefits = []
    for name, (tuned, naive) in raw.items():
        benefit = naive.cycles / tuned.cycles
        benefits.append(benefit)
        assert benefit > 0.95, (name, benefit)
    geomean = math.exp(sum(math.log(x) for x in benefits) / len(benefits))
    assert geomean > 1.05, geomean
