"""E5 — Section 4.1: L1 capacity sweep (scaled 1K..64K equivalents).

Paper shape asserted: small first-level working sets — moving from the
smallest to the largest L1 buys at most ~1.3x, and the intermediate
size already achieves most of the largest configuration's performance
(the paper's "4K-16K within 3% of 64K" result, loosened for scale)."""

from conftest import run_once

from repro.experiments import cache_sweep
from repro.experiments.report import format_table


def test_l1_sweep(benchmark, default_cache):
    headers, rows, raw = run_once(
        benchmark, lambda: cache_sweep(default_cache, "l1")
    )
    print()
    print(format_table(headers, rows, title="L1 sweep (default scale)"))

    sizes = sorted({size for _n, size in raw})
    names = sorted({name for name, _s in raw})
    for name in names:
        smallest = raw[(name, sizes[0])].cycles
        largest = raw[(name, sizes[-1])].cycles
        gain = smallest / largest
        assert gain < 2.0, (name, gain)
        # the second-largest size is close to the largest
        near = raw[(name, sizes[-2])].cycles
        assert near / largest < 1.35, (name, near / largest)
