"""E2 — Figure 2: dynamic (retired) instruction counts, base vs VIS.

Paper shape asserted: VIS reduces every benchmark's dynamic count; the
pixel kernels shrink to roughly 16-45% of base (paper: 17.6-30.5%,
dotprod 88.5%), the codecs shrink moderately; branch counts fall
(edge masks, partitioned compares, unrolled SIMD iterations)."""

from conftest import run_once

from repro.experiments import figure2
from repro.experiments.report import format_table
from repro.workloads import Variant
from repro.workloads.suite import names


def test_figure2_instruction_mix(benchmark, small_cache):
    headers, rows, raw = run_once(benchmark, lambda: figure2(small_cache))
    print()
    print(format_table(headers, rows, title="Figure 2 (small scale)"))

    for name in names():
        base = raw[(name, Variant.SCALAR)]
        vis = raw[(name, Variant.VIS)]
        ratio = vis.instructions / base.instructions
        assert ratio < 0.95, (name, ratio)
        assert vis.category_counts["VIS"] > 0
        assert vis.category_counts["FU"] < base.category_counts["FU"]

    for name in ("blend", "scaling", "thresh", "addition"):
        base = raw[(name, Variant.SCALAR)]
        vis = raw[(name, Variant.VIS)]
        assert vis.instructions / base.instructions < 0.45, name
        # branch eliminations (edge masks, compares, SIMD unrolling)
        assert vis.category_counts["Branch"] < base.category_counts["Branch"]
