"""E1 — Figure 1: normalized execution time across the six
architecture/ISA configurations.

Paper shape asserted here:
* in-order 1-way >= in-order 4-way >= out-of-order 4-way,
* VIS improves every benchmark (1.1x..7x across configurations),
* the VIS kernel speedups are large (>= 2x on the OoO machine for the
  pixel kernels), the codec speedups modest (the paper's 1.1x..1.5x
  band for JPEG/mpeg-dec),
* with ILP + VIS, the streaming image kernels become memory-bound
  (Section 3.3: 5 kernels spend over half their time in memory stalls).
"""

from conftest import run_once

from repro.experiments import figure1
from repro.experiments.report import format_table
from repro.workloads import Variant
from repro.workloads.suite import KERNEL_NAMES

CODEC_NAMES = ("cjpeg", "djpeg", "cjpeg-np", "djpeg-np", "mpeg-enc", "mpeg-dec")
OOO = "out-of-order 4-way"


def test_figure1_kernels(benchmark, small_cache):
    headers, rows, raw = run_once(
        benchmark, lambda: figure1(small_cache, benchmarks=KERNEL_NAMES)
    )
    print()
    print(format_table(headers, rows, title="Figure 1 (kernels, small scale)"))

    for name in KERNEL_NAMES:
        one = raw[(name, Variant.SCALAR, "in-order 1-way")]
        four = raw[(name, Variant.SCALAR, "in-order 4-way")]
        ooo = raw[(name, Variant.SCALAR, OOO)]
        assert one.cycles >= four.cycles >= ooo.cycles
        vis = raw[(name, Variant.VIS, OOO)]
        assert ooo.cycles / vis.cycles > 1.05, name

    # pixel kernels get large VIS speedups
    for name in ("blend", "scaling", "thresh", "conv"):
        speedup = raw[(name, Variant.SCALAR, OOO)].cycles / raw[
            (name, Variant.VIS, OOO)
        ].cycles
        assert speedup > 1.8, (name, speedup)

    # the streaming kernels become memory-bound with ILP + VIS
    memory_bound = [
        name for name in KERNEL_NAMES
        if raw[(name, Variant.VIS, OOO)].memory_bound
    ]
    assert len(memory_bound) >= 4, memory_bound


def test_figure1_codecs(benchmark, tiny_cache):
    headers, rows, raw = run_once(
        benchmark, lambda: figure1(tiny_cache, benchmarks=CODEC_NAMES)
    )
    print()
    print(format_table(headers, rows, title="Figure 1 (codecs, tiny scale)"))

    for name in CODEC_NAMES:
        scalar = raw[(name, Variant.SCALAR, OOO)]
        vis = raw[(name, Variant.VIS, OOO)]
        speedup = scalar.cycles / vis.cycles
        assert 1.02 < speedup < 3.0, (name, speedup)
    # (The Section-3.3 compute-bound property of the codecs needs the
    # default-scale caches — the entropy tables do not fit the tiny
    # ones — and is recorded in EXPERIMENTS.md from the default runs.)
