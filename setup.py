"""Legacy setup shim: the offline environment lacks the `wheel` package,
so PEP 660 editable installs are unavailable; this enables
`pip install -e . --no-use-pep517`.  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
