"""Assembler layer: the DSL benchmarks are written in."""

from .builder import (
    ProgramBuilder,
    R_AT,
    R_LINK,
    R_SP,
    R_ZERO,
    Reg,
    RegisterPressureError,
)
from .program import Buffer, DATA_BASE, Program, SymAddr, layout_buffers

__all__ = [
    "ProgramBuilder",
    "R_AT",
    "R_LINK",
    "R_SP",
    "R_ZERO",
    "Reg",
    "RegisterPressureError",
    "Buffer",
    "DATA_BASE",
    "Program",
    "SymAddr",
    "layout_buffers",
]
