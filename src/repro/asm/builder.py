"""``ProgramBuilder``: the assembly DSL the benchmarks are written in.

The builder plays the role of the SPARC SC4.2 compiler output plus the
hand-coded VIS methodology of Section 2.3.2: kernels are written as
Python functions that emit SVIS instructions through this interface,
with symbolic registers, structured loops, named data buffers and
static branch hints.

Typical use::

    b = ProgramBuilder("addition")
    src = b.buffer("src", n)
    dst = b.buffer("dst", n)
    p_src, p_dst = b.iregs(2)
    b.la(p_src, src)
    b.la(p_dst, dst)
    with b.loop(0, n) as i:
        t = b.ireg()
        b.ldb(t, p_src)
        b.add(t, t, 1)
        b.stb(t, p_dst)
        b.add(p_src, p_src, 1)
        b.add(p_dst, p_dst, 1)
        b.release(t)
    program = b.build()
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..isa.instruction import Instruction
from ..isa.opcodes import spec
from ..isa.registers import (
    AT,
    GSR,
    LINK,
    NUM_FREGS,
    NUM_IREGS,
    SP,
    ZERO,
    freg as freg_index,
    ireg as ireg_index,
)
from .program import Buffer, LintWaiver, Program, SymAddr, layout_buffers


class Reg(int):
    """A register operand.  Subclasses ``int`` (the unified register
    number) so that plain ints can be recognised as immediates."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Reg({int(self)})"


#: Always-available registers.
R_ZERO = Reg(ZERO)
R_AT = Reg(AT)
R_SP = Reg(SP)
R_LINK = Reg(LINK)

Operand = Union[Reg, int]


class RegisterPressureError(RuntimeError):
    """Raised when a kernel asks for more registers than the ISA has."""


class ProgramBuilder:
    """Incrementally assembles a :class:`repro.asm.program.Program`."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._instructions: List[Instruction] = []
        self._buffers: Dict[str, Buffer] = {}
        self._labels: Dict[str, int] = {}
        self._markers: List[Tuple[int, str]] = []
        self._label_counter = itertools.count()
        # r0 zero, r1 AT, r30 SP, r31 LINK are reserved.
        self._free_iregs = [Reg(ireg_index(i)) for i in range(29, 1, -1)]
        self._free_fregs = [Reg(freg_index(i)) for i in range(NUM_FREGS - 1, -1, -1)]
        self._allocatable = frozenset(self._free_iregs) | frozenset(
            self._free_fregs
        )
        self._waivers: List[LintWaiver] = []
        self._pending_comment = ""
        self._built = False

    # -- registers -----------------------------------------------------------

    def ireg(self) -> Reg:
        """Allocate a scratch integer register."""
        if not self._free_iregs:
            raise RegisterPressureError("out of integer registers")
        return self._free_iregs.pop()

    def freg(self) -> Reg:
        """Allocate a scratch media register."""
        if not self._free_fregs:
            raise RegisterPressureError("out of media registers")
        return self._free_fregs.pop()

    def iregs(self, count: int) -> List[Reg]:
        return [self.ireg() for _ in range(count)]

    def fregs(self, count: int) -> List[Reg]:
        return [self.freg() for _ in range(count)]

    def release(self, *regs: Reg) -> None:
        """Return scratch registers to the pool."""
        for reg in regs:
            if reg < NUM_IREGS:
                if reg in (ZERO, AT, SP, LINK):
                    raise ValueError(f"cannot release reserved register {int(reg)}")
                self._free_iregs.append(Reg(reg))
            else:
                self._free_fregs.append(Reg(reg))

    @contextmanager
    def scratch(self, iregs: int = 0, fregs: int = 0):
        """Scoped allocation: registers are released when the block exits."""
        regs = [self.ireg() for _ in range(iregs)]
        regs += [self.freg() for _ in range(fregs)]
        try:
            yield regs if len(regs) != 1 else regs[0]
        finally:
            self.release(*regs)

    # -- analyzer waivers ------------------------------------------------------

    @contextmanager
    def waive(self, *codes: str, reason: str = ""):
        """Mark the instructions emitted inside this block as
        *intentionally* triggering the given diagnostic codes.

        The analyzer demotes matching findings in the span to info
        instead of warning/error.  Use sparingly, with a reason — e.g.
        a defensive dead state reset the kernel emits on purpose.
        """
        start = len(self._instructions)
        try:
            yield
        finally:
            end = len(self._instructions)
            for code in codes:
                self._waivers.append(LintWaiver(start, end, code, reason))

    # -- data segment ----------------------------------------------------------

    def buffer(
        self,
        name: str,
        size: int,
        align: int = 64,
        data: Optional[bytes] = None,
        skew: int = 0,
    ) -> Buffer:
        """Declare a named buffer in the data segment.

        ``skew`` adds a starting-address offset on top of the alignment;
        the VSDK kernels use it to de-conflict concurrent streams
        (paper footnote 3).
        """
        if name in self._buffers:
            raise ValueError(f"duplicate buffer {name!r}")
        if data is not None and len(data) > size:
            raise ValueError(f"initializer larger than buffer {name!r}")
        buf = Buffer(name=name, size=size, align=align, data=data, skew=skew)
        self._buffers[name] = buf
        return buf

    # -- labels / structure ------------------------------------------------------

    def label(self, stem: str = "L") -> str:
        """Create a fresh label name (not yet bound to a position)."""
        return f"{stem}_{next(self._label_counter)}"

    def bind(self, label: str) -> None:
        """Bind a label to the current instruction position."""
        if label in self._labels:
            raise ValueError(f"label {label!r} bound twice")
        self._labels[label] = len(self._instructions)

    def here(self, stem: str = "L") -> str:
        """Create a label bound to the current position."""
        label = self.label(stem)
        self.bind(label)
        return label

    def marker(self, text: str) -> None:
        """Record a phase marker at the current position (metadata only;
        does not emit an instruction)."""
        self._markers.append((len(self._instructions), text))

    def comment(self, text: str) -> None:
        """Attach a comment to the next emitted instruction."""
        self._pending_comment = text

    @contextmanager
    def loop(
        self,
        start: Operand,
        stop: Operand,
        step: int = 1,
        counter: Optional[Reg] = None,
    ):
        """Structured counted loop; yields the counter register.

        Emits a pre-header (counter/bound setup), a body, and a
        backward conditional branch statically hinted taken.
        """
        own_counter = counter is None
        ctr = counter if counter is not None else self.ireg()
        if isinstance(start, Reg):
            self.mov(ctr, start)
        else:
            self.li(ctr, start)
        own_bound = not isinstance(stop, Reg)
        if own_bound:
            bound = self.ireg()
            self.li(bound, stop)
        else:
            bound = stop
        top = self.here("loop")
        yield ctr
        self.add(ctr, ctr, step)
        if step > 0:
            self.blt(ctr, bound, top, hint=True)
        else:
            self.bgt(ctr, bound, top, hint=True)
        if own_bound:
            self.release(bound)
        if own_counter:
            self.release(ctr)

    # -- emission core -------------------------------------------------------------

    def _emit(
        self,
        op: str,
        dst: int = -1,
        dst2: int = -1,
        srcs: Sequence[int] = (),
        imm=None,
        target: Optional[str] = None,
        hint: Optional[bool] = None,
    ) -> None:
        if self._built:
            raise RuntimeError("builder already finalized")
        spec(op)  # validate the mnemonic early
        if dst == ZERO:
            raise ValueError("r0 is read-only")
        instr = Instruction(
            op=op,
            dst=int(dst),
            dst2=int(dst2),
            srcs=tuple(int(s) for s in srcs),
            imm=imm,
            target=-1 if target is None else target,  # patched in build()
            hint_taken=True if hint is None else hint,
            comment=self._pending_comment,
        )
        if target is not None and hint is None:
            instr.hint_taken = None  # resolved (backward=taken) in build()
        self._pending_comment = ""
        self._instructions.append(instr)

    @staticmethod
    def _require_reg(value: Operand, what: str) -> Reg:
        if not isinstance(value, Reg):
            raise TypeError(f"{what} must be a register, got {value!r}")
        return value

    def _alu(self, op: str, rd: Reg, ra: Reg, b: Operand) -> None:
        self._require_reg(rd, "destination")
        self._require_reg(ra, "first operand")
        if isinstance(b, Reg):
            self._emit(op, dst=rd, srcs=(ra, b))
        else:
            self._emit(op, dst=rd, srcs=(ra,), imm=int(b))

    # -- integer ALU ------------------------------------------------------------------

    def add(self, rd: Reg, ra: Reg, b: Operand) -> None:
        self._alu("add", rd, ra, b)

    def sub(self, rd: Reg, ra: Reg, b: Operand) -> None:
        self._alu("sub", rd, ra, b)

    def mul(self, rd: Reg, ra: Reg, b: Operand) -> None:
        self._alu("mul", rd, ra, b)

    def div(self, rd: Reg, ra: Reg, b: Operand) -> None:
        self._alu("div", rd, ra, b)

    def rem(self, rd: Reg, ra: Reg, b: Operand) -> None:
        self._alu("rem", rd, ra, b)

    def and_(self, rd: Reg, ra: Reg, b: Operand) -> None:
        self._alu("and_", rd, ra, b)

    def or_(self, rd: Reg, ra: Reg, b: Operand) -> None:
        self._alu("or_", rd, ra, b)

    def xor(self, rd: Reg, ra: Reg, b: Operand) -> None:
        self._alu("xor", rd, ra, b)

    def andn(self, rd: Reg, ra: Reg, b: Operand) -> None:
        self._alu("andn", rd, ra, b)

    def sll(self, rd: Reg, ra: Reg, b: Operand) -> None:
        self._alu("sll", rd, ra, b)

    def srl(self, rd: Reg, ra: Reg, b: Operand) -> None:
        self._alu("srl", rd, ra, b)

    def sra(self, rd: Reg, ra: Reg, b: Operand) -> None:
        self._alu("sra", rd, ra, b)

    def slt(self, rd: Reg, ra: Reg, b: Operand) -> None:
        self._alu("slt", rd, ra, b)

    def sltu(self, rd: Reg, ra: Reg, b: Operand) -> None:
        self._alu("sltu", rd, ra, b)

    def seq(self, rd: Reg, ra: Reg, b: Operand) -> None:
        self._alu("seq", rd, ra, b)

    def li(self, rd: Reg, value: Union[int, SymAddr]) -> None:
        """Load an immediate (or a buffer address placeholder)."""
        self._require_reg(rd, "destination")
        self._emit("li", dst=rd, imm=value)

    def la(self, rd: Reg, buf: Union[Buffer, str], offset: int = 0) -> None:
        """Load the address of ``buf + offset``."""
        name = buf.name if isinstance(buf, Buffer) else buf
        if name not in self._buffers:
            raise KeyError(f"unknown buffer {name!r}")
        self.li(rd, SymAddr(name, offset))

    def mov(self, rd: Reg, ra: Reg) -> None:
        self._require_reg(rd, "destination")
        self._require_reg(ra, "source")
        self._emit("mov", dst=rd, srcs=(ra,))

    def nop(self) -> None:
        self._emit("nop")

    # -- floating point -------------------------------------------------------------------

    def fadd(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._emit("fadd", dst=fd, srcs=(fa, fb))

    def fsub(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._emit("fsub", dst=fd, srcs=(fa, fb))

    def fmuld(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._emit("fmuld", dst=fd, srcs=(fa, fb))

    def fdivd(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._emit("fdivd", dst=fd, srcs=(fa, fb))

    def fmovd(self, fd: Reg, fa: Reg) -> None:
        self._emit("fmovd", dst=fd, srcs=(fa,))

    def fitod(self, fd: Reg, ra: Reg) -> None:
        """Convert a signed integer register to double."""
        self._emit("fitod", dst=fd, srcs=(ra,))

    def fdtoi(self, rd: Reg, fa: Reg) -> None:
        """Convert (truncate) a double to a signed integer register."""
        self._emit("fdtoi", dst=rd, srcs=(fa,))

    # -- memory -----------------------------------------------------------------------------

    def _load(self, op: str, rd: Reg, base: Reg, offset: int) -> None:
        self._require_reg(rd, "destination")
        self._require_reg(base, "base address")
        self._emit(op, dst=rd, srcs=(base,), imm=int(offset))

    def _store(self, op: str, rs: Reg, base: Reg, offset: int) -> None:
        self._require_reg(rs, "store value")
        self._require_reg(base, "base address")
        self._emit(op, srcs=(rs, base), imm=int(offset))

    def ldb(self, rd: Reg, base: Reg, offset: int = 0) -> None:
        self._load("ldb", rd, base, offset)

    def ldbs(self, rd: Reg, base: Reg, offset: int = 0) -> None:
        self._load("ldbs", rd, base, offset)

    def ldh(self, rd: Reg, base: Reg, offset: int = 0) -> None:
        self._load("ldh", rd, base, offset)

    def ldhs(self, rd: Reg, base: Reg, offset: int = 0) -> None:
        self._load("ldhs", rd, base, offset)

    def ldw(self, rd: Reg, base: Reg, offset: int = 0) -> None:
        self._load("ldw", rd, base, offset)

    def ldws(self, rd: Reg, base: Reg, offset: int = 0) -> None:
        self._load("ldws", rd, base, offset)

    def ldx(self, rd: Reg, base: Reg, offset: int = 0) -> None:
        self._load("ldx", rd, base, offset)

    def ldf(self, fd: Reg, base: Reg, offset: int = 0) -> None:
        """64-bit load into the media register file."""
        self._load("ldf", fd, base, offset)

    def ldfw(self, fd: Reg, base: Reg, offset: int = 0) -> None:
        """32-bit load into the low half of a media register."""
        self._load("ldfw", fd, base, offset)

    def ldfb(self, fd: Reg, base: Reg, offset: int = 0) -> None:
        """VIS short load: one byte into a media register."""
        self._load("ldfb", fd, base, offset)

    def ldfh(self, fd: Reg, base: Reg, offset: int = 0) -> None:
        """VIS short load: two bytes into a media register."""
        self._load("ldfh", fd, base, offset)

    def stb(self, rs: Reg, base: Reg, offset: int = 0) -> None:
        self._store("stb", rs, base, offset)

    def sth(self, rs: Reg, base: Reg, offset: int = 0) -> None:
        self._store("sth", rs, base, offset)

    def stw(self, rs: Reg, base: Reg, offset: int = 0) -> None:
        self._store("stw", rs, base, offset)

    def stx(self, rs: Reg, base: Reg, offset: int = 0) -> None:
        self._store("stx", rs, base, offset)

    def stf(self, fs: Reg, base: Reg, offset: int = 0) -> None:
        self._store("stf", fs, base, offset)

    def stfw(self, fs: Reg, base: Reg, offset: int = 0) -> None:
        self._store("stfw", fs, base, offset)

    def stfb(self, fs: Reg, base: Reg, offset: int = 0) -> None:
        self._store("stfb", fs, base, offset)

    def stfh(self, fs: Reg, base: Reg, offset: int = 0) -> None:
        self._store("stfh", fs, base, offset)

    def pst(self, fs: Reg, mask: Reg, base: Reg, offset: int = 0) -> None:
        """Partial store: write the bytes of ``fs`` selected by the
        8-bit mask in integer register ``mask``."""
        self._emit("pst", srcs=(fs, mask, base), imm=int(offset))

    def pf(self, base: Reg, offset: int = 0) -> None:
        """Non-binding software prefetch of the line at ``base+offset``."""
        self._require_reg(base, "base address")
        self._emit("pf", srcs=(base,), imm=int(offset))

    # -- control flow ---------------------------------------------------------------------------

    def _branch(self, op: str, ra: Reg, b: Operand, target: str, hint) -> None:
        self._require_reg(ra, "branch operand")
        if not isinstance(b, Reg):
            if int(b) == 0:
                b = R_ZERO
            else:
                self.li(R_AT, int(b))
                b = R_AT
        self._emit(op, srcs=(ra, b), target=target, hint=hint)

    def beq(self, ra: Reg, b: Operand, target: str, hint: Optional[bool] = None):
        self._branch("beq", ra, b, target, hint)

    def bne(self, ra: Reg, b: Operand, target: str, hint: Optional[bool] = None):
        self._branch("bne", ra, b, target, hint)

    def blt(self, ra: Reg, b: Operand, target: str, hint: Optional[bool] = None):
        self._branch("blt", ra, b, target, hint)

    def ble(self, ra: Reg, b: Operand, target: str, hint: Optional[bool] = None):
        self._branch("ble", ra, b, target, hint)

    def bgt(self, ra: Reg, b: Operand, target: str, hint: Optional[bool] = None):
        self._branch("bgt", ra, b, target, hint)

    def bge(self, ra: Reg, b: Operand, target: str, hint: Optional[bool] = None):
        self._branch("bge", ra, b, target, hint)

    def j(self, target: str) -> None:
        self._emit("j", target=target)

    def call(self, target: str) -> None:
        self._emit("call", dst=R_LINK, target=target)

    def ret(self) -> None:
        self._emit("ret", srcs=(R_LINK,))

    # -- VIS ---------------------------------------------------------------------------------------

    def _vis3(self, op: str, fd: Reg, fa: Reg, fb: Reg, gsr_src: bool = False):
        srcs = (fa, fb, GSR) if gsr_src else (fa, fb)
        self._emit(op, dst=fd, srcs=srcs)

    def fpadd16(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._vis3("fpadd16", fd, fa, fb)

    def fpadd32(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._vis3("fpadd32", fd, fa, fb)

    def fpsub16(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._vis3("fpsub16", fd, fa, fb)

    def fpsub32(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._vis3("fpsub32", fd, fa, fb)

    def fand(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._vis3("fand", fd, fa, fb)

    def for_(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._vis3("for_", fd, fa, fb)

    def fxor(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._vis3("fxor", fd, fa, fb)

    def fandnot(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._vis3("fandnot", fd, fa, fb)

    def fnot(self, fd: Reg, fa: Reg) -> None:
        self._emit("fnot", dst=fd, srcs=(fa,))

    def fzero(self, fd: Reg) -> None:
        self._emit("fzero", dst=fd)

    def fone(self, fd: Reg) -> None:
        self._emit("fone", dst=fd)

    def fsrc(self, fd: Reg, fa: Reg) -> None:
        self._emit("fsrc", dst=fd, srcs=(fa,))

    def fmul8x16(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._vis3("fmul8x16", fd, fa, fb)

    def fmul8x16au(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._vis3("fmul8x16au", fd, fa, fb)

    def fmul8x16al(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._vis3("fmul8x16al", fd, fa, fb)

    def fmul8sux16(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._vis3("fmul8sux16", fd, fa, fb)

    def fmul8ulx16(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._vis3("fmul8ulx16", fd, fa, fb)

    def pdist(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        """``fd += sum(|fa_i - fb_i|)`` over 8 bytes; fd is read-modify-write."""
        self._emit("pdist", dst=fd, srcs=(fa, fb, fd))

    def fpack16(self, fd: Reg, fa: Reg) -> None:
        self._emit("fpack16", dst=fd, srcs=(fa, GSR))

    def fpack32(self, fd: Reg, fa: Reg) -> None:
        self._emit("fpack32", dst=fd, srcs=(fa, GSR))

    def fpackfix(self, fd: Reg, fa: Reg) -> None:
        self._emit("fpackfix", dst=fd, srcs=(fa, GSR))

    def fexpand(self, fd: Reg, fa: Reg) -> None:
        self._emit("fexpand", dst=fd, srcs=(fa,))

    def fpmerge(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._vis3("fpmerge", fd, fa, fb)

    def faligndata(self, fd: Reg, fa: Reg, fb: Reg) -> None:
        self._vis3("faligndata", fd, fa, fb, gsr_src=True)

    def alignaddr(self, rd: Reg, ra: Reg, b: Operand = 0) -> None:
        """rd = (ra + b) & ~7; GSR.align = (ra + b) & 7."""
        self._require_reg(rd, "destination")
        self._require_reg(ra, "address")
        if isinstance(b, Reg):
            self._emit("alignaddr", dst=rd, dst2=GSR, srcs=(ra, b))
        else:
            self._emit("alignaddr", dst=rd, dst2=GSR, srcs=(ra,), imm=int(b))

    def fcmpgt16(self, rd: Reg, fa: Reg, fb: Reg) -> None:
        self._emit("fcmpgt16", dst=rd, srcs=(fa, fb))

    def fcmple16(self, rd: Reg, fa: Reg, fb: Reg) -> None:
        self._emit("fcmple16", dst=rd, srcs=(fa, fb))

    def fcmpeq16(self, rd: Reg, fa: Reg, fb: Reg) -> None:
        self._emit("fcmpeq16", dst=rd, srcs=(fa, fb))

    def fcmpne16(self, rd: Reg, fa: Reg, fb: Reg) -> None:
        self._emit("fcmpne16", dst=rd, srcs=(fa, fb))

    def fcmpgt32(self, rd: Reg, fa: Reg, fb: Reg) -> None:
        self._emit("fcmpgt32", dst=rd, srcs=(fa, fb))

    def fcmpeq32(self, rd: Reg, fa: Reg, fb: Reg) -> None:
        self._emit("fcmpeq32", dst=rd, srcs=(fa, fb))

    def edge8(self, rd: Reg, ra: Reg, rb: Reg) -> None:
        self._emit("edge8", dst=rd, srcs=(ra, rb))

    def edge16(self, rd: Reg, ra: Reg, rb: Reg) -> None:
        self._emit("edge16", dst=rd, srcs=(ra, rb))

    def edge32(self, rd: Reg, ra: Reg, rb: Reg) -> None:
        self._emit("edge32", dst=rd, srcs=(ra, rb))

    def array8(self, rd: Reg, ra: Reg, bits: int = 0) -> None:
        self._emit("array8", dst=rd, srcs=(ra,), imm=int(bits))

    def rdgsr(self, rd: Reg) -> None:
        self._emit("rdgsr", dst=rd, srcs=(GSR,))

    def wrgsr(self, ra: Reg) -> None:
        self._emit("wrgsr", dst=GSR, srcs=(ra,))

    def set_gsr(self, align: int = 0, scale: int = 0) -> None:
        """Convenience: materialize a GSR value and write it."""
        from ..isa.registers import pack_gsr

        self.li(R_AT, pack_gsr(align=align, scale=scale))
        self.wrgsr(R_AT)

    # -- finalize ----------------------------------------------------------------------------------

    def build(self) -> Program:
        """Resolve labels/addresses, append the terminating ``halt`` and
        return an immutable :class:`Program`."""
        if self._built:
            raise RuntimeError("build() called twice")
        self._emit("halt")
        self._built = True

        memory_size = layout_buffers(self._buffers)

        for index, instr in enumerate(self._instructions):
            if isinstance(instr.target, str):
                try:
                    instr.target = self._labels[instr.target]
                except KeyError:
                    raise ValueError(
                        f"undefined label {instr.target!r} at instruction {index}"
                    ) from None
            if instr.hint_taken is None:
                # Static compiler bias: backward taken, forward not-taken.
                instr.hint_taken = instr.target <= index
            if isinstance(instr.imm, SymAddr):
                instr.imm = (
                    self._buffers[instr.imm.buffer].address + instr.imm.offset
                )

        # scratch registers allocated (absent from the free pools) but
        # never released: reported by the analyzer as W-REGLEAK
        in_pool = frozenset(self._free_iregs) | frozenset(self._free_fregs)
        unreleased = tuple(
            sorted(int(reg) for reg in self._allocatable - in_pool)
        )

        return Program(
            instructions=self._instructions,
            buffers=self._buffers,
            labels=dict(self._labels),
            markers=list(self._markers),
            memory_size=memory_size,
            name=self.name,
            unreleased_regs=unreleased,
            lint_waivers=list(self._waivers),
        )
