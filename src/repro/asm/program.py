"""Finalized program representation: instructions + data segment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.instruction import Instruction

#: Data-segment base address: leaves the low pages unused so that a zero
#: base register is always an obvious bug rather than a silent read.
DATA_BASE = 0x10000


@dataclass
class Buffer:
    """A named region in the simulated data segment."""

    name: str
    size: int
    align: int = 64
    data: Optional[bytes] = None
    #: extra bytes inserted *before* the buffer, on top of alignment.
    #: Used to skew concurrent array starting addresses and avoid cache
    #: conflicts (footnote 3 of the paper).
    skew: int = 0
    address: int = -1  # assigned at finalize time

    def end(self) -> int:
        if self.address < 0:
            raise RuntimeError(
                f"buffer {self.name!r} has no address yet: end() is only "
                "meaningful after ProgramBuilder.build() lays out the "
                "data segment"
            )
        return self.address + self.size


@dataclass
class SymAddr:
    """Unresolved address of ``buffer + offset``; patched at finalize."""

    buffer: str
    offset: int = 0


@dataclass(frozen=True)
class LintWaiver:
    """One builder-declared suppression span for the static analyzer.

    Diagnostics with a matching code whose instruction index falls in
    ``[start, end)`` are demoted to info (never dropped): the emitting
    kernel has declared the finding intentional — e.g. a defensive
    state reset that is provably dead, or a uniformly-emitted loop
    epilogue whose last copy advances a pointer nobody reads.
    """

    start: int
    end: int
    code: str
    reason: str = ""


@dataclass
class Program:
    """An assembled SVIS program, ready to run on the simulator."""

    instructions: List[Instruction]
    buffers: Dict[str, Buffer]
    labels: Dict[str, int] = field(default_factory=dict)
    markers: List[Tuple[int, str]] = field(default_factory=list)
    memory_size: int = 0
    name: str = ""
    #: scratch registers allocated but never released (reported by the
    #: analyzer as ``W-REGLEAK`` when they are also never mentioned)
    unreleased_regs: Tuple[int, ...] = ()
    #: analyzer suppressions declared by the emitting kernels
    lint_waivers: List[LintWaiver] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def buffer(self, name: str) -> Buffer:
        return self.buffers[name]

    def address_of(self, name: str, offset: int = 0) -> int:
        return self.buffers[name].address + offset

    def disassemble(self) -> str:
        """Full program listing with label and marker annotations."""
        by_index: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(f"{label}:")
        for index, marker in self.markers:
            by_index.setdefault(index, []).append(f"; === {marker} ===")
        lines: List[str] = []
        for buf in self.buffers.values():
            lines.append(
                f"; buffer {buf.name}: 0x{buf.address:x} (+{buf.size} bytes)"
            )
        for i, instr in enumerate(self.instructions):
            for annotation in by_index.get(i, ()):
                lines.append(annotation)
            lines.append(instr.disassemble(i))
        return "\n".join(lines)


def layout_buffers(buffers: Dict[str, Buffer], base: int = DATA_BASE) -> int:
    """Assign addresses to all buffers with a bump allocator.

    Returns the total memory size needed (rounded up to a 4 KB page).
    Buffers keep declaration order; each is aligned and then skewed.
    """
    cursor = base
    for buf in buffers.values():
        align = max(buf.align, 1)
        cursor = (cursor + align - 1) & ~(align - 1)
        cursor += buf.skew
        buf.address = cursor
        cursor += buf.size
    return (cursor + 0xFFF) & ~0xFFF
