"""Offline trace analysis: the ``trace`` CLI subcommand's report.

Consumes a JSONL trace written by
:class:`~repro.trace.sinks.JsonlSink` and renders:

* a run summary (instructions, cycles, event counts, memory levels),
* a pipeline timeline of the first N instructions (fetch → issue →
  complete → retire, with the charged stall cause), and
* the top-K stall sites: static instructions ranked by total stall
  cycles charged to them, broken down by cause — every future perf PR
  can aim straight at this table.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from .events import (
    CAUSE_NAMES,
    EV_FETCH,
    EV_ISSUE,
    EV_MEM,
    EV_RETIRE,
    EV_STALL_END,
    LEVEL_NAMES,
    MEM_KIND_NAMES,
)
from .sinks import read_jsonl


class _SiteStats:
    __slots__ = ("stall", "by_cause", "retires")

    def __init__(self) -> None:
        self.stall = 0.0
        self.by_cause = [0.0, 0.0, 0.0, 0.0]
        self.retires = 0


class _TimelineRow:
    __slots__ = ("seq", "sidx", "fetch", "issue", "complete", "retire",
                 "cause", "gap")

    def __init__(self, seq: int, sidx: int) -> None:
        self.seq = seq
        self.sidx = sidx
        self.fetch: Optional[int] = None
        self.issue: Optional[int] = None
        self.complete: Optional[int] = None
        self.retire: Optional[int] = None
        self.cause: Optional[int] = None
        self.gap = 0.0


def analyze(header: Dict, events) -> Dict:
    """Single pass over the event stream -> analysis dict."""
    sites: Dict[int, _SiteStats] = defaultdict(_SiteStats)
    timeline: Dict[int, _TimelineRow] = {}
    timeline_limit = int(header.get("timeline_limit", 64))
    retired = 0
    last_retire = -1
    total_stall = [0.0, 0.0, 0.0, 0.0]
    mem_by_level: Dict[int, int] = defaultdict(int)
    mem_by_kind: Dict[int, int] = defaultdict(int)
    n_events = 0

    for ev in events:
        n_events += 1
        kind = ev.kind
        if kind == EV_MEM:
            mem_by_level[ev.seq] += 1
            mem_by_kind[ev.cause] += 1
            continue
        seq = ev.seq
        row = None
        if seq < timeline_limit:
            row = timeline.get(seq)
            if row is None:
                row = timeline[seq] = _TimelineRow(seq, ev.sidx)
        if kind == EV_RETIRE:
            retired += 1
            if ev.cycle > last_retire:
                last_retire = ev.cycle
            sites[ev.sidx].retires += 1
            if row is not None:
                row.retire = ev.cycle
        elif kind == EV_STALL_END:
            gap = ev.value
            site = sites[ev.sidx]
            site.stall += gap
            site.by_cause[ev.cause] += gap
            total_stall[ev.cause] += gap
            if row is not None:
                row.cause = ev.cause
                row.gap = gap
        elif kind == EV_ISSUE:
            if row is not None:
                row.issue = ev.cycle
                row.complete = ev.value
        elif kind == EV_FETCH:
            if row is not None:
                row.fetch = ev.cycle

    return {
        "header": header,
        "retired": retired,
        "cycles": last_retire + 1 if retired else 0,
        "total_stall": total_stall,
        "sites": sites,
        "timeline": [timeline[k] for k in sorted(timeline)],
        "mem_by_level": dict(mem_by_level),
        "mem_by_kind": dict(mem_by_kind),
        "events": n_events,
    }


def top_stall_sites(
    analysis: Dict, top: int = 10
) -> Tuple[List[str], List[List]]:
    """Rank static instructions by total charged stall cycles."""
    ops = analysis["header"].get("ops", [])

    def op_name(sidx: int) -> str:
        return ops[sidx] if 0 <= sidx < len(ops) else f"i{sidx}"

    headers = ["site", "op", "retires", "stall cycles"] + list(CAUSE_NAMES)
    ranked = sorted(
        analysis["sites"].items(), key=lambda kv: -kv[1].stall
    )[:top]
    rows = [
        [
            f"i{sidx}",
            op_name(sidx),
            site.retires,
            f"{site.stall:.1f}",
        ]
        + [f"{site.by_cause[c]:.1f}" for c in range(4)]
        for sidx, site in ranked
        if site.stall > 0.0
    ]
    return headers, rows


def timeline_rows(
    analysis: Dict, limit: int = 24
) -> Tuple[List[str], List[List]]:
    """First ``limit`` instructions as a pipeline timeline table."""
    ops = analysis["header"].get("ops", [])

    def op_name(sidx: int) -> str:
        return ops[sidx] if 0 <= sidx < len(ops) else f"i{sidx}"

    headers = ["#", "op", "fetch", "issue", "complete", "retire", "stall"]
    rows = []
    for row in analysis["timeline"][:limit]:
        stall = (
            f"{CAUSE_NAMES[row.cause]} +{row.gap:.2f}"
            if row.cause is not None and row.gap
            else ""
        )
        rows.append([
            row.seq,
            op_name(row.sidx),
            row.fetch if row.fetch is not None else "",
            row.issue if row.issue is not None else "",
            row.complete if row.complete is not None else "",
            row.retire if row.retire is not None else "",
            stall,
        ])
    return headers, rows


def render_report(path, top: int = 10, timeline: int = 24) -> str:
    """Full plain-text report for one JSONL trace file."""
    # Imported lazily: repro.experiments imports repro.trace at package
    # init, so the reverse edge must not run at import time.
    from ..experiments.report import format_table

    header, events = read_jsonl(path)
    analysis = analyze(header, events)

    lines: List[str] = []
    bench = header.get("benchmark", "?")
    config = header.get("config", "?")
    lines.append(f"trace report — {bench} on {config}")
    lines.append("=" * len(lines[0]))
    lines.append(
        f"instructions retired : {analysis['retired']}"
    )
    lines.append(f"total cycles         : {analysis['cycles']}")
    total_stall = analysis["total_stall"]
    for cause, name in enumerate(CAUSE_NAMES):
        lines.append(
            f"stall[{name:<8}]      : {total_stall[cause]:.1f} cycles"
        )
    mem_kinds = ", ".join(
        f"{MEM_KIND_NAMES[k]}={v}"
        for k, v in sorted(analysis["mem_by_kind"].items())
    )
    mem_levels = ", ".join(
        f"{LEVEL_NAMES[k]}={v}"
        for k, v in sorted(analysis["mem_by_level"].items())
    )
    if mem_kinds:
        lines.append(f"memory accesses      : {mem_kinds}")
        lines.append(f"satisfied at         : {mem_levels}")
    lines.append(f"trace events         : {analysis['events']}")
    lines.append("")

    t_headers, t_rows = timeline_rows(analysis, limit=timeline)
    if t_rows:
        lines.append(format_table(
            t_headers, t_rows,
            title=f"pipeline timeline (first {len(t_rows)} instructions)",
        ))
        lines.append("")

    s_headers, s_rows = top_stall_sites(analysis, top=top)
    if s_rows:
        lines.append(format_table(
            s_headers, s_rows, title=f"top {len(s_rows)} stall sites",
        ))
    else:
        lines.append("no stall cycles charged — fully busy pipeline")
    return "\n".join(lines)
