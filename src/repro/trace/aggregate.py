"""Streaming aggregator: recompute ExecutionStats from the event stream.

:class:`StreamingAggregator` is a :class:`~repro.trace.sinks.TraceSink`
that consumes the expanded event stream and *independently* rebuilds
the run's headline accounting — retired instructions, total cycles,
busy time, the four stall components, and the Figure 2 category mix —
purely from ``EV_RETIRE`` / ``EV_STALL_END`` / ``EV_MEM`` events.

It never looks at :class:`~repro.cpu.stats.RetireUnit` or the models'
counters, so comparing its numbers against the normal
:class:`~repro.cpu.stats.ExecutionStats` (see
:mod:`repro.trace.audit`) catches attribution bugs in either path:
a double-counted stall, a dropped retire, a mislabeled category.
"""

from __future__ import annotations

from typing import Dict, List

from ..cpu.stats import NUM_STALL_CLASSES
from ..sim.static_info import CATEGORY_NAMES
from .events import EV_MEM, EV_RETIRE, EV_STALL_END, TraceEvent
from .sinks import TraceSink


class StreamingAggregator(TraceSink):
    """Second-opinion accounting, summed straight off the trace."""

    def __init__(self, width: int) -> None:
        self.width = width
        self.retired = 0
        self.last_retire_cycle = -1
        self.stalls: List[float] = [0.0] * NUM_STALL_CLASSES
        self.category_counts: List[int] = [0] * len(CATEGORY_NAMES)
        self.mem_accesses = 0
        self.mem_by_level: Dict[int, int] = {}
        self.events_seen = 0

    def emit(self, event: TraceEvent) -> None:
        self.events_seen += 1
        kind = event.kind
        if kind == EV_RETIRE:
            self.retired += 1
            self.category_counts[int(event.value)] += 1
            if event.cycle > self.last_retire_cycle:
                self.last_retire_cycle = event.cycle
        elif kind == EV_STALL_END:
            self.stalls[event.cause] += event.value
        elif kind == EV_MEM:
            self.mem_accesses += 1
            self.mem_by_level[event.seq] = self.mem_by_level.get(event.seq, 0) + 1

    # -- derived accounting (the Section 2.3.4 partition) -------------------

    @property
    def cycles(self) -> int:
        return self.last_retire_cycle + 1 if self.retired else 0

    @property
    def busy(self) -> float:
        return self.retired / self.width

    @property
    def stall_total(self) -> float:
        return sum(self.stalls)

    @property
    def drain(self) -> float:
        """Unused retire slots of the final cycle — the only part of
        execution time that is neither busy nor attributed stall.  Must
        always lie in ``[0, 1)`` cycles."""
        return self.cycles - self.busy - self.stall_total

    def category_dict(self) -> Dict[str, int]:
        return {
            CATEGORY_NAMES[i]: self.category_counts[i]
            for i in range(len(CATEGORY_NAMES))
        }

    def summary(self) -> Dict[str, float]:
        """JSON-safe snapshot (used by reports and test assertions)."""
        return {
            "retired": self.retired,
            "cycles": self.cycles,
            "busy": self.busy,
            "stalls": list(self.stalls),
            "drain": self.drain,
            "categories": self.category_dict(),
            "mem_accesses": self.mem_accesses,
            "events_seen": self.events_seen,
        }
