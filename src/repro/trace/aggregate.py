"""Streaming aggregator: recompute ExecutionStats from the event stream.

:class:`StreamingAggregator` is a :class:`~repro.trace.sinks.TraceSink`
that consumes the expanded event stream and *independently* rebuilds
the run's headline accounting — retired instructions, total cycles,
busy time, the four stall components, and the Figure 2 category mix —
purely from ``EV_RETIRE`` / ``EV_STALL_END`` / ``EV_MEM`` events.

It never looks at :class:`~repro.cpu.stats.RetireUnit` or the models'
counters, so comparing its numbers against the normal
:class:`~repro.cpu.stats.ExecutionStats` (see
:mod:`repro.trace.audit`) catches attribution bugs in either path:
a double-counted stall, a dropped retire, a mislabeled category.
"""

from __future__ import annotations

from typing import Dict, List

from ..cpu.stats import NUM_STALL_CLASSES
from ..sim.static_info import CATEGORY_NAMES
from .events import EV_MEM, EV_RETIRE, EV_STALL_END, TraceEvent
from .sinks import TraceSink


class StreamingAggregator(TraceSink):
    """Second-opinion accounting, summed straight off the trace."""

    def __init__(self, width: int) -> None:
        self.width = width
        self.retired = 0
        self.last_retire_cycle = -1
        self.stalls: List[float] = [0.0] * NUM_STALL_CLASSES
        self.category_counts: List[int] = [0] * len(CATEGORY_NAMES)
        self.mem_accesses = 0
        self.mem_by_level: Dict[int, int] = {}
        self.events_seen = 0

    def emit(self, event: TraceEvent) -> None:
        self.events_seen += 1
        kind = event.kind
        if kind == EV_RETIRE:
            self.retired += 1
            self.category_counts[int(event.value)] += 1
            if event.cycle > self.last_retire_cycle:
                self.last_retire_cycle = event.cycle
        elif kind == EV_STALL_END:
            self.stalls[event.cause] += event.value
        elif kind == EV_MEM:
            self.mem_accesses += 1
            self.mem_by_level[event.seq] = self.mem_by_level.get(event.seq, 0) + 1

    # -- checkpoint/restore -------------------------------------------------

    def snapshot(self) -> Dict:
        return {
            "width": self.width,
            "retired": self.retired,
            "last_retire_cycle": self.last_retire_cycle,
            "stalls": list(self.stalls),
            "category_counts": list(self.category_counts),
            "mem_accesses": self.mem_accesses,
            "mem_by_level": [
                [level, count] for level, count in self.mem_by_level.items()
            ],
            "events_seen": self.events_seen,
        }

    def restore(self, state: Dict) -> None:
        if state["width"] != self.width:
            raise ValueError(
                f"snapshot aggregator width {state['width']} != {self.width}"
            )
        if len(state["stalls"]) != NUM_STALL_CLASSES:
            raise ValueError("snapshot aggregator stall vector mismatch")
        if len(state["category_counts"]) != len(CATEGORY_NAMES):
            raise ValueError("snapshot aggregator category vector mismatch")
        self.retired = int(state["retired"])
        self.last_retire_cycle = int(state["last_retire_cycle"])
        self.stalls[:] = [float(x) for x in state["stalls"]]
        self.category_counts[:] = [int(x) for x in state["category_counts"]]
        self.mem_accesses = int(state["mem_accesses"])
        self.mem_by_level.clear()
        for level, count in state["mem_by_level"]:
            self.mem_by_level[int(level)] = int(count)
        self.events_seen = int(state["events_seen"])

    # -- derived accounting (the Section 2.3.4 partition) -------------------

    @property
    def cycles(self) -> int:
        return self.last_retire_cycle + 1 if self.retired else 0

    @property
    def busy(self) -> float:
        return self.retired / self.width

    @property
    def stall_total(self) -> float:
        return sum(self.stalls)

    @property
    def drain(self) -> float:
        """Unused retire slots of the final cycle — the only part of
        execution time that is neither busy nor attributed stall.  Must
        always lie in ``[0, 1)`` cycles."""
        return self.cycles - self.busy - self.stall_total

    def category_dict(self) -> Dict[str, int]:
        return {
            CATEGORY_NAMES[i]: self.category_counts[i]
            for i in range(len(CATEGORY_NAMES))
        }

    def summary(self) -> Dict[str, float]:
        """JSON-safe snapshot (used by reports and test assertions)."""
        return {
            "retired": self.retired,
            "cycles": self.cycles,
            "busy": self.busy,
            "stalls": list(self.stalls),
            "drain": self.drain,
            "categories": self.category_dict(),
            "mem_accesses": self.mem_accesses,
            "events_seen": self.events_seen,
        }
