"""The Tracer: expands pipeline milestones into per-cycle events.

The CPU models call :meth:`Tracer.instr` once per retired instruction
(program order) with the cycle of every pipeline milestone; the memory
system calls :meth:`Tracer.mem` once per hierarchy access; the
functional machine reports executed-instruction counts through
:meth:`Tracer.on_functional_chunk`.  The tracer expands each
instruction into FETCH / ISSUE / STALL-BEGIN / STALL-END / RETIRE
events and fans them out to every attached sink.

Crucially the tracer carries its *own* replica of the paper's
Section 2.3.4 retirement convention (width-limited in-order retire,
stall charged to the first instruction that could not retire) — it
never reads :class:`~repro.cpu.stats.RetireUnit` state.  The audit
layer (:mod:`repro.trace.audit`) exploits this redundancy: the two
implementations must agree exactly, cycle for cycle, or the run fails.

Zero-overhead-when-disabled contract: nothing in this module is on any
hot path unless a ``Tracer`` is attached; the models pay one local
``is not None`` test per instruction when tracing is off.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from .aggregate import StreamingAggregator
from .events import (
    EV_FETCH,
    EV_ISSUE,
    EV_MEM,
    EV_RETIRE,
    EV_STALL_BEGIN,
    EV_STALL_END,
    TraceEvent,
)
from .sinks import TraceSink


class Tracer:
    """Per-run event expansion + fan-out to sinks."""

    def __init__(
        self,
        info,
        width: int,
        sinks: Iterable[TraceSink] = (),
        aggregate: bool = True,
    ) -> None:
        self.info = info
        self.width = width
        self.sinks = list(sinks)
        self.aggregator: Optional[StreamingAggregator] = None
        if aggregate:
            self.aggregator = StreamingAggregator(width)
            self.sinks.append(self.aggregator)
        self._category = info.category
        # Replica retirement state (independent of RetireUnit).
        self._seq = 0
        self._cycle = 0
        self._slots = 0
        #: instructions executed by the functional machine (observer)
        self.functional_instructions = 0
        self._closed = False

    # -- model-facing hooks --------------------------------------------------

    def instr(
        self,
        sidx: int,
        fetch: int,
        issue: int,
        complete: int,
        retire_request: int,
        cause: int,
        aux: int = 0,
    ) -> None:
        """Record one retired instruction (called in program order).

        ``retire_request`` is the earliest cycle the instruction could
        retire (stores retire at issue+1, everything else at
        completion); the tracer computes the actual retire cycle and
        any charged stall from its own replica state.
        """
        seq = self._seq
        self._seq = seq + 1
        width = self.width
        cycle = self._cycle
        slots = self._slots

        if retire_request <= cycle:
            gap = 0.0
            if slots < width:
                self._slots = slots + 1
                retire_cycle = cycle
            else:
                retire_cycle = cycle + 1
                self._cycle = retire_cycle
                self._slots = 1
        else:
            gap = (width - slots) / width + (retire_request - cycle - 1)
            retire_cycle = retire_request
            self._cycle = retire_cycle
            self._slots = 1

        category = self._category[sidx]
        events = [
            TraceEvent(EV_FETCH, fetch, seq, sidx, category, aux),
            TraceEvent(EV_ISSUE, issue, seq, sidx, cause, complete),
        ]
        if gap > 0.0:
            events.append(TraceEvent(EV_STALL_BEGIN, cycle, seq, sidx, cause, 0))
            events.append(
                TraceEvent(EV_STALL_END, retire_cycle, seq, sidx, cause, gap)
            )
        events.append(
            TraceEvent(EV_RETIRE, retire_cycle, seq, sidx, cause, category)
        )
        for sink in self.sinks:
            emit = sink.emit
            for ev in events:
                emit(ev)

    def mem(self, kind: int, addr: int, cycle: int, done: int, level: int) -> None:
        """Record one memory-hierarchy access (from MemorySystem)."""
        ev = TraceEvent(EV_MEM, cycle, level, addr, kind, done)
        for sink in self.sinks:
            sink.emit(ev)

    def on_functional_chunk(self, count: int) -> None:
        """Machine observer hook: ``count`` instructions executed."""
        self.functional_instructions += count

    # -- checkpoint/restore --------------------------------------------------

    def snapshot(self) -> Dict:
        """Serialize the replica retirement state + aggregator partials.

        Only aggregator-only tracers (the ``--audit`` configuration)
        are checkpointable: a file sink's already-written events cannot
        be captured or replayed, so snapshotting one would silently
        truncate its trace.
        """
        extra = [s for s in self.sinks if s is not self.aggregator]
        if extra:
            raise ValueError(
                "only aggregator-only tracers are checkpointable "
                f"(found {len(extra)} other sink(s))"
            )
        return {
            "seq": self._seq,
            "cycle": self._cycle,
            "slots": self._slots,
            "functional_instructions": self.functional_instructions,
            "aggregator": (
                self.aggregator.snapshot()
                if self.aggregator is not None else None
            ),
        }

    def restore(self, state: Dict) -> None:
        if (state.get("aggregator") is None) != (self.aggregator is None):
            raise ValueError("snapshot/tracer aggregator presence mismatch")
        self._seq = int(state["seq"])
        self._cycle = int(state["cycle"])
        self._slots = int(state["slots"])
        self.functional_instructions = int(state["functional_instructions"])
        if self.aggregator is not None:
            self.aggregator.restore(state["aggregator"])

    # -- lifecycle -----------------------------------------------------------

    @property
    def retired(self) -> int:
        return self._seq

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            for sink in self.sinks:
                sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
