"""Attribution audit: prove the per-run decompositions are exact.

Every headline figure of the paper is a decomposition — Figure 1
splits execution time into Busy / FU-stall / L1-hit / L1-miss, and
Figure 2 splits retired instructions into FU / Branch / Memory / VIS.
A silent attribution bug (double-counted stall, dropped cycle,
mislabeled category) would corrupt every figure while all tests that
only look at totals kept passing.

:func:`audit_run` cross-checks the model-side
:class:`~repro.cpu.stats.ExecutionStats` (produced by
:class:`~repro.cpu.stats.RetireUnit`) against the
:class:`~repro.trace.aggregate.StreamingAggregator`'s independent
recomputation from the event stream, and enforces the conservation
laws:

* **cycle conservation** — ``busy + FU + branch + L1-hit + L1-miss +
  drain == total cycles`` exactly, with the final-cycle ``drain``
  remainder in ``[0, 1)``;
* **instruction conservation** — ``FU + Branch + Memory + VIS ==
  retired == functionally executed``;
* **memory conservation** — hierarchy accesses seen by the tracer
  equal the memory system's own ``loads + stores + prefetches``.

All comparisons are exact (integer, or bitwise-identical float sums):
both paths add the same width-denominator fractions in the same
order, so any inequality is a real divergence, not round-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..cpu.stats import (
    ExecutionStats,
    SC_BRANCH,
    SC_FU,
    SC_L1HIT,
    SC_L1MISS,
)
from ..sim.static_info import CATEGORY_NAMES
from .tracer import Tracer


class AuditError(AssertionError):
    """The model counters and the event-stream recomputation diverge."""


@dataclass
class Divergence:
    """One mismatching quantity."""

    what: str
    model: float
    audit: float

    def __str__(self) -> str:
        return f"{self.what}: model={self.model!r} audit={self.audit!r}"


@dataclass
class AuditReport:
    """Outcome of one audited run."""

    benchmark: str
    config_name: str
    cycles: int = 0
    instructions: int = 0
    drain: float = 0.0
    events_seen: int = 0
    functional_instructions: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def raise_if_failed(self) -> "AuditReport":
        if self.divergences:
            lines = "\n  ".join(str(d) for d in self.divergences)
            raise AuditError(
                f"attribution audit failed for {self.benchmark} on "
                f"{self.config_name} ({len(self.divergences)} "
                f"divergence(s)):\n  {lines}"
            )
        return self

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.divergences)} DIVERGENCES"
        return (
            f"audit[{self.benchmark} @ {self.config_name}]: {status} — "
            f"{self.instructions} instrs, {self.cycles} cycles, "
            f"drain {self.drain:.4f}, {self.events_seen} events"
        )


def audit_run(stats: ExecutionStats, tracer: Tracer) -> AuditReport:
    """Cross-check one run; returns the report (does not raise)."""
    agg = tracer.aggregator
    if agg is None:
        raise ValueError(
            "audit_run needs a Tracer built with aggregate=True"
        )
    report = AuditReport(
        benchmark=stats.benchmark,
        config_name=stats.config_name,
        cycles=stats.cycles,
        instructions=stats.instructions,
        drain=agg.drain,
        events_seen=agg.events_seen,
        functional_instructions=tracer.functional_instructions,
    )
    diverge = report.divergences.append

    def check(what: str, model, audit) -> None:
        if model != audit:
            diverge(Divergence(what, model, audit))

    # -- model vs. event-stream recomputation -------------------------------
    check("retired instructions", stats.instructions, agg.retired)
    check("total cycles", stats.cycles, agg.cycles)
    check("busy cycles", stats.busy, agg.busy)
    check("FU stall", stats.fu_stall, agg.stalls[SC_FU])
    check("branch stall", stats.branch_stall, agg.stalls[SC_BRANCH])
    check("L1-hit stall", stats.l1_hit_stall, agg.stalls[SC_L1HIT])
    check("L1-miss stall", stats.l1_miss_stall, agg.stalls[SC_L1MISS])
    agg_categories = agg.category_dict()
    for name in CATEGORY_NAMES:
        check(
            f"category[{name}]",
            stats.category_counts.get(name, 0),
            agg_categories[name],
        )

    # -- cycle conservation --------------------------------------------------
    model_drain = stats.cycles - (
        stats.busy
        + stats.fu_stall
        + stats.branch_stall
        + stats.l1_hit_stall
        + stats.l1_miss_stall
    )
    if stats.instructions and not (0.0 <= model_drain < 1.0):
        diverge(
            Divergence(
                "cycle conservation (drain outside [0,1))",
                model_drain,
                agg.drain,
            )
        )
    check("final-cycle drain", model_drain, agg.drain)

    # -- instruction conservation --------------------------------------------
    check(
        "category sum == retired",
        sum(stats.category_counts.values()),
        stats.instructions,
    )
    if tracer.functional_instructions:
        check(
            "functional == retired",
            tracer.functional_instructions,
            stats.instructions,
        )

    # -- memory conservation -------------------------------------------------
    if stats.memory is not None and agg.mem_accesses:
        check(
            "memory accesses",
            stats.memory.l1_accesses,
            agg.mem_accesses,
        )
    return report


AUDIT_SUMMARY_HEADERS = [
    "benchmark", "variant", "config", "cycles", "instructions",
    "busy", "fu stall", "branch stall", "l1 hit", "l1 miss",
    "drain", "events",
]


def audit_summary_row(
    stats: ExecutionStats, report: AuditReport, variant: str
) -> List:
    """One row of the audit-summary table (golden-fixture stable)."""
    return [
        stats.benchmark.split("[")[0],
        variant,
        stats.config_name,
        stats.cycles,
        stats.instructions,
        f"{stats.busy:.4f}",
        f"{stats.fu_stall:.4f}",
        f"{stats.branch_stall:.4f}",
        f"{stats.l1_hit_stall:.4f}",
        f"{stats.l1_miss_stall:.4f}",
        f"{report.drain:.4f}",
        report.events_seen,
    ]
