"""Structured per-cycle trace events.

One :class:`TraceEvent` is emitted per pipeline milestone of every
retired instruction (plus one per memory-hierarchy access), so a trace
is a complete, replayable record of where every cycle of a run went.
Events are plain named tuples — cheap to create in the hot loop, cheap
to serialize, and directly comparable in tests.

Field conventions by event kind:

=================  =====================  ======  ==========  ==============  =================
kind               cycle                  seq     sidx        cause           value
=================  =====================  ======  ==========  ==============  =================
``EV_FETCH``       fetch/dispatch cycle   instr#  static idx  category        aux (addr/taken)
``EV_ISSUE``       issue cycle            instr#  static idx  stall class     completion cycle
``EV_STALL_BEGIN`` first stalled cycle    instr#  static idx  stall class     0
``EV_STALL_END``   retire cycle           instr#  static idx  stall class     charged gap (cyc)
``EV_RETIRE``      retire cycle           instr#  static idx  stall class     category
``EV_MEM``         request cycle          level   byte addr   access kind     completion cycle
=================  =====================  ======  ==========  ==============  =================

``seq`` is the dynamic (program-order) instruction number; for
``EV_MEM`` it instead carries the satisfying level
(:data:`~repro.mem.system.LEVEL_L1` /
:data:`~repro.mem.system.LEVEL_L2` /
:data:`~repro.mem.system.LEVEL_MEM`).  Stall-cause codes are the
:mod:`repro.cpu.stats` stall classes (``SC_FU``, ``SC_BRANCH``,
``SC_L1HIT``, ``SC_L1MISS``); categories are the Figure 2 codes from
:mod:`repro.sim.static_info`.
"""

from __future__ import annotations

from typing import NamedTuple, Union

# Event kinds.
EV_FETCH = 0
EV_ISSUE = 1
EV_STALL_BEGIN = 2
EV_STALL_END = 3
EV_RETIRE = 4
EV_MEM = 5

EVENT_NAMES = ("fetch", "issue", "stall-begin", "stall-end", "retire", "mem")

#: Human-readable stall-cause names, indexed by the SC_* codes
#: (mirrors :data:`repro.cpu.stats.STALL_NAMES` but phrased as causes).
CAUSE_NAMES = ("FU busy", "branch", "L1 hit", "L1 miss")

#: Access-kind names for EV_MEM events (A_LOAD / A_STORE / A_PREFETCH).
MEM_KIND_NAMES = ("load", "store", "prefetch")

#: Satisfying-level names for EV_MEM events.
LEVEL_NAMES = ("L1", "L2", "mem")


class TraceEvent(NamedTuple):
    """One trace record; see the module docstring for the per-kind
    meaning of every field."""

    kind: int
    cycle: int
    seq: int
    sidx: int
    cause: int
    value: Union[int, float]

    @property
    def kind_name(self) -> str:
        return EVENT_NAMES[self.kind]

    def describe(self) -> str:
        """One-line human rendering (debugging / test failure output)."""
        if self.kind == EV_MEM:
            return (
                f"@{self.cycle:>6} mem {MEM_KIND_NAMES[self.cause]} "
                f"0x{self.sidx:x} -> {LEVEL_NAMES[self.seq]} "
                f"done @{self.value}"
            )
        return (
            f"@{self.cycle:>6} {self.kind_name:<11} #{self.seq} "
            f"i{self.sidx} cause={CAUSE_NAMES[self.cause]} "
            f"value={self.value}"
        )
