"""Pluggable trace sinks.

A sink is anything with ``emit(event)`` and ``close()``.  The
:class:`~repro.trace.tracer.Tracer` fans every expanded
:class:`~repro.trace.events.TraceEvent` out to all attached sinks:

* :class:`RingBufferSink` — bounded in-memory tail, for tests and
  interactive inspection;
* :class:`JsonlSink` — streaming JSONL file for offline analysis and
  the ``trace`` CLI report;
* :class:`~repro.trace.aggregate.StreamingAggregator` — independent
  recomputation of the run's :class:`~repro.cpu.stats.ExecutionStats`
  (lives in its own module).

JSONL format (one JSON document per line)::

    {"type": "header", "version": 1, "benchmark": ..., "config": ...,
     "width": ..., "ops": ["add", "ldb", ...]}
    [kind, cycle, seq, sidx, cause, value]
    [kind, cycle, seq, sidx, cause, value]
    ...

The header carries the static-program op names so reports can resolve
``sidx`` back to opcodes without the original program.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from .events import TraceEvent

#: Bump when the JSONL layout changes.
TRACE_FORMAT_VERSION = 1


class TraceSink:
    """Base class: the sink protocol (emit every event, then close)."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; default is a no-op."""


class NullSink(TraceSink):
    """Swallows everything (benchmarking the tracing overhead itself)."""

    def emit(self, event: TraceEvent) -> None:
        pass


class RingBufferSink(TraceSink):
    """Keeps the last ``capacity`` events plus total per-kind counts."""

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.counts: Dict[int, int] = {}
        self.total = 0

    def emit(self, event: TraceEvent) -> None:
        self._ring.append(event)
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        self.total += 1

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._ring)

    def of_kind(self, kind: int) -> List[TraceEvent]:
        return [ev for ev in self._ring if ev.kind == kind]


class JsonlSink(TraceSink):
    """Streams events to a JSONL file, header first."""

    def __init__(self, path, header: Optional[Dict] = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "w")
        self.events_written = 0
        head = {"type": "header", "version": TRACE_FORMAT_VERSION}
        head.update(header or {})
        self._file.write(json.dumps(head) + "\n")

    def emit(self, event: TraceEvent) -> None:
        self._file.write(
            json.dumps(list(event), separators=(",", ":")) + "\n"
        )
        self.events_written += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


def read_jsonl(path) -> Tuple[Dict, Iterator[TraceEvent]]:
    """Load a JSONL trace: returns ``(header, event_iterator)``.

    The iterator is lazy (traces can be large); corrupted trailing
    lines — e.g. a run killed mid-write — are skipped rather than
    raised, so partial traces remain analyzable.
    """
    f = open(path, "r")
    first = f.readline()
    try:
        header = json.loads(first)
    except json.JSONDecodeError:
        f.close()
        raise ValueError(f"{path}: not a JSONL trace (bad header line)")
    if not isinstance(header, dict) or header.get("type") != "header":
        f.close()
        raise ValueError(f"{path}: missing trace header")

    def events() -> Iterator[TraceEvent]:
        with f:
            for line in f:
                try:
                    raw = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated tail
                if isinstance(raw, list) and len(raw) == 6:
                    yield TraceEvent(*raw)

    return header, events()
