"""``repro.trace`` — cycle-attribution tracing and stall accounting.

A zero-overhead-when-disabled observability layer threaded through the
CPU pipelines (:mod:`repro.cpu.pipeline`), the functional machine
(:mod:`repro.sim.machine`) and the memory hierarchy
(:mod:`repro.mem.system`):

* :class:`Tracer` expands each retired instruction into structured
  per-cycle events (fetch / issue / stall-begin / stall-end / retire,
  with stall-cause attribution) plus one event per memory access;
* pluggable sinks consume the stream — :class:`RingBufferSink` for
  tests, :class:`JsonlSink` for offline analysis, and
  :class:`StreamingAggregator`, which independently recomputes the
  run's :class:`~repro.cpu.stats.ExecutionStats` decomposition;
* :func:`audit_run` proves, per run, that the components sum exactly
  to the totals (cycle + instruction + memory conservation) and that
  the model counters match the event-stream recomputation.

The offline report renderer lives in :mod:`repro.trace.report`
(imported lazily to keep package init cycle-free).

Usage::

    from repro.trace import Tracer, RingBufferSink, audit_run
    from repro.experiments.runner import simulate_program

    stats, _ = simulate_program(program, cpu, mem, audit=True)  # raises
                                                                # on any
                                                                # divergence
"""

from .aggregate import StreamingAggregator
from .audit import (
    AUDIT_SUMMARY_HEADERS,
    AuditError,
    AuditReport,
    Divergence,
    audit_run,
    audit_summary_row,
)
from .events import (
    CAUSE_NAMES,
    EV_FETCH,
    EV_ISSUE,
    EV_MEM,
    EV_RETIRE,
    EV_STALL_BEGIN,
    EV_STALL_END,
    EVENT_NAMES,
    TraceEvent,
)
from .sinks import (
    JsonlSink,
    NullSink,
    RingBufferSink,
    TRACE_FORMAT_VERSION,
    TraceSink,
    read_jsonl,
)
from .tracer import Tracer

__all__ = [
    "StreamingAggregator",
    "AUDIT_SUMMARY_HEADERS",
    "AuditError",
    "AuditReport",
    "Divergence",
    "audit_run",
    "audit_summary_row",
    "CAUSE_NAMES",
    "EV_FETCH",
    "EV_ISSUE",
    "EV_MEM",
    "EV_RETIRE",
    "EV_STALL_BEGIN",
    "EV_STALL_END",
    "EVENT_NAMES",
    "TraceEvent",
    "JsonlSink",
    "NullSink",
    "RingBufferSink",
    "TRACE_FORMAT_VERSION",
    "TraceSink",
    "read_jsonl",
    "Tracer",
]
