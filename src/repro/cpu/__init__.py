"""Processor timing models (Table 2)."""

from .branch import AgreePredictor, ReturnAddressStack
from .config import ProcessorConfig
from .pipeline import InOrderModel, OutOfOrderModel, make_model
from .stats import (
    ExecutionStats,
    NUM_STALL_CLASSES,
    RetireUnit,
    SC_BRANCH,
    SC_FU,
    SC_L1HIT,
    SC_L1MISS,
    STALL_NAMES,
)

__all__ = [
    "AgreePredictor",
    "ReturnAddressStack",
    "ProcessorConfig",
    "InOrderModel",
    "OutOfOrderModel",
    "make_model",
    "ExecutionStats",
    "NUM_STALL_CLASSES",
    "RetireUnit",
    "SC_BRANCH",
    "SC_FU",
    "SC_L1HIT",
    "SC_L1MISS",
    "STALL_NAMES",
]
