"""Execution statistics and the paper's stall-attribution convention.

Section 2.3.4: "At every cycle, the fraction of instructions retired
that cycle to the maximum retire rate is attributed to the busy time;
the remaining fraction is attributed as stall time to the first
instruction that could not be retired that cycle."

:class:`RetireUnit` implements exactly that in a streaming, in-order
retirement pass shared by both CPU models.  Stall classes mirror the
components of Figure 1: FU stall, branch stall (shown folded into FU
stall, as the figure has no separate branch component), L1-hit memory
stall and L1-miss memory stall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..mem.system import MemoryStats

# Stall classes.
SC_FU = 0
SC_BRANCH = 1
SC_L1HIT = 2
SC_L1MISS = 3
NUM_STALL_CLASSES = 4
STALL_NAMES = ("FU stall", "Branch stall", "L1 hit", "L1 miss")


class RetireUnit:
    """Streaming in-order retirement with per-class stall attribution."""

    def __init__(self, width: int) -> None:
        self.width = width
        self.cycle = 0          # cycle currently being filled
        self.slots = 0          # retire slots used in `cycle`
        self.retired = 0
        self.stalls = [0.0] * NUM_STALL_CLASSES

    def retire(self, complete: int, stall_class: int) -> int:
        """Retire the next instruction (program order); ``complete`` is
        the earliest cycle it can retire.  Returns its retire cycle."""
        width = self.width
        self.retired += 1
        if complete <= self.cycle:
            if self.slots < width:
                self.slots += 1
                return self.cycle
            self.cycle += 1
            self.slots = 1
            return self.cycle
        # Idle gap: the remainder of the current cycle plus any whole
        # cycles up to `complete` are stall time charged to this
        # instruction's class.
        gap = (self.width - self.slots) / width + (complete - self.cycle - 1)
        self.stalls[stall_class] += gap
        self.cycle = complete
        self.slots = 1
        return complete

    # -- checkpoint/restore -------------------------------------------------

    def snapshot(self) -> Dict:
        return {
            "width": self.width,
            "cycle": self.cycle,
            "slots": self.slots,
            "retired": self.retired,
            "stalls": list(self.stalls),
        }

    def restore(self, state: Dict) -> None:
        if state["width"] != self.width:
            raise ValueError(
                f"snapshot retire width {state['width']} != {self.width}"
            )
        stalls = state["stalls"]
        if len(stalls) != NUM_STALL_CLASSES:
            raise ValueError("snapshot stall vector size mismatch")
        self.cycle = int(state["cycle"])
        self.slots = int(state["slots"])
        self.retired = int(state["retired"])
        self.stalls[:] = [float(x) for x in stalls]

    @property
    def total_cycles(self) -> int:
        return self.cycle + 1 if self.retired else 0

    @property
    def busy_cycles(self) -> float:
        return self.retired / self.width


@dataclass
class ExecutionStats:
    """Everything one simulation run produces."""

    benchmark: str = ""
    config_name: str = ""
    instructions: int = 0
    cycles: int = 0
    busy: float = 0.0
    fu_stall: float = 0.0
    branch_stall: float = 0.0
    l1_hit_stall: float = 0.0
    l1_miss_stall: float = 0.0
    #: dynamic retired-instruction counts per Figure 2 category
    category_counts: Dict[str, int] = field(default_factory=dict)
    branches: int = 0
    mispredicts: int = 0
    memory: Optional[MemoryStats] = None

    # -- figure-1 components --------------------------------------------------

    @property
    def time_ns(self) -> float:
        """Execution time (1 GHz: cycles == nanoseconds)."""
        return float(self.cycles)

    @property
    def fu_component(self) -> float:
        """FU-stall component as shown in Figure 1 (includes branch
        bubbles, which the figure does not break out separately)."""
        return self.fu_stall + self.branch_stall

    @property
    def memory_component(self) -> float:
        return self.l1_hit_stall + self.l1_miss_stall

    @property
    def cpu_component(self) -> float:
        return self.busy + self.fu_component

    @property
    def memory_bound(self) -> bool:
        """Paper's criterion: majority of time in memory stalls."""
        return self.memory_component > 0.5 * self.cycles

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    def components(self) -> Dict[str, float]:
        """The four stacked components of Figure 1, in cycles."""
        return {
            "Busy": self.busy,
            "FU stall": self.fu_component,
            "L1 hit": self.l1_hit_stall,
            "L1 miss": self.l1_miss_stall,
        }

    def components_normalized(self, baseline_cycles: float) -> Dict[str, float]:
        """Components as percentages of a baseline run (Figure 1 style)."""
        scale = 100.0 / baseline_cycles if baseline_cycles else 0.0
        return {k: v * scale for k, v in self.components().items()}

    def speedup_over(self, other: "ExecutionStats") -> float:
        return other.cycles / self.cycles if self.cycles else float("inf")

    # -- persistence ----------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe dict for the persistent simulation-result cache."""
        return {
            "benchmark": self.benchmark,
            "config_name": self.config_name,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "busy": self.busy,
            "fu_stall": self.fu_stall,
            "branch_stall": self.branch_stall,
            "l1_hit_stall": self.l1_hit_stall,
            "l1_miss_stall": self.l1_miss_stall,
            "category_counts": dict(self.category_counts),
            "branches": self.branches,
            "mispredicts": self.mispredicts,
            "memory": self.memory.to_dict() if self.memory else None,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExecutionStats":
        from ..mem.system import MemoryStats

        data = dict(data)
        memory = data.pop("memory", None)
        return cls(
            memory=MemoryStats.from_dict(memory) if memory else None,
            **data,
        )

    def check_consistency(self, tolerance: float = 1e-6) -> None:
        """The components must add up to the cycle count (paper's
        attribution is a complete partition of execution time)."""
        total = (
            self.busy
            + self.fu_stall
            + self.branch_stall
            + self.l1_hit_stall
            + self.l1_miss_stall
        )
        if abs(total - self.cycles) > max(1.0, tolerance * self.cycles):
            raise AssertionError(
                f"component sum {total} != cycles {self.cycles} "
                f"({self.benchmark} on {self.config_name})"
            )
