"""Branch prediction: bimodal *agree* predictor + return-address stack.

Table 2: a 2K-entry bimodal agree predictor and a 32-entry RAS.  An
agree predictor stores, per entry, a 2-bit saturating counter that
predicts whether the branch will *agree* with its static bias bit (the
compiler hint the assembler sets: backward-taken / forward-not-taken by
default).  This halves destructive aliasing relative to a plain bimodal
table because most aliased branches agree with their own bias.
"""

from __future__ import annotations

from typing import Dict, List


class AgreePredictor:
    """2-bit saturating agree counters indexed by static instruction index."""

    def __init__(self, size: int = 2048) -> None:
        if size & (size - 1):
            raise ValueError("predictor size must be a power of two")
        self.size = size
        self.mask = size - 1
        # Initialized to weakly-agree so fresh entries trust the hint.
        self.table: List[int] = [2] * size
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, pc: int, hint_taken: bool, taken: bool) -> bool:
        """Record one dynamic branch; returns ``True`` on mispredict."""
        index = pc & self.mask
        counter = self.table[index]
        agree = counter >= 2
        predicted_taken = hint_taken if agree else not hint_taken
        did_agree = taken == hint_taken
        if did_agree:
            if counter < 3:
                self.table[index] = counter + 1
        else:
            if counter > 0:
                self.table[index] = counter - 1
        self.predictions += 1
        mispredicted = predicted_taken != taken
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def mispredict_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0

    # -- checkpoint/restore -------------------------------------------------

    def snapshot(self) -> Dict:
        return {
            "table": list(self.table),
            "predictions": self.predictions,
            "mispredictions": self.mispredictions,
        }

    def restore(self, state: Dict) -> None:
        table = state["table"]
        if len(table) != self.size:
            raise ValueError(
                f"snapshot predictor table has {len(table)} entries, "
                f"expected {self.size}"
            )
        self.table[:] = [int(x) for x in table]
        self.predictions = int(state["predictions"])
        self.mispredictions = int(state["mispredictions"])


class ReturnAddressStack:
    """Fixed-depth RAS; overflow wraps (oldest entry lost), underflow or
    a clobbered entry counts as a mispredicted return."""

    def __init__(self, size: int = 32) -> None:
        self.size = size
        self.stack: List[int] = []
        self.overflowed = 0

    def push(self, return_index: int) -> None:
        if len(self.stack) >= self.size:
            self.stack.pop(0)
            self.overflowed += 1
        self.stack.append(return_index)

    def pop(self, actual_target: int = None) -> bool:
        """Returns ``True`` if the return mispredicts.  When the caller
        does not know the actual target, only an empty stack (underflow
        after an overflow wiped the entry) counts as a mispredict."""
        if not self.stack:
            return True
        predicted = self.stack.pop()
        return actual_target is not None and predicted != actual_target

    # -- checkpoint/restore -------------------------------------------------

    def snapshot(self) -> Dict:
        return {"stack": list(self.stack), "overflowed": self.overflowed}

    def restore(self, state: Dict) -> None:
        stack = state["stack"]
        if len(stack) > self.size:
            raise ValueError(
                f"snapshot RAS depth {len(stack)} exceeds size {self.size}"
            )
        self.stack[:] = [int(x) for x in stack]
        self.overflowed = int(state["overflowed"])
