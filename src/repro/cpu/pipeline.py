"""In-order and out-of-order processor timing models.

Both models consume the dynamic trace produced by the functional
machine and compute per-instruction dispatch/issue/complete cycles
under the resource constraints of Table 2:

* issue width (1 or 4), with in-order or out-of-order issue,
* a 64-entry instruction window and 32-entry memory queue (OoO),
* per-class functional-unit pools with the opcode latencies,
* non-blocking loads and stores through :class:`~repro.mem.MemorySystem`,
* a bimodal agree predictor + RAS with a fetch-redirect penalty,
* at most one taken branch fetched per cycle and at most 16
  unresolved speculated branches in flight.

Retirement is in-order at the issue width in both models, with the
paper's stall-attribution convention (see :mod:`repro.cpu.stats`).

The models are deliberately recurrence-based — O(1) work per dynamic
instruction — rather than cycle-by-cycle; DESIGN.md substitution 1
discusses why this preserves the paper's measurements.

Chunked protocol (checkpointing): :meth:`simulate` is sugar for
``begin(benchmark)`` + ``feed_chunk(chunk)`` per trace chunk +
``finish()``.  Every piece of mutable loop state lives on the model
between chunks (the hot inner loops still run on local aliases, loaded
once per ~64K-event chunk and written back after — a handful of
attribute operations per chunk, nothing per instruction), so between
chunks the model is quiescent and :meth:`snapshot`/:meth:`restore`
capture or reinstate it exactly.  The chunk partition provably cannot
change the computed stats: the models process one event at a time and
chunk boundaries only trigger the cycle-budget check.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..mem.system import A_LOAD, A_PREFETCH, A_STORE, LEVEL_L1, MemorySystem
from ..sim.machine import SimulationError
from ..sim.static_info import (
    CATEGORY_NAMES,
    K_BRANCH,
    K_LOAD,
    K_PREFETCH,
    K_SIMPLE,
    K_STORE,
    K_UNCOND,
    StaticProgramInfo,
)
from ..sim.vector import VectorChunk
from .branch import AgreePredictor, ReturnAddressStack
from .config import ProcessorConfig
from .stats import (
    ExecutionStats,
    RetireUnit,
    SC_BRANCH,
    SC_FU,
    SC_L1HIT,
    SC_L1MISS,
)


class _BaseModel:
    """State and bookkeeping shared by both pipelines."""

    #: discriminator stored in snapshots so a restore into the wrong
    #: pipeline class is rejected instead of silently mixing state
    MODEL_KIND = ""

    def __init__(
        self,
        info: StaticProgramInfo,
        config: ProcessorConfig,
        memory: MemorySystem,
        tracer=None,
        max_cycles=None,
    ) -> None:
        self.info = info
        self.config = config
        self.memory = memory
        #: optional :class:`repro.trace.Tracer`; when ``None`` (the
        #: default) the models pay a single local ``is not None`` test
        #: per instruction — nothing else.
        self.tracer = tracer
        #: optional simulated-cycle watchdog, checked once per trace
        #: chunk (not per instruction — the hot loops are untouched);
        #: exceeding it raises :class:`~repro.sim.machine.SimulationError`.
        self.max_cycles = max_cycles
        self.predictor = AgreePredictor(config.predictor_size)
        self.ras = ReturnAddressStack(config.ras_size)
        self.retire = RetireUnit(config.issue_width)
        self.reg_ready: List[int] = [0] * 70
        self.fus: List[List[int]] = [
            [0] * count for count in config.fu_counts()
        ]
        self.category_counts = [0, 0, 0, 0]
        self.branches = 0
        self.mispredicts = 0
        self.begin("")
        #: per-static-instruction compiled timing closures (vector fast
        #: path); populated lazily by :meth:`_mktc` on first execution
        self._tcode: List = [None] * len(info.kind)
        #: shared mutable run state for the compiled closures — slot
        #: layout: 0 fetch_ready, 1 redirect_until, 2 prev issue (or
        #: dispatch), 3 issued (dispatched) in cycle, 4 mem_index,
        #: 5 mispredicts, 6 predictor mispredictions, 7 retire cycle,
        #: 8 retire slots, 9 retired count; the OoO model adds
        #: 10 window index and 11 branch-ring index
        self._S: List[int] = [0] * 12

    # -- chunked-run protocol -----------------------------------------------

    def begin(self, benchmark: str = "") -> None:
        """Initialize the per-run loop state (called by :meth:`simulate`
        and by the checkpoint layer before a cold or resumed run).

        Mutable *lists* are reused in place: the compiled timing
        closures of the vector fast path capture them by identity, so
        replacing them here would silently detach a reused model from
        its own state.
        """
        self._benchmark = benchmark
        memq = getattr(self, "_memq", None)
        if memq is None:
            self._memq: List[int] = [0] * self.config.mem_queue_size
        else:
            memq[:] = [0] * len(memq)
        self._mem_index = 0
        self._fetch_ready = 0
        self._redirect_until = -1

    def feed_chunk(self, chunk: list) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def finish(self) -> ExecutionStats:
        """Build the final stats after the last chunk."""
        return self._finish(self._benchmark)

    def simulate(self, chunks: Iterable[list], benchmark: str = "") -> ExecutionStats:
        self.begin(benchmark)
        feed = self.feed_chunk
        for chunk in chunks:
            feed(chunk)
        return self.finish()

    # -- checkpoint/restore -------------------------------------------------

    def snapshot(self) -> Dict:
        """Serialize all mutable model state at a chunk boundary."""
        return {
            "kind": self.MODEL_KIND,
            "reg_ready": list(self.reg_ready),
            "fus": [list(pool) for pool in self.fus],
            "category_counts": list(self.category_counts),
            "branches": self.branches,
            "mispredicts": self.mispredicts,
            "predictor": self.predictor.snapshot(),
            "ras": self.ras.snapshot(),
            "retire": self.retire.snapshot(),
            "loop": self._loop_snapshot(),
        }

    def restore(self, state: Dict) -> None:
        """Reinstate :meth:`snapshot` state (after :meth:`begin`).

        Raises ``ValueError`` on any kind/shape mismatch instead of
        restoring partially-checked state.
        """
        if state["kind"] != self.MODEL_KIND:
            raise ValueError(
                f"snapshot is for a {state['kind']!r} pipeline, "
                f"this model is {self.MODEL_KIND!r}"
            )
        reg_ready = state["reg_ready"]
        if len(reg_ready) != len(self.reg_ready):
            raise ValueError("snapshot reg-ready scoreboard size mismatch")
        pools = state["fus"]
        if len(pools) != len(self.fus) or any(
            len(saved) != len(mine) for saved, mine in zip(pools, self.fus)
        ):
            raise ValueError("snapshot FU pool shape mismatch")
        cats = state["category_counts"]
        if len(cats) != len(self.category_counts):
            raise ValueError("snapshot category-count size mismatch")
        loop = state["loop"]
        self._loop_check(loop)
        self.reg_ready[:] = [int(x) for x in reg_ready]
        for mine, saved in zip(self.fus, pools):
            mine[:] = [int(x) for x in saved]
        self.category_counts[:] = [int(x) for x in cats]
        self.branches = int(state["branches"])
        self.mispredicts = int(state["mispredicts"])
        self.predictor.restore(state["predictor"])
        self.ras.restore(state["ras"])
        self.retire.restore(state["retire"])
        self._loop_restore(loop)

    def _loop_snapshot(self) -> Dict:
        return {
            "memq": list(self._memq),
            "mem_index": self._mem_index,
            "fetch_ready": self._fetch_ready,
            "redirect_until": self._redirect_until,
        }

    def _loop_check(self, loop: Dict) -> None:
        if len(loop["memq"]) != self.config.mem_queue_size:
            raise ValueError("snapshot memory-queue size mismatch")

    def _loop_restore(self, loop: Dict) -> None:
        self._memq[:] = [int(x) for x in loop["memq"]]
        self._mem_index = int(loop["mem_index"])
        self._fetch_ready = int(loop["fetch_ready"])
        self._redirect_until = int(loop["redirect_until"])

    # -- vector fast path ----------------------------------------------------

    def _feed_vector(self, chunk: VectorChunk) -> None:
        """Consume one structure-of-arrays chunk via compiled closures.

        Per-chunk bookkeeping (category counts, branch totals,
        predictor prediction count) comes from the chunk's cached
        aggregates instead of per-event increments; per-event state
        lives in the ``_S`` slot list while the loop runs and is synced
        back to the public attributes afterwards, so snapshots taken at
        chunk boundaries are indistinguishable from the scalar path's.
        """
        counts4, nbranches, ncond = chunk.aggregates(self.info)
        cc = self.category_counts
        cc[0] += counts4[0]
        cc[1] += counts4[1]
        cc[2] += counts4[2]
        cc[3] += counts4[3]
        self.branches += nbranches
        self.predictor.predictions += ncond
        S = self._S
        self._state_to_slots(S)
        tc = self._tcode
        mk = self._mktc
        for s, a in chunk:
            f = tc[s]
            if f is None:
                f = mk(s)
            f(a)
        self._slots_to_state(S)
        if self.max_cycles is not None:
            self._check_cycle_budget()

    def _state_to_slots(self, S: List[int]) -> None:
        S[0] = self._fetch_ready
        S[1] = self._redirect_until
        S[4] = self._mem_index
        S[5] = self.mispredicts
        S[6] = self.predictor.mispredictions
        retire = self.retire
        S[7] = retire.cycle
        S[8] = retire.slots
        S[9] = retire.retired

    def _slots_to_state(self, S: List[int]) -> None:
        self._fetch_ready = S[0]
        self._redirect_until = S[1]
        self._mem_index = S[4]
        self.mispredicts = S[5]
        self.predictor.mispredictions = S[6]
        retire = self.retire
        retire.cycle = S[7]
        retire.slots = S[8]
        retire.retired = S[9]

    def _mktc(self, sidx: int):  # pragma: no cover - abstract
        raise NotImplementedError

    # -- shared internals ---------------------------------------------------

    def _check_cycle_budget(self) -> None:
        """Per-chunk watchdog: a model whose simulated clock ran past
        ``max_cycles`` is declared runaway instead of grinding on."""
        if (
            self.max_cycles is not None
            and self.retire.total_cycles > self.max_cycles
        ):
            raise SimulationError(
                f"exceeded max_cycles={self.max_cycles} "
                "(cycle-budget watchdog; retired="
                f"{self.retire.retired} instructions at cycle "
                f"{self.retire.total_cycles})"
            )

    def _finish(self, benchmark: str) -> ExecutionStats:
        stats = ExecutionStats(
            benchmark=benchmark,
            config_name=self.config.name,
            instructions=self.retire.retired,
            cycles=self.retire.total_cycles,
            busy=self.retire.busy_cycles,
            fu_stall=self.retire.stalls[SC_FU],
            branch_stall=self.retire.stalls[SC_BRANCH],
            l1_hit_stall=self.retire.stalls[SC_L1HIT],
            l1_miss_stall=self.retire.stalls[SC_L1MISS],
            category_counts={
                CATEGORY_NAMES[i]: self.category_counts[i] for i in range(4)
            },
            branches=self.branches,
            mispredicts=self.mispredicts,
            memory=self.memory.stats,
        )
        return stats


class InOrderModel(_BaseModel):
    """In-order issue (21164 / UltraSPARC-II class): issue stalls on the
    first instruction whose operands or unit are not ready."""

    MODEL_KIND = "inorder"

    def begin(self, benchmark: str = "") -> None:
        super().begin(benchmark)
        self._prev_issue = -1
        self._issued_in_cycle = 0

    def _loop_snapshot(self) -> Dict:
        loop = super()._loop_snapshot()
        loop["prev_issue"] = self._prev_issue
        loop["issued_in_cycle"] = self._issued_in_cycle
        return loop

    def _loop_restore(self, loop: Dict) -> None:
        super()._loop_restore(loop)
        self._prev_issue = int(loop["prev_issue"])
        self._issued_in_cycle = int(loop["issued_in_cycle"])

    def _state_to_slots(self, S: List[int]) -> None:
        super()._state_to_slots(S)
        S[2] = self._prev_issue
        S[3] = self._issued_in_cycle

    def _slots_to_state(self, S: List[int]) -> None:
        super()._slots_to_state(S)
        self._prev_issue = S[2]
        self._issued_in_cycle = S[3]

    def feed_chunk(self, chunk: list) -> None:
        if self.tracer is None and type(chunk) is VectorChunk:
            self._feed_vector(chunk)
            return
        info = self.info
        kind = info.kind
        fu_of = info.fu
        latency = info.latency
        pipelined = info.pipelined
        dsts = info.dst
        dst2s = info.dst2
        srcs_of = info.srcs
        cats = info.category
        hints = info.hint_taken
        is_call = info.is_call
        is_ret = info.is_ret

        config = self.config
        width = config.issue_width
        penalty = config.mispredict_penalty
        memory = self.memory
        predictor = self.predictor
        ras = self.ras
        retire = self.retire
        reg_ready = self.reg_ready
        fus = self.fus
        cat_counts = self.category_counts
        memq_size = config.mem_queue_size
        memq = self._memq
        mem_index = self._mem_index
        tracer = self.tracer

        fetch_ready = self._fetch_ready
        redirect_until = self._redirect_until
        prev_issue = self._prev_issue
        issued_in_cycle = self._issued_in_cycle
        branches = self.branches
        mispredicts = self.mispredicts

        for sidx, aux in chunk:
            k = kind[sidx]
            cat_counts[cats[sidx]] += 1

            earliest = fetch_ready
            if earliest < prev_issue:
                earliest = prev_issue
            if earliest == prev_issue and issued_in_cycle >= width:
                earliest += 1

            ready = earliest
            for s in srcs_of[sidx]:
                r = reg_ready[s]
                if r > ready:
                    ready = r

            units = fus[fu_of[sidx]]
            best = 0
            for u in range(1, len(units)):
                if units[u] < units[best]:
                    best = u
            issue = ready if ready >= units[best] else units[best]

            if k == K_LOAD or k == K_STORE or k == K_PREFETCH:
                slot = memq[mem_index % memq_size]
                if slot > issue:
                    issue = slot

            if issue > prev_issue:
                prev_issue = issue
                issued_in_cycle = 1
            else:
                issued_in_cycle += 1

            lat = latency[sidx]
            units[best] = issue + (1 if pipelined[sidx] else lat)

            cls = SC_FU
            if k == K_SIMPLE:
                complete = issue + lat
                if issue == redirect_until:
                    cls = SC_BRANCH
            elif k == K_LOAD:
                done, level = memory.access(A_LOAD, aux, issue + 1)
                complete = done
                cls = SC_L1HIT if level == LEVEL_L1 else SC_L1MISS
                memq[mem_index % memq_size] = done
                mem_index += 1
            elif k == K_STORE:
                done, _level = memory.access(A_STORE, aux, issue + 1)
                complete = issue + 1
                cls = SC_L1HIT
                memq[mem_index % memq_size] = done
                mem_index += 1
            elif k == K_PREFETCH:
                if aux:
                    done, _level = memory.access(A_PREFETCH, aux, issue + 1)
                    memq[mem_index % memq_size] = done
                    mem_index += 1
                complete = issue + 1
                cls = SC_L1HIT
            elif k == K_BRANCH:
                complete = issue + 1
                branches += 1
                cls = SC_BRANCH
                if predictor.predict_and_update(sidx, hints[sidx], aux == 1):
                    mispredicts += 1
                    redirect_until = complete + penalty
                    fetch_ready = redirect_until
                elif aux == 1 and complete > fetch_ready:
                    fetch_ready = complete
            else:  # K_UNCOND: j / call / ret
                complete = issue + 1
                branches += 1
                cls = SC_BRANCH
                mispredicted = False
                if is_call[sidx]:
                    ras.push(sidx + 1)
                elif is_ret[sidx]:
                    # RAS supplies the target; only an empty stack
                    # (after overflow) mispredicts.
                    mispredicted = ras.pop()
                if is_ret[sidx] and mispredicted:
                    mispredicts += 1
                    redirect_until = complete + penalty
                    fetch_ready = redirect_until
                elif complete > fetch_ready:
                    fetch_ready = complete

            dst = dsts[sidx]
            if dst >= 0:
                reg_ready[dst] = complete
            dst2 = dst2s[sidx]
            if dst2 >= 0:
                reg_ready[dst2] = complete

            retire_at = complete if k != K_STORE else issue + 1
            retire.retire(retire_at, cls)
            if tracer is not None:
                tracer.instr(
                    sidx, earliest, issue, complete, retire_at, cls, aux
                )

        # write the loop state back so the model is quiescent between
        # chunks (shared lists — memq, reg_ready, fus — were mutated in
        # place and need no write-back)
        self._mem_index = mem_index
        self._fetch_ready = fetch_ready
        self._redirect_until = redirect_until
        self._prev_issue = prev_issue
        self._issued_in_cycle = issued_in_cycle
        self.branches = branches
        self.mispredicts = mispredicts

        if self.max_cycles is not None:
            self._check_cycle_budget()

    def _mktc(self, sidx: int):
        """Compile one per-static-instruction timing closure (vector
        fast path).  Every per-``sidx`` constant is bound as a default
        argument; mutable run state lives in the shared ``_S`` slot
        list plus the identity-stable in-place lists (``reg_ready``,
        FU pools, ``_memq``, ``retire.stalls``, predictor table).  The
        arithmetic mirrors :meth:`feed_chunk` statement for statement —
        including float operation order — so results are bit-identical.
        """
        info = self.info
        k = info.kind[sidx]
        S = self._S
        width = self.config.issue_width
        units = self.fus[info.fu[sidx]]
        nu = len(units)
        lat = info.latency[sidx]
        badd = 1 if info.pipelined[sidx] else lat
        srcs = info.srcs[sidx]
        dst = info.dst[sidx]
        dst2 = info.dst2[sidx]
        rr = self.reg_ready
        stalls = self.retire.stalls

        if k == K_SIMPLE:

            def tc(aux, S=S, srcs=srcs, rr=rr, units=units, nu=nu,
                   lat=lat, badd=badd, dst=dst, dst2=dst2, width=width,
                   stalls=stalls):
                e = S[0]
                p = S[2]
                if e < p:
                    e = p
                if e == p and S[3] >= width:
                    e += 1
                ready = e
                for s_ in srcs:
                    r_ = rr[s_]
                    if r_ > ready:
                        ready = r_
                best = 0
                if nu > 1:
                    for u_ in range(1, nu):
                        if units[u_] < units[best]:
                            best = u_
                u = units[best]
                issue = ready if ready >= u else u
                if issue > p:
                    S[2] = issue
                    S[3] = 1
                else:
                    S[3] += 1
                units[best] = issue + badd
                complete = issue + lat
                cls = SC_BRANCH if issue == S[1] else SC_FU
                if dst >= 0:
                    rr[dst] = complete
                if dst2 >= 0:
                    rr[dst2] = complete
                S[9] += 1
                rc = S[7]
                if complete <= rc:
                    if S[8] < width:
                        S[8] += 1
                    else:
                        S[7] = rc + 1
                        S[8] = 1
                else:
                    stalls[cls] += (
                        (width - S[8]) / width + (complete - rc - 1)
                    )
                    S[7] = complete
                    S[8] = 1

        elif k == K_LOAD or k == K_STORE or k == K_PREFETCH:
            memq = self._memq
            mqs = self.config.mem_queue_size
            access = self.memory.access
            akind = (
                A_LOAD if k == K_LOAD
                else A_STORE if k == K_STORE
                else A_PREFETCH
            )

            def tc(aux, S=S, srcs=srcs, rr=rr, units=units, nu=nu,
                   badd=badd, dst=dst, dst2=dst2, width=width,
                   stalls=stalls, memq=memq, mqs=mqs, access=access,
                   akind=akind, k=k):
                e = S[0]
                p = S[2]
                if e < p:
                    e = p
                if e == p and S[3] >= width:
                    e += 1
                ready = e
                for s_ in srcs:
                    r_ = rr[s_]
                    if r_ > ready:
                        ready = r_
                best = 0
                if nu > 1:
                    for u_ in range(1, nu):
                        if units[u_] < units[best]:
                            best = u_
                u = units[best]
                issue = ready if ready >= u else u
                mi = S[4]
                slot = memq[mi % mqs]
                if slot > issue:
                    issue = slot
                if issue > p:
                    S[2] = issue
                    S[3] = 1
                else:
                    S[3] += 1
                units[best] = issue + badd
                if k == K_LOAD:
                    done, level = access(akind, aux, issue + 1)
                    complete = done
                    cls = SC_L1HIT if level == LEVEL_L1 else SC_L1MISS
                    memq[mi % mqs] = done
                    S[4] = mi + 1
                    ra = complete
                elif k == K_STORE:
                    done, _level = access(akind, aux, issue + 1)
                    complete = issue + 1
                    cls = SC_L1HIT
                    memq[mi % mqs] = done
                    S[4] = mi + 1
                    ra = issue + 1
                else:  # K_PREFETCH
                    if aux:
                        done, _level = access(akind, aux, issue + 1)
                        memq[mi % mqs] = done
                        S[4] = mi + 1
                    complete = issue + 1
                    cls = SC_L1HIT
                    ra = complete
                if dst >= 0:
                    rr[dst] = complete
                if dst2 >= 0:
                    rr[dst2] = complete
                S[9] += 1
                rc = S[7]
                if ra <= rc:
                    if S[8] < width:
                        S[8] += 1
                    else:
                        S[7] = rc + 1
                        S[8] = 1
                else:
                    stalls[cls] += (width - S[8]) / width + (ra - rc - 1)
                    S[7] = ra
                    S[8] = 1

        elif k == K_BRANCH:
            predictor = self.predictor
            table = predictor.table
            pidx = sidx & predictor.mask
            hint = info.hint_taken[sidx]
            penalty = self.config.mispredict_penalty

            def tc(aux, S=S, srcs=srcs, rr=rr, units=units, nu=nu,
                   badd=badd, dst=dst, dst2=dst2, width=width,
                   stalls=stalls, table=table, pidx=pidx, hint=hint,
                   penalty=penalty):
                e = S[0]
                p = S[2]
                if e < p:
                    e = p
                if e == p and S[3] >= width:
                    e += 1
                ready = e
                for s_ in srcs:
                    r_ = rr[s_]
                    if r_ > ready:
                        ready = r_
                best = 0
                if nu > 1:
                    for u_ in range(1, nu):
                        if units[u_] < units[best]:
                            best = u_
                u = units[best]
                issue = ready if ready >= u else u
                if issue > p:
                    S[2] = issue
                    S[3] = 1
                else:
                    S[3] += 1
                units[best] = issue + badd
                complete = issue + 1
                # inline AgreePredictor.predict_and_update (the chunk
                # prologue already counted predictions in batch)
                taken = aux == 1
                counter = table[pidx]
                predicted = hint if counter >= 2 else not hint
                if taken == hint:
                    if counter < 3:
                        table[pidx] = counter + 1
                elif counter > 0:
                    table[pidx] = counter - 1
                if predicted != taken:
                    S[6] += 1
                    S[5] += 1
                    ru = complete + penalty
                    S[1] = ru
                    S[0] = ru
                elif taken and complete > S[0]:
                    S[0] = complete
                if dst >= 0:
                    rr[dst] = complete
                if dst2 >= 0:
                    rr[dst2] = complete
                S[9] += 1
                rc = S[7]
                if complete <= rc:
                    if S[8] < width:
                        S[8] += 1
                    else:
                        S[7] = rc + 1
                        S[8] = 1
                else:
                    stalls[SC_BRANCH] += (
                        (width - S[8]) / width + (complete - rc - 1)
                    )
                    S[7] = complete
                    S[8] = 1

        else:  # K_UNCOND: j / call / ret
            ras = self.ras
            is_call = info.is_call[sidx]
            is_ret = info.is_ret[sidx]
            nxt = sidx + 1
            penalty = self.config.mispredict_penalty

            def tc(aux, S=S, srcs=srcs, rr=rr, units=units, nu=nu,
                   badd=badd, dst=dst, dst2=dst2, width=width,
                   stalls=stalls, ras=ras, is_call=is_call,
                   is_ret=is_ret, nxt=nxt, penalty=penalty):
                e = S[0]
                p = S[2]
                if e < p:
                    e = p
                if e == p and S[3] >= width:
                    e += 1
                ready = e
                for s_ in srcs:
                    r_ = rr[s_]
                    if r_ > ready:
                        ready = r_
                best = 0
                if nu > 1:
                    for u_ in range(1, nu):
                        if units[u_] < units[best]:
                            best = u_
                u = units[best]
                issue = ready if ready >= u else u
                if issue > p:
                    S[2] = issue
                    S[3] = 1
                else:
                    S[3] += 1
                units[best] = issue + badd
                complete = issue + 1
                mispredicted = False
                if is_call:
                    ras.push(nxt)
                elif is_ret:
                    mispredicted = ras.pop()
                if is_ret and mispredicted:
                    S[5] += 1
                    ru = complete + penalty
                    S[1] = ru
                    S[0] = ru
                elif complete > S[0]:
                    S[0] = complete
                if dst >= 0:
                    rr[dst] = complete
                if dst2 >= 0:
                    rr[dst2] = complete
                S[9] += 1
                rc = S[7]
                if complete <= rc:
                    if S[8] < width:
                        S[8] += 1
                    else:
                        S[7] = rc + 1
                        S[8] = 1
                else:
                    stalls[SC_BRANCH] += (
                        (width - S[8]) / width + (complete - rc - 1)
                    )
                    S[7] = complete
                    S[8] = 1

        self._tcode[sidx] = tc
        return tc


class OutOfOrderModel(_BaseModel):
    """Out-of-order issue (21264 / R10000 class): dataflow issue inside
    a 64-entry window with in-order dispatch and retirement."""

    MODEL_KIND = "ooo"

    def begin(self, benchmark: str = "") -> None:
        super().begin(benchmark)
        ring = getattr(self, "_retire_ring", None)
        if ring is None:
            self._retire_ring: List[int] = [0] * self.config.window_size
            self._branch_ring: List[int] = (
                [0] * self.config.max_speculated_branches
            )
        else:
            # reused in place — see _BaseModel.begin
            ring[:] = [0] * len(ring)
            self._branch_ring[:] = [0] * len(self._branch_ring)
        self._index = 0
        self._branch_index = 0
        self._prev_dispatch = -1
        self._dispatched_in_cycle = 0

    def _loop_snapshot(self) -> Dict:
        loop = super()._loop_snapshot()
        loop["retire_ring"] = list(self._retire_ring)
        loop["index"] = self._index
        loop["branch_ring"] = list(self._branch_ring)
        loop["branch_index"] = self._branch_index
        loop["prev_dispatch"] = self._prev_dispatch
        loop["dispatched_in_cycle"] = self._dispatched_in_cycle
        return loop

    def _loop_check(self, loop: Dict) -> None:
        super()._loop_check(loop)
        if len(loop["retire_ring"]) != self.config.window_size:
            raise ValueError("snapshot retire-ring size mismatch")
        if len(loop["branch_ring"]) != self.config.max_speculated_branches:
            raise ValueError("snapshot branch-ring size mismatch")

    def _loop_restore(self, loop: Dict) -> None:
        super()._loop_restore(loop)
        self._retire_ring[:] = [int(x) for x in loop["retire_ring"]]
        self._index = int(loop["index"])
        self._branch_ring[:] = [int(x) for x in loop["branch_ring"]]
        self._branch_index = int(loop["branch_index"])
        self._prev_dispatch = int(loop["prev_dispatch"])
        self._dispatched_in_cycle = int(loop["dispatched_in_cycle"])

    def _state_to_slots(self, S: List[int]) -> None:
        super()._state_to_slots(S)
        S[2] = self._prev_dispatch
        S[3] = self._dispatched_in_cycle
        S[10] = self._index
        S[11] = self._branch_index

    def _slots_to_state(self, S: List[int]) -> None:
        super()._slots_to_state(S)
        self._prev_dispatch = S[2]
        self._dispatched_in_cycle = S[3]
        self._index = S[10]
        self._branch_index = S[11]

    def feed_chunk(self, chunk: list) -> None:
        if self.tracer is None and type(chunk) is VectorChunk:
            self._feed_vector(chunk)
            return
        info = self.info
        kind = info.kind
        fu_of = info.fu
        latency = info.latency
        pipelined = info.pipelined
        dsts = info.dst
        dst2s = info.dst2
        srcs_of = info.srcs
        cats = info.category
        hints = info.hint_taken
        is_call = info.is_call
        is_ret = info.is_ret

        config = self.config
        width = config.issue_width
        penalty = config.mispredict_penalty
        window = config.window_size
        memory = self.memory
        predictor = self.predictor
        ras = self.ras
        retire = self.retire
        reg_ready = self.reg_ready
        fus = self.fus
        cat_counts = self.category_counts

        memq_size = config.mem_queue_size
        memq = self._memq
        mem_index = self._mem_index
        tracer = self.tracer
        retire_ring = self._retire_ring
        index = self._index
        branch_ring = self._branch_ring
        branch_index = self._branch_index

        fetch_ready = self._fetch_ready
        redirect_until = self._redirect_until
        prev_dispatch = self._prev_dispatch
        dispatched_in_cycle = self._dispatched_in_cycle
        branches = self.branches
        mispredicts = self.mispredicts

        for sidx, aux in chunk:
            k = kind[sidx]
            cat_counts[cats[sidx]] += 1

            # ---- dispatch (in order, width per cycle, window/branch caps)
            earliest = fetch_ready
            if earliest < prev_dispatch:
                earliest = prev_dispatch
            if earliest == prev_dispatch and dispatched_in_cycle >= width:
                earliest += 1
            slot_free = retire_ring[index % window]
            if slot_free > earliest:
                earliest = slot_free
            if k == K_BRANCH or k == K_UNCOND:
                bslot = branch_ring[branch_index % len(branch_ring)]
                if bslot > earliest:
                    earliest = bslot
            dispatch = earliest
            if dispatch > prev_dispatch:
                prev_dispatch = dispatch
                dispatched_in_cycle = 1
            else:
                dispatched_in_cycle += 1

            # ---- issue (dataflow)
            ready = dispatch + 1
            for s in srcs_of[sidx]:
                r = reg_ready[s]
                if r > ready:
                    ready = r
            units = fus[fu_of[sidx]]
            best = 0
            for u in range(1, len(units)):
                if units[u] < units[best]:
                    best = u
            issue = ready if ready >= units[best] else units[best]
            if k == K_LOAD or k == K_STORE or k == K_PREFETCH:
                slot = memq[mem_index % memq_size]
                if slot > issue:
                    issue = slot
            lat = latency[sidx]
            units[best] = issue + (1 if pipelined[sidx] else lat)

            # ---- complete
            cls = SC_FU
            if k == K_SIMPLE:
                complete = issue + lat
                if dispatch == redirect_until:
                    cls = SC_BRANCH
            elif k == K_LOAD:
                done, level = memory.access(A_LOAD, aux, issue + 1)
                complete = done
                cls = SC_L1HIT if level == LEVEL_L1 else SC_L1MISS
                memq[mem_index % memq_size] = done
                mem_index += 1
            elif k == K_STORE:
                done, _level = memory.access(A_STORE, aux, issue + 1)
                complete = done
                cls = SC_L1HIT
                memq[mem_index % memq_size] = done
                mem_index += 1
            elif k == K_PREFETCH:
                complete = issue + 1
                cls = SC_L1HIT
                if aux:
                    done, _level = memory.access(A_PREFETCH, aux, issue + 1)
                    memq[mem_index % memq_size] = done
                    mem_index += 1
                    complete = issue + 1
            elif k == K_BRANCH:
                complete = issue + 1
                branches += 1
                cls = SC_BRANCH
                branch_ring[branch_index % len(branch_ring)] = complete
                branch_index += 1
                if predictor.predict_and_update(sidx, hints[sidx], aux == 1):
                    mispredicts += 1
                    redirect_until = complete + penalty
                    if redirect_until > fetch_ready:
                        fetch_ready = redirect_until
                elif aux == 1 and dispatch + 1 > fetch_ready:
                    # One taken branch fetched per cycle.
                    fetch_ready = dispatch + 1
            else:  # K_UNCOND
                complete = issue + 1
                branches += 1
                cls = SC_BRANCH
                branch_ring[branch_index % len(branch_ring)] = complete
                branch_index += 1
                if is_call[sidx]:
                    ras.push(sidx + 1)
                    if dispatch + 1 > fetch_ready:
                        fetch_ready = dispatch + 1
                elif is_ret[sidx]:
                    if ras.pop():
                        mispredicts += 1
                        redirect_until = complete + penalty
                        if redirect_until > fetch_ready:
                            fetch_ready = redirect_until
                    elif dispatch + 1 > fetch_ready:
                        fetch_ready = dispatch + 1
                elif dispatch + 1 > fetch_ready:
                    fetch_ready = dispatch + 1

            dst = dsts[sidx]
            if dst >= 0:
                reg_ready[dst] = complete
            dst2 = dst2s[sidx]
            if dst2 >= 0:
                reg_ready[dst2] = complete

            # Stores retire as soon as they are issued (write-buffer
            # semantics); everything else waits for completion.
            retire_at = issue + 1 if k == K_STORE else complete
            retire_ring[index % window] = retire.retire(retire_at, cls)
            index += 1
            if tracer is not None:
                tracer.instr(
                    sidx, dispatch, issue, complete, retire_at, cls, aux
                )

        # write the loop state back so the model is quiescent between
        # chunks (the rings and queues were mutated in place)
        self._mem_index = mem_index
        self._index = index
        self._branch_index = branch_index
        self._fetch_ready = fetch_ready
        self._redirect_until = redirect_until
        self._prev_dispatch = prev_dispatch
        self._dispatched_in_cycle = dispatched_in_cycle
        self.branches = branches
        self.mispredicts = mispredicts

        if self.max_cycles is not None:
            self._check_cycle_budget()

    def _mktc(self, sidx: int):
        """Compile one per-static-instruction timing closure (vector
        fast path); see :meth:`InOrderModel._mktc`.  The OoO variant
        adds the dispatch stage (window + speculated-branch caps) and
        the retire ring, using ``_S`` slots 10/11 for the ring cursors.
        """
        info = self.info
        k = info.kind[sidx]
        S = self._S
        width = self.config.issue_width
        window = self.config.window_size
        units = self.fus[info.fu[sidx]]
        nu = len(units)
        lat = info.latency[sidx]
        badd = 1 if info.pipelined[sidx] else lat
        srcs = info.srcs[sidx]
        dst = info.dst[sidx]
        dst2 = info.dst2[sidx]
        rr = self.reg_ready
        stalls = self.retire.stalls
        retire_ring = self._retire_ring

        if k == K_SIMPLE:

            def tc(aux, S=S, srcs=srcs, rr=rr, units=units, nu=nu,
                   lat=lat, badd=badd, dst=dst, dst2=dst2, width=width,
                   stalls=stalls, ring=retire_ring, window=window):
                e = S[0]
                p = S[2]
                if e < p:
                    e = p
                if e == p and S[3] >= width:
                    e += 1
                ix = S[10]
                slot_free = ring[ix % window]
                if slot_free > e:
                    e = slot_free
                dispatch = e
                if dispatch > p:
                    S[2] = dispatch
                    S[3] = 1
                else:
                    S[3] += 1
                ready = dispatch + 1
                for s_ in srcs:
                    r_ = rr[s_]
                    if r_ > ready:
                        ready = r_
                best = 0
                if nu > 1:
                    for u_ in range(1, nu):
                        if units[u_] < units[best]:
                            best = u_
                u = units[best]
                issue = ready if ready >= u else u
                units[best] = issue + badd
                complete = issue + lat
                cls = SC_BRANCH if dispatch == S[1] else SC_FU
                if dst >= 0:
                    rr[dst] = complete
                if dst2 >= 0:
                    rr[dst2] = complete
                S[9] += 1
                rc = S[7]
                if complete <= rc:
                    if S[8] < width:
                        S[8] += 1
                        rv = rc
                    else:
                        rv = rc + 1
                        S[7] = rv
                        S[8] = 1
                else:
                    stalls[cls] += (
                        (width - S[8]) / width + (complete - rc - 1)
                    )
                    S[7] = complete
                    S[8] = 1
                    rv = complete
                ring[ix % window] = rv
                S[10] = ix + 1

        elif k == K_LOAD or k == K_STORE or k == K_PREFETCH:
            memq = self._memq
            mqs = self.config.mem_queue_size
            access = self.memory.access
            akind = (
                A_LOAD if k == K_LOAD
                else A_STORE if k == K_STORE
                else A_PREFETCH
            )

            def tc(aux, S=S, srcs=srcs, rr=rr, units=units, nu=nu,
                   badd=badd, dst=dst, dst2=dst2, width=width,
                   stalls=stalls, ring=retire_ring, window=window,
                   memq=memq, mqs=mqs, access=access, akind=akind, k=k):
                e = S[0]
                p = S[2]
                if e < p:
                    e = p
                if e == p and S[3] >= width:
                    e += 1
                ix = S[10]
                slot_free = ring[ix % window]
                if slot_free > e:
                    e = slot_free
                dispatch = e
                if dispatch > p:
                    S[2] = dispatch
                    S[3] = 1
                else:
                    S[3] += 1
                ready = dispatch + 1
                for s_ in srcs:
                    r_ = rr[s_]
                    if r_ > ready:
                        ready = r_
                best = 0
                if nu > 1:
                    for u_ in range(1, nu):
                        if units[u_] < units[best]:
                            best = u_
                u = units[best]
                issue = ready if ready >= u else u
                mi = S[4]
                slot = memq[mi % mqs]
                if slot > issue:
                    issue = slot
                units[best] = issue + badd
                if k == K_LOAD:
                    done, level = access(akind, aux, issue + 1)
                    complete = done
                    cls = SC_L1HIT if level == LEVEL_L1 else SC_L1MISS
                    memq[mi % mqs] = done
                    S[4] = mi + 1
                    ra = complete
                elif k == K_STORE:
                    done, _level = access(akind, aux, issue + 1)
                    complete = done
                    cls = SC_L1HIT
                    memq[mi % mqs] = done
                    S[4] = mi + 1
                    ra = issue + 1
                else:  # K_PREFETCH
                    complete = issue + 1
                    cls = SC_L1HIT
                    if aux:
                        done, _level = access(akind, aux, issue + 1)
                        memq[mi % mqs] = done
                        S[4] = mi + 1
                    ra = complete
                if dst >= 0:
                    rr[dst] = complete
                if dst2 >= 0:
                    rr[dst2] = complete
                S[9] += 1
                rc = S[7]
                if ra <= rc:
                    if S[8] < width:
                        S[8] += 1
                        rv = rc
                    else:
                        rv = rc + 1
                        S[7] = rv
                        S[8] = 1
                else:
                    stalls[cls] += (width - S[8]) / width + (ra - rc - 1)
                    S[7] = ra
                    S[8] = 1
                    rv = ra
                ring[ix % window] = rv
                S[10] = ix + 1

        elif k == K_BRANCH:
            predictor = self.predictor
            table = predictor.table
            pidx = sidx & predictor.mask
            hint = info.hint_taken[sidx]
            penalty = self.config.mispredict_penalty
            branch_ring = self._branch_ring
            blen = len(branch_ring)

            def tc(aux, S=S, srcs=srcs, rr=rr, units=units, nu=nu,
                   badd=badd, dst=dst, dst2=dst2, width=width,
                   stalls=stalls, ring=retire_ring, window=window,
                   bring=branch_ring, blen=blen, table=table,
                   pidx=pidx, hint=hint, penalty=penalty):
                e = S[0]
                p = S[2]
                if e < p:
                    e = p
                if e == p and S[3] >= width:
                    e += 1
                ix = S[10]
                slot_free = ring[ix % window]
                if slot_free > e:
                    e = slot_free
                bix = S[11]
                bslot = bring[bix % blen]
                if bslot > e:
                    e = bslot
                dispatch = e
                if dispatch > p:
                    S[2] = dispatch
                    S[3] = 1
                else:
                    S[3] += 1
                ready = dispatch + 1
                for s_ in srcs:
                    r_ = rr[s_]
                    if r_ > ready:
                        ready = r_
                best = 0
                if nu > 1:
                    for u_ in range(1, nu):
                        if units[u_] < units[best]:
                            best = u_
                u = units[best]
                issue = ready if ready >= u else u
                units[best] = issue + badd
                complete = issue + 1
                bring[bix % blen] = complete
                S[11] = bix + 1
                # inline AgreePredictor.predict_and_update (the chunk
                # prologue already counted predictions in batch)
                taken = aux == 1
                counter = table[pidx]
                predicted = hint if counter >= 2 else not hint
                if taken == hint:
                    if counter < 3:
                        table[pidx] = counter + 1
                elif counter > 0:
                    table[pidx] = counter - 1
                if predicted != taken:
                    S[6] += 1
                    S[5] += 1
                    ru = complete + penalty
                    S[1] = ru
                    if ru > S[0]:
                        S[0] = ru
                elif taken and dispatch + 1 > S[0]:
                    # One taken branch fetched per cycle.
                    S[0] = dispatch + 1
                if dst >= 0:
                    rr[dst] = complete
                if dst2 >= 0:
                    rr[dst2] = complete
                S[9] += 1
                rc = S[7]
                if complete <= rc:
                    if S[8] < width:
                        S[8] += 1
                        rv = rc
                    else:
                        rv = rc + 1
                        S[7] = rv
                        S[8] = 1
                else:
                    stalls[SC_BRANCH] += (
                        (width - S[8]) / width + (complete - rc - 1)
                    )
                    S[7] = complete
                    S[8] = 1
                    rv = complete
                ring[ix % window] = rv
                S[10] = ix + 1

        else:  # K_UNCOND: j / call / ret
            ras = self.ras
            is_call = info.is_call[sidx]
            is_ret = info.is_ret[sidx]
            nxt = sidx + 1
            penalty = self.config.mispredict_penalty
            branch_ring = self._branch_ring
            blen = len(branch_ring)

            def tc(aux, S=S, srcs=srcs, rr=rr, units=units, nu=nu,
                   badd=badd, dst=dst, dst2=dst2, width=width,
                   stalls=stalls, ring=retire_ring, window=window,
                   bring=branch_ring, blen=blen, ras=ras,
                   is_call=is_call, is_ret=is_ret, nxt=nxt,
                   penalty=penalty):
                e = S[0]
                p = S[2]
                if e < p:
                    e = p
                if e == p and S[3] >= width:
                    e += 1
                ix = S[10]
                slot_free = ring[ix % window]
                if slot_free > e:
                    e = slot_free
                bix = S[11]
                bslot = bring[bix % blen]
                if bslot > e:
                    e = bslot
                dispatch = e
                if dispatch > p:
                    S[2] = dispatch
                    S[3] = 1
                else:
                    S[3] += 1
                ready = dispatch + 1
                for s_ in srcs:
                    r_ = rr[s_]
                    if r_ > ready:
                        ready = r_
                best = 0
                if nu > 1:
                    for u_ in range(1, nu):
                        if units[u_] < units[best]:
                            best = u_
                u = units[best]
                issue = ready if ready >= u else u
                units[best] = issue + badd
                complete = issue + 1
                bring[bix % blen] = complete
                S[11] = bix + 1
                if is_call:
                    ras.push(nxt)
                    if dispatch + 1 > S[0]:
                        S[0] = dispatch + 1
                elif is_ret:
                    if ras.pop():
                        S[5] += 1
                        ru = complete + penalty
                        S[1] = ru
                        if ru > S[0]:
                            S[0] = ru
                    elif dispatch + 1 > S[0]:
                        S[0] = dispatch + 1
                elif dispatch + 1 > S[0]:
                    S[0] = dispatch + 1
                if dst >= 0:
                    rr[dst] = complete
                if dst2 >= 0:
                    rr[dst2] = complete
                S[9] += 1
                rc = S[7]
                if complete <= rc:
                    if S[8] < width:
                        S[8] += 1
                        rv = rc
                    else:
                        rv = rc + 1
                        S[7] = rv
                        S[8] = 1
                else:
                    stalls[SC_BRANCH] += (
                        (width - S[8]) / width + (complete - rc - 1)
                    )
                    S[7] = complete
                    S[8] = 1
                    rv = complete
                ring[ix % window] = rv
                S[10] = ix + 1

        self._tcode[sidx] = tc
        return tc


def make_model(
    info: StaticProgramInfo,
    config: ProcessorConfig,
    memory: MemorySystem,
    tracer=None,
    max_cycles=None,
):
    """Instantiate the right pipeline for ``config``."""
    cls = OutOfOrderModel if config.out_of_order else InOrderModel
    return cls(info, config, memory, tracer=tracer, max_cycles=max_cycles)
