"""In-order and out-of-order processor timing models.

Both models consume the dynamic trace produced by the functional
machine and compute per-instruction dispatch/issue/complete cycles
under the resource constraints of Table 2:

* issue width (1 or 4), with in-order or out-of-order issue,
* a 64-entry instruction window and 32-entry memory queue (OoO),
* per-class functional-unit pools with the opcode latencies,
* non-blocking loads and stores through :class:`~repro.mem.MemorySystem`,
* a bimodal agree predictor + RAS with a fetch-redirect penalty,
* at most one taken branch fetched per cycle and at most 16
  unresolved speculated branches in flight.

Retirement is in-order at the issue width in both models, with the
paper's stall-attribution convention (see :mod:`repro.cpu.stats`).

The models are deliberately recurrence-based — O(1) work per dynamic
instruction — rather than cycle-by-cycle; DESIGN.md substitution 1
discusses why this preserves the paper's measurements.

Chunked protocol (checkpointing): :meth:`simulate` is sugar for
``begin(benchmark)`` + ``feed_chunk(chunk)`` per trace chunk +
``finish()``.  Every piece of mutable loop state lives on the model
between chunks (the hot inner loops still run on local aliases, loaded
once per ~64K-event chunk and written back after — a handful of
attribute operations per chunk, nothing per instruction), so between
chunks the model is quiescent and :meth:`snapshot`/:meth:`restore`
capture or reinstate it exactly.  The chunk partition provably cannot
change the computed stats: the models process one event at a time and
chunk boundaries only trigger the cycle-budget check.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..mem.system import A_LOAD, A_PREFETCH, A_STORE, LEVEL_L1, MemorySystem
from ..sim.machine import SimulationError
from ..sim.static_info import (
    CATEGORY_NAMES,
    K_BRANCH,
    K_LOAD,
    K_PREFETCH,
    K_SIMPLE,
    K_STORE,
    K_UNCOND,
    StaticProgramInfo,
)
from .branch import AgreePredictor, ReturnAddressStack
from .config import ProcessorConfig
from .stats import (
    ExecutionStats,
    RetireUnit,
    SC_BRANCH,
    SC_FU,
    SC_L1HIT,
    SC_L1MISS,
)


class _BaseModel:
    """State and bookkeeping shared by both pipelines."""

    #: discriminator stored in snapshots so a restore into the wrong
    #: pipeline class is rejected instead of silently mixing state
    MODEL_KIND = ""

    def __init__(
        self,
        info: StaticProgramInfo,
        config: ProcessorConfig,
        memory: MemorySystem,
        tracer=None,
        max_cycles=None,
    ) -> None:
        self.info = info
        self.config = config
        self.memory = memory
        #: optional :class:`repro.trace.Tracer`; when ``None`` (the
        #: default) the models pay a single local ``is not None`` test
        #: per instruction — nothing else.
        self.tracer = tracer
        #: optional simulated-cycle watchdog, checked once per trace
        #: chunk (not per instruction — the hot loops are untouched);
        #: exceeding it raises :class:`~repro.sim.machine.SimulationError`.
        self.max_cycles = max_cycles
        self.predictor = AgreePredictor(config.predictor_size)
        self.ras = ReturnAddressStack(config.ras_size)
        self.retire = RetireUnit(config.issue_width)
        self.reg_ready: List[int] = [0] * 70
        self.fus: List[List[int]] = [
            [0] * count for count in config.fu_counts()
        ]
        self.category_counts = [0, 0, 0, 0]
        self.branches = 0
        self.mispredicts = 0
        self.begin("")

    # -- chunked-run protocol -----------------------------------------------

    def begin(self, benchmark: str = "") -> None:
        """Initialize the per-run loop state (called by :meth:`simulate`
        and by the checkpoint layer before a cold or resumed run)."""
        self._benchmark = benchmark
        self._memq: List[int] = [0] * self.config.mem_queue_size
        self._mem_index = 0
        self._fetch_ready = 0
        self._redirect_until = -1

    def feed_chunk(self, chunk: list) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def finish(self) -> ExecutionStats:
        """Build the final stats after the last chunk."""
        return self._finish(self._benchmark)

    def simulate(self, chunks: Iterable[list], benchmark: str = "") -> ExecutionStats:
        self.begin(benchmark)
        feed = self.feed_chunk
        for chunk in chunks:
            feed(chunk)
        return self.finish()

    # -- checkpoint/restore -------------------------------------------------

    def snapshot(self) -> Dict:
        """Serialize all mutable model state at a chunk boundary."""
        return {
            "kind": self.MODEL_KIND,
            "reg_ready": list(self.reg_ready),
            "fus": [list(pool) for pool in self.fus],
            "category_counts": list(self.category_counts),
            "branches": self.branches,
            "mispredicts": self.mispredicts,
            "predictor": self.predictor.snapshot(),
            "ras": self.ras.snapshot(),
            "retire": self.retire.snapshot(),
            "loop": self._loop_snapshot(),
        }

    def restore(self, state: Dict) -> None:
        """Reinstate :meth:`snapshot` state (after :meth:`begin`).

        Raises ``ValueError`` on any kind/shape mismatch instead of
        restoring partially-checked state.
        """
        if state["kind"] != self.MODEL_KIND:
            raise ValueError(
                f"snapshot is for a {state['kind']!r} pipeline, "
                f"this model is {self.MODEL_KIND!r}"
            )
        reg_ready = state["reg_ready"]
        if len(reg_ready) != len(self.reg_ready):
            raise ValueError("snapshot reg-ready scoreboard size mismatch")
        pools = state["fus"]
        if len(pools) != len(self.fus) or any(
            len(saved) != len(mine) for saved, mine in zip(pools, self.fus)
        ):
            raise ValueError("snapshot FU pool shape mismatch")
        cats = state["category_counts"]
        if len(cats) != len(self.category_counts):
            raise ValueError("snapshot category-count size mismatch")
        loop = state["loop"]
        self._loop_check(loop)
        self.reg_ready[:] = [int(x) for x in reg_ready]
        for mine, saved in zip(self.fus, pools):
            mine[:] = [int(x) for x in saved]
        self.category_counts[:] = [int(x) for x in cats]
        self.branches = int(state["branches"])
        self.mispredicts = int(state["mispredicts"])
        self.predictor.restore(state["predictor"])
        self.ras.restore(state["ras"])
        self.retire.restore(state["retire"])
        self._loop_restore(loop)

    def _loop_snapshot(self) -> Dict:
        return {
            "memq": list(self._memq),
            "mem_index": self._mem_index,
            "fetch_ready": self._fetch_ready,
            "redirect_until": self._redirect_until,
        }

    def _loop_check(self, loop: Dict) -> None:
        if len(loop["memq"]) != self.config.mem_queue_size:
            raise ValueError("snapshot memory-queue size mismatch")

    def _loop_restore(self, loop: Dict) -> None:
        self._memq[:] = [int(x) for x in loop["memq"]]
        self._mem_index = int(loop["mem_index"])
        self._fetch_ready = int(loop["fetch_ready"])
        self._redirect_until = int(loop["redirect_until"])

    # -- shared internals ---------------------------------------------------

    def _check_cycle_budget(self) -> None:
        """Per-chunk watchdog: a model whose simulated clock ran past
        ``max_cycles`` is declared runaway instead of grinding on."""
        if (
            self.max_cycles is not None
            and self.retire.total_cycles > self.max_cycles
        ):
            raise SimulationError(
                f"exceeded max_cycles={self.max_cycles} "
                "(cycle-budget watchdog; retired="
                f"{self.retire.retired} instructions at cycle "
                f"{self.retire.total_cycles})"
            )

    def _finish(self, benchmark: str) -> ExecutionStats:
        stats = ExecutionStats(
            benchmark=benchmark,
            config_name=self.config.name,
            instructions=self.retire.retired,
            cycles=self.retire.total_cycles,
            busy=self.retire.busy_cycles,
            fu_stall=self.retire.stalls[SC_FU],
            branch_stall=self.retire.stalls[SC_BRANCH],
            l1_hit_stall=self.retire.stalls[SC_L1HIT],
            l1_miss_stall=self.retire.stalls[SC_L1MISS],
            category_counts={
                CATEGORY_NAMES[i]: self.category_counts[i] for i in range(4)
            },
            branches=self.branches,
            mispredicts=self.mispredicts,
            memory=self.memory.stats,
        )
        return stats


class InOrderModel(_BaseModel):
    """In-order issue (21164 / UltraSPARC-II class): issue stalls on the
    first instruction whose operands or unit are not ready."""

    MODEL_KIND = "inorder"

    def begin(self, benchmark: str = "") -> None:
        super().begin(benchmark)
        self._prev_issue = -1
        self._issued_in_cycle = 0

    def _loop_snapshot(self) -> Dict:
        loop = super()._loop_snapshot()
        loop["prev_issue"] = self._prev_issue
        loop["issued_in_cycle"] = self._issued_in_cycle
        return loop

    def _loop_restore(self, loop: Dict) -> None:
        super()._loop_restore(loop)
        self._prev_issue = int(loop["prev_issue"])
        self._issued_in_cycle = int(loop["issued_in_cycle"])

    def feed_chunk(self, chunk: list) -> None:
        info = self.info
        kind = info.kind
        fu_of = info.fu
        latency = info.latency
        pipelined = info.pipelined
        dsts = info.dst
        dst2s = info.dst2
        srcs_of = info.srcs
        cats = info.category
        hints = info.hint_taken
        is_call = info.is_call
        is_ret = info.is_ret

        config = self.config
        width = config.issue_width
        penalty = config.mispredict_penalty
        memory = self.memory
        predictor = self.predictor
        ras = self.ras
        retire = self.retire
        reg_ready = self.reg_ready
        fus = self.fus
        cat_counts = self.category_counts
        memq_size = config.mem_queue_size
        memq = self._memq
        mem_index = self._mem_index
        tracer = self.tracer

        fetch_ready = self._fetch_ready
        redirect_until = self._redirect_until
        prev_issue = self._prev_issue
        issued_in_cycle = self._issued_in_cycle

        for sidx, aux in chunk:
            k = kind[sidx]
            cat_counts[cats[sidx]] += 1

            earliest = fetch_ready
            if earliest < prev_issue:
                earliest = prev_issue
            if earliest == prev_issue and issued_in_cycle >= width:
                earliest += 1

            ready = earliest
            for s in srcs_of[sidx]:
                r = reg_ready[s]
                if r > ready:
                    ready = r

            units = fus[fu_of[sidx]]
            best = 0
            for u in range(1, len(units)):
                if units[u] < units[best]:
                    best = u
            issue = ready if ready >= units[best] else units[best]

            if k == K_LOAD or k == K_STORE or k == K_PREFETCH:
                slot = memq[mem_index % memq_size]
                if slot > issue:
                    issue = slot

            if issue > prev_issue:
                prev_issue = issue
                issued_in_cycle = 1
            else:
                issued_in_cycle += 1

            lat = latency[sidx]
            units[best] = issue + (1 if pipelined[sidx] else lat)

            cls = SC_FU
            if k == K_SIMPLE:
                complete = issue + lat
                if issue == redirect_until:
                    cls = SC_BRANCH
            elif k == K_LOAD:
                done, level = memory.access(A_LOAD, aux, issue + 1)
                complete = done
                cls = SC_L1HIT if level == LEVEL_L1 else SC_L1MISS
                memq[mem_index % memq_size] = done
                mem_index += 1
            elif k == K_STORE:
                done, _level = memory.access(A_STORE, aux, issue + 1)
                complete = issue + 1
                cls = SC_L1HIT
                memq[mem_index % memq_size] = done
                mem_index += 1
            elif k == K_PREFETCH:
                if aux:
                    done, _level = memory.access(A_PREFETCH, aux, issue + 1)
                    memq[mem_index % memq_size] = done
                    mem_index += 1
                complete = issue + 1
                cls = SC_L1HIT
            elif k == K_BRANCH:
                complete = issue + 1
                self.branches += 1
                cls = SC_BRANCH
                if predictor.predict_and_update(sidx, hints[sidx], aux == 1):
                    self.mispredicts += 1
                    redirect_until = complete + penalty
                    fetch_ready = redirect_until
                elif aux == 1 and complete > fetch_ready:
                    fetch_ready = complete
            else:  # K_UNCOND: j / call / ret
                complete = issue + 1
                self.branches += 1
                cls = SC_BRANCH
                mispredicted = False
                if is_call[sidx]:
                    ras.push(sidx + 1)
                elif is_ret[sidx]:
                    # RAS supplies the target; only an empty stack
                    # (after overflow) mispredicts.
                    mispredicted = ras.pop()
                if is_ret[sidx] and mispredicted:
                    self.mispredicts += 1
                    redirect_until = complete + penalty
                    fetch_ready = redirect_until
                elif complete > fetch_ready:
                    fetch_ready = complete

            dst = dsts[sidx]
            if dst >= 0:
                reg_ready[dst] = complete
            dst2 = dst2s[sidx]
            if dst2 >= 0:
                reg_ready[dst2] = complete

            retire_at = complete if k != K_STORE else issue + 1
            retire.retire(retire_at, cls)
            if tracer is not None:
                tracer.instr(
                    sidx, earliest, issue, complete, retire_at, cls, aux
                )

        # write the loop state back so the model is quiescent between
        # chunks (shared lists — memq, reg_ready, fus — were mutated in
        # place and need no write-back)
        self._mem_index = mem_index
        self._fetch_ready = fetch_ready
        self._redirect_until = redirect_until
        self._prev_issue = prev_issue
        self._issued_in_cycle = issued_in_cycle

        if self.max_cycles is not None:
            self._check_cycle_budget()


class OutOfOrderModel(_BaseModel):
    """Out-of-order issue (21264 / R10000 class): dataflow issue inside
    a 64-entry window with in-order dispatch and retirement."""

    MODEL_KIND = "ooo"

    def begin(self, benchmark: str = "") -> None:
        super().begin(benchmark)
        self._retire_ring: List[int] = [0] * self.config.window_size
        self._index = 0
        self._branch_ring: List[int] = (
            [0] * self.config.max_speculated_branches
        )
        self._branch_index = 0
        self._prev_dispatch = -1
        self._dispatched_in_cycle = 0

    def _loop_snapshot(self) -> Dict:
        loop = super()._loop_snapshot()
        loop["retire_ring"] = list(self._retire_ring)
        loop["index"] = self._index
        loop["branch_ring"] = list(self._branch_ring)
        loop["branch_index"] = self._branch_index
        loop["prev_dispatch"] = self._prev_dispatch
        loop["dispatched_in_cycle"] = self._dispatched_in_cycle
        return loop

    def _loop_check(self, loop: Dict) -> None:
        super()._loop_check(loop)
        if len(loop["retire_ring"]) != self.config.window_size:
            raise ValueError("snapshot retire-ring size mismatch")
        if len(loop["branch_ring"]) != self.config.max_speculated_branches:
            raise ValueError("snapshot branch-ring size mismatch")

    def _loop_restore(self, loop: Dict) -> None:
        super()._loop_restore(loop)
        self._retire_ring[:] = [int(x) for x in loop["retire_ring"]]
        self._index = int(loop["index"])
        self._branch_ring[:] = [int(x) for x in loop["branch_ring"]]
        self._branch_index = int(loop["branch_index"])
        self._prev_dispatch = int(loop["prev_dispatch"])
        self._dispatched_in_cycle = int(loop["dispatched_in_cycle"])

    def feed_chunk(self, chunk: list) -> None:
        info = self.info
        kind = info.kind
        fu_of = info.fu
        latency = info.latency
        pipelined = info.pipelined
        dsts = info.dst
        dst2s = info.dst2
        srcs_of = info.srcs
        cats = info.category
        hints = info.hint_taken
        is_call = info.is_call
        is_ret = info.is_ret

        config = self.config
        width = config.issue_width
        penalty = config.mispredict_penalty
        window = config.window_size
        memory = self.memory
        predictor = self.predictor
        ras = self.ras
        retire = self.retire
        reg_ready = self.reg_ready
        fus = self.fus
        cat_counts = self.category_counts

        memq_size = config.mem_queue_size
        memq = self._memq
        mem_index = self._mem_index
        tracer = self.tracer
        retire_ring = self._retire_ring
        index = self._index
        branch_ring = self._branch_ring
        branch_index = self._branch_index

        fetch_ready = self._fetch_ready
        redirect_until = self._redirect_until
        prev_dispatch = self._prev_dispatch
        dispatched_in_cycle = self._dispatched_in_cycle

        for sidx, aux in chunk:
            k = kind[sidx]
            cat_counts[cats[sidx]] += 1

            # ---- dispatch (in order, width per cycle, window/branch caps)
            earliest = fetch_ready
            if earliest < prev_dispatch:
                earliest = prev_dispatch
            if earliest == prev_dispatch and dispatched_in_cycle >= width:
                earliest += 1
            slot_free = retire_ring[index % window]
            if slot_free > earliest:
                earliest = slot_free
            if k == K_BRANCH or k == K_UNCOND:
                bslot = branch_ring[branch_index % len(branch_ring)]
                if bslot > earliest:
                    earliest = bslot
            dispatch = earliest
            if dispatch > prev_dispatch:
                prev_dispatch = dispatch
                dispatched_in_cycle = 1
            else:
                dispatched_in_cycle += 1

            # ---- issue (dataflow)
            ready = dispatch + 1
            for s in srcs_of[sidx]:
                r = reg_ready[s]
                if r > ready:
                    ready = r
            units = fus[fu_of[sidx]]
            best = 0
            for u in range(1, len(units)):
                if units[u] < units[best]:
                    best = u
            issue = ready if ready >= units[best] else units[best]
            if k == K_LOAD or k == K_STORE or k == K_PREFETCH:
                slot = memq[mem_index % memq_size]
                if slot > issue:
                    issue = slot
            lat = latency[sidx]
            units[best] = issue + (1 if pipelined[sidx] else lat)

            # ---- complete
            cls = SC_FU
            if k == K_SIMPLE:
                complete = issue + lat
                if dispatch == redirect_until:
                    cls = SC_BRANCH
            elif k == K_LOAD:
                done, level = memory.access(A_LOAD, aux, issue + 1)
                complete = done
                cls = SC_L1HIT if level == LEVEL_L1 else SC_L1MISS
                memq[mem_index % memq_size] = done
                mem_index += 1
            elif k == K_STORE:
                done, _level = memory.access(A_STORE, aux, issue + 1)
                complete = done
                cls = SC_L1HIT
                memq[mem_index % memq_size] = done
                mem_index += 1
            elif k == K_PREFETCH:
                complete = issue + 1
                cls = SC_L1HIT
                if aux:
                    done, _level = memory.access(A_PREFETCH, aux, issue + 1)
                    memq[mem_index % memq_size] = done
                    mem_index += 1
                    complete = issue + 1
            elif k == K_BRANCH:
                complete = issue + 1
                self.branches += 1
                cls = SC_BRANCH
                branch_ring[branch_index % len(branch_ring)] = complete
                branch_index += 1
                if predictor.predict_and_update(sidx, hints[sidx], aux == 1):
                    self.mispredicts += 1
                    redirect_until = complete + penalty
                    if redirect_until > fetch_ready:
                        fetch_ready = redirect_until
                elif aux == 1 and dispatch + 1 > fetch_ready:
                    # One taken branch fetched per cycle.
                    fetch_ready = dispatch + 1
            else:  # K_UNCOND
                complete = issue + 1
                self.branches += 1
                cls = SC_BRANCH
                branch_ring[branch_index % len(branch_ring)] = complete
                branch_index += 1
                if is_call[sidx]:
                    ras.push(sidx + 1)
                    if dispatch + 1 > fetch_ready:
                        fetch_ready = dispatch + 1
                elif is_ret[sidx]:
                    if ras.pop():
                        self.mispredicts += 1
                        redirect_until = complete + penalty
                        if redirect_until > fetch_ready:
                            fetch_ready = redirect_until
                    elif dispatch + 1 > fetch_ready:
                        fetch_ready = dispatch + 1
                elif dispatch + 1 > fetch_ready:
                    fetch_ready = dispatch + 1

            dst = dsts[sidx]
            if dst >= 0:
                reg_ready[dst] = complete
            dst2 = dst2s[sidx]
            if dst2 >= 0:
                reg_ready[dst2] = complete

            # Stores retire as soon as they are issued (write-buffer
            # semantics); everything else waits for completion.
            retire_at = issue + 1 if k == K_STORE else complete
            retire_ring[index % window] = retire.retire(retire_at, cls)
            index += 1
            if tracer is not None:
                tracer.instr(
                    sidx, dispatch, issue, complete, retire_at, cls, aux
                )

        # write the loop state back so the model is quiescent between
        # chunks (the rings and queues were mutated in place)
        self._mem_index = mem_index
        self._index = index
        self._branch_index = branch_index
        self._fetch_ready = fetch_ready
        self._redirect_until = redirect_until
        self._prev_dispatch = prev_dispatch
        self._dispatched_in_cycle = dispatched_in_cycle

        if self.max_cycles is not None:
            self._check_cycle_budget()


def make_model(
    info: StaticProgramInfo,
    config: ProcessorConfig,
    memory: MemorySystem,
    tracer=None,
    max_cycles=None,
):
    """Instantiate the right pipeline for ``config``."""
    cls = OutOfOrderModel if config.out_of_order else InOrderModel
    return cls(info, config, memory, tracer=tracer, max_cycles=max_cycles)
