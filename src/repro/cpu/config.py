"""Processor parameters (Table 2 of the paper).

Functional-unit latencies live on the opcodes (:mod:`repro.isa.opcodes`)
since they are properties of the operations; this module holds the
machine-organization knobs.  When studying a 1-way issue processor the
paper scales the number of functional units to one of each type
(Section 2.2.1) — :func:`ProcessorConfig.inorder_1way` does the same.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Dict

from ..sim.static_info import FU_ADDR, FU_FP, FU_INT, FU_VADD, FU_VMUL, NUM_FU_TYPES


@dataclass(frozen=True)
class ProcessorConfig:
    """One processor configuration (1 GHz; one cycle = 1 ns)."""

    name: str = "ooo-4way"
    out_of_order: bool = True
    issue_width: int = 4
    window_size: int = 64
    mem_queue_size: int = 32

    #: bimodal agree predictor entries
    predictor_size: int = 2048
    ras_size: int = 32
    max_speculated_branches: int = 16
    #: fetch-redirect bubble on a mispredicted branch
    mispredict_penalty: int = 7

    int_alu_units: int = 2
    fp_units: int = 2
    addr_units: int = 2
    vis_add_units: int = 1
    vis_mul_units: int = 1

    def fu_counts(self) -> list:
        counts = [0] * NUM_FU_TYPES
        counts[FU_INT] = self.int_alu_units
        counts[FU_FP] = self.fp_units
        counts[FU_ADDR] = self.addr_units
        counts[FU_VADD] = self.vis_add_units
        counts[FU_VMUL] = self.vis_mul_units
        return counts

    def to_dict(self) -> Dict:
        """All fields, JSON-safe, suitable for round-tripping."""
        return asdict(self)

    def content_key(self) -> str:
        """Canonical JSON of every timing-relevant field.

        Used by the persistent simulation-result cache: two configs with
        the same content key are guaranteed to produce identical timing.
        The ``name`` label is deliberately *included* because experiment
        tables key rows on it; renaming a config must not alias another
        cache entry's row labels.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict) -> "ProcessorConfig":
        return cls(**data)

    # -- the three architecture variants of Figure 1 -----------------------

    @classmethod
    def inorder_1way(cls) -> "ProcessorConfig":
        """Base machine: single-issue in-order, one FU of each type."""
        return cls(
            name="in-order 1-way",
            out_of_order=False,
            issue_width=1,
            int_alu_units=1,
            fp_units=1,
            addr_units=1,
            vis_add_units=1,
            vis_mul_units=1,
        )

    @classmethod
    def inorder_4way(cls) -> "ProcessorConfig":
        """4-way in-order (21164 / UltraSPARC-II class)."""
        return cls(name="in-order 4-way", out_of_order=False)

    @classmethod
    def ooo_4way(cls) -> "ProcessorConfig":
        """4-way out-of-order (21264 / R10000 class): the default."""
        return cls(name="out-of-order 4-way")

    # -- intermediate/extreme points of the Table 2 design space -----------

    @classmethod
    def inorder_2way(cls) -> "ProcessorConfig":
        """2-way in-order: midpoint between the base and the 21164 class."""
        return cls(
            name="in-order 2-way",
            out_of_order=False,
            issue_width=2,
            window_size=32,
            int_alu_units=1,
            fp_units=1,
            addr_units=1,
        )

    @classmethod
    def ooo_2way(cls) -> "ProcessorConfig":
        """2-way out-of-order with a half-size window."""
        return cls(
            name="out-of-order 2-way",
            issue_width=2,
            window_size=32,
            int_alu_units=1,
            fp_units=1,
            addr_units=1,
        )

    @classmethod
    def ooo_8way(cls) -> "ProcessorConfig":
        """8-way out-of-order: the aggressive end of the design space."""
        return cls(
            name="out-of-order 8-way",
            issue_width=8,
            window_size=128,
            mem_queue_size=64,
            int_alu_units=4,
            fp_units=4,
            addr_units=4,
            vis_add_units=2,
            vis_mul_units=2,
        )

    def renamed(self, name: str) -> "ProcessorConfig":
        return replace(self, name=name)


#: The six-point config grid the static-bounds bracketing suite sweeps:
#: the paper's three Figure 1 machines plus the 2-way pair and an 8-way
#: extreme, covering both pipelines and a 4x spread in issue width.
PAPER_CONFIGS = (
    ProcessorConfig.inorder_1way(),
    ProcessorConfig.inorder_2way(),
    ProcessorConfig.inorder_4way(),
    ProcessorConfig.ooo_2way(),
    ProcessorConfig.ooo_4way(),
    ProcessorConfig.ooo_8way(),
)
