"""Client for the simulation service: library + scripted CLI.

The library half (:class:`ServeClient`) is a thin asyncio wrapper over
the JSONL protocol: one connection, a background reader task that
routes incoming messages to their request by ``id``, and coroutine
helpers for each request type.  Requests pipeline freely — hundreds may
be in flight on one connection, which is how the load tests reach
thousands of concurrent requests without thousands of sockets.

The CLI half (``python -m repro.serve.client``) is the scripted client
the CI smoke job and EXPERIMENTS.md workflows use::

    python -m repro.serve.client --port 7421 submit \
        --benchmarks addition,thresh --variants scalar,vis \
        --scale tiny --repeat 3 \
        --expect simulated=4 --expect coalesced=8

Exit codes: 0 success; 1 at least one point failed; 4 an ``--expect``
assertion failed; 7 transport trouble (connection refused, rejected
busy after retries, torn stream).
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .protocol import (
    LANES,
    MAX_LINE_BYTES,
    NAMED_CONFIGS,
    NAMED_SCALES,
    decode,
    encode,
)

EXIT_OK = 0
EXIT_POINT_FAILED = 1
EXIT_EXPECT_FAILED = 4
EXIT_TRANSPORT = 7

#: sentinel queued to every pending request when the connection drops
_CLOSED = object()


class ServeConnectionError(ConnectionError):
    """The server connection failed or tore mid-request."""


class ServeBusy(RuntimeError):
    """The server rejected the request (admission control) and retries
    were exhausted (or disabled)."""

    def __init__(self, queue_depth: int, limit: int) -> None:
        super().__init__(f"server busy (queue {queue_depth}/{limit})")
        self.queue_depth = queue_depth
        self.limit = limit


@dataclass
class SubmitOutcome:
    """Everything a ``submit`` request produced."""

    rid: str
    ok: int = 0
    failed: int = 0
    lane: str = "normal"
    sources: Dict[str, int] = field(default_factory=dict)
    #: per-index stats dicts (None where the point failed)
    results: List[Optional[Dict]] = field(default_factory=list)
    #: per-index failure dicts (None where the point succeeded)
    failures: List[Optional[Dict]] = field(default_factory=list)
    #: per-index resolution source (cache / coalesced / simulated)
    point_sources: List[Optional[str]] = field(default_factory=list)
    progress: List[Dict] = field(default_factory=list)
    server: Dict = field(default_factory=dict)


@dataclass
class FigureOutcome:
    rid: str
    figure: str = ""
    headers: List[str] = field(default_factory=list)
    rows: List[List] = field(default_factory=list)
    ok: int = 0
    failed: int = 0
    sources: Dict[str, int] = field(default_factory=dict)
    server: Dict = field(default_factory=dict)


class ServeClient:
    """One pipelined connection to a :class:`~repro.serve.server.
    BatchServer`.  Use as an async context manager::

        async with ServeClient(port=7421) as client:
            outcome = await client.submit(points)
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        retry_busy: int = 0,
        retry_backoff_s: float = 0.25,
    ) -> None:
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.retry_busy = retry_busy
        self.retry_backoff_s = retry_backoff_s
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._queues: Dict[str, asyncio.Queue] = {}
        self._ids = itertools.count(1)
        self._write_lock = asyncio.Lock()
        self._closed = False

    async def __aenter__(self) -> "ServeClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def connect(self) -> None:
        try:
            if self.unix_path:
                self._reader, self._writer = await asyncio.open_unix_connection(
                    self.unix_path, limit=MAX_LINE_BYTES
                )
            else:
                if self.port is None:
                    raise ValueError("port (or unix_path) is required")
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port, limit=MAX_LINE_BYTES
                )
        except OSError as exc:
            raise ServeConnectionError(f"cannot connect: {exc}") from None
        self._reader_task = asyncio.create_task(self._read_loop())

    async def close(self) -> None:
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                message = decode(line)
                rid = message.get("id")
                queue = self._queues.get(rid)
                if queue is not None:
                    queue.put_nowait(message)
                # messages for unknown/finished ids (e.g. a global
                # error with id null) are dropped; the transport-level
                # sentinel below covers torn connections
        except asyncio.CancelledError:
            raise
        except Exception:
            pass
        finally:
            for queue in self._queues.values():
                queue.put_nowait(_CLOSED)

    async def _send(self, message: Dict) -> None:
        if self._writer is None:
            raise ServeConnectionError("not connected")
        try:
            async with self._write_lock:
                self._writer.write(encode(message))
                await self._writer.drain()
        except (ConnectionError, RuntimeError) as exc:
            raise ServeConnectionError(f"send failed: {exc}") from None

    def _new_request(self) -> Tuple[str, asyncio.Queue]:
        rid = f"r{next(self._ids)}"
        queue: asyncio.Queue = asyncio.Queue()
        self._queues[rid] = queue
        return rid, queue

    async def _next(self, queue: asyncio.Queue) -> Dict:
        message = await queue.get()
        if message is _CLOSED:
            raise ServeConnectionError("connection closed mid-request")
        if message.get("type") == "error":
            raise RuntimeError(
                f"server error [{message.get('code')}]: "
                f"{message.get('message')}"
            )
        return message

    # -- request types ------------------------------------------------------

    async def submit(
        self,
        points: Sequence[Dict],
        priority: str = "normal",
        progress: bool = False,
    ) -> SubmitOutcome:
        """Submit a grid of point specs; returns when every point is
        resolved.  Retries ``busy`` rejections ``retry_busy`` times
        with backoff, then raises :class:`ServeBusy`."""
        attempt = 0
        while True:
            try:
                return await self._submit_once(points, priority, progress)
            except ServeBusy:
                attempt += 1
                if attempt > self.retry_busy:
                    raise
                await asyncio.sleep(self.retry_backoff_s * attempt)

    async def _submit_once(
        self, points: Sequence[Dict], priority: str, progress: bool
    ) -> SubmitOutcome:
        rid, queue = self._new_request()
        try:
            await self._send({
                "type": "submit", "id": rid, "points": list(points),
                "priority": priority, "progress": progress,
            })
            outcome = SubmitOutcome(rid=rid)
            n = len(points)
            outcome.results = [None] * n
            outcome.failures = [None] * n
            outcome.point_sources = [None] * n
            while True:
                message = await self._next(queue)
                mtype = message["type"]
                if mtype == "busy":
                    raise ServeBusy(
                        message.get("queue_depth", -1),
                        message.get("limit", -1),
                    )
                if mtype == "ack":
                    outcome.lane = message.get("lane", priority)
                elif mtype == "result":
                    index = message["index"]
                    outcome.results[index] = message["stats"]
                    outcome.point_sources[index] = message["source"]
                elif mtype == "point_failed":
                    index = message["index"]
                    outcome.failures[index] = message["failure"]
                elif mtype == "progress":
                    outcome.progress.append(message)
                elif mtype == "done":
                    outcome.ok = message["ok"]
                    outcome.failed = message["failed"]
                    outcome.sources = message.get("sources", {})
                    outcome.server = message.get("server", {})
                    return outcome
        finally:
            self._queues.pop(rid, None)

    async def figure(
        self,
        name: str,
        scale: Optional[str] = None,
        benchmarks: Optional[Sequence[str]] = None,
        priority: str = "normal",
    ) -> FigureOutcome:
        rid, queue = self._new_request()
        try:
            message: Dict = {"type": "figure", "id": rid, "figure": name,
                             "priority": priority}
            if scale is not None:
                message["scale"] = scale
            if benchmarks is not None:
                message["benchmarks"] = list(benchmarks)
            await self._send(message)
            outcome = FigureOutcome(rid=rid, figure=name)
            while True:
                reply = await self._next(queue)
                mtype = reply["type"]
                if mtype == "busy":
                    raise ServeBusy(
                        reply.get("queue_depth", -1), reply.get("limit", -1)
                    )
                if mtype == "table":
                    outcome.headers = reply["headers"]
                    outcome.rows = reply["rows"]
                elif mtype == "done":
                    outcome.ok = reply["ok"]
                    outcome.failed = reply["failed"]
                    outcome.sources = reply.get("sources", {})
                    outcome.server = reply.get("server", {})
                    return outcome
        finally:
            self._queues.pop(rid, None)

    async def stats(self) -> Dict:
        rid, queue = self._new_request()
        try:
            await self._send({"type": "stats", "id": rid})
            return (await self._next(queue))["server"]
        finally:
            self._queues.pop(rid, None)

    async def ping(self) -> bool:
        rid, queue = self._new_request()
        try:
            await self._send({"type": "ping", "id": rid})
            return (await self._next(queue))["type"] == "pong"
        finally:
            self._queues.pop(rid, None)

    async def shutdown(self) -> None:
        rid, queue = self._new_request()
        try:
            await self._send({"type": "shutdown", "id": rid})
            await self._next(queue)  # bye
        finally:
            self._queues.pop(rid, None)


# ---------------------------------------------------------------------------
# Scripted CLI
# ---------------------------------------------------------------------------


def _build_points(args) -> List[Dict]:
    benchmarks = [b for b in args.benchmarks.split(",") if b]
    variants = [v for v in args.variants.split(",") if v]
    configs = [c for c in args.configs.split(",") if c]
    return [
        {"benchmark": b, "variant": v, "cpu": c, "scale": args.scale}
        for b in benchmarks for v in variants for c in configs
    ]


def _parse_expects(pairs: List[str]) -> Dict[str, int]:
    expects = {}
    for pair in pairs or []:
        key, _, value = pair.partition("=")
        try:
            expects[key] = int(value)
        except ValueError:
            raise SystemExit(f"--expect wants key=int, got {pair!r}")
    return expects


def _check_expects(expects: Dict[str, int], tallies: Dict[str, int]) -> int:
    status = EXIT_OK
    for key, want in sorted(expects.items()):
        got = tallies.get(key, 0)
        if got != want:
            print(f"EXPECT FAILED: {key}: want {want}, got {got}",
                  file=sys.stderr)
            status = EXIT_EXPECT_FAILED
        else:
            print(f"expect ok: {key}={got}")
    return status


async def _run_submit(args) -> int:
    points = _build_points(args)
    if not points:
        raise SystemExit("empty grid: check --benchmarks/--variants/--configs")
    async with ServeClient(
        host=args.host, port=args.port, unix_path=args.unix,
        retry_busy=args.retry_busy,
    ) as client:
        outcomes = await asyncio.gather(*[
            client.submit(points, priority=args.priority,
                          progress=args.progress)
            for _ in range(args.repeat)
        ])
    tallies: Dict[str, int] = {}
    failed = 0
    for outcome in outcomes:
        failed += outcome.failed
        tallies["ok"] = tallies.get("ok", 0) + outcome.ok
        for key, count in outcome.sources.items():
            tallies[key] = tallies.get(key, 0) + count
    print(
        f"submitted {args.repeat} x {len(points)} points: "
        + json.dumps(tallies, sort_keys=True)
    )
    if args.json:
        print(json.dumps(
            [o.results for o in outcomes], sort_keys=True
        ))
    status = _check_expects(_parse_expects(args.expect), tallies)
    if failed and status == EXIT_OK:
        for outcome in outcomes:
            for failure in outcome.failures:
                if failure:
                    print(f"point failed: {failure.get('label')}: "
                          f"{failure.get('status')}", file=sys.stderr)
        status = EXIT_POINT_FAILED
    return status


async def _run_figure(args) -> int:
    async with ServeClient(
        host=args.host, port=args.port, unix_path=args.unix,
        retry_busy=args.retry_busy,
    ) as client:
        outcome = await client.figure(
            args.figure, scale=args.scale,
            benchmarks=args.benchmarks.split(",") if args.benchmarks else None,
            priority=args.priority,
        )
    width = max((len(h) for h in outcome.headers), default=8) + 2
    print("  ".join(h.ljust(width) for h in outcome.headers))
    for row in outcome.rows:
        print("  ".join(str(cell).ljust(width) for cell in row))
    tallies = dict(outcome.sources)
    tallies["ok"] = outcome.ok
    print(f"figure {args.figure}: " + json.dumps(tallies, sort_keys=True))
    status = _check_expects(_parse_expects(args.expect), tallies)
    if outcome.failed and status == EXIT_OK:
        status = EXIT_POINT_FAILED
    return status


async def _run_stats(args) -> int:
    async with ServeClient(
        host=args.host, port=args.port, unix_path=args.unix
    ) as client:
        snapshot = await client.stats()
    print(json.dumps(snapshot, indent=2, sort_keys=True))
    return _check_expects(_parse_expects(args.expect), snapshot)


async def _run_ping(args) -> int:
    async with ServeClient(
        host=args.host, port=args.port, unix_path=args.unix
    ) as client:
        return EXIT_OK if await client.ping() else EXIT_TRANSPORT


async def _run_shutdown(args) -> int:
    async with ServeClient(
        host=args.host, port=args.port, unix_path=args.unix
    ) as client:
        await client.shutdown()
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.serve.client",
        description="Scripted client for the simulation service",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--unix", default=None,
                        help="unix socket path (instead of host/port)")
    parser.add_argument("--retry-busy", type=int, default=0, metavar="N",
                        help="retry busy rejections up to N times")
    sub = parser.add_subparsers(dest="command", required=True)

    p_submit = sub.add_parser("submit", help="submit a grid of points")
    p_submit.add_argument("--benchmarks", default="addition")
    p_submit.add_argument("--variants", default="scalar")
    p_submit.add_argument("--configs", default="ooo-4way",
                          help=f"named configs: {', '.join(NAMED_CONFIGS)}")
    p_submit.add_argument("--scale", default="tiny",
                          choices=sorted(NAMED_SCALES))
    p_submit.add_argument("--priority", default="normal", choices=LANES)
    p_submit.add_argument("--repeat", type=int, default=1,
                          help="send N identical concurrent requests")
    p_submit.add_argument("--progress", action="store_true")
    p_submit.add_argument("--expect", action="append", metavar="KEY=N",
                          help="assert a tally (cache/coalesced/simulated/"
                               "failed/ok) summed across repeats")
    p_submit.add_argument("--json", action="store_true",
                          help="also print raw per-request results")
    p_submit.set_defaults(run=_run_submit)

    p_figure = sub.add_parser("figure", help="request a rendered figure")
    p_figure.add_argument("figure")
    p_figure.add_argument("--scale", default=None, choices=sorted(NAMED_SCALES))
    p_figure.add_argument("--benchmarks", default=None)
    p_figure.add_argument("--priority", default="normal", choices=LANES)
    p_figure.add_argument("--expect", action="append", metavar="KEY=N")
    p_figure.set_defaults(run=_run_figure)

    p_stats = sub.add_parser("stats", help="print server counters")
    p_stats.add_argument("--expect", action="append", metavar="KEY=N")
    p_stats.set_defaults(run=_run_stats)

    sub.add_parser("ping", help="liveness probe").set_defaults(run=_run_ping)
    sub.add_parser("shutdown", help="graceful server shutdown").set_defaults(
        run=_run_shutdown
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(args.run(args))
    except (ServeConnectionError, ServeBusy) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_TRANSPORT


if __name__ == "__main__":
    raise SystemExit(main())
