"""Client for the simulation service: library + scripted CLI.

The library half (:class:`ServeClient`) is a thin asyncio wrapper over
the JSONL protocol: one connection, a background reader task that
routes incoming messages to their request by ``id``, and coroutine
helpers for each request type.  Requests pipeline freely — hundreds may
be in flight on one connection, which is how the load tests reach
thousands of concurrent requests without thousands of sockets.

The CLI half (``python -m repro.serve.client``) is the scripted client
the CI smoke job and EXPERIMENTS.md workflows use::

    python -m repro.serve.client --port 7421 submit \
        --benchmarks addition,thresh --variants scalar,vis \
        --scale tiny --repeat 3 \
        --expect simulated=4 --expect coalesced=8

With ``--reconnect N`` (library: ``ServeClient(reconnect=N)``) a
transport fault mid-request no longer strands in-flight waiters: the
client reconnects with bounded deterministic jittered backoff
(:class:`~repro.experiments.faults.RetryPolicy`) and idempotently
resubmits every pending request — the server's simcache dedup and
request coalescing make a resubmitted request converge on the same
bytes without duplicate simulation.  ``--retry-busy`` backoff uses the
same policy (deterministic jitter, capped), and the exit diagnostics
carry the attempt counter.

Exit codes: 0 success; 1 at least one point failed; 4 an ``--expect``
assertion failed; 7 transport trouble (connection refused, rejected
busy after retries, torn stream after reconnect attempts).
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import logging
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..experiments.faults import RetryPolicy
from .protocol import (
    LANES,
    MAX_LINE_BYTES,
    NAMED_CONFIGS,
    NAMED_SCALES,
    ProtocolError,
    decode,
    encode,
)

log = logging.getLogger("repro.serve.client")

EXIT_OK = 0
EXIT_POINT_FAILED = 1
EXIT_EXPECT_FAILED = 4
EXIT_TRANSPORT = 7

#: sentinel queued to every pending request when the connection drops
#: for good (reconnect disabled or exhausted)
_CLOSED = object()


class ServeConnectionError(ConnectionError):
    """The server connection failed or tore mid-request."""


class ServeBusy(RuntimeError):
    """The server rejected the request (admission control) and retries
    were exhausted (or disabled).  ``attempts`` counts the submits that
    were rejected (surfaced in the CLI's exit diagnostics)."""

    def __init__(self, queue_depth: int, limit: int) -> None:
        super().__init__(f"server busy (queue {queue_depth}/{limit})")
        self.queue_depth = queue_depth
        self.limit = limit
        self.attempts = 1


@dataclass
class SubmitOutcome:
    """Everything a ``submit`` request produced."""

    rid: str
    ok: int = 0
    failed: int = 0
    lane: str = "normal"
    sources: Dict[str, int] = field(default_factory=dict)
    #: per-index stats dicts (None where the point failed)
    results: List[Optional[Dict[str, Any]]] = field(default_factory=list)
    #: per-index failure dicts (None where the point succeeded)
    failures: List[Optional[Dict[str, Any]]] = field(default_factory=list)
    #: per-index resolution source (cache / coalesced / simulated)
    point_sources: List[Optional[str]] = field(default_factory=list)
    progress: List[Dict[str, Any]] = field(default_factory=list)
    server: Dict[str, Any] = field(default_factory=dict)


@dataclass
class FigureOutcome:
    rid: str
    figure: str = ""
    headers: List[str] = field(default_factory=list)
    rows: List[List[Any]] = field(default_factory=list)
    ok: int = 0
    failed: int = 0
    sources: Dict[str, int] = field(default_factory=dict)
    server: Dict[str, Any] = field(default_factory=dict)


class ServeClient:
    """One pipelined connection to a :class:`~repro.serve.server.
    BatchServer`.  Use as an async context manager::

        async with ServeClient(port=7421) as client:
            outcome = await client.submit(points)
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        retry_busy: int = 0,
        retry_backoff_s: float = 0.25,
        reconnect: int = 0,
        reconnect_backoff_s: float = 0.05,
    ) -> None:
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.retry_busy = retry_busy
        self.retry_backoff_s = retry_backoff_s
        #: transport-fault reconnect attempts per outage (0 = fail fast)
        self.reconnect = reconnect
        #: deterministic jittered backoff, shared with the batch
        #: stack's retry machinery
        self._backoff = RetryPolicy(
            max_retries=max(reconnect, retry_busy),
            base_delay=reconnect_backoff_s,
            max_delay=2.0,
        )
        self._busy_backoff = RetryPolicy(
            max_retries=retry_busy,
            base_delay=retry_backoff_s,
            max_delay=5.0,
        )
        #: healed connections (observability + test assertions)
        self.reconnects = 0
        #: undecodable server lines seen (logged, then surfaced as a
        #: transport fault — never silently swallowed)
        self.decode_errors = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task[None]] = None
        self._queues: Dict[str, "asyncio.Queue[Any]"] = {}
        #: rid -> request message, for idempotent resubmission after a
        #: reconnect (removed when the request completes)
        self._sent: Dict[str, Dict[str, Any]] = {}
        self._ids = itertools.count(1)
        self._write_lock = asyncio.Lock()
        self._closed = False
        #: the connection is gone for good (reconnect exhausted)
        self._dead = False
        self._healed = asyncio.Event()
        self._healed.set()

    async def __aenter__(self) -> "ServeClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    async def _open_transport(self) -> None:
        try:
            if self.unix_path:
                self._reader, self._writer = await asyncio.open_unix_connection(
                    self.unix_path, limit=MAX_LINE_BYTES
                )
            else:
                if self.port is None:
                    raise ValueError("port (or unix_path) is required")
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port, limit=MAX_LINE_BYTES
                )
        except OSError as exc:
            raise ServeConnectionError(f"cannot connect: {exc}") from None

    async def connect(self) -> None:
        """Open the connection (with bounded backoff when
        ``reconnect`` is enabled — a client started against a server
        that is still restarting rides out the gap)."""
        attempt = 0
        while True:
            try:
                await self._open_transport()
                break
            except ServeConnectionError:
                attempt += 1
                if attempt > self.reconnect:
                    raise
                await asyncio.sleep(self._backoff.delay("connect", attempt))
        self._reader_task = asyncio.create_task(self._read_loop())

    async def close(self) -> None:
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass

    # -- transport: pump / heal / resubmit ----------------------------------

    async def _read_loop(self) -> None:
        """Route incoming messages until the transport faults; then try
        to heal (bounded reconnect + idempotent resubmission) and keep
        pumping.  Only when healing is disabled or exhausted do pending
        requests see the ``_CLOSED`` sentinel."""
        try:
            while True:
                fault = await self._pump()
                if self._closed:
                    break
                if not self.reconnect or not await self._heal(fault):
                    break
        except asyncio.CancelledError:
            raise
        finally:
            self._dead = True
            self._healed.set()  # unblock senders waiting on a heal
            for queue in self._queues.values():
                queue.put_nowait(_CLOSED)

    async def _pump(self) -> str:
        """Read + route messages until the connection faults.  Returns
        the fault description.  Decode failures are logged and treated
        as faults (framing is lost), never silently swallowed."""
        while True:
            reader = self._reader
            if reader is None:
                return "not connected"
            try:
                line = await reader.readline()
            except (ConnectionError, OSError, ValueError) as exc:
                return f"read failed: {exc}"
            if not line:
                return "server closed the connection"
            try:
                message = decode(line)
            except ProtocolError as exc:
                self.decode_errors += 1
                log.error(
                    "undecodable server message (%.60r): %s", line, exc
                )
                return f"undecodable message: {exc}"
            rid = message.get("id")
            queue = self._queues.get(rid)
            if queue is not None:
                queue.put_nowait(message)
            # messages for unknown/finished ids (e.g. a global error
            # with id null, or replays of a completed request after a
            # reconnect) are dropped

    async def _heal(self, fault: str) -> bool:
        """Bounded reconnect with deterministic jittered backoff, then
        idempotent resubmission of every pending request (the server's
        dedup/coalescing guarantees byte-identical convergence)."""
        self._healed.clear()
        for attempt in range(1, self.reconnect + 1):
            await asyncio.sleep(self._backoff.delay("reconnect", attempt))
            if self._closed:
                return False
            try:
                await self._open_transport()
            except ServeConnectionError as exc:
                log.warning(
                    "reconnect %d/%d failed: %s",
                    attempt, self.reconnect, exc,
                )
                continue
            self.reconnects += 1
            log.warning(
                "reconnected after %s (attempt %d); resubmitting %d "
                "pending request(s)", fault, attempt, len(self._sent),
            )
            await self._resubmit_pending()
            self._healed.set()
            return True
        log.error(
            "connection lost (%s); gave up after %d reconnect attempt(s)",
            fault, self.reconnect,
        )
        return False

    async def _resubmit_pending(self) -> None:
        for _rid, message in sorted(self._sent.items()):
            try:
                await self._send_raw(message)
            except ServeConnectionError:
                return  # the next pump/heal cycle takes over

    async def _send_raw(self, message: Dict[str, Any]) -> None:
        if self._writer is None:
            raise ServeConnectionError("not connected")
        try:
            async with self._write_lock:
                self._writer.write(encode(message))
                await self._writer.drain()
        except (ConnectionError, OSError, RuntimeError) as exc:
            raise ServeConnectionError(f"send failed: {exc}") from None

    async def _send(self, message: Dict[str, Any]) -> None:
        rid = message.get("id")
        if isinstance(rid, str):
            self._sent[rid] = message
        try:
            await self._send_raw(message)
        except ServeConnectionError:
            if not self.reconnect or self._closed or self._dead:
                raise
            # the read loop owns healing; once healed, the pending-set
            # resubmission (which includes this message) has gone out
            try:
                await asyncio.wait_for(self._healed.wait(), timeout=60.0)
            except asyncio.TimeoutError:
                raise ServeConnectionError(
                    "send failed and reconnect never completed"
                ) from None
            if self._dead:
                raise ServeConnectionError(
                    "send failed and reconnect was exhausted"
                ) from None

    def _new_request(self) -> Tuple[str, "asyncio.Queue[Any]"]:
        rid = f"r{next(self._ids)}"
        queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self._queues[rid] = queue
        return rid, queue

    def _finish_request(self, rid: str) -> None:
        self._queues.pop(rid, None)
        self._sent.pop(rid, None)

    async def _next(self, queue: "asyncio.Queue[Any]") -> Dict[str, Any]:
        message = await queue.get()
        if message is _CLOSED:
            raise ServeConnectionError("connection closed mid-request")
        if message.get("type") == "error":
            raise RuntimeError(
                f"server error [{message.get('code')}]: "
                f"{message.get('message')}"
            )
        return message

    # -- request types ------------------------------------------------------

    async def submit(
        self,
        points: Sequence[Dict[str, Any]],
        priority: str = "normal",
        progress: bool = False,
    ) -> SubmitOutcome:
        """Submit a grid of point specs; returns when every point is
        resolved.  Retries ``busy`` rejections ``retry_busy`` times with
        deterministic jittered backoff (the batch stack's
        :class:`RetryPolicy`), then raises :class:`ServeBusy` carrying
        the attempt counter."""
        attempt = 0
        while True:
            try:
                return await self._submit_once(points, priority, progress)
            except ServeBusy as busy:
                attempt += 1
                busy.attempts = attempt
                if attempt > self.retry_busy:
                    raise
                await asyncio.sleep(self._busy_backoff.delay("busy", attempt))

    async def _submit_once(
        self,
        points: Sequence[Dict[str, Any]],
        priority: str,
        progress: bool,
    ) -> SubmitOutcome:
        rid, queue = self._new_request()
        try:
            await self._send({
                "type": "submit", "id": rid, "points": list(points),
                "priority": priority, "progress": progress,
            })
            outcome = SubmitOutcome(rid=rid)
            n = len(points)
            outcome.results = [None] * n
            outcome.failures = [None] * n
            outcome.point_sources = [None] * n
            while True:
                message = await self._next(queue)
                mtype = message["type"]
                if mtype == "busy":
                    raise ServeBusy(
                        message.get("queue_depth", -1),
                        message.get("limit", -1),
                    )
                if mtype == "ack":
                    outcome.lane = message.get("lane", priority)
                elif mtype == "result":
                    index = message["index"]
                    outcome.results[index] = message["stats"]
                    outcome.point_sources[index] = message["source"]
                elif mtype == "point_failed":
                    index = message["index"]
                    outcome.failures[index] = message["failure"]
                elif mtype == "progress":
                    outcome.progress.append(message)
                elif mtype == "done":
                    outcome.ok = message["ok"]
                    outcome.failed = message["failed"]
                    outcome.sources = message.get("sources", {})
                    outcome.server = message.get("server", {})
                    return outcome
        finally:
            self._finish_request(rid)

    async def figure(
        self,
        name: str,
        scale: Optional[str] = None,
        benchmarks: Optional[Sequence[str]] = None,
        priority: str = "normal",
    ) -> FigureOutcome:
        attempt = 0
        while True:
            try:
                return await self._figure_once(
                    name, scale, benchmarks, priority
                )
            except ServeBusy as busy:
                attempt += 1
                busy.attempts = attempt
                if attempt > self.retry_busy:
                    raise
                await asyncio.sleep(self._busy_backoff.delay("busy", attempt))

    async def _figure_once(
        self,
        name: str,
        scale: Optional[str],
        benchmarks: Optional[Sequence[str]],
        priority: str,
    ) -> FigureOutcome:
        rid, queue = self._new_request()
        try:
            message: Dict[str, Any] = {"type": "figure", "id": rid,
                                       "figure": name, "priority": priority}
            if scale is not None:
                message["scale"] = scale
            if benchmarks is not None:
                message["benchmarks"] = list(benchmarks)
            await self._send(message)
            outcome = FigureOutcome(rid=rid, figure=name)
            while True:
                reply = await self._next(queue)
                mtype = reply["type"]
                if mtype == "busy":
                    raise ServeBusy(
                        reply.get("queue_depth", -1), reply.get("limit", -1)
                    )
                if mtype == "table":
                    outcome.headers = reply["headers"]
                    outcome.rows = reply["rows"]
                elif mtype == "done":
                    outcome.ok = reply["ok"]
                    outcome.failed = reply["failed"]
                    outcome.sources = reply.get("sources", {})
                    outcome.server = reply.get("server", {})
                    return outcome
        finally:
            self._finish_request(rid)

    async def stats(self) -> Dict[str, Any]:
        rid, queue = self._new_request()
        try:
            await self._send({"type": "stats", "id": rid})
            snapshot: Dict[str, Any] = (await self._next(queue))["server"]
            return snapshot
        finally:
            self._finish_request(rid)

    async def health(self) -> Dict[str, Any]:
        """Supervised health plane: journal lag, pool generation and
        stall state, quarantine counts, per-lane queue depths."""
        rid, queue = self._new_request()
        try:
            await self._send({"type": "health", "id": rid})
            health: Dict[str, Any] = (await self._next(queue))["health"]
            return health
        finally:
            self._finish_request(rid)

    async def ping(self) -> bool:
        rid, queue = self._new_request()
        try:
            await self._send({"type": "ping", "id": rid})
            return bool((await self._next(queue))["type"] == "pong")
        finally:
            self._finish_request(rid)

    async def shutdown(self) -> None:
        rid, queue = self._new_request()
        try:
            await self._send({"type": "shutdown", "id": rid})
            await self._next(queue)  # bye
        finally:
            self._finish_request(rid)


# ---------------------------------------------------------------------------
# Scripted CLI
# ---------------------------------------------------------------------------


def _build_points(args: argparse.Namespace) -> List[Dict[str, Any]]:
    benchmarks = [b for b in args.benchmarks.split(",") if b]
    variants = [v for v in args.variants.split(",") if v]
    configs = [c for c in args.configs.split(",") if c]
    return [
        {"benchmark": b, "variant": v, "cpu": c, "scale": args.scale}
        for b in benchmarks for v in variants for c in configs
    ]


def _parse_expects(pairs: Optional[List[str]]) -> Dict[str, int]:
    expects: Dict[str, int] = {}
    for pair in pairs or []:
        key, _, value = pair.partition("=")
        try:
            expects[key] = int(value)
        except ValueError:
            raise SystemExit(f"--expect wants key=int, got {pair!r}")
    return expects


def _check_expects(expects: Dict[str, int], tallies: Dict[str, int]) -> int:
    status = EXIT_OK
    for key, want in sorted(expects.items()):
        got = tallies.get(key, 0)
        if got != want:
            print(f"EXPECT FAILED: {key}: want {want}, got {got}",
                  file=sys.stderr)
            status = EXIT_EXPECT_FAILED
        else:
            print(f"expect ok: {key}={got}")
    return status


def _client_for(args: argparse.Namespace) -> ServeClient:
    return ServeClient(
        host=args.host, port=args.port, unix_path=args.unix,
        retry_busy=args.retry_busy, retry_backoff_s=args.retry_backoff,
        reconnect=args.reconnect,
    )


async def _run_submit(args: argparse.Namespace) -> int:
    points = _build_points(args)
    if not points:
        raise SystemExit("empty grid: check --benchmarks/--variants/--configs")
    async with _client_for(args) as client:
        outcomes = await asyncio.gather(*[
            client.submit(points, priority=args.priority,
                          progress=args.progress)
            for _ in range(args.repeat)
        ])
    tallies: Dict[str, int] = {}
    failed = 0
    for outcome in outcomes:
        failed += outcome.failed
        tallies["ok"] = tallies.get("ok", 0) + outcome.ok
        for key, count in outcome.sources.items():
            tallies[key] = tallies.get(key, 0) + count
    print(
        f"submitted {args.repeat} x {len(points)} points: "
        + json.dumps(tallies, sort_keys=True)
    )
    if args.json:
        print(json.dumps(
            [o.results for o in outcomes], sort_keys=True
        ))
    status = _check_expects(_parse_expects(args.expect), tallies)
    if failed and status == EXIT_OK:
        for outcome in outcomes:
            for failure in outcome.failures:
                if failure:
                    print(f"point failed: {failure.get('label')}: "
                          f"{failure.get('status')}", file=sys.stderr)
        status = EXIT_POINT_FAILED
    return status


async def _run_figure(args: argparse.Namespace) -> int:
    async with _client_for(args) as client:
        outcome = await client.figure(
            args.figure, scale=args.scale,
            benchmarks=args.benchmarks.split(",") if args.benchmarks else None,
            priority=args.priority,
        )
    width = max((len(h) for h in outcome.headers), default=8) + 2
    print("  ".join(h.ljust(width) for h in outcome.headers))
    for row in outcome.rows:
        print("  ".join(str(cell).ljust(width) for cell in row))
    tallies = dict(outcome.sources)
    tallies["ok"] = outcome.ok
    print(f"figure {args.figure}: " + json.dumps(tallies, sort_keys=True))
    status = _check_expects(_parse_expects(args.expect), tallies)
    if outcome.failed and status == EXIT_OK:
        status = EXIT_POINT_FAILED
    return status


async def _run_stats(args: argparse.Namespace) -> int:
    async with _client_for(args) as client:
        snapshot = await client.stats()
    print(json.dumps(snapshot, indent=2, sort_keys=True))
    return _check_expects(_parse_expects(args.expect), snapshot)


def _flatten(tree: Dict[str, Any], prefix: str = "") -> Dict[str, int]:
    """Dotted-key int leaves of a nested dict (``pool.generation`` ...)
    so ``health --expect`` can assert on any counter."""
    flat: Dict[str, int] = {}
    for key, value in tree.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, f"{name}."))
        elif isinstance(value, bool):
            flat[name] = int(value)
        elif isinstance(value, int):
            flat[name] = value
    return flat


async def _run_health(args: argparse.Namespace) -> int:
    async with _client_for(args) as client:
        health = await client.health()
    print(json.dumps(health, indent=2, sort_keys=True))
    return _check_expects(_parse_expects(args.expect), _flatten(health))


async def _run_ping(args: argparse.Namespace) -> int:
    async with _client_for(args) as client:
        return EXIT_OK if await client.ping() else EXIT_TRANSPORT


async def _run_shutdown(args: argparse.Namespace) -> int:
    async with _client_for(args) as client:
        await client.shutdown()
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.serve.client",
        description="Scripted client for the simulation service",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--unix", default=None,
                        help="unix socket path (instead of host/port)")
    parser.add_argument("--retry-busy", type=int, default=0, metavar="N",
                        help="retry busy rejections up to N times "
                             "(deterministic jittered backoff)")
    parser.add_argument("--retry-backoff", type=float, default=0.25,
                        metavar="S", help="base busy-retry delay (doubles "
                        "per attempt, jittered, capped)")
    parser.add_argument("--reconnect", type=int, default=0, metavar="N",
                        help="on a transport fault, reconnect up to N times "
                             "and idempotently resubmit pending requests")
    sub = parser.add_subparsers(dest="command", required=True)

    p_submit = sub.add_parser("submit", help="submit a grid of points")
    p_submit.add_argument("--benchmarks", default="addition")
    p_submit.add_argument("--variants", default="scalar")
    p_submit.add_argument("--configs", default="ooo-4way",
                          help=f"named configs: {', '.join(NAMED_CONFIGS)}")
    p_submit.add_argument("--scale", default="tiny",
                          choices=sorted(NAMED_SCALES))
    p_submit.add_argument("--priority", default="normal", choices=LANES)
    p_submit.add_argument("--repeat", type=int, default=1,
                          help="send N identical concurrent requests")
    p_submit.add_argument("--progress", action="store_true")
    p_submit.add_argument("--expect", action="append", metavar="KEY=N",
                          help="assert a tally (cache/coalesced/simulated/"
                               "failed/ok) summed across repeats")
    p_submit.add_argument("--json", action="store_true",
                          help="also print raw per-request results")
    p_submit.set_defaults(run=_run_submit)

    p_figure = sub.add_parser("figure", help="request a rendered figure")
    p_figure.add_argument("figure")
    p_figure.add_argument("--scale", default=None, choices=sorted(NAMED_SCALES))
    p_figure.add_argument("--benchmarks", default=None)
    p_figure.add_argument("--priority", default="normal", choices=LANES)
    p_figure.add_argument("--expect", action="append", metavar="KEY=N")
    p_figure.set_defaults(run=_run_figure)

    p_stats = sub.add_parser("stats", help="print server counters")
    p_stats.add_argument("--expect", action="append", metavar="KEY=N")
    p_stats.set_defaults(run=_run_stats)

    p_health = sub.add_parser(
        "health", help="print the supervised health plane"
    )
    p_health.add_argument("--expect", action="append", metavar="KEY=N",
                          help="assert a dotted health counter, e.g. "
                               "quarantine.poisoned=0")
    p_health.set_defaults(run=_run_health)

    sub.add_parser("ping", help="liveness probe").set_defaults(run=_run_ping)
    sub.add_parser("shutdown", help="graceful server shutdown").set_defaults(
        run=_run_shutdown
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        status: int = asyncio.run(args.run(args))
        return status
    except ServeBusy as exc:
        print(
            f"error: {exc} after {exc.attempts} attempt(s) "
            f"(--retry-busy {args.retry_busy})",
            file=sys.stderr,
        )
        return EXIT_TRANSPORT
    except ServeConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_TRANSPORT


if __name__ == "__main__":
    raise SystemExit(main())
