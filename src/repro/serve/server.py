"""Simulation-as-a-service: the asyncio batch server.

The batch stack (PRs 1–6) runs one grid per process.  This module
turns it into a long-lived local service that many concurrent clients
share, layering four serving concerns over the same worker entry point
(:func:`repro.experiments.parallel._simulate_point`) the CLI uses:

* **Dedup** — every request is resolved against the content-addressed
  simcache first; a point anyone ever simulated is a cache hit for
  every client forever.  Cross-process fill claims
  (:meth:`~repro.experiments.parallel.DiskCache.try_claim`) extend the
  guarantee across *servers* sharing one cache directory: a key being
  filled elsewhere is awaited, not recomputed.

* **Coalescing** — identical in-flight requests share one computation.
  The first request for a cold key creates the in-flight future and is
  charged ``simulated``; every other request awaiting that key —
  whether from the same client, another connection, or a duplicate
  index inside one grid — is charged ``coalesced`` and receives the
  byte-identical result.  A point is never simulated twice.

* **Admission control + priority lanes** — cache misses pass through a
  bounded miss queue (``queue_limit``); a request whose new misses do
  not fit is rejected atomically with a ``busy`` message (nothing is
  enqueued) so clients back off instead of piling latency onto
  everyone.  Cache hits bypass admission entirely — a fully-cached
  ("hot") figure or grid is served even when the miss queue is
  saturated.  Misses are scheduled high-lane-first.

* **Preemptible workers** — misses run on a fleet of spawn-start
  worker processes with cycle-level checkpointing armed.  A worker
  SIGKILLed mid-point costs a pool rebuild and a retry that resumes
  from the point's newest snapshot; a server SIGTERM checkpoints
  in-flight work the same way (snapshots land at every interval
  boundary, and the unfinished remainder is preempted), so a restarted
  server completes re-requested grids from snapshots instead of from
  cycle zero.

* **Crash-only operation** — every admitted miss is journaled (fsynced
  append to ``<state-dir>/serve_journal.jsonl``, see
  :mod:`repro.serve.journal`) *before* the client is acked, and its
  terminal status (with checkpoint provenance) replaces the record when
  it resolves.  On startup the server replays the journal: unfinished
  points whose results landed in the simcache before the kill are
  terminalized without re-simulation, the rest are re-enqueued as
  *orphan* misses that resume from their newest snapshots — so a
  SIGKILLed server restarted against the same state dir completes the
  original workload byte-identically with zero duplicate simulations.

* **Poison-point quarantine** — each worker drops a pid-named marker
  file (``<state-dir>/serve_running/<pid>.json``) naming the point it
  is simulating.  When the pool breaks, the dead pids' markers
  attribute the loss to the exact culprit point(s); innocent in-flight
  neighbours are retried without a strike.  A point attributed
  ``poison_threshold`` consecutive worker deaths terminates as
  ``poisoned`` (journaled with diagnostics, excluded from future
  admission until ``cache gc --release-poisoned``) instead of
  crash-looping the fleet forever.

* **Supervised health plane** — the ``health`` protocol verb reports
  journal lag, pool generation, quarantine count and per-lane queue
  depths; a stall watchdog (``--stall-grace``) detects a wedged pool
  (pending misses but no retire progress) and proactively rebuilds it,
  attributing a strike to every point that was running at stall time.

Results stream back as JSONL messages (see :mod:`repro.serve.protocol`)
tagged with the request id, so one connection can pipeline hundreds of
requests.  Byte-determinism is inherited from the batch stack: every
client asking for the same point receives the same
:class:`~repro.cpu.stats.ExecutionStats` payload, bit for bit.
"""

from __future__ import annotations

import asyncio
import functools
import json
import logging
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..checkpoint import DEFAULT_CHECKPOINT_KEEP
from ..checkpoint.snapshot import snapshot_progress
from ..cpu.stats import ExecutionStats
from ..experiments import figures
from ..experiments.faults import (
    STATUS_POISONED,
    STATUS_TIMEOUT,
    STATUS_WORKER_LOST,
    TRANSIENT_STATUSES,
    PointFailure,
    RetryPolicy,
    classify,
)
from ..experiments.parallel import (
    ANALYSIS_MEMO_DIRNAME,
    CHECKPOINT_DIRNAME,
    DiskCache,
    ParallelRunner,
    SimPoint,
    _simulate_point,
)
from ..workloads.suite import names as workload_names
from . import protocol
from .journal import ServeJournal
from .protocol import (
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    ERR_SHUTTING_DOWN,
    LANES,
    MAX_LINE_BYTES,
    SOURCE_CACHE,
    SOURCE_COALESCED,
    SOURCE_SIMULATED,
    ProtocolError,
    encode,
    point_from_wire,
    point_to_wire,
    validate_lane,
)

log = logging.getLogger("repro.serve")

#: a point preempted by graceful shutdown (its snapshot survives; a
#: re-request after restart resumes from it)
STATUS_PREEMPTED = "preempted"

#: default bound on not-yet-completed miss points (queued + running)
DEFAULT_QUEUE_LIMIT = 256

#: default worker processes in the fleet
DEFAULT_WORKERS = 2

#: default checkpoint cadence for served points.  Much tighter than
#: the batch default (10M cycles): a service optimizes for cheap
#: preemption — kills lose at most this many cycles of progress.
DEFAULT_SERVE_CHECKPOINT_INTERVAL = 1_000_000

#: default grace period before shutdown kills in-flight workers
DEFAULT_GRACE_S = 5.0

#: consecutive attributed worker deaths before a point is quarantined
DEFAULT_POISON_THRESHOLD = 3

#: default stall-watchdog grace (seconds without retire progress while
#: misses are pending before the pool is declared wedged and rebuilt);
#: 0 disables the watchdog — the serve CLI opts in with --stall-grace
DEFAULT_STALL_GRACE_S = 0.0

#: per-worker running-point markers, under the serve state dir.  Each
#: worker writes ``<pid>.json`` naming the point it is simulating and
#: unlinks it when done; after pool breakage the dead pids' surviving
#: markers attribute the loss to the exact culprit point(s).
SERVE_RUNNING_DIRNAME = "serve_running"

#: figure registry served by "figure" requests (the CLI's EXPERIMENTS
#: table re-exports these same drivers; kept here so the CLI can import
#: the serve layer without a cycle)
FIGURES: Dict[str, Callable[..., Any]] = {
    "figure1": figures.figure1,
    "figure2": figures.figure2,
    "figure3": figures.figure3,
    "l2-sweep": functools.partial(figures.cache_sweep, level="l2"),
    "l1-sweep": functools.partial(figures.cache_sweep, level="l1"),
    "branch-stats": figures.branch_stats,
    "mshr": figures.mshr_study,
}


def _warmup() -> int:
    """Pre-spawn worker entry (spawn workers import lazily on first
    task; paying that once at startup keeps first-request latency and
    the load tests honest)."""
    return os.getpid()


def _attributed_simulate(
    marker_dir: Optional[str], key: str, label: str, args: Tuple[Any, ...]
) -> Any:
    """Worker-side entry: run one point with a running-point marker on
    disk, so a worker death is attributable to the point that killed
    it.  The marker is best-effort — an unwritable state dir degrades
    to unattributed losses (the PR-3 behaviour), never to a failure."""
    marker = None
    if marker_dir:
        try:
            os.makedirs(marker_dir, exist_ok=True)
            marker = Path(marker_dir) / f"{os.getpid()}.json"
            marker.write_text(json.dumps({
                "pid": os.getpid(), "key": key, "label": label,
                "started": time.time(),
            }, sort_keys=True), encoding="utf-8")
        except OSError:
            marker = None
    try:
        return _simulate_point(*args)
    finally:
        if marker is not None:
            try:
                marker.unlink()
            except OSError:
                pass


def _pid_alive(pid: int) -> bool:
    """Signal-0 liveness probe (EPERM counts as alive).

    A zombie counts as *dead*: a SIGKILLed pool worker is our own
    child, and attribution runs in the instant between the pool
    breaking and concurrent.futures reaping the corpse — signal 0
    still reaches it, but it will never run again.
    """
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    try:
        with open(f"/proc/{pid}/stat", "rb") as fh:
            data = fh.read()
        # state is the field right after the parenthesised comm (which
        # may itself contain spaces and parens — split on the *last* ')')
        if data[data.rindex(b")") + 2: data.rindex(b")") + 3] == b"Z":
            return False
    except (OSError, ValueError):
        pass  # no procfs: fall back to the signal probe's answer
    return True


class BusyError(RuntimeError):
    """Admission control rejected a request (miss queue full)."""

    def __init__(self, queue_depth: int, limit: int) -> None:
        super().__init__(f"miss queue full ({queue_depth}/{limit})")
        self.queue_depth = queue_depth
        self.limit = limit


@dataclass
class ServeConfig:
    """Everything the server needs, mirroring the ``serve`` CLI verb."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port after start()
    unix_path: Optional[str] = None  # serve a unix socket instead
    cache_dir: Optional[Path] = None  # None = serving without dedup
    workers: int = DEFAULT_WORKERS
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    grace_s: float = DEFAULT_GRACE_S
    point_timeout: Optional[float] = None
    max_retries: int = 2
    checkpoint: bool = True
    checkpoint_interval: int = DEFAULT_SERVE_CHECKPOINT_INTERVAL
    checkpoint_keep: int = DEFAULT_CHECKPOINT_KEEP
    validate: bool = True
    lint: bool = True
    engine: Optional[str] = None
    #: seconds between polls of a foreign (cross-server) in-flight fill
    foreign_poll_s: float = 0.05
    #: age past which a foreign fill claim is presumed dead
    claim_stale_s: float = 600.0
    #: consecutive attributed worker deaths before quarantine (<=0
    #: disables poisoning — every worker-lost retry is unconditional)
    poison_threshold: int = DEFAULT_POISON_THRESHOLD
    #: stall-watchdog grace in seconds (<=0 disables the watchdog)
    stall_grace_s: float = DEFAULT_STALL_GRACE_S


@dataclass
class ServeStats:
    """Live server counters (the ``stats`` reply / ``done.server``)."""

    started_at: float = 0.0
    connections: int = 0
    requests: int = 0
    figures_served: int = 0
    busy_rejections: int = 0
    protocol_errors: int = 0
    points_requested: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    simulated: int = 0
    #: another server/process filled the key while we waited on its claim
    foreign_fills: int = 0
    failed_points: int = 0
    preempted_points: int = 0
    retries: int = 0
    pool_rebuilds: int = 0
    checkpoint_resumes: int = 0
    #: journal replay at startup: unfinished points re-enqueued ...
    journal_replayed: int = 0
    #: ... and unfinished points found already complete in the simcache
    #: (terminalized without re-simulation — the zero-duplicate half of
    #: crash recovery)
    journal_recovered: int = 0
    #: points quarantined after repeated attributed worker deaths
    poisoned: int = 0
    #: submits refused because the point is quarantined
    poisoned_rejections: int = 0
    #: pool rebuilds forced by the stall watchdog (subset of
    #: ``pool_rebuilds``)
    stall_rebuilds: int = 0
    #: keys this server simulated more than once (must stay 0 outside
    #: worker-loss retries; the load tests assert on it)
    duplicate_simulations: int = 0

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = dict(vars(self))
        data["uptime_s"] = round(time.time() - self.started_at, 3)
        return data


@dataclass
class _Entry:
    """One in-flight miss: the shared future every coalesced waiter
    awaits.  The future resolves to ``(result, fill_source)`` where
    ``result`` is :class:`ExecutionStats` or :class:`PointFailure` and
    ``fill_source`` is what actually happened (``simulated`` /
    ``cache`` for a foreign fill)."""

    key: str
    point: SimPoint
    lane: str
    future: "asyncio.Future[Any]" = field(repr=False, default=None)
    elapsed: float = 0.0
    #: checkpoint snapshot the winning attempt restored from (journal
    #: provenance; None = cold start)
    resumed_from: Optional[str] = None
    #: replayed from the journal at startup — no client is waiting on
    #: the future, the server finishes it for the journal's sake
    orphan: bool = False


class _Connection:
    """Per-connection write lock + request-task registry: many request
    tasks interleave messages onto one stream, one line at a time."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.tasks: Set["asyncio.Task[None]"] = set()
        self.handler: Optional["asyncio.Task[Any]"] = None
        self.closed = False

    async def send(self, message: Dict[str, Any]) -> None:
        if self.closed:
            return
        try:
            async with self.lock:
                self.writer.write(encode(message))
                await self.writer.drain()
        except (ConnectionError, RuntimeError):
            self.closed = True  # client went away; requests keep running


class _FigureBridge:
    """RunCache-protocol adapter handed to figure drivers.

    The drivers are synchronous (``runner.run_points(...)`` blocks), so
    the server runs them on a thread and this bridge forwards each
    ``run_points`` call back into the event loop, where the points are
    resolved through the same cache/coalesce/simulate path as a plain
    grid submit.  Failures come back as :class:`PointFailure`
    placeholders (keep-going semantics), which every driver already
    renders as explicit FAILED cells.
    """

    def __init__(self, server: "BatchServer", scale: Any, lane: str) -> None:
        self.server = server
        self.scale = scale
        self.lane = lane
        self.sources: Dict[str, int] = {}
        self.n_points = 0

    def run_points(self, points: Sequence[SimPoint]) -> List[Any]:
        coro = self.server._resolve_for_bridge(list(points), self.lane, self)
        loop = self.server._loop
        assert loop is not None, "server not started"
        future = asyncio.run_coroutine_threadsafe(coro, loop)
        results: List[Any] = future.result()
        return results


class BatchServer:
    """The asyncio simulation service.  See the module docstring."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.stats = ServeStats()
        self.cache: Optional[DiskCache] = (
            DiskCache(config.cache_dir) if config.cache_dir is not None else None
        )
        self._inflight: Dict[str, _Entry] = {}
        self._pending_misses = 0
        self._miss_queue: Optional[
            "asyncio.PriorityQueue[Tuple[int, int, str]]"
        ] = None
        self._seq = 0
        self._lane_rank = {lane: rank for rank, lane in enumerate(LANES)}
        self._lane_depths: Dict[str, int] = {lane: 0 for lane in LANES}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_generation = 0
        self._lane_workers: List["asyncio.Task[None]"] = []
        #: the durable request journal (crash-only mode; None without a
        #: writable state dir)
        self.journal: Optional[ServeJournal] = None
        #: key -> poisoned journal record; blocks admission
        self._poisoned: Dict[str, Dict[str, Any]] = {}
        #: key -> attributed consecutive worker deaths (strike count)
        self._worker_losses: Dict[str, int] = {}
        #: key -> pool generations whose death was attributed to it
        self._loss_generations: Dict[str, List[int]] = {}
        self._last_progress = time.monotonic()
        self._stall_task: Optional["asyncio.Task[None]"] = None
        self._connections: Set[_Connection] = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self._shutdown_task: Optional["asyncio.Task[None]"] = None
        #: key -> times simulated by this server (load tests assert
        #: every value is 1; bounded by unique keys served)
        self.simulated_keys: Dict[str, int] = {}
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> Optional[int]:
        return self.address[1] if self.address else None

    def _checkpoint_dir(self) -> Optional[Path]:
        if not self.config.checkpoint:
            return None
        if self.config.cache_dir is None:
            return None
        return Path(self.config.cache_dir) / CHECKPOINT_DIRNAME

    def _memo_dir(self) -> Optional[Path]:
        if not self.config.lint:
            return None
        if self.cache is None or self.cache.read_only:
            return None
        return self.cache.root / ANALYSIS_MEMO_DIRNAME

    def _marker_dir(self) -> Optional[Path]:
        if self.cache is None or self.cache.read_only:
            return None
        return self.cache.root / SERVE_RUNNING_DIRNAME

    def _new_pool(self) -> ProcessPoolExecutor:
        # spawn, not fork: the server process runs an event loop and
        # helper threads (figure bridges), and forking a threaded
        # process is where pools go to deadlock
        import multiprocessing

        return ProcessPoolExecutor(
            max_workers=max(1, self.config.workers),
            mp_context=multiprocessing.get_context("spawn"),
        )

    async def start(self) -> Tuple[str, int]:
        """Bind the socket, warm the worker fleet, replay the request
        journal, start the lane schedulers and the stall watchdog.
        Returns the bound ``(host, port)`` (port ``-1`` for a unix
        socket)."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stopped = asyncio.Event()
        self._miss_queue = asyncio.PriorityQueue()
        self.stats.started_at = time.time()
        self._pool = self._new_pool()
        # pre-spawn every worker before accepting traffic
        await asyncio.gather(*[
            loop.run_in_executor(self._pool, _warmup)
            for _ in range(max(1, self.config.workers))
        ])
        if self.cache is not None and not self.cache.read_only:
            self.journal = ServeJournal(
                self.cache.root, cache_version=self.cache.version
            )
            self._sweep_stale_markers()
            self._replay_journal()
        address: Tuple[str, int]
        unix_path = self.config.unix_path
        if unix_path:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=unix_path,
                limit=MAX_LINE_BYTES,
            )
            address = (unix_path, -1)
        else:
            server = await asyncio.start_server(
                self._handle_connection, host=self.config.host,
                port=self.config.port, limit=MAX_LINE_BYTES,
            )
            self._server = server
            sock = server.sockets[0]
            address = sock.getsockname()[:2]
        self.address = address
        self._lane_workers = [
            asyncio.create_task(self._lane_worker(i))
            for i in range(max(1, self.config.workers))
        ]
        if self.config.stall_grace_s > 0:
            self._stall_task = asyncio.create_task(self._stall_watchdog())
        log.info(
            "serving on %s (workers=%d queue_limit=%d cache=%s journal=%s)",
            self.address, self.config.workers, self.config.queue_limit,
            self.cache.root if self.cache else "disabled",
            self.journal.path if self.journal else "disabled",
        )
        return address

    # -- crash recovery -----------------------------------------------------

    def _sweep_stale_markers(self) -> None:
        """Remove running-point markers whose pid is dead — leftovers
        of a killed previous incarnation.  They are *not* attributed:
        a SIGKILL of the whole server says nothing about the points
        (the journal's persisted ``worker_losses`` counts carry real
        strikes across restarts).  Live-pid markers belong to another
        server sharing the state dir and are left alone."""
        mdir = self._marker_dir()
        if mdir is None or not mdir.is_dir():
            return
        for path in list(mdir.glob("*.json")):
            try:
                pid = json.loads(
                    path.read_text(encoding="utf-8")
                ).get("pid")
            except (OSError, ValueError):
                pid = None
            if isinstance(pid, int) and _pid_alive(pid):
                continue
            try:
                path.unlink()
            except OSError:
                pass

    def _replay_journal(self) -> None:
        """Hard-kill recovery: restore quarantine + strike state, then
        finish what the previous incarnation admitted.  Unfinished
        points already present in the simcache (the kill only lost the
        terminal record) are terminalized without re-simulation; the
        rest re-enqueue as orphan misses and resume from their newest
        snapshots inside ``_simulate_point``."""
        journal = self.journal
        if journal is None:
            return
        loop = self._loop
        assert loop is not None, "replay runs inside start()"
        self._poisoned = dict(journal.poisoned())
        for key, record in journal.pending().items():
            strikes = record.get("worker_losses", 0)
            if isinstance(strikes, int) and strikes > 0:
                self._worker_losses[key] = strikes
            label = record.get("label") or key[:16]
            if self.cache is not None and self.cache.load(key) is not None:
                journal.record_ok(key, label, SOURCE_CACHE, recovered=True)
                self.stats.journal_recovered += 1
                continue
            try:
                point = point_from_wire(record.get("spec"))
            except ProtocolError as exc:
                log.warning("journal: cannot replay %s: %s", label, exc)
                journal.record_failure(PointFailure(
                    status="failed", label=label, key=key,
                    error_type="ReplayError", message=str(exc),
                ))
                continue
            lane = record.get("lane")
            if lane not in LANES:
                lane = "normal"
            entry = _Entry(key=key, point=point, lane=lane,
                           future=loop.create_future(), orphan=True)
            self._inflight[key] = entry
            self._pending_misses += 1
            self._enqueue_miss(lane, key)
            self.stats.journal_replayed += 1
            ckpt_dir = self._checkpoint_dir()
            snap = (
                snapshot_progress(ckpt_dir / key)
                if ckpt_dir is not None else None
            )
            if snap is not None:
                log.info(
                    "journal: %s re-enqueued; will resume from %s (%s)",
                    label, snap[0], snap[1],
                )
        if (
            self.stats.journal_replayed
            or self.stats.journal_recovered
            or self._poisoned
        ):
            log.info(
                "journal replay: %d unfinished point(s) re-enqueued, "
                "%d recovered from cache, %d poisoned",
                self.stats.journal_replayed, self.stats.journal_recovered,
                len(self._poisoned),
            )
        journal.compact()

    def request_shutdown(self) -> None:
        """Signal-handler-safe: schedule a graceful shutdown."""
        if self._shutdown_task is None and self._loop is not None:
            self._shutdown_task = self._loop.create_task(self.shutdown())

    async def wait_stopped(self) -> None:
        stopped = self._stopped
        assert stopped is not None, "server not started"
        await stopped.wait()

    async def shutdown(self) -> None:
        """Graceful stop: refuse new work, give in-flight points one
        grace period (their checkpoint sessions snapshot at every
        interval boundary), then preempt hard.  Preempted points keep
        their newest snapshot, so a restarted server resumes them
        mid-point when re-requested."""
        stopped = self._stopped
        assert stopped is not None, "server not started"
        if self._draining:
            await stopped.wait()
            return
        self._draining = True
        log.info("shutdown: draining (grace=%.1fs)", self.config.grace_s)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        inflight = [e.future for e in self._inflight.values()]
        if inflight:
            done, pending = await asyncio.wait(
                inflight, timeout=self.config.grace_s
            )
            if pending:
                log.warning(
                    "shutdown: preempting %d in-flight point(s) after "
                    "grace; snapshots survive for resume", len(pending),
                )
        # hard-stop the fleet; queued + running misses become preempted
        self._kill_pool(self._pool)
        self._clear_markers()
        if self._stall_task is not None:
            self._stall_task.cancel()
        for task in self._lane_workers:
            task.cancel()
        for entry in list(self._inflight.values()):
            if not entry.future.done():
                self.stats.preempted_points += 1
                failure = PointFailure(
                    status=STATUS_PREEMPTED,
                    label=entry.point.label(),
                    key=entry.key,
                    error_type="Preempted",
                    message=(
                        "server shut down mid-point; re-request after "
                        "restart resumes from the newest snapshot"
                    ),
                )
                entry.future.set_result((failure, SOURCE_SIMULATED, 0.0))
                # journaled as non-terminal: the next incarnation
                # replays it (spec carried over from its admitted line)
                if self.journal is not None:
                    self.journal.record_failure(failure)
        self._inflight.clear()
        # let request tasks deliver their done/point_failed messages
        await asyncio.sleep(0)
        for conn in list(self._connections):
            for task in list(conn.tasks):
                if not task.done():
                    await asyncio.wait({task}, timeout=1.0)
            conn.closed = True
            try:
                conn.writer.close()
            except Exception:
                pass
        # closing the writers EOFs every handler's readline; reap the
        # handler tasks so loop teardown has nothing left to cancel
        handlers = {
            c.handler for c in self._connections
            if c.handler is not None and not c.handler.done()
        }
        if handlers:
            _done, still = await asyncio.wait(handlers, timeout=1.0)
            for task in still:
                task.cancel()
            if still:
                await asyncio.wait(still, timeout=1.0)
        if self.journal is not None:
            self.journal.compact()
            self.journal.close()
        stopped.set()
        log.info("shutdown: complete (%s)", self.stats.to_dict())

    @staticmethod
    def _kill_pool(pool: Optional[ProcessPoolExecutor]) -> None:
        """Tear a pool down hard (kill workers, never raise) — same
        contract as the batch runner's."""
        if pool is None:
            return
        ParallelRunner._kill_pool(pool)

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        conn.handler = asyncio.current_task()
        self._connections.add(conn)
        self.stats.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    self.stats.protocol_errors += 1
                    await conn.send({
                        "type": "error", "id": None,
                        "code": ERR_BAD_REQUEST,
                        "message": "oversized or torn message; closing",
                    })
                    break
                if not line:
                    break
                try:
                    message = protocol.decode(line)
                except ProtocolError as exc:
                    self.stats.protocol_errors += 1
                    await conn.send({
                        "type": "error", "id": None,
                        "code": exc.code, "message": str(exc),
                    })
                    break
                task = asyncio.create_task(self._dispatch(message, conn))
                conn.tasks.add(task)
                task.add_done_callback(conn.tasks.discard)
        finally:
            for task in list(conn.tasks):
                task.cancel()
            conn.closed = True
            try:
                writer.close()
            except Exception:
                pass
            self._connections.discard(conn)

    async def _dispatch(
        self, message: Dict[str, Any], conn: _Connection
    ) -> None:
        mtype = message.get("type")
        rid = message.get("id")
        try:
            if mtype == "submit":
                await self._handle_submit(message, conn)
            elif mtype == "figure":
                await self._handle_figure(message, conn)
            elif mtype == "stats":
                await conn.send({
                    "type": "stats", "id": rid, "server": self._snapshot(),
                })
            elif mtype == "health":
                await conn.send({
                    "type": "health", "id": rid, "health": self._health(),
                })
            elif mtype == "ping":
                await conn.send({"type": "pong", "id": rid})
            elif mtype == "shutdown":
                await conn.send({"type": "bye", "id": rid})
                self.request_shutdown()
            else:
                self.stats.protocol_errors += 1
                await conn.send({
                    "type": "error", "id": rid, "code": ERR_BAD_REQUEST,
                    "message": f"unknown message type {mtype!r}",
                })
        except ProtocolError as exc:
            self.stats.protocol_errors += 1
            await conn.send({
                "type": "error", "id": rid, "code": exc.code,
                "message": str(exc),
            })
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # a server bug must not kill the loop
            log.exception("request %r failed", rid)
            await conn.send({
                "type": "error", "id": rid, "code": ERR_INTERNAL,
                "message": f"{type(exc).__name__}: {exc}",
            })

    def _snapshot(self) -> Dict[str, Any]:
        data = self.stats.to_dict()
        data["queue_depth"] = self._pending_misses
        data["queue_limit"] = self.config.queue_limit
        data["inflight"] = len(self._inflight)
        data["draining"] = self._draining
        data["duplicate_simulations"] = sum(
            n - 1 for n in self.simulated_keys.values() if n > 1
        )
        if self.cache is not None:
            data["disk_cache"] = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "stores": self.cache.stores,
                "quarantined": self.cache.quarantined,
                "claims": self.cache.claims,
                "stale_claims_broken": self.cache.stale_claims_broken,
            }
        data["journal_lag"] = self.journal.lag() if self.journal else 0
        data["quarantined_points"] = len(self._poisoned)
        return data

    def _health(self) -> Dict[str, Any]:
        """The supervised health plane: one structured snapshot of the
        crash-only machinery (the ``health`` protocol verb)."""
        now = time.monotonic()
        stalled_for = (
            round(now - self._last_progress, 3)
            if self._pending_misses > 0 else 0.0
        )
        return {
            "healthy": not self._draining,
            "draining": self._draining,
            "uptime_s": round(time.time() - self.stats.started_at, 3),
            "journal": {
                "path": str(self.journal.path) if self.journal else None,
                "lag": self.journal.lag() if self.journal else 0,
                "replayed": self.stats.journal_replayed,
                "recovered": self.stats.journal_recovered,
            },
            "pool": {
                "generation": self._pool_generation,
                "workers": max(1, self.config.workers),
                "rebuilds": self.stats.pool_rebuilds,
                "stall_rebuilds": self.stats.stall_rebuilds,
                "stall_grace_s": self.config.stall_grace_s,
                "stalled_for_s": stalled_for,
            },
            "quarantine": {
                "poisoned": len(self._poisoned),
                "rejections": self.stats.poisoned_rejections,
                "threshold": self.config.poison_threshold,
            },
            "lanes": {
                lane: self._lane_depths.get(lane, 0) for lane in LANES
            },
            "queue_depth": self._pending_misses,
            "queue_limit": self.config.queue_limit,
            "inflight": len(self._inflight),
        }

    # -- submit (grid) requests ---------------------------------------------

    async def _handle_submit(
        self, message: Dict[str, Any], conn: _Connection
    ) -> None:
        rid = message.get("id")
        if not isinstance(rid, str) or not rid:
            raise ProtocolError("submit needs a non-empty string 'id'")
        raw_points = message.get("points")
        if not isinstance(raw_points, list) or not raw_points:
            raise ProtocolError("submit needs a non-empty 'points' list")
        points = [point_from_wire(spec) for spec in raw_points]
        lane = validate_lane(message.get("priority"))
        want_progress = bool(message.get("progress", False))
        if self._draining:
            raise ProtocolError(
                "server is shutting down", code=ERR_SHUTTING_DOWN
            )
        self.stats.requests += 1
        self.stats.points_requested += len(points)
        try:
            classified = self._classify_and_enqueue(points, lane)
        except BusyError as exc:
            self.stats.busy_rejections += 1
            await conn.send({
                "type": "busy", "id": rid,
                "queue_depth": exc.queue_depth, "limit": exc.limit,
                "retry_after_s": 0.25,
            })
            return
        n = len(points)
        await conn.send({"type": "ack", "id": rid, "n": n, "lane": lane})
        sources: Dict[str, int] = {}
        ok = failed = reported = 0

        async def deliver(index: int, key: str, result: Any, source: str,
                          elapsed: float) -> None:
            nonlocal ok, failed, reported
            reported += 1
            if isinstance(result, ExecutionStats):
                ok += 1
                sources[source] = sources.get(source, 0) + 1
                self._count_source(source)
                await conn.send({
                    "type": "result", "id": rid, "index": index,
                    "key": key, "source": source,
                    "stats": result.to_dict(),
                })
            else:
                failed += 1
                sources["failed"] = sources.get("failed", 0) + 1
                self.stats.failed_points += 1
                await conn.send({
                    "type": "point_failed", "id": rid, "index": index,
                    "key": key, "failure": result.to_dict(),
                })
            if want_progress:
                await conn.send({
                    "type": "progress", "id": rid, "k": reported, "n": n,
                    "label": points[index].label(), "source": source,
                    "elapsed_s": round(elapsed, 6),
                })

        # immediate deliveries: cache hits (and nothing else) are known
        # synchronously and never waited on the miss queue
        waiting: Dict["asyncio.Future[Any]", List[Tuple[int, str, str]]] = {}
        for index, (kind, key, payload) in enumerate(classified):
            if kind == "hit":
                await deliver(index, key, payload, SOURCE_CACHE, 0.0)
            elif kind == "poisoned":
                self.stats.poisoned_rejections += 1
                await deliver(
                    index, key, self._poisoned_failure(key), SOURCE_CACHE, 0.0
                )
            else:  # kind == "future"
                entry_future, source_if_ready = payload
                waiting.setdefault(entry_future, []).append(
                    (index, key, source_if_ready)
                )
        pending = set(waiting)
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for future in done:
                result, fill_source, elapsed = future.result()
                for index, key, source_if_ready in waiting[future]:
                    source = (
                        fill_source if source_if_ready == "creator"
                        else SOURCE_COALESCED
                    )
                    await deliver(index, key, result, source, elapsed)
        await conn.send({
            "type": "done", "id": rid, "ok": ok, "failed": failed,
            "sources": sources, "server": self._snapshot(),
        })

    def _count_source(self, source: str) -> None:
        if source == SOURCE_CACHE:
            self.stats.cache_hits += 1
        elif source == SOURCE_COALESCED:
            self.stats.coalesced += 1
        elif source == SOURCE_SIMULATED:
            self.stats.simulated += 1

    def _classify_and_enqueue(
        self, points: Sequence[SimPoint], lane: str
    ) -> List[Tuple[str, str, Any]]:
        """Resolve each point to a hit or an in-flight future, admitting
        new misses atomically (no ``await`` between the admission check
        and the enqueue, so a rejected request enqueues nothing).

        Returns one ``(kind, key, payload)`` per index: ``("hit", key,
        stats)``, ``("poisoned", key, record)`` for a quarantined
        point, or ``("future", key, (future, "creator"|"waiter"))``.
        """
        keys = [p.content_key() for p in points]
        plan: List[Tuple[str, str, Any]] = []
        new_keys: Dict[str, SimPoint] = {}
        for point, key in zip(points, keys):
            if key in self._poisoned:
                plan.append(("poisoned", key, self._poisoned[key]))
                continue
            if key in self._inflight:
                plan.append(
                    ("future", key, (self._inflight[key].future, "waiter"))
                )
                continue
            if key in new_keys:
                plan.append(("future", key, (None, "waiter")))  # intra-dup
                continue
            stats = self.cache.load(key) if self.cache is not None else None
            if stats is not None:
                plan.append(("hit", key, stats))
                continue
            new_keys[key] = point
            plan.append(("future", key, (None, "creator")))
        if new_keys and (
            self._pending_misses + len(new_keys) > self.config.queue_limit
        ):
            raise BusyError(self._pending_misses, self.config.queue_limit)
        # admitted: journal (fsynced, before the ack), register, enqueue
        loop = self._loop
        assert loop is not None, "server not started"
        created: Dict[str, "asyncio.Future[Any]"] = {}
        for key, point in new_keys.items():
            if self.journal is not None:
                self.journal.record_admitted(
                    key, point_to_wire(point), lane, point.label(),
                    worker_losses=self._worker_losses.get(key, 0),
                )
            entry = _Entry(key=key, point=point, lane=lane,
                           future=loop.create_future())
            self._inflight[key] = entry
            self._pending_misses += 1
            self._enqueue_miss(lane, key)
            created[key] = entry.future
        resolved: List[Tuple[str, str, Any]] = []
        for kind, key, payload in plan:
            if kind == "future":
                future, role = payload
                if future is None:  # a key this request just created
                    future = created[key]
                resolved.append((kind, key, (future, role)))
            else:
                resolved.append((kind, key, payload))
        return resolved

    def _enqueue_miss(self, lane: str, key: str) -> None:
        queue = self._miss_queue
        assert queue is not None, "server not started"
        self._seq += 1
        self._lane_depths[lane] = self._lane_depths.get(lane, 0) + 1
        queue.put_nowait((self._lane_rank.get(lane, 1), self._seq, key))

    def _poisoned_failure(self, key: str) -> PointFailure:
        """The rejection delivered for a quarantined point."""
        record = self._poisoned.get(key, {})
        return PointFailure(
            status=STATUS_POISONED,
            label=record.get("label", key[:16]),
            key=key,
            error_type=record.get("error_type", ""),
            message=record.get("message") or (
                "point is quarantined (repeated worker deaths); release "
                "with 'cache gc --release-poisoned'"
            ),
            attempts=int(record.get("attempts", 1) or 1),
        )

    # -- figure requests ----------------------------------------------------

    async def _handle_figure(
        self, message: Dict[str, Any], conn: _Connection
    ) -> None:
        rid = message.get("id")
        if not isinstance(rid, str) or not rid:
            raise ProtocolError("figure needs a non-empty string 'id'")
        name = message.get("figure")
        fn = FIGURES.get(name)
        if fn is None:
            raise ProtocolError(
                f"unknown figure {name!r}; known: {', '.join(sorted(FIGURES))}"
            )
        scale = protocol._scale_from_wire(message.get("scale"))
        benchmarks = message.get("benchmarks")
        if benchmarks is not None:
            known = set(workload_names())
            bad = [b for b in benchmarks if b not in known]
            if bad:
                raise ProtocolError(f"unknown benchmark(s): {', '.join(bad)}")
            benchmarks = tuple(benchmarks)
        lane = validate_lane(message.get("priority"))
        if self._draining:
            raise ProtocolError(
                "server is shutting down", code=ERR_SHUTTING_DOWN
            )
        self.stats.requests += 1
        bridge = _FigureBridge(self, scale, lane)
        await conn.send({"type": "ack", "id": rid, "n": None, "lane": lane})
        loop = self._loop
        assert loop is not None, "server not started"
        try:
            headers, rows, _raw = await loop.run_in_executor(
                None, functools.partial(fn, bridge, benchmarks=benchmarks)
            )
        except BusyError as exc:
            self.stats.busy_rejections += 1
            await conn.send({
                "type": "busy", "id": rid,
                "queue_depth": exc.queue_depth, "limit": exc.limit,
                "retry_after_s": 0.25,
            })
            return
        self.stats.figures_served += 1
        await conn.send({
            "type": "table", "id": rid, "figure": name,
            "headers": list(headers), "rows": [list(r) for r in rows],
        })
        failed = bridge.sources.get("failed", 0)
        await conn.send({
            "type": "done", "id": rid, "ok": bridge.n_points - failed,
            "failed": failed, "sources": bridge.sources,
            "server": self._snapshot(),
        })

    async def _resolve_for_bridge(
        self, points: List[SimPoint], lane: str, bridge: _FigureBridge
    ) -> List[Any]:
        """Resolve a figure driver's grid through the normal path and
        tally sources onto the bridge.  Runs in the event loop (called
        via ``run_coroutine_threadsafe`` from the driver thread)."""
        classified = self._classify_and_enqueue(points, lane)
        bridge.n_points += len(points)
        results: List[Any] = [None] * len(points)
        for index, (kind, key, payload) in enumerate(classified):
            if kind == "hit":
                results[index] = payload
                bridge.sources[SOURCE_CACHE] = (
                    bridge.sources.get(SOURCE_CACHE, 0) + 1
                )
                self._count_source(SOURCE_CACHE)
            elif kind == "poisoned":
                self.stats.poisoned_rejections += 1
                self.stats.failed_points += 1
                results[index] = self._poisoned_failure(key)
                bridge.sources["failed"] = bridge.sources.get("failed", 0) + 1
            else:
                future, role = payload
                result, fill_source, _elapsed = await future
                results[index] = result
                if isinstance(result, ExecutionStats):
                    source = (
                        fill_source if role == "creator"
                        else SOURCE_COALESCED
                    )
                    bridge.sources[source] = bridge.sources.get(source, 0) + 1
                    self._count_source(source)
                else:
                    bridge.sources["failed"] = (
                        bridge.sources.get("failed", 0) + 1
                    )
                    self.stats.failed_points += 1
        return results

    # -- the miss pipeline --------------------------------------------------

    async def _lane_worker(self, slot: int) -> None:
        """One scheduler slot: pull the highest-priority queued miss,
        fill it (claim -> simulate -> store), resolve its future."""
        queue = self._miss_queue
        assert queue is not None, "server not started"
        while True:
            _rank, _seq, key = await queue.get()
            lane = LANES[_rank] if 0 <= _rank < len(LANES) else "normal"
            self._lane_depths[lane] = max(
                0, self._lane_depths.get(lane, 0) - 1
            )
            entry = self._inflight.get(key)
            if entry is None or entry.future.done():
                continue
            if self._draining:
                continue  # shutdown() resolves the future as preempted
            try:
                result, fill_source, elapsed = await self._fill_key(entry)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # defensive: a fill bug fails one key
                log.exception("fill of %s blew up", key[:16])
                result = PointFailure.from_exception(
                    exc, entry.point.label(), key=key
                )
                fill_source, elapsed = SOURCE_SIMULATED, 0.0
            if not entry.future.done():
                entry.future.set_result((result, fill_source, elapsed))
            self._inflight.pop(key, None)
            self._pending_misses -= 1
            self._last_progress = time.monotonic()
            self._journal_terminal(entry, result, fill_source, elapsed)

    def _journal_terminal(self, entry: _Entry, result: Any, fill_source: str,
                          elapsed: float) -> None:
        """Replace the point's ``admitted`` journal record with its
        terminal status (checkpoint provenance included)."""
        if self.journal is None:
            return
        if isinstance(result, ExecutionStats):
            self.journal.record_ok(
                entry.key, entry.point.label(), fill_source,
                elapsed=elapsed, resumed_from=entry.resumed_from,
            )
        else:
            diagnostics = None
            if result.status == STATUS_POISONED:
                diagnostics = {
                    "worker_losses": self._worker_losses.get(entry.key, 0),
                    "generations": list(
                        self._loss_generations.get(entry.key, [])
                    ),
                }
            self.journal.record_failure(result, diagnostics=diagnostics)

    async def _fill_key(self, entry: _Entry) -> Tuple[Any, str, float]:
        """Resolve one cold key: claim the fill across processes (or
        await a foreign fill), simulate with worker-loss retries, store.

        Returns ``(result, fill_source, elapsed_s)``.
        """
        key, point = entry.key, entry.point
        retry = RetryPolicy(
            max_retries=max(0, self.config.max_retries),
            retry_statuses=(
                TRANSIENT_STATUSES | {STATUS_TIMEOUT}
                if self._checkpoint_dir() is not None
                else TRANSIENT_STATUSES
            ),
        )
        claim = None
        attempts = 0
        try:
            while True:
                if self.cache is not None and claim is None:
                    claim = self.cache.try_claim(
                        key, stale_after=self.config.claim_stale_s
                    )
                    if claim is None:
                        foreign = await self._await_foreign_fill(key)
                        if foreign is not None:
                            self.stats.foreign_fills += 1
                            return foreign, SOURCE_CACHE, 0.0
                        continue  # claim vanished/stale: race again
                attempts += 1
                start = time.monotonic()
                try:
                    stats, elapsed, resumed_from = await self._run_in_pool(
                        point
                    )
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    status, _transient = classify(exc)
                    if self._draining:
                        return (
                            PointFailure(
                                status=STATUS_PREEMPTED,
                                label=point.label(), key=key,
                                error_type=type(exc).__name__,
                                message="preempted by shutdown",
                                attempts=attempts,
                            ),
                            SOURCE_SIMULATED,
                            time.monotonic() - start,
                        )
                    if status == STATUS_WORKER_LOST:
                        # the pool rebuild attributed every in-flight
                        # marker before this exception unwound, so the
                        # strike count is current
                        strikes = self._worker_losses.get(key, 0)
                        if (
                            self.config.poison_threshold > 0
                            and strikes >= self.config.poison_threshold
                        ):
                            failure = PointFailure(
                                status=STATUS_POISONED,
                                label=point.label(), key=key,
                                error_type=type(exc).__name__,
                                message=(
                                    f"worker died {strikes} consecutive "
                                    "times running this point (pool "
                                    "generations "
                                    f"{self._loss_generations.get(key, [])}"
                                    "); quarantined — release with "
                                    "'cache gc --release-poisoned'"
                                ),
                                attempts=attempts,
                                elapsed=time.monotonic() - start,
                            )
                            self._poisoned[key] = failure.to_dict()
                            self.stats.poisoned += 1
                            log.error(
                                "%s: poisoned after %d attributed worker "
                                "death(s)", point.label(), strikes,
                            )
                            return (
                                failure, SOURCE_SIMULATED,
                                time.monotonic() - start,
                            )
                        # innocents of a poison point's pool kills get a
                        # stretched worker-lost budget: they must outlive
                        # the culprit's entire strike run plus their own
                        # transient retries
                        retryable = attempts <= (
                            max(0, self.config.max_retries)
                            + max(1, self.config.poison_threshold)
                        )
                    else:
                        retryable = retry.should_retry(status, attempts)
                    if retryable:
                        self.stats.retries += 1
                        log.warning(
                            "%s: %s (attempt %d); retrying",
                            point.label(), status, attempts,
                        )
                        await asyncio.sleep(retry.delay(key, attempts))
                        continue
                    return (
                        PointFailure.from_exception(
                            exc, point.label(), key=key, attempts=attempts,
                            elapsed=time.monotonic() - start,
                        ),
                        SOURCE_SIMULATED,
                        time.monotonic() - start,
                    )
                if resumed_from is not None:
                    self.stats.checkpoint_resumes += 1
                    entry.resumed_from = resumed_from
                self._worker_losses.pop(key, None)  # survived: clear strikes
                self.simulated_keys[key] = self.simulated_keys.get(key, 0) + 1
                if self.cache is not None:
                    self.cache.store(key, stats, point=point, elapsed=elapsed)
                return stats, SOURCE_SIMULATED, elapsed
        finally:
            if claim is not None:
                claim.release()

    async def _await_foreign_fill(self, key: str) -> Optional[ExecutionStats]:
        """Another process holds the fill claim for ``key``: poll for
        its record instead of double-computing.  ``None`` means the
        claim vanished or went stale without a record — the caller
        should race for the claim again."""
        cache = self.cache
        assert cache is not None, "foreign fills need a cache"
        while not self._draining:
            stats = cache.load(key)
            if stats is not None:
                return stats
            age = cache.claim_age(key)
            if (
                age < 0
                or age > self.config.claim_stale_s
                or cache.claim_holder_dead(key)
            ):
                return None
            await asyncio.sleep(self.config.foreign_poll_s)
        return None

    async def _run_in_pool(self, point: SimPoint) -> Any:
        args = (
            point,
            self.config.validate,
            False,  # audit: served numbers match the batch default
            self.config.point_timeout,
            None,  # max_steps: the machine's size-proportional default
            None,  # max_cycles
            self.config.lint,
            self._memo_dir(),
            self._checkpoint_dir(),
            max(1, self.config.checkpoint_interval),
            max(1, self.config.checkpoint_keep),
            self.config.engine,
        )
        marker_dir = self._marker_dir()
        fn = functools.partial(
            _attributed_simulate,
            str(marker_dir) if marker_dir is not None else None,
            point.content_key(),
            point.label(),
            args,
        )
        generation = self._pool_generation
        loop = self._loop
        assert loop is not None, "server not started"
        try:
            return await loop.run_in_executor(self._pool, fn)
        except BrokenExecutor:
            self._ensure_pool(generation)
            raise

    def _ensure_pool(self, broken_generation: int) -> None:
        """Single-flight pool rebuild after breakage.  A SIGKILLed
        worker dooms every in-flight future of its pool generation, so
        several fills notice near-simultaneously; only the first caller
        per generation swaps the pool (no ``await`` in here — the event
        loop makes the check-and-swap atomic)."""
        if broken_generation != self._pool_generation:
            return  # someone already replaced this generation
        if self._draining:
            return  # shutdown owns the pool now
        self._rebuild_pool("breakage")

    def _rebuild_pool(self, reason: str) -> None:
        """Swap in a fresh pool.  Runs synchronously (no ``await``), so
        attribution, the generation bump and the swap are atomic with
        respect to the event loop.  Attribution must happen *before*
        the old pool is killed — markers are per-worker files the kill
        orphans, and `_clear_markers` sweeps whatever remains."""
        culprits = self._attribute_worker_losses()
        self._pool_generation += 1
        self.stats.pool_rebuilds += 1
        if reason == "stall":
            self.stats.stall_rebuilds += 1
        broken, self._pool = self._pool, self._new_pool()
        self._kill_pool(broken)
        self._clear_markers()
        log.warning(
            "worker pool %s; rebuilt (generation %d, %d loss(es) "
            "attributed)",
            "wedged (stall watchdog)" if reason == "stall" else "broke",
            self._pool_generation, len(culprits),
        )

    def _attribute_worker_losses(self) -> List[str]:
        """Charge a strike to every point whose running marker is on
        disk at rebuild time — i.e. every point in flight when the pool
        died or wedged.

        Guilt cannot be narrowed to dead pids: the executor sets our
        ``BrokenExecutor`` while the self-killed culprit can still show
        as running (SIGKILL delivery races the pipe breaking) and it
        SIGTERMs the innocent workers itself moments later, so by any
        later observation *everyone* is dead.  In-flight-at-breakage is
        the honest signal; innocents are protected structurally — their
        strikes clear on the next success and they carry a stretched
        worker-lost retry budget until then.  Attributed strikes are
        re-journaled onto the point's ``admitted`` record so a poison
        point cannot reset its count by killing the server."""
        mdir = self._marker_dir()
        if mdir is None or not mdir.is_dir():
            return []
        culprits: List[Tuple[str, str]] = []
        try:
            markers = list(mdir.glob("*.json"))
        except OSError:
            return []
        for path in markers:
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                record = {}
            key = record.get("key")
            if key:
                culprits.append((key, record.get("label", "")))
            try:
                path.unlink()
            except OSError:
                pass
        for key, label in culprits:
            self._worker_losses[key] = self._worker_losses.get(key, 0) + 1
            self._loss_generations.setdefault(key, []).append(
                self._pool_generation
            )
            entry = self._inflight.get(key)
            if self.journal is not None and entry is not None:
                self.journal.record_admitted(
                    key, point_to_wire(entry.point), entry.lane,
                    entry.point.label(),
                    worker_losses=self._worker_losses[key],
                )
            log.warning(
                "worker loss attributed to %s (strike %d)",
                label or key[:16], self._worker_losses[key],
            )
        return [key for key, _label in culprits]

    def _clear_markers(self) -> None:
        mdir = self._marker_dir()
        if mdir is None or not mdir.is_dir():
            return
        for path in list(mdir.glob("*.json")):
            try:
                path.unlink()
            except OSError:
                pass

    async def _stall_watchdog(self) -> None:
        """The health plane's self-check: pending misses with no retire
        progress for ``stall_grace_s`` means the pool is wedged (a hung
        worker ``BrokenExecutor`` never fires for); rebuild it
        proactively.  The doomed ``run_in_executor`` futures then raise
        ``BrokenExecutor``, retry on the fresh pool, and resume from
        their newest snapshots — and a point that wedges the pool
        repeatedly accumulates strikes toward quarantine."""
        grace = self.config.stall_grace_s
        poll = max(0.05, min(1.0, grace / 4))
        while not self._draining:
            await asyncio.sleep(poll)
            if self._draining:
                return
            if self._pending_misses <= 0:
                self._last_progress = time.monotonic()
                continue
            if time.monotonic() - self._last_progress < grace:
                continue
            log.warning(
                "stall watchdog: no retire progress for %.1fs with %d "
                "pending miss(es); rebuilding the pool",
                grace, self._pending_misses,
            )
            self._rebuild_pool("stall")
            self._last_progress = time.monotonic()
