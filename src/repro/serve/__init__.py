"""Simulation-as-a-service: asyncio batch API over the simcache.

Turns the single-process batch stack into a shared local service:
many concurrent clients submit SimPoint grids or figure requests over
a socket; the server dedupes against the content-addressed simcache,
coalesces identical in-flight work, schedules misses on a preemptible
(checkpointing) worker fleet, and streams JSONL results back.

* :mod:`repro.serve.protocol` — the wire protocol (JSONL messages,
  point specs, error codes)
* :mod:`repro.serve.server` — :class:`BatchServer` + :class:`ServeConfig`
* :mod:`repro.serve.client` — :class:`ServeClient` library and the
  scripted ``python -m repro.serve.client`` CLI
"""

from .protocol import (
    LANES,
    PROTOCOL_VERSION,
    SOURCE_CACHE,
    SOURCE_COALESCED,
    SOURCE_SIMULATED,
    ProtocolError,
    point_from_wire,
    point_to_wire,
)
from .server import (
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_SERVE_CHECKPOINT_INTERVAL,
    DEFAULT_WORKERS,
    STATUS_PREEMPTED,
    BatchServer,
    ServeConfig,
    ServeStats,
)
_CLIENT_EXPORTS = (
    "FigureOutcome",
    "ServeBusy",
    "ServeClient",
    "ServeConnectionError",
    "SubmitOutcome",
)


def __getattr__(name: str) -> object:
    # lazy so `python -m repro.serve.client` doesn't import the module
    # twice (package init + runpy) and warn
    if name in _CLIENT_EXPORTS:
        from . import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BatchServer",
    "ServeConfig",
    "ServeStats",
    "ServeClient",
    "ServeBusy",
    "ServeConnectionError",
    "SubmitOutcome",
    "FigureOutcome",
    "ProtocolError",
    "point_from_wire",
    "point_to_wire",
    "PROTOCOL_VERSION",
    "LANES",
    "SOURCE_CACHE",
    "SOURCE_COALESCED",
    "SOURCE_SIMULATED",
    "STATUS_PREEMPTED",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_SERVE_CHECKPOINT_INTERVAL",
    "DEFAULT_WORKERS",
]
