"""Durable request journal: the crash-only half of the serve layer.

:class:`ServeJournal` is the serving twin of the batch stack's
:class:`~repro.experiments.faults.RunManifest`: an append-only JSONL
file (``<state-dir>/serve_journal.jsonl``) with the same durability
contract — every append is one ``write`` of one ``\\n``-terminated line
followed by flush+fsync, so a SIGKILL tears at most the final line,
which the loader tolerates and drops — and the same bounded-growth
contract (latest-record-per-key compaction, rewritten atomically via
temp + ``os.replace``).

What it journals differs from the manifest, because a *service* must
survive losing its process, not just its grid:

* an ``admitted`` record is written (and fsynced) for every new miss
  **before the client is acked**, carrying the full-fidelity wire spec
  (:func:`~repro.serve.protocol.point_to_wire`), so a restarted server
  can reconstruct and finish the point even if no client ever returns;
* a terminal record (``ok`` / ``failed`` / ``poisoned`` /
  ``preempted``) replaces it when the point resolves, carrying
  checkpoint provenance (``resumed_from``) and the resolution source —
  not the stats payload, which lives in the content-addressed simcache;
* ``poisoned`` records persist across restarts and block re-admission
  until ``cache gc --release-poisoned`` sweeps them;
* ``admitted`` records carry the point's attributed ``worker_losses``
  count, so a poison point cannot reset its strike count by killing
  the whole server.

Journal statuses::

    admitted   accepted, not yet resolved (replayed on restart)
    preempted  shutdown preempted it mid-point (replayed on restart)
    ok         resolved with stats (terminal; stats in simcache)
    failed     resolved as a PointFailure (terminal)
    poisoned   quarantined after repeated worker kills (terminal,
               blocks admission until released)
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from ..experiments.faults import STATUS_POISONED, PointFailure

log = logging.getLogger("repro.serve.journal")

#: the journal file, directly under the serve state dir (= cache root)
JOURNAL_FILENAME = "serve_journal.jsonl"

#: bump when the journal line format changes incompatibly
JOURNAL_FORMAT_VERSION = 1

#: journal record statuses
STATUS_ADMITTED = "admitted"
STATUS_OK = "ok"

#: statuses that mean "unfinished — replay me after a crash"
REPLAY_STATUSES = frozenset({STATUS_ADMITTED, "preempted"})

#: statuses that end a point's journal lifecycle
TERMINAL_STATUSES = frozenset({STATUS_OK, "failed", STATUS_POISONED})


def journal_path(state_dir: Union[str, Path]) -> Path:
    return Path(state_dir) / JOURNAL_FILENAME


def load_journal_records(
    path: Union[str, Path], cache_version: Optional[str] = None
) -> Tuple[Optional[Dict[str, Any]], Dict[str, Dict[str, Any]]]:
    """Parse a journal into ``(header, latest-record-per-key)``.

    Torn final lines (SIGKILL mid-append) are dropped; a missing file
    yields ``(None, {})``.  When ``cache_version`` is given, a header
    from a different format/registry generation is treated as absent —
    its records describe points whose keys no longer mean the same
    thing, so replaying them would be wrong.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError:
        return None, {}
    lines = raw.splitlines()
    if not lines:
        return None, {}
    try:
        header = json.loads(lines[0])
    except ValueError:
        header = None
    if (
        not isinstance(header, dict)
        or header.get("type") != "header"
        or header.get("version") != JOURNAL_FORMAT_VERSION
        or (
            cache_version is not None
            and header.get("cache_version") != cache_version
        )
    ):
        return None, {}
    latest: Dict[str, Dict[str, Any]] = {}
    for line in lines[1:]:
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn final append from a killed server
        if (
            not isinstance(record, dict)
            or record.get("type") != "point"
            or not record.get("key")
        ):
            continue
        latest[record["key"]] = record
    return header, latest


class ServeJournal:
    """Append-only fsynced request journal for one serve state dir.

    Opening the journal loads any prior generation's records, compacts
    them (header + latest record per key, atomic rewrite) and reopens
    for append — so a crash-restart loop re-parses a bounded file, not
    unbounded history.  A header from an incompatible format or cache
    generation is discarded with a logged warning, exactly like the
    run manifest.
    """

    def __init__(
        self, state_dir: Union[str, Path], cache_version: str = ""
    ) -> None:
        self.path = journal_path(state_dir)
        self.cache_version = cache_version
        #: key -> latest record (all statuses)
        self.records: Dict[str, Dict[str, Any]] = {}
        header, latest = load_journal_records(self.path)
        if self.path.exists() and header is None:
            log.warning(
                "journal %s is unreadable or from an incompatible build; "
                "starting fresh", self.path,
            )
        elif header is not None and (
            header.get("cache_version") != cache_version
        ):
            log.warning(
                "journal %s is from cache generation %r (this build: %r); "
                "starting fresh", self.path,
                header.get("cache_version"), cache_version,
            )
        else:
            self.records = latest
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._header_line = json.dumps({
            "type": "header",
            "kind": "serve-journal",
            "version": JOURNAL_FORMAT_VERSION,
            "cache_version": cache_version,
            "created": time.time(),
        }, sort_keys=True, separators=(",", ":"))
        self.compact()
        self._fh = open(self.path, "a", encoding="utf-8")

    # -- queries ------------------------------------------------------------

    def pending(self) -> Dict[str, Dict[str, Any]]:
        """Unfinished points (``admitted`` / ``preempted``) to replay."""
        return {
            key: record for key, record in self.records.items()
            if record.get("status") in REPLAY_STATUSES
        }

    def poisoned(self) -> Dict[str, Dict[str, Any]]:
        """Quarantined points, blocked from admission until released."""
        return {
            key: record for key, record in self.records.items()
            if record.get("status") == STATUS_POISONED
        }

    def lag(self) -> int:
        """Admitted-but-unresolved record count (the health verb's
        ``journal_lag``): how much work a crash right now would carry
        over to the next incarnation."""
        return len(self.pending())

    # -- journal I/O --------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        self.records[record["key"]] = record
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        try:
            self._fh.write(line + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except (OSError, ValueError) as exc:  # unwritable dir: degrade loudly
            log.warning("journal append failed (%s): %s", self.path, exc)

    def compact(self) -> None:
        """Atomically rewrite as header + latest record per key,
        dropping terminal ``ok``/``failed`` history (their payloads
        live in the simcache; keeping every completion forever would
        grow the journal with every point ever served).  ``admitted``,
        ``preempted`` and ``poisoned`` records — the ones a restart
        acts on — survive compaction."""
        keep = {
            key: record for key, record in self.records.items()
            if record.get("status") not in (STATUS_OK, "failed")
        }
        payload = "\n".join([
            self._header_line,
            *(
                json.dumps(r, sort_keys=True, separators=(",", ":"))
                for r in keep.values()
            ),
        ]) + "\n"
        tmp = self.path.with_name(self.path.name + ".compact.tmp")
        try:
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError as exc:
            log.warning("journal compaction failed (%s): %s", self.path, exc)
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        # os.replace orphans any open append handle's inode; reopen so
        # subsequent appends land in the compacted file
        fh = getattr(self, "_fh", None)
        if fh is not None and not fh.closed:
            try:
                fh.close()
                self._fh = open(self.path, "a", encoding="utf-8")
            except OSError as exc:
                log.warning("journal reopen failed (%s): %s", self.path, exc)

    def close(self) -> None:
        try:
            self._fh.close()
        except (OSError, ValueError):
            pass

    # -- recording ----------------------------------------------------------

    def record_admitted(
        self,
        key: str,
        spec: Dict[str, Any],
        lane: str,
        label: str,
        worker_losses: int = 0,
    ) -> None:
        """Journal an admitted miss *before* the client is acked.
        ``spec`` is the full-fidelity wire spec
        (:func:`~repro.serve.protocol.point_to_wire`) so a restarted
        server reconstructs the exact point."""
        self._append({
            "type": "point",
            "key": key,
            "status": STATUS_ADMITTED,
            "label": label,
            "lane": lane,
            "spec": spec,
            "worker_losses": worker_losses,
            "at": time.time(),
        })

    def record_ok(
        self,
        key: str,
        label: str,
        source: str,
        elapsed: float = 0.0,
        resumed_from: Optional[str] = None,
        recovered: bool = False,
    ) -> None:
        """Terminal success.  ``resumed_from`` names the checkpoint
        snapshot the winning attempt restored from (checkpoint
        provenance); ``recovered`` marks a point the *replay* found
        already present in the simcache (finished, but the terminal
        record was lost to the kill)."""
        record: Dict[str, Any] = {
            "type": "point",
            "key": key,
            "status": STATUS_OK,
            "label": label,
            "source": source,
            "elapsed_s": round(elapsed, 6),
            "at": time.time(),
        }
        if resumed_from is not None:
            record["resumed_from"] = resumed_from
        if recovered:
            record["recovered"] = True
        self._append(record)

    def record_failure(
        self,
        failure: PointFailure,
        diagnostics: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Terminal failure (including ``poisoned`` and shutdown
        ``preempted`` — the latter is replayed on restart).
        ``diagnostics`` carries quarantine forensics (strike count,
        attributed pool generations) for ``poisoned`` records."""
        record: Dict[str, Any] = {
            "type": "point", **failure.to_dict(), "at": time.time(),
        }
        record.pop("traceback", None)  # keep the journal compact
        if failure.status in REPLAY_STATUSES:
            # a preempted point is replayed on restart: carry the spec,
            # lane and strike count forward from its admitted record
            prior = self.records.get(failure.key) or {}
            for carried in ("spec", "lane", "worker_losses"):
                if carried in prior:
                    record.setdefault(carried, prior[carried])
        if diagnostics:
            record["diagnostics"] = diagnostics
        self._append(record)


def rewrite_journal(
    path: Union[str, Path],
    records: Iterable[Dict[str, Any]],
    header_line: Optional[str] = None,
) -> bool:
    """Offline atomic rewrite (``cache gc``): header + given records.
    The journal must not be open for append elsewhere.  Returns
    ``False`` (logged) on failure."""
    path = Path(path)
    if header_line is None:
        try:
            header_line = path.read_text(
                encoding="utf-8"
            ).splitlines()[0]
        except (OSError, IndexError):
            return False
    payload = "\n".join([
        header_line,
        *(
            json.dumps(r, sort_keys=True, separators=(",", ":"))
            for r in records
        ),
    ]) + "\n"
    tmp = path.with_name(path.name + ".compact.tmp")
    try:
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, path)
        return True
    except OSError as exc:
        log.warning("journal rewrite failed (%s): %s", path, exc)
        try:
            tmp.unlink()
        except OSError:
            pass
        return False
