"""Wire protocol for the simulation service: newline-delimited JSON.

One message per line, UTF-8, ``\\n``-terminated.  The protocol is
deliberately boring — any language with sockets and a JSON parser is a
client — and *pipelined*: a client may have many requests in flight on
one connection; every server message carries the ``id`` of the request
it belongs to, so responses interleave freely.

Client -> server
----------------

``{"type": "submit", "id": "...", "points": [SPEC...],
   "priority": "normal"|"high"}``
    A grid request: resolve every point, stream results back.
    ``SPEC`` is a point spec (below).  ``priority: "high"`` routes
    cache misses through the high lane of the miss queue.

``{"type": "figure", "id": "...", "figure": "figure1", "scale":
   "tiny", "benchmarks": ["addition"], "priority": ...}``
    A figure request: the server enumerates the same simulation grid
    the batch CLI would, resolves it (cache / coalesce / simulate),
    and returns the rendered table.  A figure whose grid is fully
    cached never touches the miss queue at all — the cached-hot lane.

``{"type": "stats", "id": "..."}``
    Server counters snapshot.

``{"type": "health", "id": "..."}``
    Supervised health plane: journal lag (admitted-but-unresolved
    points), pool generation + stall-watchdog state, quarantine
    (poisoned-point) counts, and per-lane miss-queue depths.

``{"type": "ping", "id": "..."}``
    Liveness probe.

``{"type": "shutdown", "id": "..."}``
    Ask the server to shut down gracefully (local trusted service;
    same effect as SIGTERM).

Server -> client
----------------

``{"type": "ack", "id", "n", "lane"}``            request admitted
``{"type": "busy", "id", "queue_depth", "limit", "retry_after_s"}``
    admission control rejected the request: the miss queue is full.
    Nothing was enqueued; retry after the hinted delay.
``{"type": "progress", "id", "k", "n", "label", "source", "elapsed_s"}``
``{"type": "result", "id", "index", "key", "source", "stats"}``
    one resolved point (``index`` into the request's ``points``);
    ``source`` is ``cache`` / ``coalesced`` / ``simulated``.
``{"type": "point_failed", "id", "index", "key", "failure"}``
    ``failure.status`` follows the batch taxonomy (``failed`` /
    ``timed-out`` / ``worker-lost`` / ``preempted``) plus the serving
    layer's ``poisoned``: the point is quarantined after repeated
    attributed worker deaths and is refused without simulation until
    ``cache gc --release-poisoned``.
``{"type": "table", "id", "figure", "headers", "rows"}``
``{"type": "done", "id", "ok", "failed", "sources", "server"}``
    request complete; ``sources`` tallies this request's points by
    resolution source, ``server`` is the live counter snapshot.
``{"type": "error", "id", "code", "message"}``
``{"type": "stats", "id", "server"}``, ``{"type": "health", "id",
"health"}``, ``{"type": "pong", "id"}``, ``{"type": "bye", "id"}``

Point specs
-----------

A point spec mirrors :class:`repro.experiments.parallel.SimPoint`::

    {"benchmark": "addition", "variant": "vis",
     "cpu": "ooo-4way" | {...ProcessorConfig fields...},
     "mem": {...MemoryConfig fields...},        # optional
     "scale": "tiny" | {...WorkloadScale fields...}}

``cpu`` and ``scale`` accept registry names (:data:`NAMED_CONFIGS`,
:data:`NAMED_SCALES`) or full field dictionaries; ``mem`` defaults to
the scale-matched memory configuration, exactly like the batch CLI.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..cpu.config import ProcessorConfig
from ..mem.config import MemoryConfig
from ..workloads.base import Variant
from ..workloads.params import (
    DEFAULT_SCALE,
    SMALL_SCALE,
    TINY_SCALE,
    WorkloadScale,
)
from ..workloads.suite import names as workload_names
from ..experiments.parallel import SimPoint

#: bump when a message or point-spec field changes incompatibly
#: (v2: ``health`` verb + ``poisoned`` failure status; existing v1
#: messages are unchanged)
PROTOCOL_VERSION = 2

#: one message must fit in one line; grids of a few thousand points do
MAX_LINE_BYTES = 16 * 1024 * 1024

#: registry names accepted in point specs (mirrors the trace CLI)
NAMED_CONFIGS = {
    "inorder-1way": ProcessorConfig.inorder_1way,
    "inorder-4way": ProcessorConfig.inorder_4way,
    "ooo-4way": ProcessorConfig.ooo_4way,
}

NAMED_SCALES = {
    "default": DEFAULT_SCALE,
    "small": SMALL_SCALE,
    "tiny": TINY_SCALE,
}

#: miss-queue lanes, in scheduling order
LANES = ("high", "normal")

# error codes carried by "error" / "busy" messages
ERR_BAD_REQUEST = "bad-request"
ERR_BUSY = "busy"
ERR_SHUTTING_DOWN = "shutting-down"
ERR_INTERNAL = "internal"

# per-point resolution sources (the "result" message + done tallies)
SOURCE_CACHE = "cache"
SOURCE_COALESCED = "coalesced"
SOURCE_SIMULATED = "simulated"
SOURCES = (SOURCE_CACHE, SOURCE_COALESCED, SOURCE_SIMULATED)


class ProtocolError(ValueError):
    """A message that cannot be parsed or validated.  Carries the
    machine-readable ``code`` echoed in the error reply."""

    def __init__(self, message: str, code: str = ERR_BAD_REQUEST) -> None:
        super().__init__(message)
        self.code = code


def encode(message: Dict[str, Any]) -> bytes:
    """One wire line for ``message`` (compact JSON + newline)."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a message dict (type-checked)."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"unparseable message: {exc}") from None
    if not isinstance(message, dict) or not isinstance(
        message.get("type"), str
    ):
        raise ProtocolError("message must be an object with a string 'type'")
    return message


# ---------------------------------------------------------------------------
# Point specs <-> SimPoint
# ---------------------------------------------------------------------------


def _cpu_from_wire(spec: Any) -> ProcessorConfig:
    if isinstance(spec, str):
        factory = NAMED_CONFIGS.get(spec)
        if factory is None:
            raise ProtocolError(
                f"unknown cpu config {spec!r}; named configs: "
                f"{', '.join(sorted(NAMED_CONFIGS))}"
            )
        return factory()
    if isinstance(spec, dict):
        try:
            return ProcessorConfig.from_dict(spec)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad cpu config: {exc}") from None
    raise ProtocolError("'cpu' must be a registry name or a field dict")


def _scale_from_wire(spec: Any) -> WorkloadScale:
    if spec is None:
        return DEFAULT_SCALE
    if isinstance(spec, str):
        scale = NAMED_SCALES.get(spec)
        if scale is None:
            raise ProtocolError(
                f"unknown scale {spec!r}; named scales: "
                f"{', '.join(sorted(NAMED_SCALES))}"
            )
        return scale
    if isinstance(spec, dict):
        try:
            return WorkloadScale.from_dict(spec)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad scale: {exc}") from None
    raise ProtocolError("'scale' must be a registry name or a field dict")


def _mem_from_wire(spec: Any, scale: WorkloadScale) -> MemoryConfig:
    if spec is None:
        return scale.memory_config()
    if isinstance(spec, dict):
        try:
            return MemoryConfig.from_dict(spec)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad mem config: {exc}") from None
    raise ProtocolError("'mem' must be a field dict (or omitted)")


def point_from_wire(spec: Any) -> SimPoint:
    """Validate one point spec and build the :class:`SimPoint`."""
    if not isinstance(spec, dict):
        raise ProtocolError("each point must be an object")
    benchmark = spec.get("benchmark")
    if benchmark not in set(workload_names()):
        raise ProtocolError(
            f"unknown benchmark {benchmark!r}; known: "
            f"{', '.join(workload_names())}"
        )
    try:
        variant = Variant(spec.get("variant", "scalar"))
    except ValueError:
        raise ProtocolError(
            f"unknown variant {spec.get('variant')!r}; known: "
            f"{', '.join(v.value for v in Variant)}"
        ) from None
    scale = _scale_from_wire(spec.get("scale"))
    cpu = _cpu_from_wire(spec.get("cpu", "ooo-4way"))
    mem = _mem_from_wire(spec.get("mem"), scale)
    return SimPoint(benchmark, variant, cpu, mem, scale)


def point_to_wire(point: SimPoint) -> Dict[str, Any]:
    """The full-fidelity wire spec for ``point`` (field dicts, so the
    receiving side reconstructs it exactly)."""
    return {
        "benchmark": point.benchmark,
        "variant": point.variant.value,
        "cpu": point.cpu.to_dict(),
        "mem": point.mem.to_dict(),
        "scale": point.scale.to_dict(),
    }


def validate_lane(priority: Optional[str]) -> str:
    lane = priority or "normal"
    if lane not in LANES:
        raise ProtocolError(
            f"unknown priority {priority!r}; expected one of {LANES}"
        )
    return lane
