"""Memory-system parameters (Table 3 of the paper).

With a 1 GHz clock (Table 2) one cycle is one nanosecond, so the
nanosecond figures of Table 3 are used directly as cycle counts.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class MemoryConfig:
    """Two-level write-back hierarchy + interleaved main memory."""

    line_size: int = 64

    l1_size: int = 64 * 1024
    l1_assoc: int = 2
    l1_ports: int = 2
    l1_hit_cycles: int = 2
    l1_mshrs: int = 12

    l2_size: int = 128 * 1024
    l2_assoc: int = 4
    l2_ports: int = 1
    l2_hit_cycles: int = 20
    l2_mshrs: int = 12

    #: maximum requests combined into one outstanding MSHR entry
    mshr_combine_max: int = 8

    #: total latency of an L2 miss (L1-miss detection to data return)
    mem_latency_cycles: int = 100
    #: number of interleaved memory banks
    mem_banks: int = 4
    #: per-line bank occupancy (limits streaming bandwidth)
    mem_bank_busy_cycles: int = 24

    def __post_init__(self) -> None:
        for level, size, assoc in (
            ("L1", self.l1_size, self.l1_assoc),
            ("L2", self.l2_size, self.l2_assoc),
        ):
            if size % (self.line_size * assoc) != 0:
                raise ValueError(
                    f"{level} size {size} not divisible by line*assoc"
                )

    @property
    def l1_sets(self) -> int:
        return self.l1_size // (self.line_size * self.l1_assoc)

    @property
    def l2_sets(self) -> int:
        return self.l2_size // (self.line_size * self.l2_assoc)

    def to_dict(self) -> Dict:
        """All fields, JSON-safe, suitable for round-tripping."""
        return asdict(self)

    def content_key(self) -> str:
        """Canonical JSON of every timing-relevant field (see
        :meth:`repro.cpu.config.ProcessorConfig.content_key`)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict) -> "MemoryConfig":
        return cls(**data)

    def with_l1_size(self, size: int) -> "MemoryConfig":
        return replace(self, l1_size=size)

    def with_l2_size(self, size: int) -> "MemoryConfig":
        return replace(self, l2_size=size)

    def scaled(self, factor: int) -> "MemoryConfig":
        """Scale both cache capacities down by ``factor``.

        Used together with proportionally scaled image sizes to keep the
        paper's working-set:cache-capacity ratios while keeping Python
        simulation time practical (DESIGN.md substitution 3).  Capacities
        never drop below one set per way.
        """
        l1 = max(self.l1_size // factor, self.line_size * self.l1_assoc)
        l2 = max(self.l2_size // factor, self.line_size * self.l2_assoc)
        return replace(self, l1_size=l1, l2_size=l2)


#: The paper's default memory system (Table 3).
PAPER_DEFAULT = MemoryConfig()

#: Scaling factor applied to cache capacities and image areas by the
#: default experiment configuration.
DEFAULT_SCALE = 32

#: The scaled default used by the experiment harness.
SCALED_DEFAULT = PAPER_DEFAULT.scaled(DEFAULT_SCALE)
