"""Timing model of the two-level non-blocking cache hierarchy.

Models, per Table 3 and Section 2.2.1:

* set-associative write-back write-allocate L1 and L2 with LRU,
* request ports (2 at L1, 1 pipelined port at L2),
* 12 MSHRs per cache, combining up to 8 requests per line; a request
  that cannot get an MSHR (or exceeds the combine limit) stalls, which
  reproduces the store-backup contention effect of Section 3.1,
* 4-way interleaved main memory with per-bank occupancy,
* write-back traffic on dirty evictions,
* non-binding software prefetches that fill the L1 (Section 2.2.1),
  with useful/late accounting (Section 4.2).

The caches are tag-only: data correctness is the functional machine's
job.  ``access()`` returns the completion cycle and the satisfying
level, which the CPU models feed into the paper's execution-time
components (L1-hit stall vs. L1-miss stall).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from .config import MemoryConfig

# Access kinds.
A_LOAD = 0
A_STORE = 1
A_PREFETCH = 2

# Satisfying levels.
LEVEL_L1 = 0
LEVEL_L2 = 1
LEVEL_MEM = 2


@dataclass(slots=True)
class _MshrEntry:
    line: int
    ready: int
    combines: int = 1
    level: int = LEVEL_L2
    from_prefetch: bool = False


class _CacheLevel:
    """Tags + LRU + dirty bits for one cache level."""

    __slots__ = ("sets", "assoc", "nsets", "use_counter")

    def __init__(self, nsets: int, assoc: int) -> None:
        self.nsets = nsets
        self.assoc = assoc
        # per-set dict: line -> (last_use, dirty)
        self.sets: List[Dict[int, List[int]]] = [dict() for _ in range(nsets)]
        self.use_counter = 0

    def lookup(self, line: int) -> bool:
        entry = self.sets[line % self.nsets].get(line)
        if entry is None:
            return False
        self.use_counter += 1
        entry[0] = self.use_counter
        return True

    def set_dirty(self, line: int) -> None:
        entry = self.sets[line % self.nsets].get(line)
        if entry is not None:
            entry[1] = 1

    def install(self, line: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Insert ``line``; returns ``(victim_line, victim_dirty)`` if an
        eviction happened, else ``None``."""
        cache_set = self.sets[line % self.nsets]
        self.use_counter += 1
        if line in cache_set:
            entry = cache_set[line]
            entry[0] = self.use_counter
            if dirty:
                entry[1] = 1
            return None
        victim = None
        if len(cache_set) >= self.assoc:
            # LRU victim: min last_use (use_counter values are unique,
            # so there is never a tie to break).
            victim_line = -1
            victim_use = victim_dirty = 0
            for k, e in cache_set.items():
                if victim_line < 0 or e[0] < victim_use:
                    victim_line = k
                    victim_use = e[0]
                    victim_dirty = e[1]
            victim = (victim_line, bool(victim_dirty))
            del cache_set[victim_line]
        cache_set[line] = [self.use_counter, 1 if dirty else 0]
        return victim

    def contains(self, line: int) -> bool:
        return line in self.sets[line % self.nsets]

    def flush(self) -> None:
        for cache_set in self.sets:
            cache_set.clear()

    # -- checkpoint/restore -------------------------------------------------

    def snapshot(self) -> Dict:
        """Tag arrays as ``[[line, last_use, dirty], ...]`` per set —
        item lists preserve dict insertion order exactly, so a restored
        level iterates identically to the original (LRU victim choice
        is already unambiguous: ``use_counter`` values are unique)."""
        return {
            "use_counter": self.use_counter,
            "sets": [
                [[line, entry[0], entry[1]] for line, entry in cache_set.items()]
                for cache_set in self.sets
            ],
        }

    def restore(self, state: Dict) -> None:
        sets = state["sets"]
        if len(sets) != self.nsets:
            raise ValueError(
                f"snapshot has {len(sets)} cache sets, expected {self.nsets}"
            )
        for cache_set, saved in zip(self.sets, sets):
            if len(saved) > self.assoc:
                raise ValueError("snapshot cache set exceeds associativity")
            cache_set.clear()
            for line, last_use, dirty in saved:
                cache_set[int(line)] = [int(last_use), int(dirty)]
        self.use_counter = int(state["use_counter"])


@dataclass
class MemoryStats:
    """Counters the experiments report (Sections 3.1, 4.1, 4.2)."""

    loads: int = 0
    stores: int = 0
    prefetches: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    mshr_combined: int = 0
    mshr_full_stalls: int = 0
    combine_limit_stalls: int = 0
    writebacks: int = 0
    prefetch_useful: int = 0
    prefetch_late: int = 0
    prefetch_redundant: int = 0
    load_miss_overlap: Dict[int, int] = field(default_factory=dict)
    mshr_occupancy: Dict[int, int] = field(default_factory=dict)

    @property
    def l1_accesses(self) -> int:
        return self.loads + self.stores + self.prefetches

    @property
    def l1_miss_rate(self) -> float:
        accesses = self.l1_accesses
        return self.l1_misses / accesses if accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        refs = self.l2_hits + self.l2_misses
        return self.l2_misses / refs if refs else 0.0

    @property
    def max_load_miss_overlap(self) -> int:
        return max(self.load_miss_overlap, default=0)

    def to_dict(self) -> Dict:
        """JSON-safe dict (histogram keys become strings in JSON;
        :meth:`from_dict` restores them to ints)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "MemoryStats":
        data = dict(data)
        for histogram in ("load_miss_overlap", "mshr_occupancy"):
            if histogram in data:
                data[histogram] = {
                    int(k): v for k, v in data[histogram].items()
                }
        return cls(**data)


class MemorySystem:
    """Event-based timing model of the full hierarchy."""

    def __init__(self, config: MemoryConfig, tracer=None) -> None:
        self.config = config
        self._line_shift = config.line_size.bit_length() - 1
        if (1 << self._line_shift) != config.line_size:
            raise ValueError("line size must be a power of two")
        # Hot-path scalars, read once: ``access`` runs per memory event.
        self._l1_hit_cycles = config.l1_hit_cycles
        self._l2_hit_cycles = config.l2_hit_cycles
        self._combine_max = config.mshr_combine_max
        self._l1_mshr_max = config.l1_mshrs
        self._l2_mshr_max = config.l2_mshrs
        self._nbanks = config.mem_banks
        self._mem_latency = config.mem_latency_cycles
        self._bank_busy = config.mem_bank_busy_cycles
        self.l1 = _CacheLevel(config.l1_sets, config.l1_assoc)
        self.l2 = _CacheLevel(config.l2_sets, config.l2_assoc)
        self._l1_ports = [0] * config.l1_ports
        self._l2_ports = [0] * config.l2_ports
        self._banks = [0] * config.mem_banks
        self._l1_mshrs: Dict[int, _MshrEntry] = {}
        self._l2_mshrs: Dict[int, _MshrEntry] = {}
        self._prefetched_lines: Dict[int, bool] = {}  # line -> consumed?
        self.stats = MemoryStats()
        #: optional :class:`repro.trace.Tracer`.  When set, ``access``
        #: is shadowed by the traced wrapper on this *instance*, so the
        #: untraced hot path pays nothing — not even a None test.
        self._tracer = tracer
        if tracer is not None:
            self.access = self._traced_access  # type: ignore[method-assign]

    # -- helpers ---------------------------------------------------------------

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def _take_port(self, ports: List[int], cycle: int) -> int:
        """Claim the earliest-free port at or after ``cycle``; each
        request occupies its port for one cycle (pipelined)."""
        best = 0
        for i in range(1, len(ports)):
            if ports[i] < ports[best]:
                best = i
        start = cycle if ports[best] <= cycle else ports[best]
        ports[best] = start + 1
        return start

    def _prune(self, mshrs: Dict[int, _MshrEntry], cycle: int) -> None:
        if not mshrs:
            return
        done = [line for line, entry in mshrs.items() if entry.ready <= cycle]
        for line in done:
            del mshrs[line]

    # -- the main entry point -----------------------------------------------------

    def access(self, kind: int, addr: int, cycle: int) -> Tuple[int, int]:
        """Simulate one request; returns ``(completion_cycle, level)``.

        ``cycle`` is when the CPU presents the request to the L1.
        """
        line = addr >> self._line_shift
        l1 = self.l1
        entry = l1.sets[line % l1.nsets].get(line)
        if entry is not None:
            # Fast path: line present with no in-flight fill — the
            # overwhelmingly common case, so the port claim, prune, LRU
            # touch and stats bumps are inlined.  Every state
            # transition matches the general path below exactly: the
            # port claim is computed without committing, an MSHR entry
            # that the general path's prune would remove (ready <=
            # start) does not count as pending, and on commit the same
            # prune runs so later calls see an identical MSHR dict.
            ports = self._l1_ports
            best = 0
            for i in range(1, len(ports)):
                if ports[i] < ports[best]:
                    best = i
            free = ports[best]
            start = cycle if free <= cycle else free
            mshrs = self._l1_mshrs
            pending = mshrs.get(line) if mshrs else None
            if pending is None or pending.ready <= start:
                ports[best] = start + 1
                if mshrs:
                    expired = [
                        ln for ln, e in mshrs.items() if e.ready <= start
                    ]
                    for ln in expired:
                        del mshrs[ln]
                stats = self.stats
                stats.l1_hits += 1
                l1.use_counter += 1
                entry[0] = l1.use_counter
                if kind == A_LOAD:
                    stats.loads += 1
                    if self._prefetched_lines.pop(line, None) is False:
                        stats.prefetch_useful += 1
                elif kind == A_STORE:
                    stats.stores += 1
                    entry[1] = 1
                else:
                    stats.prefetches += 1
                    stats.prefetch_redundant += 1
                return start + self._l1_hit_cycles, LEVEL_L1

        stats = self.stats
        if kind == A_LOAD:
            stats.loads += 1
        elif kind == A_STORE:
            stats.stores += 1
        else:
            stats.prefetches += 1

        # _take_port + _prune, inlined (this path runs per L1 miss).
        ports = self._l1_ports
        best = 0
        for i in range(1, len(ports)):
            if ports[i] < ports[best]:
                best = i
        start = cycle if ports[best] <= cycle else ports[best]
        ports[best] = start + 1
        mshrs = self._l1_mshrs
        if mshrs:
            done = [ln for ln, e in mshrs.items() if e.ready <= start]
            for ln in done:
                del mshrs[ln]

        # A line whose fill is still in flight is *not* yet present,
        # even though its tag is installed: such accesses combine into
        # the outstanding MSHR (or stall at the combine limit).
        pending = mshrs.get(line)
        if pending is not None:
            if pending.from_prefetch and kind == A_LOAD:
                stats.prefetch_late += 1
                self._prefetched_lines.pop(line, None)
                pending.from_prefetch = False
            if kind == A_STORE:
                self.l1.set_dirty(line)
            if pending.combines < self._combine_max:
                pending.combines += 1
                stats.mshr_combined += 1
                done = pending.ready
                if done < start + self._l1_hit_cycles:
                    done = start + self._l1_hit_cycles
                return done, pending.level
            # Combine limit reached: the request waits for the fill and
            # then re-executes as a hit (Section 3.1's write backup).
            stats.combine_limit_stalls += 1
            return pending.ready + self._l1_hit_cycles, pending.level

        if self.l1.lookup(line):
            stats.l1_hits += 1
            if kind == A_STORE:
                self.l1.set_dirty(line)
            elif kind == A_LOAD and self._prefetched_lines.pop(line, None) is False:
                stats.prefetch_useful += 1
            if kind == A_PREFETCH:
                stats.prefetch_redundant += 1
            return start + self._l1_hit_cycles, LEVEL_L1

        # L1 miss path: allocate a fresh MSHR.
        stats.l1_misses += 1

        # Need a fresh L1 MSHR.
        if len(mshrs) >= self._l1_mshr_max:
            stats.mshr_full_stalls += 1
            free_at = min(entry.ready for entry in mshrs.values())
            start = free_at if free_at > start else start
            self._prune(mshrs, start)

        occupancy = len(mshrs)
        stats.mshr_occupancy[occupancy] = stats.mshr_occupancy.get(occupancy, 0) + 1
        if kind == A_LOAD:
            overlap = sum(
                1 for entry in self._l1_mshrs.values() if not entry.from_prefetch
            )
            stats.load_miss_overlap[overlap] = (
                stats.load_miss_overlap.get(overlap, 0) + 1
            )

        fill_ready, level = self._l2_access(kind, line, start)

        self._l1_mshrs[line] = _MshrEntry(
            line=line,
            ready=fill_ready,
            level=level,
            from_prefetch=(kind == A_PREFETCH),
        )
        if kind == A_PREFETCH:
            self._prefetched_lines[line] = False
        victim = self.l1.install(line, dirty=(kind == A_STORE))
        if victim is not None and victim[1]:
            self._writeback(victim[0], fill_ready)
        return fill_ready, level

    def _traced_access(self, kind: int, addr: int, cycle: int) -> Tuple[int, int]:
        """``access`` plus one EV_MEM trace event per request (installed
        as the instance's ``access`` when a tracer is attached)."""
        done, level = MemorySystem.access(self, kind, addr, cycle)
        self._tracer.mem(kind, addr, cycle, done, level)
        return done, level

    # -- internals -------------------------------------------------------------------

    def _l2_access(self, kind: int, line: int, l1_miss_cycle: int) -> Tuple[int, int]:
        """L1-miss service: returns (fill-ready cycle at L1, level)."""
        stats = self.stats
        request = l1_miss_cycle + 1  # miss detection
        # _take_port + _prune, inlined (runs per L1 miss).
        ports = self._l2_ports
        best = 0
        for i in range(1, len(ports)):
            if ports[i] < ports[best]:
                best = i
        start = request if ports[best] <= request else ports[best]
        ports[best] = start + 1
        queueing = start - request
        mshrs = self._l2_mshrs
        if mshrs:
            done = [ln for ln, e in mshrs.items() if e.ready <= start]
            for ln in done:
                del mshrs[ln]

        pending = mshrs.get(line)
        if pending is not None:
            # in-flight L2 fill: combine or stall, as at the L1
            if pending.combines < self._combine_max:
                pending.combines += 1
                ready = max(pending.ready, start + self._l2_hit_cycles)
                return ready, LEVEL_MEM
            return pending.ready + self._l2_hit_cycles, LEVEL_MEM

        if self.l2.lookup(line):
            stats.l2_hits += 1
            return start + self._l2_hit_cycles, LEVEL_L2

        stats.l2_misses += 1
        if len(mshrs) >= self._l2_mshr_max:
            free_at = min(entry.ready for entry in mshrs.values())
            start = free_at if free_at > start else start
            self._prune(mshrs, start)

        bank = line % self._nbanks
        bank_start = max(start, self._banks[bank])
        self._banks[bank] = bank_start + self._bank_busy
        bank_queueing = bank_start - start
        # Total uncontended latency is mem_latency_cycles from the L1
        # miss; contention at the L2 port and the bank adds on top.
        ready = (
            l1_miss_cycle
            + self._mem_latency
            + queueing
            + bank_queueing
        )
        self._l2_mshrs[line] = _MshrEntry(line=line, ready=ready, level=LEVEL_MEM)
        victim = self.l2.install(line, dirty=(kind == A_STORE))
        if victim is not None and victim[1]:
            self._writeback_to_memory(victim[0], ready)
        return ready, LEVEL_MEM

    def _writeback(self, line: int, cycle: int) -> None:
        """Dirty eviction from L1 into the L2.

        Writebacks drain through a write buffer during idle L2-port
        cycles, so they are not charged against demand misses (charging
        them makes a *larger* L1 look slower whenever its evictions
        synchronize with its misses — a artifact real writeback buffers
        exist to prevent)."""
        self.stats.writebacks += 1
        self.l2.install(line, dirty=True)

    def _writeback_to_memory(self, line: int, cycle: int) -> None:
        """Dirty eviction from L2: occupies a memory bank."""
        self.stats.writebacks += 1
        bank = line % self._nbanks
        start = max(cycle, self._banks[bank])
        self._banks[bank] = start + self._bank_busy

    # -- checkpoint/restore -----------------------------------------------------

    @staticmethod
    def _mshrs_snapshot(mshrs: Dict[int, _MshrEntry]) -> List[List]:
        return [
            [line, e.ready, e.combines, e.level, e.from_prefetch]
            for line, e in mshrs.items()
        ]

    @staticmethod
    def _mshrs_restore(mshrs: Dict[int, _MshrEntry], saved: List[List]) -> None:
        mshrs.clear()
        for line, ready, combines, level, from_prefetch in saved:
            mshrs[int(line)] = _MshrEntry(
                line=int(line),
                ready=int(ready),
                combines=int(combines),
                level=int(level),
                from_prefetch=bool(from_prefetch),
            )

    def snapshot(self) -> Dict:
        """Serialize tags/LRU/dirty state, port and bank occupancy,
        in-flight MSHRs, prefetch bookkeeping and the stats counters.
        Dicts are stored as item lists so insertion order — and with it
        every ``min``/iteration tie-break — survives the round trip."""
        return {
            "l1": self.l1.snapshot(),
            "l2": self.l2.snapshot(),
            "l1_ports": list(self._l1_ports),
            "l2_ports": list(self._l2_ports),
            "banks": list(self._banks),
            "l1_mshrs": self._mshrs_snapshot(self._l1_mshrs),
            "l2_mshrs": self._mshrs_snapshot(self._l2_mshrs),
            "prefetched_lines": [
                [line, consumed]
                for line, consumed in self._prefetched_lines.items()
            ],
            "stats": self.stats.to_dict(),
        }

    def restore(self, state: Dict) -> None:
        """Reinstate :meth:`snapshot` state.  The instance-level traced
        ``access`` shadow (set by the constructor when a tracer is
        attached) is deliberately untouched — traced-ness is part of the
        snapshot identity meta, not of this payload."""
        if len(state["l1_ports"]) != len(self._l1_ports):
            raise ValueError("snapshot L1 port count mismatch")
        if len(state["l2_ports"]) != len(self._l2_ports):
            raise ValueError("snapshot L2 port count mismatch")
        if len(state["banks"]) != len(self._banks):
            raise ValueError("snapshot memory bank count mismatch")
        self.l1.restore(state["l1"])
        self.l2.restore(state["l2"])
        self._l1_ports[:] = [int(x) for x in state["l1_ports"]]
        self._l2_ports[:] = [int(x) for x in state["l2_ports"]]
        self._banks[:] = [int(x) for x in state["banks"]]
        self._mshrs_restore(self._l1_mshrs, state["l1_mshrs"])
        self._mshrs_restore(self._l2_mshrs, state["l2_mshrs"])
        self._prefetched_lines.clear()
        for line, consumed in state["prefetched_lines"]:
            self._prefetched_lines[int(line)] = bool(consumed)
        self.stats = MemoryStats.from_dict(state["stats"])

    # -- maintenance --------------------------------------------------------------------

    def flush(self) -> None:
        """Invalidate all cached state (used between experiment phases)."""
        self.l1.flush()
        self.l2.flush()
        self._l1_mshrs.clear()
        self._l2_mshrs.clear()
        self._prefetched_lines.clear()
