"""Memory-hierarchy timing models (Table 3)."""

from .config import DEFAULT_SCALE, MemoryConfig, PAPER_DEFAULT, SCALED_DEFAULT
from .system import (
    A_LOAD,
    A_PREFETCH,
    A_STORE,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_MEM,
    MemoryStats,
    MemorySystem,
)

__all__ = [
    "DEFAULT_SCALE",
    "MemoryConfig",
    "PAPER_DEFAULT",
    "SCALED_DEFAULT",
    "A_LOAD",
    "A_PREFETCH",
    "A_STORE",
    "LEVEL_L1",
    "LEVEL_L2",
    "LEVEL_MEM",
    "MemoryStats",
    "MemorySystem",
]
