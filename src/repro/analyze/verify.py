"""Top-level entry points of the SVIS program verifier.

``analyze_program`` runs every pass (structure, dataflow, value
analysis, VIS idiom lint) and returns an
:class:`~repro.analyze.diagnostics.AnalysisReport`; the result is
memoized on the ``Program`` object so the pre-run gate, the ``lint``
CLI and the tests never pay for the analysis twice.

``verify_program`` is the gate: it raises :class:`VerificationError`
when the report contains gating diagnostics (errors; plus warnings
under ``strict``).

The gate also supports a tiny persistent *verdict memo*
(``memo_dir``): gate verdicts — the gating diagnostics only, never
the full info-level report — are stored on disk keyed by a content
digest of the program (:func:`program_digest`).  A repeated cold-cache
grid run then pays only hashing (~1 ms/program) instead of the full
multi-pass analysis; the first-ever run of a given program build still
verifies in full.  The experiment runner points the memo at
``<simcache>/analysis/`` so ``--no-cache`` (no persistence) also
disables it.

``ANALYZER_VERSION`` is part of the DiskCache key material — bump it
whenever a change to the analyzer alters gate semantics, so cached
experiment points from an older gate are re-verified instead of
silently reused.  The digest folds the version in, so stale memo
verdicts self-invalidate too.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from ..asm.program import Program
from .cfg import CFG
from .dataflow import (
    run_init_checks,
    run_liveness_checks,
    run_regleak_checks,
    run_structural_checks,
)
from .diagnostics import AnalysisReport, Diagnostic, Severity, marker_at
from .vislint import run_vis_idiom_checks

#: bump when analyzer semantics change (part of the DiskCache key)
ANALYZER_VERSION = 1

_MEMO_ATTR = "_analysis_report"
_VERDICT_ATTR = "_gate_verdict_digest"


class VerificationError(Exception):
    """A program failed static verification; carries the full report."""

    def __init__(self, report: AnalysisReport, strict: bool = False) -> None:
        self.report = report
        self.strict = strict
        gating = report.gating(strict)
        summary = ", ".join(sorted({d.code for d in gating}))
        super().__init__(
            f"program {report.program_name!r} failed static verification "
            f"({len(gating)} gating diagnostic(s): {summary})"
        )


def _apply_waivers(program: Program, diag: Diagnostic) -> Diagnostic:
    """Demote a diagnostic to info when a builder-declared waiver span
    covers it (never for errors — those are provably wrong programs)."""
    if diag.severity != Severity.WARNING or diag.index < 0:
        return diag
    for waiver in getattr(program, "lint_waivers", ()):
        if waiver.code == diag.code and waiver.start <= diag.index < waiver.end:
            note = f" (waived: {waiver.reason})" if waiver.reason else " (waived)"
            return replace(
                diag, severity=Severity.INFO, message=diag.message + note
            )
    return diag


def analyze_program(program: Program) -> AnalysisReport:
    """Run the full static analysis over one finalized program.

    The report is memoized on the program object (same instructions ->
    same report), so repeated gating across an experiment grid is free.
    """
    cached = getattr(program, _MEMO_ATTR, None)
    if isinstance(cached, AnalysisReport):
        return cached

    # deferred import: repro.analyze.absint pulls in the whole domain
    from .absint import run_value_checks

    diags: List[Diagnostic] = []
    cfg = CFG(program)
    run_structural_checks(cfg, diags)
    run_init_checks(cfg, diags)
    run_liveness_checks(cfg, diags)
    run_regleak_checks(program, diags)
    proven, checked = run_value_checks(program, cfg, diags)
    run_vis_idiom_checks(cfg, diags)

    markers = sorted(program.markers)
    diags = [
        replace(d, marker=marker_at(markers, d.index)) if d.index >= 0 else d
        for d in diags
    ]
    diags = [_apply_waivers(program, d) for d in diags]
    diags.sort(key=lambda d: (-int(d.severity), d.index, d.code))

    report = AnalysisReport(
        program_name=program.name or "<anonymous>",
        analyzer_version=ANALYZER_VERSION,
        diagnostics=diags,
        proven_accesses=proven,
        checked_accesses=checked,
    )
    setattr(program, _MEMO_ATTR, report)
    return report


def program_digest(program: Program) -> str:
    """Stable content hash of everything the gate verdict depends on.

    Covers the analyzer version, every instruction field the analysis
    reads, the finalized buffer layout, waiver spans and leaked-register
    metadata.  Markers are deliberately excluded: they only decorate
    diagnostic *text*, never change what gates.

    Programs are immutable once built, so the digest is cached on the
    program object (it is recomputed per checkpoint identity check and
    per verification otherwise).
    """
    cached = getattr(program, "_digest_cache", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(f"analyzer:{ANALYZER_VERSION}\n".encode())
    h.update(
        "\n".join(
            f"{i.op};{i.dst};{i.dst2};{i.srcs};{i.imm};{i.target}"
            for i in program.instructions
        ).encode()
    )
    for name, buf in program.buffers.items():
        h.update(
            f"\nB;{name};{buf.size};{buf.align};{buf.skew};{buf.address}".encode()
        )
    for w in program.lint_waivers:
        h.update(f"\nW;{w.code};{w.start};{w.end}".encode())
    h.update(f"\nU;{program.unreleased_regs}".encode())
    digest = h.hexdigest()
    try:
        program._digest_cache = digest
    except AttributeError:
        pass  # slotted/frozen Program variants just recompute
    return digest


def _memo_load(memo_dir: Path, digest: str) -> Optional[dict]:
    """Best-effort read of one verdict record; ``None`` on any problem
    (missing, corrupt, or written by a different analyzer version)."""
    try:
        with open(memo_dir / f"{digest}.json", encoding="utf-8") as fh:
            record = json.load(fh)
    except (OSError, ValueError):
        return None
    if (
        not isinstance(record, dict)
        or record.get("analyzer_version") != ANALYZER_VERSION
        or record.get("digest") != digest
        or not isinstance(record.get("gating"), list)
    ):
        return None
    return record


def _memo_store(memo_dir: Path, digest: str, report: AnalysisReport) -> None:
    """Best-effort atomic write of one verdict record (gating
    diagnostics only — info-level findings are huge and never gate)."""
    record = {
        "analyzer_version": ANALYZER_VERSION,
        "digest": digest,
        "program": report.program_name,
        "gating": [
            {
                "code": d.code,
                "severity": int(d.severity),
                "index": d.index,
                "message": d.message,
                "hint": d.hint,
                "marker": d.marker,
            }
            for d in report.gating(strict=True)
        ],
        "proven": len(report.proven_accesses),
        "checked": report.checked_accesses,
    }
    try:
        memo_dir.mkdir(parents=True, exist_ok=True)
        tmp = memo_dir / f".{digest}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(record), encoding="utf-8")
        tmp.replace(memo_dir / f"{digest}.json")
    except OSError:
        pass  # a cold gate next run, nothing worse


def _report_from_record(record: dict) -> AnalysisReport:
    """Rehydrate a gate-sufficient report from a memo verdict.

    The result carries only the gating diagnostics and access *counts*
    — ``proven_accesses`` stays empty (the full map is never persisted).
    It is therefore never installed as the program's full-analysis memo.
    """
    diags = [
        Diagnostic(
            code=d["code"],
            severity=Severity(d["severity"]),
            index=d["index"],
            message=d["message"],
            hint=d.get("hint", ""),
            marker=d.get("marker", ""),
        )
        for d in record["gating"]
    ]
    return AnalysisReport(
        program_name=record.get("program", "<memo>"),
        analyzer_version=ANALYZER_VERSION,
        diagnostics=diags,
        checked_accesses=record.get("checked", 0),
    )


def verify_program(
    program: Program,
    strict: bool = False,
    memo_dir: Optional[Path] = None,
) -> AnalysisReport:
    """Gate: analyze and raise :class:`VerificationError` on failure.

    With ``memo_dir`` the verdict is served from / stored into the
    persistent digest-keyed memo: a hit skips the analysis entirely and
    returns a slim report holding only the gating diagnostics (the full
    info-level report is available from :func:`analyze_program`, which
    always runs the real analysis).
    """
    cached = getattr(program, _MEMO_ATTR, None)
    if isinstance(cached, AnalysisReport):
        report = cached
    elif memo_dir is not None:
        digest = getattr(program, _VERDICT_ATTR, None) or program_digest(
            program
        )
        setattr(program, _VERDICT_ATTR, digest)
        record = _memo_load(Path(memo_dir), digest)
        if record is not None:
            report = _report_from_record(record)
        else:
            report = analyze_program(program)
            _memo_store(Path(memo_dir), digest, report)
    else:
        report = analyze_program(program)
    if not report.ok(strict):
        raise VerificationError(report, strict=strict)
    return report
