"""Static verification of assembled SVIS programs.

The analyzer proves (or refutes) the properties the paper's numbers
silently depend on: every register read is initialized, every memory
access stays inside a declared buffer with the right alignment, and
every VIS instruction runs under the GSR state it needs.  See
DESIGN.md ("Static verification") for the diagnostic vocabulary.
"""

from .cfg import CFG, Region
from .diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    make_diagnostic,
)
from .domain import StridedInterval
from .throughput import (
    BlockBound,
    LoopBound,
    ThroughputReport,
    analyze_throughput,
)
from .verify import (
    ANALYZER_VERSION,
    VerificationError,
    analyze_program,
    program_digest,
    verify_program,
)

__all__ = [
    "ANALYZER_VERSION",
    "AnalysisReport",
    "BlockBound",
    "CFG",
    "CODES",
    "Diagnostic",
    "LoopBound",
    "Region",
    "Severity",
    "StridedInterval",
    "ThroughputReport",
    "VerificationError",
    "analyze_program",
    "analyze_throughput",
    "make_diagnostic",
    "program_digest",
    "verify_program",
]
