"""Interval abstract interpretation of SVIS address arithmetic.

Proves memory safety of every load/store/partial-store: each access is
either **proven** to stay inside one declared
:class:`~repro.asm.program.Buffer` (recorded in
``AnalysisReport.proven_accesses`` for the dynamic cross-check),
**provably wrong** (``E-OOB``) or provably misaligned (``W-ALIGN``)
or **unproven**
(data-dependent; ``I-ADDR-UNPROVEN`` / ``I-ALIGN-UNPROVEN`` infos).

The engine runs per :class:`~repro.analyze.cfg.Region` on the collapsed
graph and never propagates along back edges, so each pass is a DAG
traversal and terminates without widening.  Loop headers are instead
*pinned*: registers modified in the loop get either an induction
envelope (``c0 + [0, (N-1)*d]`` from the syntactic ``add r, r, imm``
increment ``d`` and the latch-branch trip count ``N``) or TOP.  Inner
loops fold into the outer envelope when their trip count is exact.
Because an inner loop's entry state depends on the outer pin and the
outer pin depends on the inner trip count, the engine iterates a few
passes until the trip-count memo stabilizes; loops still unstable on
the last pass are pinned to TOP (always sound).

Calls are collapsed: the callee's may-def registers (from the dataflow
function summaries) are clobbered to TOP at the call site, and each
callee body is analyzed as its own region with an all-TOP entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from ..asm.program import Buffer, Program
from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass
from ..isa.registers import GSR, NUM_REGS, ZERO
from .cfg import CFG, E_FALL, E_TAKEN, Loop, Region
from .dataflow import _function_summaries
from .diagnostics import Diagnostic, make_diagnostic
from .domain import TOP, StridedInterval

SI = StridedInterval

#: registers tracked per state; a missing key means TOP
State = Dict[int, StridedInterval]

_MASK64 = (1 << 64) - 1
_MAX_PASSES = 4
#: trip counts beyond this are treated as unknown (envelope saturates
#: to TOP anyway; this merely skips useless bignum math)
_MAX_TRIP = 1 << 40

#: access width in bytes per memory opcode (pf is exempt: non-faulting)
ACCESS_WIDTH: Dict[str, int] = {
    "ldb": 1, "ldbs": 1, "stb": 1, "ldfb": 1, "stfb": 1,
    "ldh": 2, "ldhs": 2, "sth": 2, "ldfh": 2, "stfh": 2,
    "ldw": 4, "ldws": 4, "stw": 4, "ldfw": 4, "stfw": 4,
    "ldx": 8, "stx": 8, "ldf": 8, "stf": 8, "pst": 8,
}

#: value range of each load destination (unsigned/signed per decoder)
_LOAD_RANGES: Dict[str, Tuple[int, int]] = {
    "ldb": (0, 0xFF),
    "ldbs": (-0x80, 0x7F),
    "ldh": (0, 0xFFFF),
    "ldhs": (-0x8000, 0x7FFF),
    "ldw": (0, 0xFFFFFFFF),
    "ldws": (-(1 << 31), (1 << 31) - 1),
    "ldfb": (0, 0xFF),
    "ldfh": (0, 0xFFFF),
    "ldfw": (0, 0xFFFFFFFF),
}

_PACK_OPS = ("fpack16", "fpack32", "fpackfix")
_BYTEMASK_OPS = (
    "edge8", "edge16", "edge32",
    "fcmpgt16", "fcmple16", "fcmpeq16", "fcmpne16",
    "fcmpgt32", "fcmpeq32",
)


def _s64(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >= 1 << 63 else value


_ZERO_SI = StridedInterval.const(0)


def _get(state: State, reg: int) -> StridedInterval:
    if reg == ZERO:
        return _ZERO_SI
    return state.get(reg, TOP)


def _set(state: State, reg: int, value: StridedInterval) -> None:
    if value.is_top:
        state.pop(reg, None)
    else:
        state[reg] = value


def _join_states(a: State, b: State) -> State:
    out: State = {}
    for reg, val in a.items():
        other = b.get(reg)
        if other is None:
            continue
        if val is other:  # hot path: same fact object from a dominator
            out[reg] = val
            continue
        joined = val.join(other)
        if not joined.is_top:
            out[reg] = joined
    return out


# ---------------------------------------------------------------------------
# Transfer functions
# ---------------------------------------------------------------------------


def _alu(op: str, a: StridedInterval, b: StridedInterval) -> StridedInterval:
    """Reg-reg integer ALU ops (also used for reg-imm via const b)."""
    if op == "add":
        return a.add(b)
    if op == "sub":
        return a.sub(b)
    if op == "mul":
        return a.mul(b)
    if op == "div":
        if b.is_singleton and b.lo > 0:
            return a.div_trunc(b.lo)
        return TOP
    if op == "rem":
        if b.is_singleton and b.lo > 0:
            return SI.range(-(b.lo - 1), b.lo - 1) if b.lo > 1 else SI.const(0)
        return TOP
    if op == "and_":
        if b.is_singleton:
            return a.and_mask(b.lo)
        if a.is_singleton:
            return b.and_mask(a.lo)
        return TOP
    if op == "or_":
        if a.is_singleton and b.is_singleton:
            return SI.const(_s64((a.lo | b.lo) & _MASK64))
        return TOP
    if op == "xor":
        if a.is_singleton and b.is_singleton:
            return SI.const(_s64((a.lo ^ b.lo) & _MASK64))
        return TOP
    if op == "andn":
        if b.is_singleton:
            return a.and_mask(_s64(~b.lo & _MASK64))
        return TOP
    if op == "sll":
        if b.is_singleton and 0 <= b.lo <= 63:
            return a.shl(b.lo)
        return TOP
    if op == "sra":
        if b.is_singleton and 0 <= b.lo <= 63:
            return a.shr(b.lo)
        return TOP
    if op == "srl":
        # logical == arithmetic only for non-negative operands
        if b.is_singleton and 0 <= b.lo <= 63 and not a.is_top and a.lo >= 0:
            return a.shr(b.lo)
        return TOP
    if op in ("slt", "sltu", "seq"):
        return SI.range(0, 1)
    return TOP


#: compiled-plan tags (see :meth:`_Transfer._compile`)
_T_CONST = 0   # (tag, dst, si): dst := si (si is never TOP)
_T_COPY = 1    # (tag, dst, src): dst := src
_T_ALU = 2     # (tag, dst, s0, s1, op): dst := _alu(op, s0, s1)
_T_ALUI = 3    # (tag, dst, s0, si_b, op): dst := _alu(op, s0, const)
_T_CLOB = 4    # (tag, dst): dst := TOP
_T_CLOB2 = 5   # (tag, dst, dst2): both := TOP
_T_SLOW = 6    # (tag,): full _Transfer.apply dispatch

_ALU_OPS = frozenset(
    ("add", "sub", "mul", "div", "rem", "and_", "or_", "xor",
     "andn", "sll", "srl", "sra")
)
_RANGE01 = None  # initialized below (module load order)


class _Transfer:
    """Applies one instruction to a state (mutating it).

    ``__init__`` pre-compiles every instruction into a small dispatch
    tuple (``plan``) so the per-pass inner loop pays one tuple unpack
    instead of re-classifying opcode strings on every walk; ``None``
    entries (stores, branches, prefetches) provably do not change the
    tracked state and are skipped outright.  ``check_plan`` marks the
    instructions the value checker must look at (memory accesses,
    ``wrgsr``, packs), so the fused checking pass skips the rest.
    """

    def __init__(self, cfg: CFG, summaries: Dict[int, Tuple[int, int]]):
        self.cfg = cfg
        self.summaries = summaries
        self.plan: List[Optional[Tuple]] = []
        self.check_plan: List[bool] = []
        self._compile()

    def _compile(self) -> None:
        range01 = SI.range(0, 1)
        bytemask = SI.range(0, 0xFF)
        load_si = {op: SI.range(*r) for op, r in _LOAD_RANGES.items()}
        for instr in self.cfg.instructions:
            op = instr.op
            self.check_plan.append(
                op in ACCESS_WIDTH or op == "wrgsr" or op in _PACK_OPS
            )
            spec = instr.spec
            dst = instr.dst
            if spec.opclass == OpClass.CALL:
                self.plan.append((_T_SLOW,))
                continue
            if dst < 0:
                self.plan.append(None)  # provably no state effect
                continue
            if instr.dst2 >= 0:  # alignaddr and friends: rare, full path
                self.plan.append((_T_SLOW,))
                continue
            srcs = instr.srcs
            if op == "li":
                si = SI.const(_s64((instr.imm or 0) & _MASK64))
                self.plan.append((_T_CONST, dst, si))
            elif op in ("mov", "fsrc", "fmovd"):
                if srcs[0] == ZERO:
                    self.plan.append((_T_CONST, dst, _ZERO_SI))
                else:
                    self.plan.append((_T_COPY, dst, srcs[0]))
            elif op in ("slt", "sltu", "seq"):
                self.plan.append((_T_CONST, dst, range01))
            elif op in _ALU_OPS:
                if len(srcs) == 2:
                    self.plan.append((_T_ALU, dst, srcs[0], srcs[1], op))
                else:
                    si = SI.const(instr.imm or 0)
                    self.plan.append((_T_ALUI, dst, srcs[0], si, op))
            elif op in _LOAD_RANGES:
                self.plan.append((_T_CONST, dst, load_si[op]))
            elif op in ("ldx", "ldf"):
                self.plan.append((_T_CLOB, dst))
            elif op == "fzero":
                self.plan.append((_T_CONST, dst, _ZERO_SI))
            elif op == "fone":
                self.plan.append((_T_CONST, dst, SI.const(-1)))
            elif op in _BYTEMASK_OPS:
                self.plan.append((_T_CONST, dst, bytemask))
            elif op in ("alignaddr", "wrgsr", "rdgsr", "fnot", "pdist"):
                self.plan.append((_T_SLOW,))
            else:
                # media arithmetic, packs, fp, array8, ... -> unknown
                self.plan.append((_T_CLOB, dst))

    def apply_block(
        self,
        indices,
        work: State,
        checker: "Optional[_Checker]" = None,
    ) -> None:
        """Apply a whole block through the compiled plan (the hot
        loop); with ``checker`` the value checks are fused in."""
        plan = self.plan
        instructions = self.cfg.instructions
        check_plan = self.check_plan
        for i in indices:
            if checker is not None and check_plan[i]:
                checker._check_instr(i, instructions[i], work)
            p = plan[i]
            if p is None:
                continue
            tag = p[0]
            if tag == _T_ALU:
                a = _ZERO_SI if p[2] == ZERO else work.get(p[2], TOP)
                b = _ZERO_SI if p[3] == ZERO else work.get(p[3], TOP)
                v = _alu(p[4], a, b)
                if v.is_top:
                    work.pop(p[1], None)
                else:
                    work[p[1]] = v
            elif tag == _T_ALUI:
                a = _ZERO_SI if p[2] == ZERO else work.get(p[2], TOP)
                v = _alu(p[4], a, p[3])
                if v.is_top:
                    work.pop(p[1], None)
                else:
                    work[p[1]] = v
            elif tag == _T_CONST:
                work[p[1]] = p[2]
            elif tag == _T_COPY:
                v = work.get(p[2], TOP)
                if v.is_top:
                    work.pop(p[1], None)
                else:
                    work[p[1]] = v
            elif tag == _T_CLOB:
                work.pop(p[1], None)
            elif tag == _T_CLOB2:
                work.pop(p[1], None)
                work.pop(p[2], None)
            else:  # _T_SLOW
                self.apply(i, instructions[i], work)

    def apply(self, idx: int, instr: Instruction, state: State) -> None:
        op = instr.op
        spec = instr.spec
        dst = instr.dst

        if spec.opclass == OpClass.CALL:
            may_def, _must = self.summaries.get(instr.target, (0, 0))
            for reg in range(NUM_REGS):
                if (may_def >> reg) & 1:
                    state.pop(reg, None)
            if dst >= 0:
                _set(state, dst, SI.const(idx + 1))
            return
        if dst < 0:
            return

        srcs = instr.srcs
        if op == "li":
            _set(state, dst, SI.const(_s64((instr.imm or 0) & _MASK64)))
        elif op in ("mov", "fsrc", "fmovd"):
            _set(state, dst, _get(state, srcs[0]))
        elif op in ("add", "sub", "mul", "div", "rem", "and_", "or_", "xor",
                    "andn", "sll", "srl", "sra", "slt", "sltu", "seq"):
            a = _get(state, srcs[0])
            b = (
                _get(state, srcs[1])
                if len(srcs) == 2
                else SI.const(instr.imm or 0)
            )
            _set(state, dst, _alu(op, a, b))
        elif op in _LOAD_RANGES:
            lo, hi = _LOAD_RANGES[op]
            _set(state, dst, SI.range(lo, hi))
        elif op in ("ldx", "ldf"):
            state.pop(dst, None)
        elif op == "alignaddr":
            a = _get(state, srcs[0])
            b = (
                _get(state, srcs[1])
                if len(srcs) > 1
                else SI.const(instr.imm or 0)
            )
            addr = a.add(b)
            _set(state, dst, addr.align_down(3))
            gsr = _get(state, GSR)
            scale_bits = (
                gsr.and_mask(-8) if not gsr.is_top else SI.range(0, 0x78)
            )
            if addr.is_singleton:
                _set(state, GSR, scale_bits.addc(addr.lo & 7))
            else:
                _set(state, GSR, scale_bits.add(SI.range(0, 7)))
        elif op == "wrgsr":
            s = _get(state, srcs[0])
            if not s.is_top and 0 <= s.lo and s.hi <= 0x7F:
                _set(state, GSR, s)
            else:
                _set(state, GSR, SI.range(0, 0x7F))
        elif op == "rdgsr":
            gsr = _get(state, GSR)
            _set(state, dst, gsr if not gsr.is_top else SI.range(0, 0x7F))
        elif op == "fzero":
            _set(state, dst, SI.const(0))
        elif op == "fone":
            _set(state, dst, SI.const(-1))
        elif op == "fnot":
            _set(state, dst, _get(state, srcs[0]).neg().addc(-1))
        elif op in _BYTEMASK_OPS:
            _set(state, dst, SI.range(0, 0xFF))
        elif op == "pdist":
            acc = _get(state, srcs[2])
            _set(state, dst, acc.add(SI.range(0, 2040)))
        else:
            # media arithmetic, packs, fp, array8, ... -> unknown
            state.pop(dst, None)
            if instr.dst2 >= 0:
                state.pop(instr.dst2, None)
            return
        if instr.dst2 >= 0 and op != "alignaddr":
            state.pop(instr.dst2, None)


# ---------------------------------------------------------------------------
# Branch-edge refinement
# ---------------------------------------------------------------------------


def _refine_edge(
    instr: Instruction, state: State, kind: str
) -> Optional[State]:
    """State along one outgoing edge of a conditional branch; ``None``
    when the edge is provably dead."""
    if kind not in (E_TAKEN, E_FALL) or instr.op not in (
        "beq", "bne", "blt", "ble", "bgt", "bge"
    ):
        return state
    out = dict(state)
    ra, rb = instr.srcs
    a = _get(state, ra)
    b = _get(state, rb)

    op = instr.op
    # normalize to a-relative: bgt/bge are blt/ble with swapped operands
    if op in ("bgt", "bge"):
        op = {"bgt": "blt", "bge": "ble"}[op]
        ra, rb = rb, ra
        a, b = b, a
    taken = kind == E_TAKEN

    def commit(na: Optional[SI], nb: Optional[SI]) -> Optional[State]:
        if na is None or nb is None:
            return None
        if ra != ZERO:
            _set(out, ra, na)
        if rb != ZERO:
            _set(out, rb, nb)
        return out

    if op == "beq":
        if taken:
            m = a.meet(b)
            return None if m is None else commit(m, m)
        return out
    if op == "bne":
        if not taken:
            m = a.meet(b)
            return None if m is None else commit(m, m)
        return out
    if op == "blt":
        if taken:  # a < b
            return commit(a.clamp_le(b.hi - 1), b.clamp_ge(a.lo + 1))
        return commit(a.clamp_ge(b.lo), b.clamp_le(a.hi))
    if op == "ble":
        if taken:  # a <= b
            return commit(a.clamp_le(b.hi), b.clamp_ge(a.lo))
        return commit(a.clamp_ge(b.lo + 1), b.clamp_le(a.hi - 1))
    return state


# ---------------------------------------------------------------------------
# Loop summaries: syntactic induction deltas + trip counts
# ---------------------------------------------------------------------------


def _loop_table(cfg: CFG):
    """Per-instruction ``(call_target_or_None, dst, dst2, step_of_dst,
    step_of_dst2)`` columns for :class:`_LoopInfo`, cached on the CFG —
    every loop summary re-derives the same facts for every instruction
    of its body otherwise (nested loops scan shared blocks repeatedly)."""
    table = getattr(cfg, "_absint_loop_table", None)
    if table is None:
        step_of = _LoopInfo._step_of
        table = []
        for instr in cfg.instructions:
            dst = instr.dst
            dst2 = instr.dst2
            table.append((
                instr.target
                if instr.spec.opclass == OpClass.CALL
                else None,
                dst,
                dst2,
                step_of(instr, dst) if dst >= 0 else None,
                step_of(instr, dst2) if dst2 >= 0 else None,
            ))
        cfg._absint_loop_table = table
    return table


class _LoopInfo:
    """Per-loop induction summary (syntactic, state-independent)."""

    def __init__(self, region: Region, loop: Loop) -> None:
        self.loop = loop
        cfg = region.cfg
        # blocks belonging to directly-nested inner loops (their writes
        # are accounted for by folding the inner loop's own summary)
        inner_blocks: Set[int] = set()
        for h in loop.inner:
            inner_blocks |= region.loops[h].body
        # registers written anywhere in the loop (incl. call clobbers,
        # recorded as ("call", target) and resolved against summaries)
        self.modified: Set[Union[int, Tuple[str, int]]] = set()
        #: reg -> per-iteration delta from this loop's own blocks;
        #: absent = not inductive here
        self.deltas: Dict[int, int] = {}
        broken: Set[int] = set()
        latch = (
            next(iter(loop.latches)) if len(loop.latches) == 1 else None
        )
        table = _loop_table(cfg)
        modified = self.modified
        deltas = self.deltas
        for block in loop.body:
            in_inner = block in inner_blocks
            dominates_latch = latch is None or region.dominates(block, latch)
            for i in cfg.block_instrs(block):
                call_t, dst, dst2, step, step2 = table[i]
                if call_t is not None:
                    modified.add(("call", call_t))
                if dst >= 0:
                    modified.add(dst)
                    if not in_inner:
                        if step is not None and dominates_latch:
                            deltas[dst] = deltas.get(dst, 0) + step
                        else:
                            broken.add(dst)
                if dst2 >= 0:
                    modified.add(dst2)
                    if not in_inner:
                        if step2 is not None and dominates_latch:
                            deltas[dst2] = deltas.get(dst2, 0) + step2
                        else:
                            broken.add(dst2)
        for d in broken:
            self.deltas.pop(d, None)
        self.broken = broken

    @staticmethod
    def _step_of(instr: Instruction, dst: int) -> Optional[int]:
        """Delta of ``add/sub dst, dst, imm`` self-increments."""
        if (
            instr.op in ("add", "sub")
            and len(instr.srcs) == 1
            and instr.srcs[0] == dst
            and instr.imm is not None
        ):
            return instr.imm if instr.op == "add" else -instr.imm
        return None


def _trip_count(
    instr: Instruction, delta: Dict[int, int], state: State
) -> Tuple[Optional[int], Optional[int], Optional[int], Optional[int]]:
    """``(n_max, n_exact, ctr_reg, bound_reg)`` from a latch
    conditional branch.

    The branch is *taken* to continue the loop (do-while shape).
    """
    if instr.op not in ("blt", "ble", "bgt", "bge"):
        return None, None, None, None
    ra, rb = instr.srcs
    op = instr.op
    ctr, bound = ra, rb
    if ra not in delta and rb in delta:
        # counter on the right: mirror the comparison
        ctr, bound = rb, ra
        op = {"blt": "bgt", "ble": "bge", "bgt": "blt", "bge": "ble"}[op]
    d = delta.get(ctr)
    if d is None or d == 0 or bound in delta:
        return None, None, None, None
    c0 = _get(state, ctr)
    b = _get(state, bound)
    if c0.is_top or b.is_top:
        return None, None, None, None

    def count(c0v: int, bv: int) -> Optional[int]:
        if op == "blt" and d > 0:
            n = -((bv - c0v) // -d)  # ceil
        elif op == "ble" and d > 0:
            n = (bv - c0v) // d + 1
        elif op == "bgt" and d < 0:
            n = -((c0v - bv) // d)  # ceil((c0-b)/-d)
        elif op == "bge" and d < 0:
            n = (c0v - bv) // -d + 1
        else:
            return None
        return max(1, n)

    if d > 0:
        n_max = count(c0.lo, b.hi)
    else:
        n_max = count(c0.hi, b.lo)
    if n_max is None or n_max > _MAX_TRIP:
        return None, None, ctr, bound
    n_exact = (
        n_max if c0.is_singleton and b.is_singleton else None
    )
    return n_max, n_exact, ctr, bound


# ---------------------------------------------------------------------------
# Region analysis
# ---------------------------------------------------------------------------


class _RegionAnalysis:
    def __init__(
        self,
        cfg: CFG,
        region: Region,
        entry_state: State,
        transfer: _Transfer,
        summaries: Dict[int, Tuple[int, int]],
    ) -> None:
        self.cfg = cfg
        self.region = region
        self.entry_state = entry_state
        self.transfer = transfer
        self.summaries = summaries
        self.loop_info = {
            h: _LoopInfo(region, loop) for h, loop in region.loops.items()
        }
        #: header -> (n_max, n_exact); refreshed every pass
        self.trips: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
        #: header -> (n_max, n_exact, ctr_reg, bound_reg); parallel to
        #: ``trips`` (kept separate so ``_fold_inner``'s 2-tuple unpack
        #: stays untouched), consumed by the throughput analyzer
        self.trip_meta: Dict[
            int,
            Tuple[Optional[int], Optional[int], Optional[int], Optional[int]],
        ] = {}
        #: True when the final pass ran with a converged trip memo;
        #: False on the cap-hit path, where the last (unstable) pass
        #: does *not* refresh ``trips`` — consumers must then distrust
        #: every trip count of this region
        self.stable: bool = False
        self.block_in: Dict[int, State] = {}

    # -- loop pinning ------------------------------------------------------

    def _clobbered(self, info: _LoopInfo) -> Set[int]:
        regs: Set[int] = set()
        for m in info.modified:
            if isinstance(m, tuple):  # call clobber
                may_def, _ = self.summaries.get(m[1], (0, 0))
                regs.update(
                    r for r in range(NUM_REGS) if (may_def >> r) & 1
                )
            else:
                regs.add(m)
        return regs

    def _fold_inner(
        self, info: _LoopInfo, unstable: bool
    ) -> Tuple[Dict[int, int], set]:
        """Total per-outer-iteration deltas incl. folded inner loops;
        returns (deltas, regs that must be TOP)."""
        deltas = dict(info.deltas)
        top_regs: set = set()
        for h in info.loop.inner:
            inner = self.loop_info[h]
            n_max, n_exact = self.trips.get(h, (None, None))
            foldable = (
                not unstable
                and inner.loop.single_exit
                and n_exact is not None
            )
            inner_tot, inner_top = self._fold_inner(inner, unstable)
            for reg in self._clobbered(inner) | inner_top:
                if (
                    foldable
                    and reg in inner_tot
                    and reg not in inner_top
                    and reg not in info.broken
                ):
                    deltas[reg] = (
                        deltas.get(reg, 0) + inner_tot[reg] * n_exact
                    )
                else:
                    top_regs.add(reg)
                    deltas.pop(reg, None)
        return deltas, top_regs

    def _pin_header(
        self, header: int, raw_in: State, unstable: bool
    ) -> State:
        region = self.region
        if header in region.irreducible_heads:
            return {}
        loop = region.loops.get(header)
        if loop is None:
            return raw_in
        info = self.loop_info[header]
        deltas, top_regs = self._fold_inner(info, unstable)
        # trip count from the latch branch, using entry values
        n_max: Optional[int] = None
        if loop.latch_branch is not None and not unstable:
            branch = self.cfg.instructions[loop.latch_branch]
            n_max, n_exact, ctr, bound = _trip_count(branch, deltas, raw_in)
            self.trips[header] = (n_max, n_exact)
            self.trip_meta[header] = (n_max, n_exact, ctr, bound)
        state = dict(raw_in)
        for reg in self._clobbered(info) | top_regs:
            d = deltas.get(reg)
            if reg in top_regs or d is None or n_max is None:
                state.pop(reg, None)
                continue
            total = (n_max - 1) * d
            env = _get(raw_in, reg).expand(
                min(0, total), max(0, total), d
            )
            _set(state, reg, env)
        return state

    # -- one DAG pass ------------------------------------------------------

    def run_pass(
        self, unstable: bool = False, checker: "Optional[_Checker]" = None
    ) -> None:
        region = self.region
        cfg = self.cfg
        self.block_in = {}
        edge_out: Dict[Tuple[int, int], Optional[State]] = {}
        for block in region.rpo:
            if block == region.entry:
                raw_in: Optional[State] = dict(self.entry_state)
            else:
                raw_in = None
                for pred in region.preds.get(block, ()):
                    if (pred, block) in region.back_edges:
                        continue
                    contrib = edge_out.get((pred, block))
                    if contrib is None:
                        continue
                    raw_in = (
                        dict(contrib)
                        if raw_in is None
                        else _join_states(raw_in, contrib)
                    )
                if raw_in is None:
                    continue  # dead in this pass
            state = self._pin_header(block, raw_in, unstable)
            self.block_in[block] = dict(state)
            work = dict(state)
            self.transfer.apply_block(
                cfg.block_instrs(block), work, checker
            )
            term = cfg.terminator(block)
            for tgt, kind in region.succs[block]:
                edge_out[(block, tgt)] = _refine_edge(term, work, kind)

    def run(
        self, make_checker: "Optional[Callable[[], _Checker]]" = None
    ) -> "Optional[_Checker]":
        """Iterate DAG passes until the trip-count memo stabilizes.

        When ``make_checker`` is given, checking is *fused* into the
        pass expected to be final (loop-free regions converge in one
        pass; loopy regions are checked optimistically from the second
        pass on) instead of paying a separate walk: the attempt whose
        pass turned out stable is returned, discarded attempts cost
        nothing but their recording.
        """
        no_loops = not self.region.loops
        prev_trips: Optional[Dict] = None
        for _pass in range(_MAX_PASSES):
            fuse = make_checker is not None and (
                no_loops or prev_trips is not None
            )
            attempt = make_checker() if fuse else None
            self.run_pass(checker=attempt)
            if no_loops or self.trips == prev_trips:
                self.stable = True
                if attempt is not None or make_checker is None:
                    return attempt
                # stable on the very first comparable pass but not yet
                # checked: one more (now provably final) fused pass
                attempt = make_checker()
                self.run_pass(checker=attempt)
                return attempt
            prev_trips = dict(self.trips)
        # cap hit: redo with still-changing loops pinned to TOP.  Note
        # ``trips`` is *not* refreshed by the unstable pass — it holds
        # the last unconverged memo, which is why ``stable`` stays False.
        attempt = make_checker() if make_checker is not None else None
        self.run_pass(unstable=True, checker=attempt)
        return attempt


# ---------------------------------------------------------------------------
# Memory / VIS-value checks
# ---------------------------------------------------------------------------


def _addr_interval(instr: Instruction, state: State) -> StridedInterval:
    if instr.op == "pst":
        base = instr.srcs[2]
    elif instr.spec.opclass == OpClass.STORE:
        base = instr.srcs[1]
    else:  # loads and pf: base is the sole source
        base = instr.srcs[0]
    return _get(state, base).addc(instr.imm or 0)


class _Checker:
    """Records memory-safety / VIS-value findings for one analysis walk.

    Checkers are cheap throwaway recorders: the region engine creates
    one per fused pass attempt (see :meth:`_RegionAnalysis.run`) and
    only the attempt that coincided with the final stable pass is
    merged into the per-program aggregate.  Pre-seeding ``proven`` /
    ``_seen`` / ``_counted`` from the aggregate keeps cross-region
    deduplication identical to a single sequential walk.
    """

    def __init__(self, program: Program, cfg: CFG) -> None:
        self.cfg = cfg
        self.diags: List[Diagnostic] = []
        self.buffers: List[Buffer] = list(program.buffers.values())
        self.proven: Dict[int, Tuple[int, int]] = {}
        #: instr -> (lo, hi, stride) of the proven *start-address*
        #: interval (``proven`` stores the byte range incl. width);
        #: consumed by the throughput analyzer's footprint model
        self.proven_si: Dict[int, Tuple[int, int, int]] = {}
        self.checked = 0
        self._seen: Set[Tuple[str, int]] = set()
        self._counted: Set[int] = set()

    def seed_from(self, other: "_Checker") -> "_Checker":
        """Adopt another checker's dedup state (not its findings)."""
        self.proven.update(other.proven)
        self.proven_si.update(other.proven_si)
        self._seen |= other._seen
        self._counted |= other._counted
        return self

    def merge(self, attempt: "_Checker") -> None:
        """Fold a committed attempt into this aggregate."""
        self.diags.extend(attempt.diags)
        self.proven.update(attempt.proven)
        self.proven_si.update(attempt.proven_si)
        self._seen |= attempt._seen
        self._counted |= attempt._counted
        self.checked += attempt.checked

    def _emit(self, code: str, idx: int, message: str) -> None:
        if (code, idx) not in self._seen:
            self._seen.add((code, idx))
            self.diags.append(make_diagnostic(code, idx, message))

    def _check_instr(self, i: int, instr: Instruction, state: State) -> None:
        op = instr.op
        if op in ACCESS_WIDTH:
            self._check_access(i, instr, state)
        elif op == "wrgsr":
            s = _get(state, instr.srcs[0])
            if not s.is_top and (s.lo > 0x7F or s.hi < 0):
                self._emit(
                    "W-GSR-TRUNC",
                    i,
                    f"wrgsr operand is provably in [{s.lo}, {s.hi}], "
                    "outside the 7-bit GSR",
                )
        elif op in _PACK_OPS:
            gsr = _get(state, GSR)
            if gsr.is_singleton:
                scale = (gsr.lo >> 3) & 0xF
                if scale > 7:
                    self._emit(
                        "W-VSCALE",
                        i,
                        f"{op} runs with GSR.scale={scale}, outside the "
                        "useful range [0, 7]",
                    )

    def _check_access(self, i: int, instr: Instruction, state: State) -> None:
        width = ACCESS_WIDTH[instr.op]
        addr = _addr_interval(instr, state)
        if i in self.proven:
            return
        if i not in self._counted:
            self._counted.add(i)
            self.checked += 1
        if addr.is_top:
            self._emit(
                "I-ADDR-UNPROVEN",
                i,
                f"{instr.op} address is data-dependent (unbounded)",
            )
            return
        lo, hi = addr.lo, addr.hi + width - 1
        # One pass over the buffers: ``inside`` = some buffer contains
        # the whole range (then ``disjoint`` is never consulted),
        # ``disjoint`` = no buffer overlaps it.
        inside = False
        disjoint = True
        for buf in self.buffers:
            base = buf.address
            if base <= lo and hi < base + buf.size:
                inside = True
                break
            if not (hi < base or lo >= base + buf.size):
                disjoint = False
        if inside:
            self.proven[i] = (lo, hi)
            self.proven_si[i] = (addr.lo, addr.hi, addr.stride)
        elif disjoint:
            self._emit(
                "E-OOB",
                i,
                f"{instr.op} accesses [0x{lo:x}, 0x{hi:x}], outside every "
                "declared buffer",
            )
        else:
            self._emit(
                "I-ADDR-UNPROVEN",
                i,
                f"{instr.op} address range [0x{lo:x}, 0x{hi:x}] straddles "
                "buffer bounds; not provable",
            )
        if width > 1:
            aligned_proof = addr.stride % width == 0
            if aligned_proof and addr.lo % width != 0:
                self._emit(
                    "W-ALIGN",
                    i,
                    f"{instr.op} address is provably ≡ "
                    f"{addr.lo % width} (mod {width})",
                )
            elif not (aligned_proof and addr.lo % width == 0):
                self._emit(
                    "I-ALIGN-UNPROVEN",
                    i,
                    f"{instr.op} ({width}-byte) alignment not provable",
                )


@dataclass
class RegionFacts:
    """Loop facts the abstract interpreter proved for one region."""

    #: the region's entry block
    entry: int
    #: True when the final pass ran with a converged trip-count memo;
    #: False on the pass-cap path (every trip count is then stale and
    #: must be distrusted wholesale)
    stable: bool
    #: header block -> (n_max, n_exact) iterations *per loop entry*
    trips: Dict[int, Tuple[Optional[int], Optional[int]]] = field(
        default_factory=dict
    )
    #: headers whose trip counts survive the invariance audit: region
    #: stable, the counter's delta is purely this loop's own syntactic
    #: self-increments (untouched by inner loops), and the bound
    #: register is not modified anywhere in the loop body (including
    #: via call clobbers)
    trusted: Set[int] = field(default_factory=set)


@dataclass
class AbsintFacts:
    """Everything the strided-interval pass proved, packaged for
    consumers beyond the safety gate (the throughput analyzer)."""

    #: instr -> (lo, hi) proven in-bounds byte range (incl. width)
    proven: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: memory accesses examined (proven + unproven)
    checked: int = 0
    #: instr -> (lo, hi, stride) proven start-address interval
    proven_si: Dict[int, Tuple[int, int, int]] = field(default_factory=dict)
    #: one entry per region, in :meth:`CFG.regions` order (main first)
    regions: List[RegionFacts] = field(default_factory=list)


def _trusted_headers(analysis: _RegionAnalysis) -> Set[int]:
    """Headers whose per-entry trip counts are safe to *trust* (not
    merely to use for envelope pinning): see :attr:`RegionFacts.trusted`.
    """
    trusted: Set[int] = set()
    if not analysis.stable:
        return trusted
    for header, (n_max, _n_exact, ctr, bound) in analysis.trip_meta.items():
        if n_max is None or ctr is None:
            continue
        info = analysis.loop_info[header]
        # counter delta must be this loop's own syntactic increments
        if ctr not in info.deltas:
            continue
        inner_clobbered: Set[int] = set()
        for inner_header in info.loop.inner:
            inner_clobbered |= analysis._clobbered(
                analysis.loop_info[inner_header]
            )
        if ctr in inner_clobbered:
            continue
        # bound register must be loop-invariant (incl. call clobbers)
        if bound is not None and bound != ZERO:
            if bound in analysis._clobbered(info):
                continue
        trusted.add(header)
    return trusted


def analyze_values(
    program: Program, cfg: CFG, diags: List[Diagnostic]
) -> AbsintFacts:
    """Run the abstract interpreter over every region, emit the
    memory-safety / VIS-value diagnostics into ``diags``, and return
    the full :class:`AbsintFacts` (proven access intervals + audited
    per-region loop trip counts)."""
    facts = AbsintFacts()
    if not cfg.n_blocks:
        return facts
    summaries = _function_summaries(cfg)
    transfer = _Transfer(cfg, summaries)
    aggregate = _Checker(program, cfg)
    zero_entry: State = {r: SI.const(0) for r in range(NUM_REGS)}
    for rno, region in enumerate(cfg.regions()):
        if rno == 0:  # main program: the machine zero-inits all regs
            entry_state = zero_entry
        else:
            # function body: unknown caller context (LINK is a code
            # index, never a data address)
            entry_state = {ZERO: SI.const(0)}
        analysis = _RegionAnalysis(
            cfg, region, entry_state, transfer, summaries
        )
        committed = analysis.run(
            lambda: _Checker(program, cfg).seed_from(aggregate)
        )
        if committed is not None:
            aggregate.merge(committed)
        facts.regions.append(RegionFacts(
            entry=region.entry,
            stable=analysis.stable,
            trips=dict(analysis.trips),
            trusted=_trusted_headers(analysis),
        ))
    diags.extend(aggregate.diags)
    facts.proven = aggregate.proven
    facts.checked = aggregate.checked
    facts.proven_si = aggregate.proven_si
    return facts


def run_value_checks(
    program: Program, cfg: CFG, diags: List[Diagnostic]
) -> Tuple[Dict[int, Tuple[int, int]], int]:
    """Run the abstract interpreter over every region and emit the
    memory-safety / VIS-value diagnostics.

    Returns ``(proven_accesses, checked_accesses)``.
    """
    facts = analyze_values(program, cfg, diags)
    return facts.proven, facts.checked
