"""VIS idiom lint: Table 4 producer/consumer conventions.

Two checks that are structural rather than value- or init-based:

* ``W-VEDGE`` — an ``edge8/16/32`` result that is never consumed as the
  byte mask of a partial store (``pst``).  The whole point of the edge
  instructions is to feed ``pst`` at array boundaries; an unconsumed
  mask almost always means the boundary partial store was forgotten
  (the workload silently over- or under-writes the edge).
* ``W-VMUL8`` — an ``fmul8x16``-family multiply whose *8-bit* operand
  (the first source) was most recently produced, in the same basic
  block, by an instruction that emits 16-bit lanes (``fexpand``,
  ``fpadd16``, ``fpsub16``, or another 8x16 multiply).  The hardware
  interprets that operand as four unsigned bytes, so feeding it 16-bit
  lanes multiplies garbage.  The scan is intra-block and only fires on
  a definite producer, keeping it free of false positives.
"""

from __future__ import annotations

from typing import List, Set

from .cfg import CFG
from .diagnostics import Diagnostic, make_diagnostic

_EDGE_OPS = ("edge8", "edge16", "edge32")
_MUL8X16_OPS = ("fmul8x16", "fmul8x16au", "fmul8x16al")
#: ops whose result is 16-bit lanes (unfit for an 8-bit multiply input)
_WIDE_PRODUCERS = frozenset(
    ("fexpand", "fpadd16", "fpsub16") + _MUL8X16_OPS
)


def run_vis_idiom_checks(cfg: CFG, diags: List[Diagnostic]) -> None:
    instructions = cfg.instructions

    # -- W-VEDGE: edge masks that never reach a pst --------------------------
    pst_mask_regs: Set[int] = set()
    for instr in instructions:
        if instr.op == "pst":
            pst_mask_regs.add(instr.srcs[1])
    for idx, instr in enumerate(instructions):
        if instr.op in _EDGE_OPS and instr.dst not in pst_mask_regs:
            if cfg.block_of and cfg.block_of[idx] not in cfg.reachable:
                continue
            diags.append(
                make_diagnostic(
                    "W-VEDGE",
                    idx,
                    f"{instr.op} writes a byte mask that no pst in the "
                    "program consumes",
                )
            )

    # -- W-VMUL8: 16-bit-lane value fed to the 8-bit multiply operand --------
    for block in cfg.reachable:
        producer: dict = {}
        for i in cfg.block_instrs(block):
            instr = instructions[i]
            if instr.op in _MUL8X16_OPS:
                src8 = instr.srcs[0]
                prod = producer.get(src8)
                if prod is not None and prod in _WIDE_PRODUCERS:
                    diags.append(
                        make_diagnostic(
                            "W-VMUL8",
                            i,
                            f"{instr.op} treats its first operand as four "
                            f"unsigned bytes, but it was produced by "
                            f"{prod} (16-bit lanes)",
                        )
                    )
            if instr.dst >= 0:
                producer[instr.dst] = instr.op
            if instr.dst2 >= 0:
                producer[instr.dst2] = instr.op
