"""Control-flow graph construction for assembled SVIS programs.

Works on the *finalized* :class:`~repro.asm.program.Program` (labels
already resolved to instruction indices).  Two views are provided:

* the **full graph** — conditional branches fork, ``j`` jumps, ``call``
  edges into the callee entry, ``ret`` edges back to every return site
  of the function it belongs to, ``halt`` exits.  Used for
  reachability, unreachable-code detection and liveness.
* the **collapsed graph** — calls fall through to their return site
  (the callee's effect is applied via a summary) and rets stop.  This
  is the intraprocedural view; :class:`Region` instances (one for the
  main program, one per called function) carry reverse postorder,
  dominators and natural loops over it, which the abstract interpreter
  uses for induction-variable reasoning.

Functions are discovered as call targets; membership by intraprocedural
reachability.  A ``ret`` reachable from no call target is *orphaned*
(it would jump through an uninitialized link register).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..asm.program import Program
from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass

#: edge kinds (used by the abstract interpreter for branch refinement)
E_FALL = "fall"
E_TAKEN = "taken"
E_JUMP = "jump"
E_CALL = "call"
E_RET = "ret"
E_CALLFALL = "callfall"  #: collapsed call -> return-site edge

_COND_BRANCHES = ("beq", "bne", "blt", "ble", "bgt", "bge")

Edge = Tuple[int, str]


class CFG:
    """Basic-block control-flow graph of one program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.instructions: Sequence[Instruction] = program.instructions
        self.n = len(program.instructions)
        self.bad_targets: List[int] = []  #: instr indices with E-BADTARGET
        self.falloff: List[int] = []  #: instr indices that can fall off
        self.orphan_rets: List[int] = []  #: rets outside any function
        self._build_blocks()
        self._build_edges()
        self._reachability()

    # -- block construction ------------------------------------------------

    def _build_blocks(self) -> None:
        leaders: Set[int] = {0} if self.n else set()
        self.call_sites: List[int] = []
        self.call_targets: Set[int] = set()
        self.ret_sites: List[int] = []
        for idx, instr in enumerate(self.instructions):
            spec = instr.spec
            if spec.is_control or instr.op == "halt":
                if idx + 1 < self.n:
                    leaders.add(idx + 1)
                if instr.op in _COND_BRANCHES or spec.opclass in (
                    OpClass.JUMP,
                    OpClass.CALL,
                ):
                    if 0 <= instr.target < self.n:
                        leaders.add(instr.target)
                    else:
                        self.bad_targets.append(idx)
                if spec.opclass == OpClass.CALL:
                    self.call_sites.append(idx)
                    if 0 <= instr.target < self.n:
                        self.call_targets.add(instr.target)
                if spec.opclass == OpClass.RET:
                    self.ret_sites.append(idx)
        ordered = sorted(leaders)
        self.blocks: List[Tuple[int, int]] = []
        self.block_of: List[int] = [0] * self.n
        for bi, start in enumerate(ordered):
            end = ordered[bi + 1] if bi + 1 < len(ordered) else self.n
            self.blocks.append((start, end))
            for i in range(start, end):
                self.block_of[i] = bi
        self.n_blocks = len(self.blocks)

    # -- function discovery / ret matching --------------------------------

    def _function_nodes(self, entry: int) -> Set[int]:
        """Instruction indices reachable intraprocedurally from ``entry``
        (calls fall through to their return site; stop at ret/halt)."""
        seen: Set[int] = set()
        stack = [entry]
        while stack:
            idx = stack.pop()
            if idx in seen or not (0 <= idx < self.n):
                continue
            seen.add(idx)
            instr = self.instructions[idx]
            spec = instr.spec
            if instr.op == "halt" or spec.opclass == OpClass.RET:
                continue
            if spec.opclass == OpClass.CALL:
                if idx + 1 < self.n:
                    stack.append(idx + 1)  # resumes after the callee
                continue
            if instr.op in _COND_BRANCHES:
                if idx + 1 < self.n:
                    stack.append(idx + 1)
                if 0 <= instr.target < self.n:
                    stack.append(instr.target)
                continue
            if spec.opclass == OpClass.JUMP:
                if 0 <= instr.target < self.n:
                    stack.append(instr.target)
                continue
            if idx + 1 < self.n:
                stack.append(idx + 1)
        return seen

    def _build_edges(self) -> None:
        self.functions: Dict[int, Set[int]] = {
            entry: self._function_nodes(entry)
            for entry in sorted(self.call_targets)
        }
        ret_returns: Dict[int, List[int]] = {r: [] for r in self.ret_sites}
        for entry, nodes in self.functions.items():
            returns = [
                c + 1
                for c in self.call_sites
                if self.instructions[c].target == entry and c + 1 < self.n
            ]
            for r in self.ret_sites:
                if r in nodes:
                    ret_returns[r].extend(returns)
        for r in self.ret_sites:
            if not ret_returns[r]:
                self.orphan_rets.append(r)

        self.succs: List[List[Edge]] = [[] for _ in range(self.n_blocks)]
        self.preds: List[List[int]] = [[] for _ in range(self.n_blocks)]
        for bi, (start, end) in enumerate(self.blocks):
            last = end - 1
            instr = self.instructions[last]
            spec = instr.spec
            targets: List[Edge] = []
            if instr.op == "halt":
                pass
            elif spec.opclass == OpClass.RET:
                targets = [
                    (t, E_RET) for t in sorted(set(ret_returns[last]))
                ]
            elif instr.op in _COND_BRANCHES:
                if last + 1 < self.n:
                    targets.append((last + 1, E_FALL))
                else:
                    self.falloff.append(last)
                if 0 <= instr.target < self.n:
                    targets.append((instr.target, E_TAKEN))
            elif spec.opclass == OpClass.JUMP:
                if 0 <= instr.target < self.n:
                    targets.append((instr.target, E_JUMP))
            elif spec.opclass == OpClass.CALL:
                if 0 <= instr.target < self.n:
                    targets.append((instr.target, E_CALL))
            else:
                if last + 1 < self.n:
                    targets.append((last + 1, E_FALL))
                else:
                    self.falloff.append(last)
            for tgt, kind in targets:
                tb = self.block_of[tgt]
                self.succs[bi].append((tb, kind))
                self.preds[tb].append(bi)

    def collapsed_succs(self, block: int) -> List[Edge]:
        """Intraprocedural successors: calls fall through to their
        return site, rets stop."""
        term = self.terminator(block)
        if term.spec.opclass == OpClass.RET:
            return []
        if term.spec.opclass == OpClass.CALL:
            site = self.blocks[block][1]
            return [(self.block_of[site], E_CALLFALL)] if site < self.n else []
        return list(self.succs[block])

    # -- reachability ------------------------------------------------------

    def _reachability(self) -> None:
        self.reachable: Set[int] = set()
        if not self.n_blocks:
            self.rpo: List[int] = []
            return
        post: List[int] = []
        state: Dict[int, int] = {0: 0}
        stack: List[Tuple[int, int]] = [(0, 0)]
        while stack:
            node, si = stack[-1]
            succs = self.succs[node]
            if si < len(succs):
                stack[-1] = (node, si + 1)
                nxt = succs[si][0]
                if nxt not in state:
                    state[nxt] = 0
                    stack.append((nxt, 0))
            else:
                stack.pop()
                post.append(node)
        self.reachable = set(post)
        self.rpo = list(reversed(post))

    # -- convenience -------------------------------------------------------

    def block_instrs(self, block: int) -> range:
        start, end = self.blocks[block]
        return range(start, end)

    def terminator(self, block: int) -> Instruction:
        return self.instructions[self.blocks[block][1] - 1]

    def regions(self) -> List["Region"]:
        """The main region plus one per called function (in a stable
        order, main first)."""
        out = [Region(self, 0)] if self.n_blocks else []
        for entry in sorted(self.functions):
            out.append(Region(self, self.block_of[entry]))
        return out


@dataclass
class Loop:
    """One natural loop (merged over all back edges to its header)."""

    header: int  #: header block id
    body: Set[int] = field(default_factory=set)  #: block ids incl. header
    latches: Set[int] = field(default_factory=set)
    #: static index of the latch conditional branch, when the loop has a
    #: single latch terminated by one (else None)
    latch_branch: Optional[int] = None
    #: True when the only edges leaving the loop originate at the latch
    single_exit: bool = False
    #: headers of loops directly nested inside this one
    inner: Set[int] = field(default_factory=set)


class Region:
    """One intraprocedural subgraph (main program or one function) over
    the collapsed edges, with RPO, dominators and natural loops."""

    def __init__(self, cfg: CFG, entry: int) -> None:
        self.cfg = cfg
        self.entry = entry
        self._traverse()
        self._dominators()
        self._find_loops()

    def _traverse(self) -> None:
        cfg = self.cfg
        post: List[int] = []
        state: Dict[int, int] = {self.entry: 0}
        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        succs_cache: Dict[int, List[Edge]] = {}
        while stack:
            node, si = stack[-1]
            succs = succs_cache.setdefault(node, cfg.collapsed_succs(node))
            if si < len(succs):
                stack[-1] = (node, si + 1)
                nxt = succs[si][0]
                if nxt not in state:
                    state[nxt] = 0
                    stack.append((nxt, 0))
            else:
                stack.pop()
                post.append(node)
        self.nodes: Set[int] = set(post)
        self.rpo: List[int] = list(reversed(post))
        self.rpo_index: Dict[int, int] = {b: i for i, b in enumerate(self.rpo)}
        self.succs: Dict[int, List[Edge]] = succs_cache
        self.preds: Dict[int, List[int]] = {b: [] for b in self.nodes}
        for node in self.nodes:
            for tgt, _kind in self.succs[node]:
                self.preds[tgt].append(node)

    def _dominators(self) -> None:
        """Cooper-Harvey-Kennedy iterative idom computation."""
        idom: Dict[int, int] = {}
        if not self.rpo:
            self.idom = idom
            self._dom_tin: Dict[int, int] = {}
            self._dom_tout: Dict[int, int] = {}
            return
        idom[self.entry] = self.entry
        order = self.rpo_index

        def intersect(a: int, b: int) -> int:
            while a != b:
                while order[a] > order[b]:
                    a = idom[a]
                while order[b] > order[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for node in self.rpo[1:]:
                new: Optional[int] = None
                for p in self.preds[node]:
                    if p in idom:
                        new = p if new is None else intersect(new, p)
                if new is not None and idom.get(node) != new:
                    idom[node] = new
                    changed = True
        self.idom = idom
        # Euler-tour intervals over the dominator tree: ``a`` dominates
        # ``b`` iff a's interval contains b's, making dominates() O(1)
        # (loop discovery and induction summaries query it heavily).
        children: Dict[int, List[int]] = {}
        for node, parent in idom.items():
            if node != parent:
                children.setdefault(parent, []).append(node)
        tin: Dict[int, int] = {}
        tout: Dict[int, int] = {}
        clock = 0
        stack = [(self.entry, False)]
        while stack:
            node, done = stack.pop()
            if done:
                tout[node] = clock
                clock += 1
                continue
            tin[node] = clock
            clock += 1
            stack.append((node, True))
            for child in children.get(node, ()):
                stack.append((child, False))
        self._dom_tin = tin
        self._dom_tout = tout

    def dominates(self, a: int, b: int) -> bool:
        """Does node ``a`` dominate node ``b`` within this region?"""
        if a == b:
            return True
        tin = self._dom_tin
        ta = tin.get(a)
        tb = tin.get(b)
        if ta is None or tb is None:
            return False
        return ta < tb and self._dom_tout[b] < self._dom_tout[a]

    def _find_loops(self) -> None:
        self.loops: Dict[int, Loop] = {}
        self.back_edges: Set[Tuple[int, int]] = set()
        self.irreducible_heads: Set[int] = set()
        for src in self.nodes:
            for tgt, _kind in self.succs[src]:
                if self.rpo_index[tgt] <= self.rpo_index[src]:
                    if self.dominates(tgt, src):
                        self.back_edges.add((src, tgt))
                        loop = self.loops.setdefault(tgt, Loop(header=tgt))
                        loop.latches.add(src)
                        self._collect_body(loop, src)
                    else:
                        self.irreducible_heads.add(tgt)
        for loop in self.loops.values():
            self._finish_loop(loop)
        for h, loop in self.loops.items():
            for h2, inner in self.loops.items():
                if h2 != h and h2 in loop.body and inner.body < loop.body:
                    loop.inner.add(h2)
        for loop in self.loops.values():
            direct = set(loop.inner)
            for c in loop.inner:
                direct -= self.loops[c].inner
            loop.inner = direct

    def _collect_body(self, loop: Loop, latch: int) -> None:
        loop.body.add(loop.header)
        stack = [latch]
        while stack:
            node = stack.pop()
            if node in loop.body:
                continue
            loop.body.add(node)
            stack.extend(p for p in self.preds.get(node, ()))

    def _finish_loop(self, loop: Loop) -> None:
        cfg = self.cfg
        if len(loop.latches) == 1:
            latch = next(iter(loop.latches))
            last_idx = cfg.blocks[latch][1] - 1
            last = cfg.instructions[last_idx]
            if (
                last.op in _COND_BRANCHES
                and 0 <= last.target < cfg.n
                and cfg.block_of[last.target] == loop.header
            ):
                loop.latch_branch = last_idx
        exits = [
            (src, tgt)
            for src in loop.body
            for tgt, _k in self.succs[src]
            if tgt not in loop.body
        ]
        loop.single_exit = all(src in loop.latches for src, _ in exits)

    def loop_of_block(self, block: int) -> Optional[Loop]:
        """The innermost loop containing ``block`` (or None)."""
        best: Optional[Loop] = None
        for loop in self.loops.values():
            if block in loop.body:
                if best is None or len(loop.body) < len(best.body):
                    best = loop
        return best
