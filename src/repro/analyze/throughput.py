"""Static cycle-bound analyzer (llvm-mca / roofline style).

For any assembled :class:`~repro.asm.program.Program` and any
``(ProcessorConfig, MemoryConfig)`` pair this module computes, *without
simulating*, a whole-program **lower and upper bound on cycles** plus a
per-basic-block bottleneck table.  Three consumers:

* ``analyze throughput`` / ``lint --perf`` CLI surfaces (human table +
  machine-readable JSON);
* the **bracketing suite** — for every workload × config × variant the
  tests assert ``lower <= ExecutionStats.cycles <= upper`` on both
  engines, a free differential oracle over the timing models;
* the ``--prune-static`` design-space mode — a config point whose lower
  bound is already beaten by a cheaper simulated point cannot join the
  Pareto frontier and is skipped (provenance goes to the run manifest).

**Soundness contract.**  The *enforced* whole-program lower bound uses
only components proved against the timing recurrences in
``repro.cpu.pipeline`` (they are identical for the scalar and vector
engines by construction):

* **issue**: at most ``issue_width`` instructions retire per cycle and
  every retire cycle is >= 1, so ``cycles >= ceil(N/width) + 1``;
* **functional units**: each op claims one unit of its class and
  strictly advances that unit's clock, so some unit reaches
  ``ceil(N_F/units_F)`` and ``cycles >= ceil(N_F/units_F) + 1``;
* **accumulator dependence chains**: a register whose every potential
  writer is either a self-referencing simple op (``complete >=
  reg_ready[r] + lat``) or an execute-at-most-once initializer that
  dominates every accumulate site advances ``reg_ready[r]`` by ``lat``
  per accumulate, so ``cycles >= sum(lat * min_execs) + 1``;
* **L1 ports / memory queue**: every ``memory.access`` claims an L1
  port whose clock advances by one per claim, and a memory op ``Q``
  positions later in the memory queue cannot issue before the earlier
  op's completion.

Trip counts come from the abstract interpreter's induction envelopes
(:func:`repro.analyze.absint.analyze_values`); only counts that survive
the invariance audit (:attr:`RegionFacts.trusted`) are used.  The upper
bound charges each instruction the worst-case amount it can advance any
clock of the machine (a monotone-potential argument); any reachable
block whose execution count cannot be bounded makes the upper bound
infinite and emits ``W-UNBOUNDED-LOOP``.

Per-block *attribution* (the mca-style table) additionally uses the
proven strided-interval footprint of each access (unique cache lines ×
miss cost, best/worst).  Footprint attribution is display-only: a
strided interval over-approximates the true footprint, so it never
feeds the enforced lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..asm.program import Program
from ..cpu.config import ProcessorConfig
from ..mem.config import MemoryConfig
from ..sim.static_info import (
    FU_NAMES,
    K_BRANCH,
    K_LOAD,
    K_PREFETCH,
    K_SIMPLE,
    K_STORE,
    K_UNCOND,
    NUM_FU_TYPES,
    StaticProgramInfo,
)
from .absint import AbsintFacts, RegionFacts, analyze_values
from .cfg import CFG, Loop, Region
from .diagnostics import Diagnostic, make_diagnostic

#: execution-count type: ``None`` means unbounded (∞)
Count = Optional[int]


def _mul(a: Count, b: Count) -> Count:
    if a == 0 or b == 0:
        return 0
    if a is None or b is None:
        return None
    return a * b


def _add(a: Count, b: Count) -> Count:
    if a is None or b is None:
        return None
    return a + b


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _fmt_count(c: Count) -> str:
    return "inf" if c is None else str(c)


# ---------------------------------------------------------------------------
# Result objects
# ---------------------------------------------------------------------------


@dataclass
class LoopBound:
    """Iteration bounds of one natural loop, per entry of the loop."""

    header: int  #: header block id
    region_entry: int  #: entry block of the owning region
    branch_index: int  #: static index anchoring diagnostics
    n_min: int  #: guaranteed completed iterations per entry
    n_max: Count  #: max iterations per entry (None = unbounded)
    trusted: bool  #: trip count survived the invariance audit

    def to_dict(self) -> Dict[str, object]:
        return {
            "header": self.header,
            "region_entry": self.region_entry,
            "branch_index": self.branch_index,
            "n_min": self.n_min,
            "n_max": self.n_max,
            "trusted": self.trusted,
        }


@dataclass
class BlockBound:
    """Per-execution bottleneck attribution for one basic block.

    All ``*_cycles`` figures are steady-state cycles *per execution of
    the block*; ``bound_cycles`` is their max and ``binding`` names the
    component that set it.  This is attribution (mca-style), not the
    enforced whole-program bound.
    """

    block: int
    region_entry: int
    first: int  #: first static instruction index
    last: int  #: last static instruction index (inclusive)
    exec_min: int
    exec_max: Count
    slots: int  #: traced instructions per execution
    issue_cycles: float
    dep_cycles: float  #: intra-block critical path (latency chain)
    fu_cycles: float
    fu_binding: str  #: FU class behind ``fu_cycles``
    mem_ops: int  #: loads + stores per execution
    lines_per_exec: float  #: est. new cache lines touched per execution
    mem_cycles_best: float  #: all-hit / streaming-bandwidth estimate
    mem_cycles_worst: float  #: every new line takes the full miss chain
    bound_cycles: float
    binding: str
    utilization: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "block": self.block,
            "region_entry": self.region_entry,
            "range": [self.first, self.last],
            "exec_min": self.exec_min,
            "exec_max": self.exec_max,
            "slots": self.slots,
            "issue_cycles": round(self.issue_cycles, 3),
            "dep_cycles": round(self.dep_cycles, 3),
            "fu_cycles": round(self.fu_cycles, 3),
            "fu_binding": self.fu_binding,
            "mem_ops": self.mem_ops,
            "lines_per_exec": round(self.lines_per_exec, 3),
            "mem_cycles_best": round(self.mem_cycles_best, 3),
            "mem_cycles_worst": round(self.mem_cycles_worst, 3),
            "bound_cycles": round(self.bound_cycles, 3),
            "binding": self.binding,
            "utilization": {
                k: round(v, 3) for k, v in self.utilization.items()
            },
        }


@dataclass
class ThroughputReport:
    """Static cycle bounds + bottleneck attribution for one program."""

    program_name: str
    config_name: str
    lower: int
    upper: Count  #: None = unbounded (some trip count unprovable)
    lower_binding: str  #: component that set ``lower``
    lower_components: Dict[str, int] = field(default_factory=dict)
    #: bounds on the traced dynamic instruction count
    instr_min: int = 0
    instr_max: Count = 0
    blocks: List[BlockBound] = field(default_factory=list)
    loops: List[LoopBound] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def bounded(self) -> bool:
        return self.upper is not None

    def to_dict(self) -> Dict[str, object]:
        return {
            "program": self.program_name,
            "config": self.config_name,
            "lower": self.lower,
            "upper": self.upper,
            "lower_binding": self.lower_binding,
            "lower_components": dict(self.lower_components),
            "instr_min": self.instr_min,
            "instr_max": self.instr_max,
            "blocks": [b.to_dict() for b in self.blocks],
            "loops": [lp.to_dict() for lp in self.loops],
            "diagnostics": [
                {"code": d.code, "index": d.index, "message": d.message}
                for d in self.diagnostics
            ],
        }

    # -- presentation ------------------------------------------------------

    def summary(self) -> str:
        return (
            f"{self.program_name} @ {self.config_name}: "
            f"cycles in [{self.lower}, {_fmt_count(self.upper)}] "
            f"(binding: {self.lower_binding}); "
            f"instructions in [{self.instr_min}, "
            f"{_fmt_count(self.instr_max)}]"
        )

    def format(self, max_blocks: Optional[int] = None) -> str:
        lines = [self.summary()]
        comps = ", ".join(
            f"{k}={v}" for k, v in sorted(
                self.lower_components.items(), key=lambda kv: -kv[1]
            )
        )
        lines.append(f"  lower-bound components: {comps}")
        for d in self.diagnostics:
            lines.append("  " + d.format())
        hdr = (
            f"  {'block':>5} {'instrs':>7} {'execs':>15} {'issue':>7} "
            f"{'dep':>7} {'fu':>7} {'mem':>9} {'bound':>7} "
            f"{'util%':>5}  binding"
        )
        lines.append(hdr)
        shown = self.blocks
        if max_blocks is not None:
            shown = sorted(
                self.blocks,
                key=lambda b: -(b.bound_cycles * (b.exec_min or 1)),
            )[:max_blocks]
            shown.sort(key=lambda b: b.block)
        for b in shown:
            execs = f"{b.exec_min}..{_fmt_count(b.exec_max)}"
            util = b.utilization.get(b.binding, 1.0)
            lines.append(
                f"  {b.block:>5} {b.first:>3}-{b.last:<3} {execs:>15} "
                f"{b.issue_cycles:>7.1f} {b.dep_cycles:>7.1f} "
                f"{b.fu_cycles:>7.1f} "
                f"{b.mem_cycles_best:>4.1f}/{b.mem_cycles_worst:<6.1f} "
                f"{b.bound_cycles:>7.1f} {util * 100:>5.0f}  {b.binding}"
            )
        if max_blocks is not None and len(self.blocks) > len(shown):
            lines.append(
                f"  ... {len(self.blocks) - len(shown)} more block(s)"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Execution-count bounds
# ---------------------------------------------------------------------------


def _region_exits(region: Region) -> List[int]:
    """Blocks that leave the region (halt / ret / no successor)."""
    return [b for b in region.rpo if not region.succs[b]]


def _loop_min_factor(
    region: Region,
    rfacts: RegionFacts,
    loop: Loop,
    block: int,
    exits: List[int],
) -> int:
    """Guaranteed executions of ``block`` per entry of ``loop``.

    ``n_exact`` applies only when the loop provably completes exactly
    that many iterations (single latch, exits only at the latch, no
    halt/ret inside the body) and ``block`` is on every iteration's
    path (it dominates the latch; since the header dominates the body,
    every header->latch path then passes through ``block``).
    """
    if loop.header not in rfacts.trusted:
        return 1
    n_exact = rfacts.trips.get(loop.header, (None, None))[1]
    if n_exact is None:
        return 1
    if len(loop.latches) != 1 or not loop.single_exit:
        return 1
    latch = next(iter(loop.latches))
    if not region.dominates(block, latch):
        return 1
    if any(e in loop.body for e in exits):
        return 1
    return max(1, n_exact)


def _region_rel_counts(
    region: Region, rfacts: RegionFacts
) -> Tuple[Dict[int, int], Dict[int, Count]]:
    """Per-block (min, max) executions per entry of the region."""
    exits = _region_exits(region)
    unbounded = bool(region.irreducible_heads)
    relmin: Dict[int, int] = {}
    relmax: Dict[int, Count] = {}
    loops = list(region.loops.values())
    for b in region.rpo:
        enclosing = [lp for lp in loops if b in lp.body]
        mx: Count = 1
        if unbounded:
            mx = None
        else:
            for lp in enclosing:
                if lp.header in rfacts.trusted:
                    mx = _mul(mx, rfacts.trips[lp.header][0])
                else:
                    mx = None
                    break
        mn = 0
        if all(region.dominates(b, e) for e in exits):
            mn = 1
            for lp in enclosing:
                mn *= _loop_min_factor(region, rfacts, lp, b, exits)
        relmin[b] = mn
        relmax[b] = mx
    return relmin, relmax


def _entry_counts(
    cfg: CFG,
    regions: List[Region],
    rel: List[Tuple[Dict[int, int], Dict[int, Count]]],
    info: StaticProgramInfo,
) -> Tuple[List[int], List[Count], Set[int]]:
    """Interprocedural (min, max) entry counts per region.

    Kahn's algorithm over the call graph; any region left unprocessed
    sits in (or downstream of) a call-graph cycle and gets ``(0, inf)``.
    Returns ``(entry_min, entry_max, cyclic_region_indices)``.
    """
    entry_of = {r.entry: idx for idx, r in enumerate(regions)}
    edges: List[List[Tuple[int, int, Count]]] = [[] for _ in regions]
    indeg = [0] * len(regions)
    for idx, region in enumerate(regions):
        relmin, relmax = rel[idx]
        for b in region.rpo:
            last = cfg.blocks[b][1] - 1
            if not info.is_call[last]:
                continue
            target = cfg.instructions[last].target
            if not (0 <= target < cfg.n):
                continue
            callee = entry_of.get(cfg.block_of[target])
            if callee is None:
                continue
            edges[idx].append((callee, relmin[b], relmax[b]))
            indeg[callee] += 1
    entry_min = [0] * len(regions)
    entry_max: List[Count] = [0] * len(regions)
    entry_min[0] = 1
    entry_max[0] = 1
    done: Set[int] = set()
    queue = [i for i in range(len(regions)) if indeg[i] == 0]
    while queue:
        idx = queue.pop()
        done.add(idx)
        for callee, site_min, site_max in edges[idx]:
            entry_min[callee] += entry_min[idx] * site_min
            entry_max[callee] = _add(
                entry_max[callee], _mul(entry_max[idx], site_max)
            )
            indeg[callee] -= 1
            if indeg[callee] == 0:
                queue.append(callee)
    cyclic = set(range(len(regions))) - done
    for idx in cyclic:
        entry_min[idx] = 0
        entry_max[idx] = None
    return entry_min, entry_max, cyclic


# ---------------------------------------------------------------------------
# Lower-bound components
# ---------------------------------------------------------------------------


def _dep_chain_components(
    info: StaticProgramInfo,
    cfg: CFG,
    main: Region,
    instr_min: List[int],
    instr_max: List[Count],
) -> Dict[str, int]:
    """Accumulator dependence-chain lower bounds, one per register.

    Register ``r`` qualifies when every writer that can execute is
    either an *advancer* — a simple op ``r = f(r, ...)`` whose
    ``complete >= reg_ready[r] + lat`` — or a *resetter* that executes
    at most once and whose block dominates every advancer's block (so
    all resets precede all accumulation).  Then the final
    ``reg_ready[r]`` is at least the sum of advancer latencies over
    their guaranteed executions, and some instruction completes that
    late.
    """
    writers: Dict[int, List[int]] = {}
    for i in range(len(info)):
        if info.op_name[i] == "halt":
            continue
        for d in (info.dst[i], info.dst2[i]):
            if d >= 0:
                writers.setdefault(d, []).append(i)
    comps: Dict[str, int] = {}
    for reg, ws in writers.items():
        active = [i for i in ws if instr_max[i] != 0]
        if not active:
            continue
        advancers = [
            i
            for i in active
            if info.kind[i] == K_SIMPLE
            and info.dst[i] == reg
            and info.dst2[i] < 0
            and reg in info.srcs[i]
        ]
        if not advancers:
            continue
        total = sum(info.latency[i] * instr_min[i] for i in advancers)
        if total <= 0:
            continue
        adv_set = set(advancers)
        ok = True
        for i in active:
            if cfg.block_of[i] not in main.nodes:
                ok = False  # written outside main: order unknowable
                break
            if i in adv_set:
                continue
            mx = instr_max[i]
            if mx is None or mx > 1:
                ok = False
                break
            if not all(
                main.dominates(cfg.block_of[i], cfg.block_of[a])
                for a in advancers
            ):
                ok = False
                break
        if ok:
            comps[f"dep-chain(r{reg})"] = total + 1
    return comps


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


def analyze_throughput(
    program: Program,
    cpu: ProcessorConfig,
    mem: MemoryConfig,
    facts: Optional[AbsintFacts] = None,
    cfg: Optional[CFG] = None,
) -> ThroughputReport:
    """Static cycle bounds + per-block bottleneck attribution.

    ``facts``/``cfg`` may be passed to reuse an existing abstract-
    interpretation run (they must belong to ``program``).
    """
    if cfg is None:
        cfg = CFG(program)
    if facts is None:
        scratch: List[Diagnostic] = []
        facts = analyze_values(program, cfg, scratch)
    info = StaticProgramInfo(program)
    n = len(info)
    report = ThroughputReport(
        program_name=program.name,
        config_name=cpu.name,
        lower=0,
        upper=0,
        lower_binding="empty",
    )
    if n == 0 or not cfg.n_blocks:
        return report

    regions = cfg.regions()
    rel = [
        _region_rel_counts(region, rfacts)
        for region, rfacts in zip(regions, facts.regions)
    ]
    entry_min, entry_max, cyclic = _entry_counts(cfg, regions, rel, info)

    # per-static-instruction execution bounds (blocks shared between
    # regions accumulate; the final halt is never traced)
    instr_min = [0] * n
    instr_max: List[Count] = [0] * n
    for idx, region in enumerate(regions):
        relmin, relmax = rel[idx]
        for b in region.rpo:
            bmin = entry_min[idx] * relmin[b]
            bmax = _mul(entry_max[idx], relmax[b])
            for i in cfg.block_instrs(b):
                instr_min[i] += bmin
                instr_max[i] = _add(instr_max[i], bmax)
    for i in range(n):
        if info.op_name[i] == "halt":
            instr_min[i] = 0
            instr_max[i] = 0

    # -- diagnostics for unbounded execution counts ------------------------
    for idx, (region, rfacts) in enumerate(zip(regions, facts.regions)):
        if entry_max[idx] == 0:
            continue
        anchor = cfg.blocks[region.entry][0]
        if idx in cyclic:
            report.diagnostics.append(make_diagnostic(
                "W-UNBOUNDED-LOOP",
                anchor,
                "recursive call cycle: entry count unbounded",
            ))
        if region.irreducible_heads:
            report.diagnostics.append(make_diagnostic(
                "W-UNBOUNDED-LOOP",
                anchor,
                "irreducible control flow: iteration counts unbounded",
            ))
        for header, loop in sorted(region.loops.items()):
            n_max, n_exact = rfacts.trips.get(header, (None, None))
            trusted = header in rfacts.trusted
            branch_index = (
                loop.latch_branch
                if loop.latch_branch is not None
                else cfg.blocks[header][0]
            )
            n_min = 1
            if trusted and n_exact is not None:
                if (
                    len(loop.latches) == 1
                    and loop.single_exit
                    and not any(
                        e in loop.body for e in _region_exits(region)
                    )
                ):
                    n_min = max(1, n_exact)
            report.loops.append(LoopBound(
                header=header,
                region_entry=region.entry,
                branch_index=branch_index,
                n_min=n_min,
                n_max=n_max if trusted else None,
                trusted=trusted,
            ))
            if not trusted:
                report.diagnostics.append(make_diagnostic(
                    "W-UNBOUNDED-LOOP",
                    branch_index,
                    f"trip count of loop at block {header} not provable"
                    "; upper cycle bound is unbounded",
                ))

    # -- whole-program lower bound -----------------------------------------
    width = cpu.issue_width
    fu_units = cpu.fu_counts()
    n_min_total = sum(instr_min)
    n_max_total: Count = 0
    for i in range(n):
        n_max_total = _add(n_max_total, instr_max[i])
    report.instr_min = n_min_total
    report.instr_max = n_max_total

    comps: Dict[str, int] = {}
    if n_min_total > 0:
        comps["issue"] = _ceil_div(n_min_total, width) + 1
        fu_min = [0] * NUM_FU_TYPES
        for i in range(n):
            fu_min[info.fu[i]] += instr_min[i]
        for f in range(NUM_FU_TYPES):
            if fu_min[f] > 0:
                comps[f"fu:{FU_NAMES[f]}"] = (
                    _ceil_div(fu_min[f], fu_units[f]) + 1
                )
        comps.update(
            _dep_chain_components(info, cfg, regions[0], instr_min, instr_max)
        )
        loads_min = sum(
            instr_min[i] for i in range(n) if info.kind[i] == K_LOAD
        )
        ls_min = loads_min + sum(
            instr_min[i] for i in range(n) if info.kind[i] == K_STORE
        )
        ports = mem.l1_ports
        h_load = max(
            1,
            min(mem.l1_hit_cycles, 1 + mem.l2_hit_cycles,
                mem.mem_latency_cycles),
        )
        if loads_min > 0:
            comps["l1-ports"] = (loads_min - 1) // ports + h_load + 1
        if ls_min > cpu.mem_queue_size:
            comps["mem-queue"] = (
                (ls_min - cpu.mem_queue_size - 1) // ports + 3
            )
    if comps:
        report.lower_binding = max(comps, key=lambda k: comps[k])
        report.lower = comps[report.lower_binding]
    report.lower_components = comps

    # -- whole-program upper bound (monotone-potential charges) ------------
    w_mem = (
        mem.mem_latency_cycles
        + mem.mem_bank_busy_cycles
        + mem.l1_hit_cycles
        + mem.l2_hit_cycles
        + 4
    )
    upper: Count = 0
    for i in range(n):
        k = info.kind[i]
        if k in (K_LOAD, K_STORE, K_PREFETCH):
            charge = w_mem + 4
        elif k in (K_BRANCH, K_UNCOND):
            charge = cpu.mispredict_penalty + 4
        else:
            charge = info.latency[i] + 3
        upper = _add(upper, _mul(instr_max[i], charge))
    report.upper = _add(upper, cpu.mispredict_penalty + 8)

    # -- per-block attribution table ---------------------------------------
    line = mem.line_size
    banks = max(1, mem.mem_banks)
    for idx, region in enumerate(regions):
        relmin, relmax = rel[idx]
        for b in region.rpo:
            first, end = cfg.blocks[b]
            body = [
                i for i in cfg.block_instrs(b)
                if info.op_name[i] != "halt"
            ]
            if not body:
                continue
            exec_min = entry_min[idx] * relmin[b]
            exec_max = _mul(entry_max[idx], relmax[b])
            slots = len(body)
            issue_c = slots / width
            fu_cnt = [0] * NUM_FU_TYPES
            depth: Dict[int, float] = {}
            crit = 0.0
            mem_ops = 0
            lines_per_exec = 0.0
            for i in body:
                fu_cnt[info.fu[i]] += 1
                k = info.kind[i]
                if k == K_SIMPLE:
                    step = float(info.latency[i])
                elif k == K_LOAD:
                    step = 1.0 + mem.l1_hit_cycles
                else:
                    step = 1.0
                base = 0.0
                for s in info.srcs[i]:
                    base = max(base, depth.get(s, 0.0))
                cur = base + step
                crit = max(crit, cur)
                if info.dst[i] >= 0:
                    depth[info.dst[i]] = cur
                if info.dst2[i] >= 0:
                    depth[info.dst2[i]] = cur
                if k in (K_LOAD, K_STORE):
                    mem_ops += 1
                    si = facts.proven_si.get(i)
                    if si is not None and exec_max not in (None, 0):
                        lo, hi, _stride = si
                        total_lines = (
                            (hi + info.size[i] - 1) // line - lo // line + 1
                        )
                        assert exec_max is not None
                        lines_per_exec += min(
                            1.0, total_lines / exec_max
                        )
                    else:
                        lines_per_exec += 1.0
            fu_best = 0
            fu_c = 0.0
            for f in range(NUM_FU_TYPES):
                c = fu_cnt[f] / fu_units[f]
                if c > fu_c:
                    fu_c = c
                    fu_best = f
            mem_best = 0.0
            mem_worst = 0.0
            if mem_ops:
                mem_best = max(
                    mem_ops / mem.l1_ports,
                    lines_per_exec * mem.mem_bank_busy_cycles / banks,
                )
                mem_worst = (
                    lines_per_exec
                    * (mem.mem_latency_cycles + mem.mem_bank_busy_cycles)
                    + mem_ops / mem.l1_ports
                )
            parts = {
                "issue": issue_c,
                "dep-chain": crit,
                f"fu:{FU_NAMES[fu_best]}": fu_c,
                "memory": mem_best,
            }
            binding = max(parts, key=lambda p: parts[p])
            bound = parts[binding]
            report.blocks.append(BlockBound(
                block=b,
                region_entry=region.entry,
                first=first,
                last=end - 1,
                exec_min=exec_min,
                exec_max=exec_max,
                slots=slots,
                issue_cycles=issue_c,
                dep_cycles=crit,
                fu_cycles=fu_c,
                fu_binding=FU_NAMES[fu_best],
                mem_ops=mem_ops,
                lines_per_exec=lines_per_exec,
                mem_cycles_best=mem_best,
                mem_cycles_worst=mem_worst,
                bound_cycles=bound,
                binding=binding,
                utilization={
                    p: (v / bound if bound else 0.0)
                    for p, v in parts.items()
                },
            ))
    return report
