"""Classic dataflow passes over the unified SVIS register file.

Three cooperating analyses, all on bitsets (one bit per register of the
unified file, GSR included):

* **initialization** (forward, may/must): flags reads of registers no
  path initializes (``E-UNINIT``, the static counterpart of
  ``DATA_BASE``'s "a zero base register is an obvious bug" convention)
  and reads initialized on only some paths (``W-MAYBE-UNINIT``).  GSR
  reads by ``faligndata`` / ``fpack*`` get the more specific
  ``V-NOALIGN`` / ``V-NOSCALE`` when no GSR-setting instruction
  dominates them.  Calls are handled with per-function *def summaries*
  so one call site's locals never leak into another's return site.
* **liveness** (backward, union over the full interprocedural graph):
  flags writes whose value no path ever reads (``W-DEADWRITE``).
* **structure**: unreachable code (``W-UNREACHABLE``), control flow
  that can run off the end (``E-FALLOFF``), unresolved targets
  (``E-BADTARGET``) and leaked scratch registers (``W-REGLEAK``).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..asm.program import Program
from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass
from ..isa.registers import GSR, NUM_REGS, ZERO, reg_name
from .cfg import CFG
from .diagnostics import Diagnostic, make_diagnostic

ALL_REGS = (1 << NUM_REGS) - 1
ENTRY_INIT = 1 << ZERO

_PACK_OPS = ("fpack16", "fpack32", "fpackfix")
_MAX_SUMMARY_ROUNDS = 20


def _defs_mask(instr: Instruction) -> int:
    mask = 0
    if instr.dst >= 0:
        mask |= 1 << instr.dst
    if instr.dst2 >= 0:
        mask |= 1 << instr.dst2
    return mask


def _reads(instr: Instruction) -> Tuple[int, ...]:
    return instr.srcs


def _instr_table(cfg: CFG):
    """Per-instruction ``(defs_mask, call_target_or_None, srcs_mask)``
    columns, cached on the CFG — instructions are immutable once built
    and every pass below re-derives the same three facts millions of
    times in its inner loop otherwise."""
    table = getattr(cfg, "_df_table", None)
    if table is None:
        dmask: List[int] = []
        call_target: List = []
        smask: List[int] = []
        for instr in cfg.instructions:
            dmask.append(_defs_mask(instr))
            call_target.append(
                instr.target
                if instr.spec.opclass == OpClass.CALL
                else None
            )
            m = 0
            for reg in instr.srcs:
                m |= 1 << reg
            smask.append(m)
        table = (dmask, call_target, smask)
        cfg._df_table = table
    return table


# ---------------------------------------------------------------------------
# Initialization analysis
# ---------------------------------------------------------------------------


def _collapsed_succs(cfg: CFG, block: int) -> List[int]:
    """Intraprocedural successors: calls fall through to their return
    site (the callee's effect is applied via its summary), rets stop."""
    term = cfg.terminator(block)
    if term.spec.opclass == OpClass.RET:
        return []
    if term.spec.opclass == OpClass.CALL:
        site = cfg.blocks[block][1]  # return site = instr after the call
        return [cfg.block_of[site]] if site < cfg.n else []
    return [tgt for tgt, kind in cfg.succs[block]]


def _function_summaries(cfg: CFG) -> Dict[int, Tuple[int, int]]:
    """Per function entry *instruction* index: (may_def, must_def) masks
    of registers the callee writes on some / every path to a ret.

    Cached on the CFG: both the initialization pass and the abstract
    interpreter need the same summaries.
    """
    cached = getattr(cfg, "_func_summaries", None)
    if cached is not None:
        return cached
    dmask, call_target, _ = _instr_table(cfg)
    instructions = cfg.instructions
    summaries: Dict[int, Tuple[int, int]] = {
        entry: (0, 0) for entry in cfg.functions
    }
    entry_blocks = {entry: cfg.block_of[entry] for entry in cfg.functions}
    func_blocks = {
        entry: {cfg.block_of[i] for i in nodes}
        for entry, nodes in cfg.functions.items()
    }
    for _round in range(_MAX_SUMMARY_ROUNDS):
        changed = False
        for entry, blocks in func_blocks.items():
            may_in: Dict[int, int] = {entry_blocks[entry]: 0}
            must_in: Dict[int, int] = {entry_blocks[entry]: 0}
            work = [entry_blocks[entry]]
            ret_may, ret_must, saw_ret = 0, ALL_REGS, False
            while work:
                block = work.pop()
                may = may_in[block]
                must = must_in[block]
                for i in cfg.block_instrs(block):
                    target = call_target[i]
                    if target is not None:
                        dst = instructions[i].dst
                        s_may, s_must = summaries.get(target, (0, 0))
                        may |= dmask[i] | s_may
                        must |= (1 << dst if dst >= 0 else 0) | s_must
                    else:
                        d = dmask[i]
                        may |= d
                        must |= d
                if cfg.terminator(block).spec.opclass == OpClass.RET:
                    ret_may |= may
                    ret_must &= must
                    saw_ret = True
                for succ in _collapsed_succs(cfg, block):
                    if succ not in blocks:
                        continue
                    new_may = may_in.get(succ, 0) | may
                    new_must = must_in.get(succ, ALL_REGS) & must
                    if (
                        succ not in may_in
                        or new_may != may_in[succ]
                        or new_must != must_in[succ]
                    ):
                        may_in[succ] = new_may
                        must_in[succ] = new_must
                        work.append(succ)
            new_summary = (ret_may, ret_must if saw_ret else 0)
            if new_summary != summaries[entry]:
                summaries[entry] = new_summary
                changed = True
        if not changed:
            break
    cfg._func_summaries = summaries
    return summaries


def run_init_checks(cfg: CFG, diags: List[Diagnostic]) -> None:
    """Forward may/must initialization analysis + read checks."""
    if not cfg.n_blocks:
        return
    summaries = _function_summaries(cfg)
    dmask, call_target, _ = _instr_table(cfg)
    instructions = cfg.instructions

    may_in: Dict[int, int] = {0: ENTRY_INIT}
    must_in: Dict[int, int] = {0: ENTRY_INIT}
    work: List[int] = [0]
    while work:
        block = work.pop()
        may = may_in[block]
        must = must_in[block]
        succ_states: List[Tuple[int, int, int]] = []
        for i in cfg.block_instrs(block):
            target = call_target[i]
            if target is not None:
                instr = instructions[i]
                s_may, s_must = summaries.get(target, (0, 0))
                # the call edge into the callee sees LINK + caller state
                link = 1 << instr.dst if instr.dst >= 0 else 0
                if 0 <= target < cfg.n:
                    succ_states.append(
                        (cfg.block_of[target], may | link, must | link)
                    )
                may |= dmask[i] | s_may
                must |= link | s_must
            else:
                d = dmask[i]
                may |= d
                must |= d
        for succ in _collapsed_succs(cfg, block):
            succ_states.append((succ, may, must))
        for succ, s_may, s_must in succ_states:
            new_may = may_in.get(succ, 0) | s_may
            new_must = must_in.get(succ, ALL_REGS) & s_must
            if (
                succ not in may_in
                or new_may != may_in[succ]
                or new_must != must_in[succ]
            ):
                may_in[succ] = new_may
                must_in[succ] = new_must
                work.append(succ)

    # -- read checks over every visited block -------------------------------
    seen: Set[Tuple[str, int]] = set()

    def emit(code: str, index: int, message: str) -> None:
        if (code, index) not in seen:
            seen.add((code, index))
            diags.append(make_diagnostic(code, index, message))

    for block in sorted(may_in):
        may = may_in[block]
        must = must_in[block]
        for i in cfg.block_instrs(block):
            instr = cfg.instructions[i]
            for reg in _reads(instr):
                if reg == ZERO:
                    continue
                if reg == GSR and instr.op == "faligndata":
                    if not (must >> reg) & 1:
                        emit(
                            "V-NOALIGN",
                            i,
                            "faligndata reads GSR.align but no alignaddr/"
                            "wrgsr dominates it",
                        )
                    continue
                if reg == GSR and instr.op in _PACK_OPS:
                    if not (must >> reg) & 1:
                        emit(
                            "V-NOSCALE",
                            i,
                            f"{instr.op} reads GSR.scale but no wrgsr/"
                            "alignaddr dominates it",
                        )
                    continue
                if not (may >> reg) & 1:
                    emit(
                        "E-UNINIT",
                        i,
                        f"{instr.op} reads {reg_name(reg)}, which no path "
                        "initializes",
                    )
                elif not (must >> reg) & 1:
                    emit(
                        "W-MAYBE-UNINIT",
                        i,
                        f"{instr.op} reads {reg_name(reg)}, initialized on "
                        "some but not all paths",
                    )
            target = call_target[i]
            if target is not None:
                s_may, s_must = summaries.get(target, (0, 0))
                may |= dmask[i] | s_may
                must |= (1 << instr.dst if instr.dst >= 0 else 0) | s_must
            else:
                d = dmask[i]
                may |= d
                must |= d


# ---------------------------------------------------------------------------
# Liveness / dead writes
# ---------------------------------------------------------------------------


def _block_use_def(
    cfg: CFG, block: int, dmask: List[int], smask: List[int]
) -> Tuple[int, int]:
    """(use, def) masks: ``use`` = read before any def in this block.

    ``halt`` reads the whole register file: final architectural state
    is observable program output, so a write that survives unread to
    program end is *not* dead — only values overwritten before any
    read are (the "dropped computation" signal).
    """
    use = 0
    defs = 0
    for i in cfg.block_instrs(block):
        if cfg.instructions[i].op == "halt":
            use |= ALL_REGS & ~defs
            break
        use |= smask[i] & ~defs
        defs |= dmask[i]
    return use, defs


def run_liveness_checks(cfg: CFG, diags: List[Diagnostic]) -> None:
    """Backward liveness over the full interprocedural graph; flags
    writes that are dead on every path (``W-DEADWRITE``)."""
    if not cfg.n_blocks:
        return
    dmask, call_target, smask = _instr_table(cfg)
    use_def = [
        _block_use_def(cfg, b, dmask, smask) for b in range(cfg.n_blocks)
    ]
    live_in: List[int] = [0] * cfg.n_blocks
    changed = True
    while changed:
        changed = False
        for block in reversed(cfg.rpo):
            live_out = 0
            for succ, _kind in cfg.succs[block]:
                live_out |= live_in[succ]
            use, defs = use_def[block]
            new_in = use | (live_out & ~defs)
            if new_in != live_in[block]:
                live_in[block] = new_in
                changed = True

    for block in cfg.reachable:
        live = 0
        for succ, _kind in cfg.succs[block]:
            live |= live_in[succ]
        for i in reversed(cfg.block_instrs(block)):
            instr = cfg.instructions[i]
            if instr.op == "halt":
                live = ALL_REGS
                continue
            d = dmask[i]
            if (
                d
                and not (live & d)
                and call_target[i] is None
                # redundant GSR mode writes are defensive idiom, not
                # dropped computations
                and instr.op != "wrgsr"
            ):
                diags.append(
                    make_diagnostic(
                        "W-DEADWRITE",
                        i,
                        f"{instr.op} writes {reg_name(instr.dst)} but the "
                        "value is never read",
                    )
                )
            live &= ~d
            live |= smask[i]


# ---------------------------------------------------------------------------
# Structural checks
# ---------------------------------------------------------------------------


def run_structural_checks(cfg: CFG, diags: List[Diagnostic]) -> None:
    for idx in cfg.bad_targets:
        instr = cfg.instructions[idx]
        diags.append(
            make_diagnostic(
                "E-BADTARGET",
                idx,
                f"{instr.op} targets instruction {instr.target}, outside "
                f"[0, {cfg.n})",
            )
        )
    for idx in cfg.falloff:
        if cfg.block_of[idx] in cfg.reachable:
            diags.append(
                make_diagnostic(
                    "E-FALLOFF",
                    idx,
                    f"{cfg.instructions[idx].op} at the last instruction "
                    "falls off the end of the program (missing halt)",
                )
            )
    # coalesce unreachable instructions into runs
    unreachable = sorted(
        i
        for block in range(cfg.n_blocks)
        if block not in cfg.reachable
        for i in cfg.block_instrs(block)
    )
    run_start = None
    prev = None
    for i in unreachable + [None]:
        if run_start is None:
            run_start = i
        elif i is None or (prev is not None and i != prev + 1):
            assert prev is not None
            count = prev - run_start + 1
            diags.append(
                make_diagnostic(
                    "W-UNREACHABLE",
                    run_start,
                    f"{count} unreachable instruction(s) "
                    f"[{run_start}..{prev}]",
                )
            )
            run_start = i
        prev = i


def run_regleak_checks(program: Program, diags: List[Diagnostic]) -> None:
    """``W-REGLEAK``: scratch registers the builder reports as never
    released *and* the program never mentions — a pure allocation leak."""
    leaked: Tuple[int, ...] = tuple(getattr(program, "unreleased_regs", ()))
    if not leaked:
        return
    mentioned = 0
    for instr in program.instructions:
        mentioned |= _defs_mask(instr)
        for reg in instr.srcs:
            mentioned |= 1 << reg
    for reg in leaked:
        if not (mentioned >> reg) & 1:
            diags.append(
                make_diagnostic(
                    "W-REGLEAK",
                    -1,
                    f"scratch register {reg_name(reg)} was allocated but "
                    "never used or released",
                )
            )
