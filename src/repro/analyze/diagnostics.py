"""Diagnostic vocabulary of the SVIS program verifier.

Every finding the analyzer can produce is identified by a short stable
code (asserted by the test suite, documented in DESIGN.md) with a fixed
severity tier:

* **error** — the program is provably wrong: it reads a register no
  path ever initialized, accesses memory provably outside every
  declared :class:`~repro.asm.program.Buffer`, uses a VIS instruction
  whose required GSR state was never established, or control flow can
  run off the end of the instruction stream.  Errors always gate.
* **warning** — the program is suspicious but may be intentional
  (dead writes, unreachable code, leaked scratch registers, dubious
  VIS idioms).  Warnings gate only under ``--strict``.
* **info** — the analyzer could not *prove* a property (typically a
  data-dependent address) and is saying so.  Info never gates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Severity(enum.IntEnum):
    """Gating tier of a diagnostic (ordered: INFO < WARNING < ERROR)."""

    INFO = 0
    WARNING = 1
    ERROR = 2


#: code -> (severity, one-line description, fix hint)
CODES: Dict[str, Tuple[Severity, str, str]] = {
    # -- dataflow ----------------------------------------------------------
    "E-UNINIT": (
        Severity.ERROR,
        "read of a register no path initializes",
        "initialize the register (li/la/ld*/mov) before this read; an "
        "uninitialized base register reads address 0, below DATA_BASE",
    ),
    "W-MAYBE-UNINIT": (
        Severity.WARNING,
        "read of a register initialized on some but not all paths",
        "hoist the initialization above the branch so every path defines "
        "the register before this read",
    ),
    "W-DEADWRITE": (
        Severity.WARNING,
        "register write whose value is never read",
        "delete the instruction or use its result; dead writes usually "
        "indicate a dropped computation",
    ),
    # -- control flow ------------------------------------------------------
    "E-FALLOFF": (
        Severity.ERROR,
        "control flow can fall off the end of the program",
        "terminate every path with halt (ProgramBuilder.build() appends "
        "one automatically)",
    ),
    "E-BADTARGET": (
        Severity.ERROR,
        "control-transfer target outside the program",
        "branch/jump targets must be resolved instruction indices in "
        "[0, len(program))",
    ),
    "W-UNREACHABLE": (
        Severity.WARNING,
        "unreachable instruction(s)",
        "no path from the entry point reaches this code; delete it or fix "
        "the branch that should reach it",
    ),
    # -- memory safety -----------------------------------------------------
    "E-OOB": (
        Severity.ERROR,
        "memory access provably outside every declared buffer",
        "the whole value range of the effective address misses every "
        "declared Buffer; check the base register, offset, and stride "
        "(a range below DATA_BASE means a zero/garbage base register)",
    ),
    "W-ALIGN": (
        Severity.WARNING,
        "memory access provably misaligned for its width",
        "every possible effective address is misaligned; legal on the "
        "byte-addressable SVIS model but a trap on real VIS hardware — "
        "use alignaddr + faligndata for unaligned media streams",
    ),
    "I-ADDR-UNPROVEN": (
        Severity.INFO,
        "effective address could not be proven in-bounds",
        "data-dependent address: the analyzer cannot bound it statically",
    ),
    "I-ALIGN-UNPROVEN": (
        Severity.INFO,
        "alignment of a multi-byte access could not be proven",
        "data-dependent address: alignment is checked only dynamically",
    ),
    # -- VIS idioms (Table 4 semantics) ------------------------------------
    "V-NOALIGN": (
        Severity.ERROR,
        "faligndata with no dominating GSR-setting instruction",
        "every path to faligndata must execute alignaddr (or wrgsr) "
        "first; otherwise GSR.align is whatever was left behind",
    ),
    "V-NOSCALE": (
        Severity.ERROR,
        "pack instruction with no dominating GSR-setting instruction",
        "fpack16/fpack32/fpackfix read GSR.scale; every path must execute "
        "wrgsr (or alignaddr) first",
    ),
    "W-VEDGE": (
        Severity.WARNING,
        "edge mask is never consumed by a partial store",
        "edge8/16/32 produce pst byte masks; an unconsumed mask usually "
        "means the boundary partial store is missing",
    ),
    "W-VSCALE": (
        Severity.WARNING,
        "pack scale provably outside the useful range",
        "fpack16 consumes GSR.scale in [0, 7]; larger scales shift data "
        "out of the clamp window",
    ),
    "W-GSR-TRUNC": (
        Severity.WARNING,
        "wrgsr operand provably exceeds the 7-bit GSR",
        "wrgsr keeps only the low 7 bits (3-bit align + 4-bit scale); the "
        "extra bits are silently dropped",
    ),
    "W-VMUL8": (
        Severity.WARNING,
        "8x16 multiply whose 8-bit operand holds 16-bit lanes",
        "fmul8x16's first operand is four unsigned bytes; feeding it a "
        "16-bit-lane value (e.g. an fexpand result) multiplies garbage",
    ),
    # -- static throughput model -------------------------------------------
    "W-UNBOUNDED-LOOP": (
        Severity.WARNING,
        "loop trip count could not be bounded; cycle upper bound is infinite",
        "the throughput analyzer needs a counted loop (li bound; add/sub "
        "counter by a constant; blt/bge-style exit) to bound iterations — "
        "restructure the loop or accept an unbounded upper cycle bound",
    ),
    # -- assembler hygiene -------------------------------------------------
    "W-REGLEAK": (
        Severity.WARNING,
        "scratch register allocated but never used or released",
        "release() the register or delete the allocation; leaks raise "
        "register pressure for no benefit",
    ),
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, tied to a static instruction index."""

    code: str
    severity: Severity
    index: int  #: static instruction index (-1 = whole program)
    message: str
    hint: str = ""
    marker: str = ""  #: innermost Program.marker phase covering ``index``

    def format(self) -> str:
        where = f"@{self.index}" if self.index >= 0 else "@program"
        ctx = f" [{self.marker}]" if self.marker else ""
        return f"{self.severity.name.lower():7s} {self.code} {where}{ctx}: {self.message}"


def make_diagnostic(
    code: str, index: int, message: str, marker: str = ""
) -> Diagnostic:
    """Build a :class:`Diagnostic` with the registered severity/hint."""
    severity, _desc, hint = CODES[code]
    return Diagnostic(
        code=code,
        severity=severity,
        index=index,
        message=message,
        hint=hint,
        marker=marker,
    )


@dataclass
class AnalysisReport:
    """Everything the verifier learned about one program."""

    program_name: str
    analyzer_version: int
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: static index -> inclusive byte interval the access provably stays
    #: inside (the property tests replay dynamic traces against these)
    proven_accesses: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: number of memory instructions inspected / proven in-bounds
    checked_accesses: int = 0

    # -- selection ---------------------------------------------------------

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.by_severity(Severity.INFO)

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    def gating(self, strict: bool = False) -> List[Diagnostic]:
        """Diagnostics that fail verification (errors; +warnings when
        ``strict``)."""
        floor = Severity.WARNING if strict else Severity.ERROR
        return [d for d in self.diagnostics if d.severity >= floor]

    def ok(self, strict: bool = False) -> bool:
        return not self.gating(strict)

    # -- presentation ------------------------------------------------------

    def summary(self) -> str:
        return (
            f"{self.program_name}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.infos)} info(s); "
            f"{len(self.proven_accesses)}/{self.checked_accesses} memory "
            f"accesses proven in-bounds"
        )

    def format(self, max_infos: Optional[int] = 10, hints: bool = True) -> str:
        lines = [self.summary()]
        shown_infos = 0
        for diag in sorted(
            self.diagnostics, key=lambda d: (-int(d.severity), d.index)
        ):
            if diag.severity == Severity.INFO:
                if max_infos is not None and shown_infos >= max_infos:
                    continue
                shown_infos += 1
            lines.append("  " + diag.format())
            if hints and diag.hint and diag.severity >= Severity.WARNING:
                lines.append(f"      hint: {diag.hint}")
        total_infos = len(self.infos)
        if max_infos is not None and total_infos > max_infos:
            lines.append(f"  ... and {total_infos - max_infos} more info(s)")
        return "\n".join(lines)


def marker_at(markers: List[Tuple[int, str]], index: int) -> str:
    """The innermost phase marker covering a static instruction index."""
    best = ""
    for pos, text in markers:
        if pos <= index:
            best = text
        else:
            break
    return best
