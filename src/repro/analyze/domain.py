"""Strided-interval abstract domain for SVIS address arithmetic.

A :class:`StridedInterval` over-approximates a set of signed 64-bit
values as ``{lo + k*stride | k >= 0} ∩ [lo, hi]``.  ``stride >= 1``;
a singleton is ``(c, c, 1)``.  The domain deliberately saturates to TOP
well before the 64-bit wrap-around boundary (|bound| > 2**62) so every
transfer function can use plain Python integer math without modelling
modular wrap: any value the machine could wrap is simply unknown.

The stride component is what lets the verifier prove *alignment*: an
interval with ``stride % 8 == 0`` and ``lo % 8 == 0`` contains only
8-byte-aligned addresses, which is exactly the precondition of ``ldf``
streams produced by ``alignaddr``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Optional, Tuple

#: saturation bound: anything beyond this may wrap mod 2**64 -> TOP
LIMIT = 1 << 62

INT_MIN = -LIMIT
INT_MAX = LIMIT


def _norm(lo: int, hi: int, stride: int) -> Tuple[int, int, int]:
    if stride < 1:
        stride = 1
    if lo == hi:
        return lo, hi, 1
    hi = lo + ((hi - lo) // stride) * stride
    if hi == lo:
        return lo, lo, 1
    return lo, hi, stride


@dataclass(frozen=True)
class StridedInterval:
    """``{lo, lo+stride, ..., hi}`` (inclusive, normalized)."""

    lo: int
    hi: int
    stride: int = 1

    # -- constructors ------------------------------------------------------

    @staticmethod
    def const(value: int) -> "StridedInterval":
        return StridedInterval(value, value, 1)

    @staticmethod
    def range(lo: int, hi: int, stride: int = 1) -> "StridedInterval":
        if lo > hi:
            raise ValueError(f"empty interval [{lo}, {hi}]")
        return StridedInterval(*_norm(lo, hi, stride))

    @staticmethod
    def top() -> "StridedInterval":
        return TOP

    # -- predicates --------------------------------------------------------

    @property
    def is_top(self) -> bool:
        return self.lo <= INT_MIN and self.hi >= INT_MAX

    @property
    def is_singleton(self) -> bool:
        return self.lo == self.hi

    @property
    def value(self) -> Optional[int]:
        return self.lo if self.lo == self.hi else None

    def contains(self, v: int) -> bool:
        return self.lo <= v <= self.hi and (v - self.lo) % self.stride == 0

    def _sat(self) -> "StridedInterval":
        if self.lo < INT_MIN or self.hi > INT_MAX:
            return TOP
        return self

    # -- lattice -----------------------------------------------------------

    def join(self, other: "StridedInterval") -> "StridedInterval":
        if self is other or self == other:
            return self  # hot path: most joins merge identical facts
        if self.is_top or other.is_top:
            return TOP
        lo = min(self.lo, other.lo)
        hi = max(self.hi, other.hi)
        stride = gcd(
            self.stride if not self.is_singleton else 0,
            other.stride if not other.is_singleton else 0,
            abs(self.lo - other.lo),
        )
        return StridedInterval(*_norm(lo, hi, stride or 1))._sat()

    def meet(self, other: "StridedInterval") -> Optional["StridedInterval"]:
        """Intersection hull; ``None`` when provably empty.  Strides are
        combined conservatively (gcd keeps the result a superset of the
        true intersection)."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        stride = max(self.stride, other.stride)
        # keep only a stride both sides agree on (sound superset)
        if stride > 1:
            if (
                self.stride % stride != 0 or other.stride % stride != 0
            ) and not (self.is_singleton or other.is_singleton):
                stride = gcd(self.stride, other.stride) or 1
            base = self if self.stride >= other.stride else other
            # snap lo up to base's grid
            rem = (lo - base.lo) % base.stride
            if rem:
                lo += base.stride - rem
            stride = base.stride
            if lo > hi:
                return None
        return StridedInterval(*_norm(lo, hi, stride))

    # -- arithmetic --------------------------------------------------------

    def add(self, other: "StridedInterval") -> "StridedInterval":
        if self.is_top or other.is_top:
            return TOP
        stride = gcd(
            self.stride if not self.is_singleton else 0,
            other.stride if not other.is_singleton else 0,
        )
        return StridedInterval(
            *_norm(self.lo + other.lo, self.hi + other.hi, stride or 1)
        )._sat()

    def addc(self, c: int) -> "StridedInterval":
        if self.is_top:
            return TOP
        return StridedInterval(self.lo + c, self.hi + c, self.stride)._sat()

    def sub(self, other: "StridedInterval") -> "StridedInterval":
        if self.is_top or other.is_top:
            return TOP
        stride = gcd(
            self.stride if not self.is_singleton else 0,
            other.stride if not other.is_singleton else 0,
        )
        return StridedInterval(
            *_norm(self.lo - other.hi, self.hi - other.lo, stride or 1)
        )._sat()

    def neg(self) -> "StridedInterval":
        if self.is_top:
            return TOP
        return StridedInterval(-self.hi, -self.lo, self.stride)._sat()

    def mul(self, other: "StridedInterval") -> "StridedInterval":
        if self.is_top or other.is_top:
            return TOP
        corners = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        lo, hi = min(corners), max(corners)
        stride = 1
        if other.is_singleton and other.lo != 0:
            stride = self.stride * abs(other.lo)
        elif self.is_singleton and self.lo != 0:
            stride = other.stride * abs(self.lo)
        return StridedInterval(*_norm(lo, hi, stride))._sat()

    def div_trunc(self, c: int) -> "StridedInterval":
        """Divide by a positive constant (truncation toward zero is
        monotone non-decreasing in the dividend)."""
        if self.is_top or c <= 0:
            return TOP
        def q(v: int) -> int:
            return -((-v) // c) if v < 0 else v // c
        return StridedInterval(*_norm(q(self.lo), q(self.hi), 1))

    def shl(self, c: int) -> "StridedInterval":
        if self.is_top or c < 0 or c > 62:
            return TOP
        return self.mul(StridedInterval.const(1 << c))

    def shr(self, c: int) -> "StridedInterval":
        """Arithmetic right shift by a constant (floor division by 2**c,
        monotone)."""
        if self.is_top or c < 0:
            return TOP
        if c > 62:
            c = 62
        return StridedInterval(*_norm(self.lo >> c, self.hi >> c, 1))

    def and_mask(self, mask: int) -> "StridedInterval":
        """``x & mask`` for a constant mask."""
        if mask >= 0:
            # result is within [0, mask]; exact for singletons
            if self.is_singleton and not self.is_top and self.lo >= 0:
                return StridedInterval.const(self.lo & mask)
            return StridedInterval(*_norm(0, mask, 1))
        # mask = ...111000 (align-down): monotone floor to a multiple
        low = ~mask
        if low & (low + 1):  # not of the form 2**k - 1
            return TOP
        step = low + 1
        if self.is_top:
            return TOP
        lo = self.lo & mask
        hi = self.hi & mask
        stride = step
        if self.stride % step == 0 and self.lo & low == 0:
            # already on the grid: align-down is the identity
            return self
        return StridedInterval(*_norm(lo, hi, stride))._sat()

    def align_down(self, k: int) -> "StridedInterval":
        """Floor every member to a multiple of ``2**k`` (alignaddr)."""
        return self.and_mask(~((1 << k) - 1))

    # -- refinement (branch conditions) ------------------------------------

    def clamp_le(self, bound: int) -> Optional["StridedInterval"]:
        """Members ``<= bound``; ``None`` if empty."""
        if self.hi <= bound:
            return self
        if self.lo > bound:
            return None
        hi = self.lo + ((bound - self.lo) // self.stride) * self.stride
        return StridedInterval(*_norm(self.lo, hi, self.stride))

    def clamp_ge(self, bound: int) -> Optional["StridedInterval"]:
        """Members ``>= bound``; ``None`` if empty."""
        if self.lo >= bound:
            return self
        if self.hi < bound:
            return None
        rem = (bound - self.lo) % self.stride
        lo = bound if rem == 0 else bound + (self.stride - rem)
        if lo > self.hi:
            return None
        return StridedInterval(*_norm(lo, self.hi, self.stride))

    # -- misc --------------------------------------------------------------

    def expand(self, delta_lo: int, delta_hi: int, step: int) -> "StridedInterval":
        """Widen by an induction envelope: the set of ``v + k*step`` with
        accumulated offset in ``[delta_lo, delta_hi]``."""
        if self.is_top:
            return TOP
        stride = gcd(
            self.stride if not self.is_singleton else 0, abs(step)
        )
        return StridedInterval(
            *_norm(self.lo + delta_lo, self.hi + delta_hi, stride or 1)
        )._sat()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_top:
            return "SI(TOP)"
        if self.is_singleton:
            return f"SI({self.lo})"
        return f"SI([{self.lo}, {self.hi}] % {self.stride})"


TOP = StridedInterval(INT_MIN, INT_MAX, 1)
ZERO = StridedInterval.const(0)
