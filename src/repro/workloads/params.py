"""Workload scaling.

The paper runs 1024x640x3 images (kernels, JPEG) and 352x240 4:2:0
video on 64 KB L1 / 128 KB L2 caches.  Full-size inputs are impractical
under detailed simulation in Python (the paper itself skipped
full-screen sizes for simulation-time reasons, Section 2.1), so the
default configuration scales the image *area* and the cache
*capacities* by the same factor, preserving the working-set to cache
ratios that drive every memory-behaviour result (Section 4).  The
paper's own analysis is expressed in terms of this scaling law
("larger images would require larger caches ... a 1024x1024 image
would require a 4M cache").
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict

from ..mem.config import MemoryConfig, PAPER_DEFAULT


@dataclass(frozen=True)
class WorkloadScale:
    """Input geometry for one scale factor."""

    factor: int = 64
    kernel_width: int = 128
    kernel_height: int = 80
    bands: int = 3
    dotprod_length: int = 16384
    # JPEG dims are MCU-aligned (multiples of 16)
    jpeg_width: int = 128
    jpeg_height: int = 80
    video_width: int = 96
    video_height: int = 64
    video_frames: int = 4
    search_range: int = 3
    #: software-prefetch look-ahead in bytes; scaled with the caches so
    #: prefetched lines do not evict live data (Mowry's algorithm sizes
    #: the distance to latency x bandwidth, bounded by capacity)
    pf_distance: int = 128

    @property
    def kernel_bytes(self) -> int:
        """Flat byte count of one 3-band kernel image."""
        return self.kernel_width * self.kernel_height * self.bands

    def memory_config(self, base: MemoryConfig = PAPER_DEFAULT) -> MemoryConfig:
        """The cache configuration matched to this workload scale."""
        return base.scaled(self.factor)

    def to_dict(self) -> Dict:
        """All fields, JSON-safe, suitable for round-tripping."""
        return asdict(self)

    def content_key(self) -> str:
        """Canonical JSON of every field that shapes generated programs.

        Every geometry knob feeds code generation (loop trip counts,
        unrolled tails, prefetch distances), so all fields participate.
        Used by the persistent simulation-result cache.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict) -> "WorkloadScale":
        return cls(**data)


#: Default experiment scale: area and caches / 64 relative to the paper
#: (images 128x80 vs 1024x640; L1 1 KB vs 64 KB; L2 2 KB vs 128 KB).
DEFAULT_SCALE = WorkloadScale()

#: Reduced scale for the pytest-benchmark harness and integration tests.
SMALL_SCALE = WorkloadScale(
    factor=256,
    kernel_width=64,
    kernel_height=40,
    dotprod_length=4096,
    jpeg_width=64,
    jpeg_height=48,
    video_width=48,
    video_height=32,
    video_frames=4,
    search_range=2,
    pf_distance=64,
)

#: Minimal scale for unit tests (seconds-fast everywhere).
TINY_SCALE = WorkloadScale(
    factor=1024,
    kernel_width=32,
    kernel_height=16,
    dotprod_length=512,
    jpeg_width=32,
    jpeg_height=16,
    video_width=32,
    video_height=16,
    video_frames=4,
    search_range=1,
    pf_distance=64,
)

#: The paper's full-size geometry (not run by default: hours in Python).
PAPER_SCALE = WorkloadScale(
    factor=1,
    kernel_width=1024,
    kernel_height=640,
    dotprod_length=1048576,
    jpeg_width=1024,
    jpeg_height=640,
    video_width=352,
    video_height=240,
    video_frames=4,
    search_range=7,
    pf_distance=256,
)
