"""``thresh``: double-limit thresholding (Table 1).

``dst = map_value`` where ``low <= src <= high``, else ``dst = src``.

The scalar variant tests each pixel with two data-dependent branches
(chroma-keying style code with poor predictability — the paper reports
its misprediction rate dropping from 6% to 0% with VIS).  The VIS
variant is branch-free: partitioned ``fcmple16`` compares build an
8-bit mask that drives a partial store of the map value over a plain
copy of the source.
"""

from __future__ import annotations

from ...asm.builder import ProgramBuilder
from ...media.images import synthetic_gray
from ...media.kernels import THRESH_HIGH, THRESH_LOW, THRESH_MAP, thresh as reference
from ..base import BuiltWorkload, Variant, Workload, expect_equal
from .common import (
    broadcast16,
    declare_streams,
    emit_expand_8,
    flat_bytes,
    pointer_loop,
    setup_vis_unpack,
)


class ThreshWorkload(Workload):
    name = "thresh"
    group = "image processing"
    description = "Double-limit thresholding of an image"

    def __init__(
        self,
        low: int = THRESH_LOW,
        high: int = THRESH_HIGH,
        map_value: int = THRESH_MAP,
    ) -> None:
        self.low = low
        self.high = high
        self.map_value = map_value

    def build(self, variant: Variant, scale, skew: bool = True, unroll: int = 2):
        # One-band variant (the paper's ``thresh1``); same byte volume
        # as a band of the 3-band kernels.
        width = scale.kernel_width
        height = scale.kernel_height * scale.bands
        src = synthetic_gray(width, height, seed=19)
        expected = reference(src.reshape(-1), self.low, self.high, self.map_value)
        total = src.size

        builder = ProgramBuilder(f"{self.name}-{variant.value}")
        declare_streams(
            builder,
            [("src", total, flat_bytes(src)), ("dst", total, None)],
            skew=skew,
        )
        if variant.uses_vis:
            self._emit_vis(builder, total, variant.uses_prefetch, scale.pf_distance)
        else:
            self._emit_scalar(builder, total, variant.uses_prefetch, unroll, scale.pf_distance)
        program = builder.build()

        def validate(machine) -> None:
            expect_equal(machine.read_buffer_array("dst"), expected, "thresh output")

        return BuiltWorkload(
            name=self.name,
            variant=variant,
            program=program,
            validate=validate,
            details={"bytes": total, "low": self.low, "high": self.high},
        )

    def _emit_scalar(self, b: ProgramBuilder, total: int, prefetch: bool, unroll: int, pf_distance: int = 128):
        ps, pd = b.iregs(2)
        b.la(ps, "src")
        b.la(pd, "dst")

        def body() -> None:
            for u in range(unroll):
                with b.scratch(iregs=1) as t:
                    passthrough = b.label("copy")
                    done = b.label("next")
                    b.ldb(t, ps, u)
                    b.blt(t, self.low, passthrough, hint=False)
                    b.bgt(t, self.high, passthrough, hint=False)
                    with b.scratch(iregs=1) as m:
                        b.li(m, self.map_value)
                        b.stb(m, pd, u)
                    b.j(done)
                    b.bind(passthrough)
                    b.stb(t, pd, u)
                    b.bind(done)

        pointer_loop(b, total, unroll, [ps, pd], body, prefetch=prefetch, pf_distance=pf_distance)

    def _emit_vis(self, b: ProgramBuilder, total: int, prefetch: bool, pf_distance: int = 128):
        # Comparison constants are pre-shifted by 4 to match fexpand's
        # fixed-point output format.
        lo_c = b.buffer("lo16", 8, data=broadcast16(self.low << 4))
        hi_c = b.buffer("hi16", 8, data=broadcast16(self.high << 4))
        map_c = b.buffer("map8", 8, data=bytes([self.map_value]) * 8)
        ps, pd = b.iregs(2)
        b.la(ps, "src")
        b.la(pd, "dst")
        zero = setup_vis_unpack(b, scale=0)
        f_lo, f_hi, f_map = b.fregs(3)
        with b.scratch(iregs=1) as tmp:
            b.la(tmp, lo_c)
            b.ldf(f_lo, tmp)
            b.la(tmp, hi_c)
            b.ldf(f_hi, tmp)
            b.la(tmp, map_c)
            b.ldf(f_map, tmp)

        fs, elo, ehi = b.fregs(3)
        m1, m2, mask = b.iregs(3)

        def body() -> None:
            b.ldf(fs, ps)
            b.stf(fs, pd)                      # default: copy source
            emit_expand_8(b, fs, zero, elo, ehi)
            # inside = (low <= x) & (x <= high), lanes 0-3
            b.fcmple16(m1, f_lo, elo)
            b.fcmple16(m2, elo, f_hi)
            b.and_(m1, m1, m2)
            # lanes 4-7
            b.fcmple16(m2, f_lo, ehi)
            b.and_(mask, m2, 0xF)
            b.fcmple16(m2, ehi, f_hi)
            b.and_(mask, mask, m2)
            b.sll(mask, mask, 4)
            b.or_(mask, mask, m1)
            b.pst(f_map, mask, pd)             # overwrite selected bytes

        pointer_loop(b, total, 8, [ps, pd], body, prefetch=prefetch, pf_distance=pf_distance)
