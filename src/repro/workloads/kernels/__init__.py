"""The six VSDK-style image-processing kernel benchmarks (Table 1)."""

from .addition import AdditionWorkload
from .blend import BlendWorkload
from .conv import ConvWorkload
from .dotprod import DotprodWorkload
from .scaling import ScalingWorkload
from .thresh import ThreshWorkload

__all__ = [
    "AdditionWorkload",
    "BlendWorkload",
    "ConvWorkload",
    "DotprodWorkload",
    "ScalingWorkload",
    "ThreshWorkload",
]
