"""``addition``: mean of two images, byte-wise (Table 1).

Reference math: ``dst = (src1 + src2 + 1) >> 1``.

The VIS variant expands each 8-byte group to 16 bits, adds the packed
groups plus a rounding constant, and re-packs with GSR scale 2 (so that
``((a+b)<<4 + 16) << 2 >> 7 == (a+b+1) >> 1``).
"""

from __future__ import annotations

import numpy as np

from ...asm.builder import ProgramBuilder
from ...media.images import synthetic_image
from ...media.kernels import addition as reference
from ..base import BuiltWorkload, Variant, Workload, expect_equal
from .common import (
    broadcast16,
    declare_streams,
    emit_expand_8,
    flat_bytes,
    pointer_loop,
    setup_vis_unpack,
)


class AdditionWorkload(Workload):
    name = "addition"
    group = "image processing"
    description = "Addition of two images using the mean of the pixel values"

    def build(self, variant: Variant, scale, skew: bool = True, unroll: int = 2):
        src1 = synthetic_image(scale.kernel_width, scale.kernel_height, scale.bands, seed=16)
        src2 = synthetic_image(scale.kernel_width, scale.kernel_height, scale.bands, seed=17)
        expected = reference(src1.reshape(-1), src2.reshape(-1))
        total = src1.size

        builder = ProgramBuilder(f"{self.name}-{variant.value}")
        declare_streams(
            builder,
            [
                ("src1", total, flat_bytes(src1)),
                ("src2", total, flat_bytes(src2)),
                ("dst", total, None),
            ],
            skew=skew,
        )
        if variant.uses_vis:
            self._emit_vis(builder, total, variant.uses_prefetch, scale.pf_distance)
        else:
            self._emit_scalar(builder, total, variant.uses_prefetch, unroll, scale.pf_distance)
        program = builder.build()

        def validate(machine) -> None:
            expect_equal(
                machine.read_buffer_array("dst"), expected, "addition output"
            )

        return BuiltWorkload(
            name=self.name,
            variant=variant,
            program=program,
            validate=validate,
            details={"bytes": total, "image": f"{scale.kernel_width}x{scale.kernel_height}x{scale.bands}"},
        )

    # -- scalar ---------------------------------------------------------------

    def _emit_scalar(self, b: ProgramBuilder, total: int, prefetch: bool, unroll: int, pf_distance: int = 128):
        p1, p2, pd = b.iregs(3)
        b.la(p1, "src1")
        b.la(p2, "src2")
        b.la(pd, "dst")

        def body() -> None:
            for u in range(unroll):
                with b.scratch(iregs=2) as (t1, t2):
                    b.ldb(t1, p1, u)
                    b.ldb(t2, p2, u)
                    b.add(t1, t1, t2)
                    b.add(t1, t1, 1)
                    b.srl(t1, t1, 1)
                    b.stb(t1, pd, u)

        pointer_loop(b, total, unroll, [p1, p2, pd], body,
            prefetch=prefetch, pf_distance=pf_distance)

    # -- VIS -------------------------------------------------------------------

    def _emit_vis(self, b: ProgramBuilder, total: int, prefetch: bool, pf_distance: int = 128):
        rounder = b.buffer("round16", 8, data=broadcast16(16))
        p1, p2, pd = b.iregs(3)
        b.la(p1, "src1")
        b.la(p2, "src2")
        b.la(pd, "dst")
        zero = setup_vis_unpack(b, scale=2)
        f_round = b.freg()
        with b.scratch(iregs=1) as tmp:
            b.la(tmp, rounder)
            b.ldf(f_round, tmp)

        fa, fb, alo, ahi, blo, bhi = b.fregs(6)

        def body() -> None:
            b.ldf(fa, p1)
            b.ldf(fb, p2)
            emit_expand_8(b, fa, zero, alo, ahi)
            emit_expand_8(b, fb, zero, blo, bhi)
            b.fpadd16(alo, alo, blo)
            b.fpadd16(ahi, ahi, bhi)
            b.fpadd16(alo, alo, f_round)
            b.fpadd16(ahi, ahi, f_round)
            b.fpack16(alo, alo)
            b.fpack16(ahi, ahi)
            b.stfw(alo, pd, 0)
            b.stfw(ahi, pd, 4)

        pointer_loop(b, total, 8, [p1, p2, pd], body, prefetch=prefetch, pf_distance=pf_distance)
