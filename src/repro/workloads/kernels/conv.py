"""``conv``: general 3x3 convolution with saturation (Table 1).

Reference math: saturating sum of nine rounded 8.8 fixed-point tap
products (see :func:`repro.media.kernels.conv3x3`).

* Scalar variant: nine multiply/round/accumulate steps per pixel plus
  explicit saturation branches — the hard-to-predict code whose
  misprediction rate the paper reports dropping from 10% to 0%.
* VIS variant: four outputs per group; each tap uses
  ``alignaddr``/``faligndata`` to realign the unaligned source window
  and ``fmul8x16au`` to multiply; ``fpack16`` saturates for free; the
  row tail is stored branch-free with ``edge8`` + a partial store.
"""

from __future__ import annotations

import numpy as np

from ...asm.builder import ProgramBuilder, R_ZERO
from ...media.images import synthetic_gray
from ...media.kernels import SHARPEN_KERNEL, conv3x3 as reference
from ..base import BuiltWorkload, Variant, Workload, expect_equal
from .common import declare_streams, emit_saturate_byte, flat_bytes, mul_coeff32


class ConvWorkload(Workload):
    name = "conv"
    group = "image processing"
    description = "General 3x3 image convolution with saturation"

    def __init__(self, kernel: np.ndarray = SHARPEN_KERNEL) -> None:
        self.kernel = np.asarray(kernel, dtype=np.int16)

    def build(self, variant: Variant, scale, skew: bool = True, unroll: int = 2):
        width = scale.kernel_width
        height = scale.kernel_height
        if width % 8 != 0:
            raise ValueError("conv requires the width to be a multiple of 8")
        src = synthetic_gray(width, height, seed=21)
        expected = reference(src, self.kernel)

        builder = ProgramBuilder(f"{self.name}-{variant.value}")
        declare_streams(
            builder,
            [
                # 16 bytes of slack: the VIS tail group reads (masked
                # lanes) a few bytes past the last interior window.
                ("src", width * height + 16, flat_bytes(src)),
                ("dst", width * height, None),
            ],
            skew=skew,
        )
        if variant.uses_vis:
            self._emit_vis(builder, width, height, variant.uses_prefetch)
        else:
            self._emit_scalar(builder, width, height, variant.uses_prefetch)
        program = builder.build()

        def validate(machine) -> None:
            got = machine.read_buffer_array("dst").reshape(height, width)
            expect_equal(got, expected, "conv output")

        return BuiltWorkload(
            name=self.name,
            variant=variant,
            program=program,
            validate=validate,
            details={"image": f"{width}x{height}", "kernel": "sharpen 8.8"},
        )

    # -- scalar --------------------------------------------------------------

    def _emit_scalar(self, b: ProgramBuilder, width: int, height: int, prefetch: bool):
        taps = [int(self.kernel[ky, kx]) for ky in range(3) for kx in range(3)]
        psrc, pdst = b.iregs(2)
        b.la(psrc, "src")                      # window top-left for x=1,y=1
        b.la(pdst, "dst", offset=width + 1)

        with b.loop(1, height - 1):
            with b.loop(1, width - 1):
                if prefetch:
                    with b.scratch(iregs=1) as t:
                        skip = b.label("no_pf")
                        b.and_(t, psrc, 63)
                        b.bne(t, 0, skip, hint=True)
                        b.pf(psrc, 2 * width + 128)
                        b.pf(pdst, 192)
                        b.bind(skip)
                with b.scratch(iregs=2) as (acc, t):
                    first = True
                    for tap_index, tap in enumerate(taps):
                        ky, kx = divmod(tap_index, 3)
                        b.ldb(t, psrc, ky * width + kx)
                        b.mul(t, t, tap)
                        b.add(t, t, 0x80)
                        b.sra(t, t, 8)
                        if first:
                            b.mov(acc, t)
                            first = False
                        else:
                            b.add(acc, acc, t)
                    emit_saturate_byte(b, acc)
                    b.stb(acc, pdst)
                b.add(psrc, psrc, 1)
                b.add(pdst, pdst, 1)
            b.add(psrc, psrc, 2)
            b.add(pdst, pdst, 2)

    # -- VIS ---------------------------------------------------------------------

    def _emit_vis(self, b: ProgramBuilder, width: int, height: int, prefetch: bool):
        interior = width - 2
        groups = interior // 4
        remainder = interior % 4
        tail_offset = (1 + groups * 4) % 8
        if remainder and tail_offset + remainder > 8:
            raise ValueError("VIS conv tail would cross an aligned word")

        coeff_data = b"".join(
            mul_coeff32(int(self.kernel[ky, kx])) for ky in range(3) for kx in range(3)
        )
        coeffs = b.buffer("coeffs", len(coeff_data), data=coeff_data)

        psrc, pdst = b.iregs(2)
        b.la(psrc, "src")
        b.la(pdst, "dst", offset=width + 1)
        b.set_gsr(align=0, scale=7)            # pack scale; align set per tap
        f_coeff = b.fregs(9)
        with b.scratch(iregs=1) as tmp:
            b.la(tmp, coeffs)
            for i in range(9):
                b.ldfw(f_coeff[i], tmp, 4 * i)
        fz = b.freg()
        b.fzero(fz)
        acc, fw, f1, f2, fm = b.fregs(5)
        addr = b.ireg()

        def emit_group() -> None:
            """Accumulate the nine taps for four adjacent outputs."""
            for tap_index in range(9):
                ky, kx = divmod(tap_index, 3)
                b.alignaddr(addr, psrc, ky * width + kx)
                b.ldf(f1, addr, 0)
                b.ldf(f2, addr, 8)
                b.faligndata(fw, f1, f2)
                if tap_index == 0:
                    b.fmul8x16au(acc, fw, f_coeff[0])
                else:
                    b.fmul8x16au(fm, fw, f_coeff[tap_index])
                    b.fpadd16(acc, acc, fm)
            b.fpack16(acc, acc)

        with b.loop(1, height - 1):
            with b.loop(0, groups):
                if prefetch:
                    with b.scratch(iregs=1) as t:
                        skip = b.label("no_pf")
                        b.and_(t, psrc, 63)
                        b.bgt(t, 3, skip, hint=True)
                        b.pf(psrc, 2 * width + 128)
                        b.pf(pdst, 192)
                        b.bind(skip)
                emit_group()
                with b.waive(
                    "W-ALIGN",
                    reason="interior-pixel output rows start at "
                    "width+1, so the packed 4-byte stores are "
                    "deliberately unaligned (SVIS is byte-addressable)",
                ):
                    b.stfw(acc, pdst)
                b.add(psrc, psrc, 4)
                b.add(pdst, pdst, 4)
            if remainder:
                # Branch-free tail: realign the packed bytes to their
                # position in the aligned word and partial-store under
                # an edge mask (Section 2.2.2's edge idiom).
                emit_group()
                with b.scratch(iregs=3) as (mask, aligned, end):
                    b.add(end, pdst, remainder - 1)
                    b.edge8(mask, pdst, end)
                    b.alignaddr(aligned, R_ZERO, 8 - tail_offset)
                    b.faligndata(fw, fz, acc)
                    b.and_(aligned, pdst, -8)
                    b.pst(fw, mask, aligned)
                b.add(psrc, psrc, remainder + 2)
                b.add(pdst, pdst, remainder + 2)
            else:
                b.add(psrc, psrc, 2)
                b.add(pdst, pdst, 2)
