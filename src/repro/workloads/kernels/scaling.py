"""``scaling``: linear point scaling of an image (Table 1).

Reference math: ``dst = sat(((src*scale + 0x80) >> 8) + bias)`` with an
8.8 fixed-point scale factor — the VSDK linear image-scaling kernel.

The VIS variant is the canonical ``fmul8x16au`` + ``fpadd16`` +
``fpack16`` pipeline; the scalar variant needs explicit saturation
branches that the pack instruction absorbs.
"""

from __future__ import annotations

from ...asm.builder import ProgramBuilder
from ...media.images import synthetic_image
from ...media.kernels import SCALE_BIAS, SCALE_FACTOR, scaling as reference
from ..base import BuiltWorkload, Variant, Workload, expect_equal
from .common import (
    broadcast16,
    declare_streams,
    emit_saturate_byte,
    flat_bytes,
    mul_coeff32,
    pointer_loop,
    setup_vis_unpack,
)


class ScalingWorkload(Workload):
    name = "scaling"
    group = "image processing"
    description = "Linear image scaling (8.8 fixed-point gain plus bias)"

    def __init__(self, factor: int = SCALE_FACTOR, bias: int = SCALE_BIAS) -> None:
        self.factor = factor
        self.bias = bias

    def build(self, variant: Variant, scale, skew: bool = True, unroll: int = 2):
        src = synthetic_image(scale.kernel_width, scale.kernel_height, scale.bands, seed=16)
        expected = reference(src.reshape(-1), self.factor, self.bias)
        total = src.size

        builder = ProgramBuilder(f"{self.name}-{variant.value}")
        declare_streams(
            builder,
            [("src", total, flat_bytes(src)), ("dst", total, None)],
            skew=skew,
        )
        if variant.uses_vis:
            self._emit_vis(builder, total, variant.uses_prefetch, scale.pf_distance)
        else:
            self._emit_scalar(builder, total, variant.uses_prefetch, unroll, scale.pf_distance)
        program = builder.build()

        def validate(machine) -> None:
            expect_equal(machine.read_buffer_array("dst"), expected, "scaling output")

        return BuiltWorkload(
            name=self.name,
            variant=variant,
            program=program,
            validate=validate,
            details={"bytes": total, "factor": self.factor, "bias": self.bias},
        )

    def _emit_scalar(self, b: ProgramBuilder, total: int, prefetch: bool, unroll: int, pf_distance: int = 128):
        ps, pd = b.iregs(2)
        b.la(ps, "src")
        b.la(pd, "dst")

        def body() -> None:
            for u in range(unroll):
                with b.scratch(iregs=1) as t:
                    b.ldb(t, ps, u)
                    b.mul(t, t, self.factor)
                    b.add(t, t, 0x80)
                    b.sra(t, t, 8)
                    b.add(t, t, self.bias)
                    emit_saturate_byte(b, t)
                    b.stb(t, pd, u)

        pointer_loop(b, total, unroll, [ps, pd], body, prefetch=prefetch, pf_distance=pf_distance)

    def _emit_vis(self, b: ProgramBuilder, total: int, prefetch: bool, pf_distance: int = 128):
        coeff = b.buffer("coeff", 4, data=mul_coeff32(self.factor))
        biases = b.buffer("bias16", 8, data=broadcast16(self.bias << 0))
        ps, pd = b.iregs(2)
        b.la(ps, "src")
        b.la(pd, "dst")
        zero = setup_vis_unpack(b, scale=7)
        f_coeff, f_bias = b.fregs(2)
        with b.scratch(iregs=1) as tmp:
            b.la(tmp, coeff)
            b.ldfw(f_coeff, tmp)
            b.la(tmp, biases)
            b.ldf(f_bias, tmp)

        fs, hi, lo = b.fregs(3)

        def body() -> None:
            b.ldf(fs, ps)
            b.fmul8x16au(lo, fs, f_coeff)      # (src*scale + 0x80) >> 8, lanes 0-3
            b.fpadd16(lo, lo, f_bias)
            b.fpack16(lo, lo)                  # GSR scale 7: identity + saturate
            b.stfw(lo, pd, 0)
            b.faligndata(hi, fs, zero)         # bytes 4-7
            b.fmul8x16au(hi, hi, f_coeff)
            b.fpadd16(hi, hi, f_bias)
            b.fpack16(hi, hi)
            b.stfw(hi, pd, 4)

        pointer_loop(b, total, 8, [ps, pd], body, prefetch=prefetch, pf_distance=pf_distance)
