"""``dotprod``: 16x16 dot product of a long linear array (Table 1).

Reference math (see :func:`repro.media.kernels.dotprod`): per element
``(a*b) >> 8``, accumulated in four lanes (no lane ever wraps 16 bits
by construction, so the lane-sum equals the plain dot product).

The VIS variant uses the paper's emulated 16x16 multiply —
``fmul8sux16`` + ``fmul8ulx16`` + ``fpadd16`` — exactly the "multiple
VIS instructions to emulate one operation" overhead Section 3.2.3
calls out for this benchmark.  Being a pure two-stream kernel with one
multiply per element, dotprod is the most memory-bound benchmark in
the suite.
"""

from __future__ import annotations

import numpy as np

from ...asm.builder import ProgramBuilder
from ...media.kernels import dotprod as reference
from ..base import BuiltWorkload, Variant, Workload, expect_equal
from .common import declare_streams, pointer_loop


def make_operands(length: int, seed: int = 23) -> tuple:
    """Deterministic s16 operands whose lane accumulations provably fit
    in 16 bits (checked by the reference)."""
    rng = np.random.default_rng(seed)
    a = rng.integers(-45, 46, size=length).astype(np.int16)
    b = rng.integers(-45, 46, size=length).astype(np.int16)
    return a, b


class DotprodWorkload(Workload):
    name = "dotprod"
    group = "image processing"
    description = "16x16 dot product of a long linear array"

    def build(self, variant: Variant, scale, skew: bool = True, unroll: int = 2):
        length = scale.dotprod_length
        if length % 4 != 0:
            raise ValueError("dotprod length must be a multiple of 4")
        a, bvec = make_operands(length)
        expected = reference(a, bvec)

        builder = ProgramBuilder(f"{self.name}-{variant.value}")
        declare_streams(
            builder,
            [
                ("a", 2 * length, a.tobytes()),
                ("b", 2 * length, bvec.tobytes()),
                ("result", 8, None),
            ],
            skew=skew,
        )
        if variant.uses_vis:
            self._emit_vis(builder, length, variant.uses_prefetch, scale.pf_distance)
        else:
            self._emit_scalar(builder, length, variant.uses_prefetch, scale.pf_distance)
        program = builder.build()

        def validate(machine) -> None:
            got = int(machine.read_buffer_array("result", dtype="<i8")[0])
            expect_equal(np.int64(got), np.int64(expected), "dotprod result")

        return BuiltWorkload(
            name=self.name,
            variant=variant,
            program=program,
            validate=validate,
            details={"elements": length},
        )

    def _emit_scalar(self, b: ProgramBuilder, length: int, prefetch: bool, pf_distance: int = 128):
        pa, pb = b.iregs(2)
        b.la(pa, "a")
        b.la(pb, "b")
        accs = b.iregs(4)
        for acc in accs:
            b.li(acc, 0)

        def body() -> None:
            for lane in range(4):
                with b.scratch(iregs=2) as (x, y):
                    b.ldhs(x, pa, 2 * lane)
                    b.ldhs(y, pb, 2 * lane)
                    b.mul(x, x, y)
                    b.sra(x, x, 8)
                    b.add(accs[lane], accs[lane], x)

        pointer_loop(b, 2 * length, 8, [pa, pb], body, prefetch=prefetch, pf_distance=pf_distance)

        total = b.ireg()
        b.add(total, accs[0], accs[1])
        b.add(total, total, accs[2])
        b.add(total, total, accs[3])
        with b.scratch(iregs=1) as pr:
            b.la(pr, "result")
            b.stx(total, pr)

    def _emit_vis(self, b: ProgramBuilder, length: int, prefetch: bool, pf_distance: int = 128):
        pa, pb = b.iregs(2)
        b.la(pa, "a")
        b.la(pb, "b")
        acc, fa, fb, t1, t2 = b.fregs(5)
        b.fzero(acc)

        def body() -> None:
            b.ldf(fa, pa)
            b.ldf(fb, pb)
            b.fmul8sux16(t1, fa, fb)
            b.fmul8ulx16(t2, fa, fb)
            b.fpadd16(t1, t1, t2)          # (a*b) >> 8 per 16-bit lane
            b.fpadd16(acc, acc, t1)

        pointer_loop(b, 2 * length, 8, [pa, pb], body, prefetch=prefetch, pf_distance=pf_distance)

        # Horizontal reduction of the four lane accumulators in scalar
        # code (VIS has no horizontal-add; this is part of its overhead).
        scratch = b.buffer("acc_spill", 8)
        total = b.ireg()
        with b.scratch(iregs=2) as (pr, lane):
            b.la(pr, "acc_spill")
            b.stf(acc, pr)
            b.li(total, 0)
            for lane_index in range(4):
                b.ldhs(lane, pr, 2 * lane_index)
                b.add(total, total, lane)
            b.la(pr, "result")
            b.stx(total, pr)
