"""Shared emission helpers for the VSDK-style kernel benchmarks.

The helpers encode the paper's optimization methodology:

* footnote 3 — concurrent streams get skewed starting addresses and the
  inner loops are unrolled (both controllable for the ablation study);
* Section 2.3.3 — prefetch variants are strip-mined into cache-line
  tiles with one non-binding prefetch per stream per line, following
  Mowry's compiler algorithm (steady-state loop; prefetches that run
  past the end of a stream are dropped by the hardware);
* Section 2.3.2 — VIS variants process 8-byte packed groups, using
  ``fexpand``/``faligndata`` for subword rearrangement and the GSR for
  alignment and pack scaling.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ...asm.builder import ProgramBuilder, Reg

#: Cache line size assumed by the prefetch strip-mining (Table 3).
LINE = 64

#: Default prefetch look-ahead in bytes (overridden per workload scale;
#: see WorkloadScale.pf_distance).
PF_DISTANCE = 2 * LINE


def flat_bytes(image: np.ndarray) -> bytes:
    """Row-major bytes of an image array."""
    return np.ascontiguousarray(image).tobytes()


def declare_streams(
    builder: ProgramBuilder,
    streams: Sequence[tuple],
    skew: bool = True,
) -> dict:
    """Declare input/output buffers with skewed starting addresses.

    ``streams`` is a sequence of ``(name, size, data_or_None)``.  With
    ``skew`` enabled each stream starts one cache line further into its
    alignment window than the previous one, de-conflicting the L1 sets
    the concurrent accesses map to (paper footnote 3).
    """
    out = {}
    for index, (name, size, data) in enumerate(streams):
        out[name] = builder.buffer(
            name,
            size,
            align=4096,
            data=data,
            skew=(index * LINE) if skew else 0,
        )
    return out


def pointer_loop(
    builder: ProgramBuilder,
    total: int,
    step: int,
    pointers: Sequence[Reg],
    body: Callable[[], None],
    prefetch: bool = False,
    prefetch_pointers: Sequence[Reg] = (),
    advance: bool = True,
    pf_distance: int = PF_DISTANCE,
) -> None:
    """The canonical streaming loop shared by the byte kernels.

    Calls ``body()`` once per iteration to process ``step`` bytes at the
    current pointers, then advances every pointer by ``step``.  With
    ``prefetch`` enabled the loop is strip-mined into cache-line tiles:
    each tile issues one prefetch per stream ``PF_DISTANCE`` bytes ahead
    before running ``LINE // step`` unrolled bodies.
    """
    if total % step != 0:
        raise ValueError(f"total {total} not a multiple of step {step}")

    def advance_pointers() -> None:
        if advance:
            for ptr in pointers:
                builder.add(ptr, ptr, step)

    if not prefetch:
        with builder.loop(0, total, step=step):
            body()
            advance_pointers()
        return

    if LINE % step != 0:
        raise ValueError("prefetch tiling requires step dividing a line")
    per_tile = LINE // step
    targets = prefetch_pointers or pointers
    with builder.loop(0, total, step=LINE):
        for ptr in targets:
            builder.pf(ptr, pf_distance)
        for _ in range(per_tile):
            body()
            advance_pointers()


def emit_saturate_byte(builder: ProgramBuilder, value: Reg) -> None:
    """Scalar saturation to [0, 255] with explicit (data-dependent,
    hard-to-predict) branches — the code VIS's pack instructions
    eliminate (Section 3.2.2)."""
    done = builder.label("sat_done")
    not_low = builder.label("sat_not_low")
    builder.bge(value, 0, not_low, hint=True)
    builder.li(value, 0)
    builder.j(done)
    builder.bind(not_low)
    builder.ble(value, 255, done, hint=True)
    builder.li(value, 255)
    builder.bind(done)


def setup_vis_unpack(builder: ProgramBuilder, scale: int) -> Reg:
    """Prepare the GSR for the 8-byte unpack idiom and return a zeroed
    media register used as the shift-in operand of ``faligndata``.

    GSR.align = 4 lets ``faligndata(src, zero)`` expose the high four
    bytes of ``src`` in the low half; GSR.scale drives ``fpack16``.
    """
    builder.set_gsr(align=4, scale=scale)
    zero = builder.freg()
    builder.fzero(zero)
    return zero


def emit_expand_8(builder: ProgramBuilder, src: Reg, zero: Reg, lo: Reg, hi: Reg):
    """Expand 8 packed bytes in ``src`` into two 4-lane 16-bit groups.

    Requires :func:`setup_vis_unpack` (GSR.align == 4).
    """
    builder.fexpand(lo, src)
    builder.faligndata(hi, src, zero)
    builder.fexpand(hi, hi)


def broadcast16(value: int) -> bytes:
    """Little-endian bytes of a 64-bit constant with ``value`` (s16)
    replicated in all four lanes — loaded via ``ldf`` as a VIS operand."""
    lane = value & 0xFFFF
    word = lane | (lane << 16) | (lane << 32) | (lane << 48)
    return word.to_bytes(8, "little")


def mul_coeff32(value: int) -> bytes:
    """4-byte constant holding ``value`` in the upper 16 bits of the low
    32-bit word — the operand layout ``fmul8x16au`` consumes."""
    return ((value & 0xFFFF) << 16).to_bytes(4, "little")
