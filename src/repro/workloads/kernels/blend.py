"""``blend``: alpha blending of two images with an alpha image (Table 1).

Reference math (the VIS fixed-point formulation, see
:func:`repro.media.kernels.blend`)::

    a16 = alpha << 4
    dst = sat(((src1*a16 + 0x80) >> 8) + ((src2*(4096-a16) + 0x80) >> 8) >> 4)

The VIS variant uses ``fexpand`` on the alpha stream, ``fmul8x16`` for
the two products and ``fpack16`` (GSR scale 3) for the saturating pack.
"""

from __future__ import annotations

from ...asm.builder import ProgramBuilder
from ...media.images import synthetic_image
from ...media.kernels import blend as reference
from ..base import BuiltWorkload, Variant, Workload, expect_equal
from .common import (
    broadcast16,
    declare_streams,
    emit_expand_8,
    flat_bytes,
    pointer_loop,
    setup_vis_unpack,
)


class BlendWorkload(Workload):
    name = "blend"
    group = "image processing"
    description = "Alpha blending of two images with an alpha image"

    def build(self, variant: Variant, scale, skew: bool = True, unroll: int = 2):
        src1 = synthetic_image(scale.kernel_width, scale.kernel_height, scale.bands, seed=16)
        src2 = synthetic_image(scale.kernel_width, scale.kernel_height, scale.bands, seed=17)
        alpha = synthetic_image(scale.kernel_width, scale.kernel_height, scale.bands, seed=18)
        expected = reference(
            src1.reshape(-1), src2.reshape(-1), alpha.reshape(-1)
        )
        total = src1.size

        builder = ProgramBuilder(f"{self.name}-{variant.value}")
        declare_streams(
            builder,
            [
                ("src1", total, flat_bytes(src1)),
                ("src2", total, flat_bytes(src2)),
                ("alpha", total, flat_bytes(alpha)),
                ("dst", total, None),
            ],
            skew=skew,
        )
        if variant.uses_vis:
            self._emit_vis(builder, total, variant.uses_prefetch, scale.pf_distance)
        else:
            self._emit_scalar(builder, total, variant.uses_prefetch, unroll, scale.pf_distance)
        program = builder.build()

        def validate(machine) -> None:
            expect_equal(machine.read_buffer_array("dst"), expected, "blend output")

        return BuiltWorkload(
            name=self.name,
            variant=variant,
            program=program,
            validate=validate,
            details={"bytes": total},
        )

    def _emit_scalar(self, b: ProgramBuilder, total: int, prefetch: bool, unroll: int, pf_distance: int = 128):
        p1, p2, pa, pd = b.iregs(4)
        b.la(p1, "src1")
        b.la(p2, "src2")
        b.la(pa, "alpha")
        b.la(pd, "dst")

        def body() -> None:
            for u in range(unroll):
                with b.scratch(iregs=3) as (x, y, a):
                    b.ldb(a, pa, u)
                    b.ldb(x, p1, u)
                    b.ldb(y, p2, u)
                    b.sll(a, a, 4)          # a16
                    b.mul(x, x, a)
                    b.add(x, x, 0x80)
                    b.sra(x, x, 8)          # (src1*a16 + 0x80) >> 8
                    with b.scratch(iregs=1) as inv:
                        b.li(inv, 4096)
                        b.sub(inv, inv, a)
                        b.mul(y, y, inv)
                    b.add(y, y, 0x80)
                    b.sra(y, y, 8)
                    b.add(x, x, y)
                    b.sra(x, x, 4)
                    # Result is provably in [0, 255]; no saturation code,
                    # matching the non-saturating VSDK blend (footnote 4).
                    b.stb(x, pd, u)

        pointer_loop(b, total, unroll, [p1, p2, pa, pd], body, prefetch=prefetch, pf_distance=pf_distance)

    def _emit_vis(self, b: ProgramBuilder, total: int, prefetch: bool, pf_distance: int = 128):
        const4096 = b.buffer("c4096", 8, data=broadcast16(4096))
        p1, p2, pa, pd = b.iregs(4)
        b.la(p1, "src1")
        b.la(p2, "src2")
        b.la(pa, "alpha")
        b.la(pd, "dst")
        zero = setup_vis_unpack(b, scale=3)
        f4096 = b.freg()
        with b.scratch(iregs=1) as tmp:
            b.la(tmp, const4096)
            b.ldf(f4096, tmp)

        fs1, fs2, fal, alo, ahi = b.fregs(5)
        inv_lo, inv_hi, m1, m2, s1hi, s2hi = b.fregs(6)

        def body() -> None:
            b.ldf(fs1, p1)
            b.ldf(fs2, p2)
            b.ldf(fal, pa)
            emit_expand_8(b, fal, zero, alo, ahi)
            b.fpsub16(inv_lo, f4096, alo)
            b.fpsub16(inv_hi, f4096, ahi)
            # low 4 bytes
            b.fmul8x16(m1, fs1, alo)
            b.fmul8x16(m2, fs2, inv_lo)
            b.fpadd16(m1, m1, m2)
            b.fpack16(m1, m1)
            b.stfw(m1, pd, 0)
            # high 4 bytes (exposed via faligndata, GSR.align == 4)
            b.faligndata(s1hi, fs1, zero)
            b.faligndata(s2hi, fs2, zero)
            b.fmul8x16(m1, s1hi, ahi)
            b.fmul8x16(m2, s2hi, inv_hi)
            b.fpadd16(m1, m1, m2)
            b.fpack16(m1, m1)
            b.stfw(m1, pd, 4)

        pointer_loop(b, total, 8, [p1, p2, pa, pd], body, prefetch=prefetch, pf_distance=pf_distance)
