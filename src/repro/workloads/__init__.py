"""The 12 image/video benchmarks of Table 1, as simulatable programs."""

from .base import BuiltWorkload, ValidationError, Variant, Workload, expect_equal
from .params import (
    DEFAULT_SCALE,
    PAPER_SCALE,
    SMALL_SCALE,
    TINY_SCALE,
    WorkloadScale,
)
from .suite import ALL_WORKLOADS, BY_NAME, KERNEL_NAMES, PREFETCH_NAMES, get, names

__all__ = [
    "BuiltWorkload",
    "ValidationError",
    "Variant",
    "Workload",
    "expect_equal",
    "DEFAULT_SCALE",
    "PAPER_SCALE",
    "SMALL_SCALE",
    "TINY_SCALE",
    "WorkloadScale",
    "ALL_WORKLOADS",
    "BY_NAME",
    "KERNEL_NAMES",
    "PREFETCH_NAMES",
    "get",
    "names",
]
