"""Entropy-coding assembly: bit I/O subroutines and per-block Huffman
encode/decode emitters.

This phase is shared verbatim between the scalar and VIS program
variants: it is the inherently sequential, variable-length,
data-dependent code that Section 3.2.3 identifies as un-VIS-able
(bit-level stream manipulation, magnitude-category loops, canonical
Huffman decoding).  The decoder uses an 8-bit lookahead LUT with a
canonical bit-serial fallback — the jpeglib decode structure.

Register convention: one :class:`EntropyUnit` reserves six integer
registers (bit buffer, bit count, stream pointer, two argument/result
registers and a subroutine scratch) plus the link register used by
``call``.  All subroutines are leaves, so no link spilling is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...asm.builder import ProgramBuilder, R_ZERO, Reg
from .tables import CodecTables, DecoderTables


@dataclass
class EntropyUnit:
    """Reserved registers + subroutine labels for one codec program."""

    bitbuf: Reg
    bitcnt: Reg
    stream: Reg
    arg0: Reg
    arg1: Reg
    tmp: Reg
    putbits: str = ""
    size_cat: str = ""
    getbits: str = ""
    decode_dc: str = ""
    decode_ac: str = ""

    def reset_encoder(self, b: ProgramBuilder, out_buffer, offset: int = 0) -> None:
        with b.waive(
            "W-DEADWRITE",
            reason="baseline bit-buffer init; shadowed by per-scan resets",
        ):
            b.li(self.bitbuf, 0)
            b.li(self.bitcnt, 0)
        if isinstance(out_buffer, Reg):
            b.mov(self.stream, out_buffer)
        else:
            b.la(self.stream, out_buffer, offset)

    def reset_decoder(self, b: ProgramBuilder, in_pointer: Reg) -> None:
        b.li(self.bitbuf, 0)
        b.li(self.bitcnt, 0)
        b.mov(self.stream, in_pointer)


def make_entropy_unit(b: ProgramBuilder) -> EntropyUnit:
    regs = b.iregs(6)
    return EntropyUnit(*regs)


# ---------------------------------------------------------------------------
# Subroutines.
# ---------------------------------------------------------------------------


def emit_putbits_subroutine(b: ProgramBuilder, e: EntropyUnit) -> None:
    """putbits(code=arg0, length=arg1): append MSB-first."""
    e.putbits = b.here("putbits")
    b.sll(e.bitbuf, e.bitbuf, e.arg1)
    b.or_(e.bitbuf, e.bitbuf, e.arg0)
    b.add(e.bitcnt, e.bitcnt, e.arg1)
    flush = b.here("pb_flush")
    done = b.label("pb_done")
    b.blt(e.bitcnt, 8, done)
    b.sub(e.bitcnt, e.bitcnt, 8)
    b.srl(e.tmp, e.bitbuf, e.bitcnt)
    b.stb(e.tmp, e.stream)
    b.add(e.stream, e.stream, 1)
    b.j(flush)
    b.bind(done)
    b.li(e.tmp, 1)
    b.sll(e.tmp, e.tmp, e.bitcnt)
    b.sub(e.tmp, e.tmp, 1)
    b.and_(e.bitbuf, e.bitbuf, e.tmp)
    b.ret()


def emit_size_cat_subroutine(b: ProgramBuilder, e: EntropyUnit) -> None:
    """size_cat(value=arg0) -> arg1 = magnitude category, arg0 = the
    category's extra bits (JPEG EXTEND encoding).  The bit-length loop
    and sign handling are the branchy scalar code the paper discusses."""
    e.size_cat = b.here("size_cat")
    positive = b.label("sc_pos")
    loop_top = b.label("sc_loop")
    loop_end = b.label("sc_done")
    finish = b.label("sc_ret")
    b.li(e.arg1, 0)
    b.bge(e.arg0, R_ZERO, positive)
    b.sub(e.tmp, R_ZERO, e.arg0)
    b.j(loop_top)
    b.bind(positive)
    b.mov(e.tmp, e.arg0)
    b.bind(loop_top)
    b.beq(e.tmp, 0, loop_end)
    b.srl(e.tmp, e.tmp, 1)
    b.add(e.arg1, e.arg1, 1)
    b.j(loop_top)
    b.bind(loop_end)
    b.bge(e.arg0, R_ZERO, finish)
    b.li(e.tmp, 1)
    b.sll(e.tmp, e.tmp, e.arg1)
    b.sub(e.tmp, e.tmp, 1)
    b.add(e.arg0, e.arg0, e.tmp)
    b.bind(finish)
    b.ret()


def emit_getbits_subroutine(b: ProgramBuilder, e: EntropyUnit) -> None:
    """getbits(n=arg1) -> arg0 (MSB-first), refilling byte-wise."""
    e.getbits = b.here("getbits")
    zero = b.label("gb_zero")
    ready = b.label("gb_ready")
    b.beq(e.arg1, 0, zero)
    refill = b.here("gb_refill")
    b.bge(e.bitcnt, e.arg1, ready)
    b.ldb(e.tmp, e.stream)
    b.add(e.stream, e.stream, 1)
    b.sll(e.bitbuf, e.bitbuf, 8)
    b.or_(e.bitbuf, e.bitbuf, e.tmp)
    b.add(e.bitcnt, e.bitcnt, 8)
    b.j(refill)
    b.bind(ready)
    b.sub(e.bitcnt, e.bitcnt, e.arg1)
    b.srl(e.arg0, e.bitbuf, e.bitcnt)
    b.li(e.tmp, 1)
    b.sll(e.tmp, e.tmp, e.arg1)
    b.sub(e.tmp, e.tmp, 1)
    b.and_(e.arg0, e.arg0, e.tmp)
    b.ret()
    b.bind(zero)
    b.li(e.arg0, 0)
    b.ret()


def emit_decode_subroutine(
    b: ProgramBuilder, e: EntropyUnit, name: str, tables: DecoderTables,
    code: Reg,
) -> str:
    """decode_<name>() -> arg0 = symbol.  Fast path: 8-bit lookahead
    LUT; fallback: canonical bit-serial decode (codes > 8 bits).
    ``code`` is a persistent scratch register shared by all decode
    subroutines (they never nest)."""
    label = b.here(f"decode_{name}")

    peeked = b.label("dh_peeked")
    refill = b.here("dh_refill")
    b.bge(e.bitcnt, 8, peeked)
    b.ldb(e.tmp, e.stream)
    b.add(e.stream, e.stream, 1)
    b.sll(e.bitbuf, e.bitbuf, 8)
    b.or_(e.bitbuf, e.bitbuf, e.tmp)
    b.add(e.bitcnt, e.bitcnt, 8)
    b.j(refill)
    b.bind(peeked)
    b.sub(e.tmp, e.bitcnt, 8)
    b.srl(code, e.bitbuf, e.tmp)
    b.and_(code, code, 0xFF)               # the next 8 bits
    b.la(e.tmp, tables.lut_length)
    b.add(e.tmp, e.tmp, code)
    b.ldb(e.arg1, e.tmp)                   # LUT code length (0 = miss)
    b.sll(e.arg0, code, 1)
    b.la(e.tmp, tables.lut_symbol)
    b.add(e.tmp, e.tmp, e.arg0)
    b.ldh(e.arg0, e.tmp)                   # LUT symbol
    slow = b.label("dh_slow")
    b.beq(e.arg1, 0, slow, hint=True)
    b.sub(e.bitcnt, e.bitcnt, e.arg1)      # fast path: consume + return
    b.ret()

    # ---- canonical bit-serial fallback --------------------------------
    b.bind(slow)
    b.sub(e.bitcnt, e.bitcnt, 1)
    b.srl(code, e.bitbuf, e.bitcnt)
    b.and_(code, code, 1)
    b.li(e.arg1, 1)                        # current code length
    loop_top = b.here("dh_loop")
    found = b.label("dh_found")
    lengthen = b.label("dh_longer")
    b.la(e.tmp, tables.maxcode)
    b.sll(e.arg0, e.arg1, 2)
    b.add(e.tmp, e.tmp, e.arg0)
    b.ldws(e.arg0, e.tmp)                  # maxcode[length]
    b.blt(e.arg0, 0, lengthen)
    b.ble(code, e.arg0, found)
    b.bind(lengthen)
    have_bit = b.label("dh_have")
    b.bne(e.bitcnt, 0, have_bit, hint=True)
    b.ldb(e.tmp, e.stream)
    b.add(e.stream, e.stream, 1)
    b.sll(e.bitbuf, e.bitbuf, 8)
    b.or_(e.bitbuf, e.bitbuf, e.tmp)
    b.li(e.bitcnt, 8)
    b.bind(have_bit)
    b.sub(e.bitcnt, e.bitcnt, 1)
    b.srl(e.tmp, e.bitbuf, e.bitcnt)
    b.and_(e.tmp, e.tmp, 1)
    b.sll(code, code, 1)
    b.or_(code, code, e.tmp)
    b.add(e.arg1, e.arg1, 1)
    b.j(loop_top)
    b.bind(found)
    b.la(e.tmp, tables.mincode)
    b.sll(e.arg0, e.arg1, 2)
    b.add(e.tmp, e.tmp, e.arg0)
    b.ldws(e.arg0, e.tmp)
    b.sub(code, code, e.arg0)              # code - mincode[length]
    b.la(e.tmp, tables.valptr)
    b.sll(e.arg0, e.arg1, 1)
    b.add(e.tmp, e.tmp, e.arg0)
    b.ldh(e.arg0, e.tmp)
    b.add(code, code, e.arg0)              # value index
    b.la(e.tmp, tables.values)
    b.sll(code, code, 1)
    b.add(e.tmp, e.tmp, code)
    b.ldh(e.arg0, e.tmp)
    b.ret()
    return label


def emit_entropy_subroutines(
    b: ProgramBuilder,
    e: EntropyUnit,
    tables: CodecTables,
    encoder: bool,
    decoder: bool,
) -> None:
    """Emit the subroutine block (skipped over at program entry)."""
    skip = b.label("after_subroutines")
    b.j(skip)
    if encoder:
        emit_putbits_subroutine(b, e)
        emit_size_cat_subroutine(b, e)
    if decoder:
        emit_getbits_subroutine(b, e)
        code = b.ireg()
        e.decode_dc = emit_decode_subroutine(b, e, "dc", tables.dc, code)
        e.decode_ac = emit_decode_subroutine(b, e, "ac", tables.ac, code)
    b.bind(skip)


# ---------------------------------------------------------------------------
# Per-block emitters (inline code, called inside the codec's block loops).
# ---------------------------------------------------------------------------


def _emit_lookup_and_put(
    b: ProgramBuilder, e: EntropyUnit, codes_buf: str, lens_buf: str, symbol: Reg
) -> None:
    """Look up (code, length) for ``symbol`` and call putbits."""
    with b.scratch(iregs=1) as t:
        b.la(t, codes_buf)
        b.sll(e.arg0, symbol, 1)
        b.add(t, t, e.arg0)
        b.ldh(e.arg0, t)
        b.la(t, lens_buf)
        b.add(t, t, symbol)
        b.ldb(e.arg1, t)
    b.call(e.putbits)


def emit_encode_block(
    b: ProgramBuilder,
    e: EntropyUnit,
    coef_ptr: Reg,
    ss: int,
    se: int,
    pred: Reg,
) -> None:
    """Huffman-encode the spectral band [ss, se] of the s16 coefficient
    block at ``coef_ptr`` (coefficients in the program's block layout;
    the zigzag offset table supplies scan order)."""
    sv_bits, sv_size, k, run, v, t = b.iregs(6)

    if ss == 0:
        b.ldhs(v, coef_ptr, 0)             # scan position 0 is offset 0
        b.sub(e.arg0, v, pred)
        b.mov(pred, v)
        b.call(e.size_cat)
        b.mov(sv_bits, e.arg0)
        b.mov(sv_size, e.arg1)
        _emit_lookup_and_put(b, e, "dc_codes", "dc_lens", sv_size)
        skip_bits = b.label("dc_nobits")
        b.beq(sv_size, 0, skip_bits)
        b.mov(e.arg0, sv_bits)
        b.mov(e.arg1, sv_size)
        b.call(e.putbits)
        b.bind(skip_bits)

    first_ac = max(ss, 1)
    if se >= first_ac:
        b.li(run, 0)
        b.li(k, first_ac)
        ac_top = b.here("ac_loop")
        ac_next = b.label("ac_next")
        nonzero = b.label("ac_nonzero")
        # coefficient at scan position k
        b.la(t, "zz_offsets")
        b.sll(v, k, 1)
        b.add(t, t, v)
        b.ldh(t, t)
        b.add(t, t, coef_ptr)
        b.ldhs(v, t)
        b.bne(v, 0, nonzero, hint=False)
        b.add(run, run, 1)
        b.j(ac_next)
        b.bind(nonzero)
        zrl_top = b.here("ac_zrl")
        zrl_done = b.label("ac_zrl_done")
        b.ble(run, 15, zrl_done, hint=True)
        with b.scratch(iregs=1) as zsym:
            b.li(zsym, 0xF0)
            _emit_lookup_and_put(b, e, "ac_codes", "ac_lens", zsym)
        b.sub(run, run, 16)
        b.j(zrl_top)
        b.bind(zrl_done)
        b.mov(e.arg0, v)
        b.call(e.size_cat)
        b.mov(sv_bits, e.arg0)
        b.mov(sv_size, e.arg1)
        b.sll(t, run, 4)
        b.or_(t, t, sv_size)               # (run, size) symbol
        _emit_lookup_and_put(b, e, "ac_codes", "ac_lens", t)
        b.mov(e.arg0, sv_bits)
        b.mov(e.arg1, sv_size)
        b.call(e.putbits)
        b.li(run, 0)
        b.bind(ac_next)
        b.add(k, k, 1)
        b.ble(k, se, ac_top, hint=True)
        no_eob = b.label("ac_no_eob")
        b.beq(run, 0, no_eob)
        with b.scratch(iregs=1) as esym:
            b.li(esym, 0x00)
            _emit_lookup_and_put(b, e, "ac_codes", "ac_lens", esym)
        b.bind(no_eob)

    b.release(sv_bits, sv_size, k, run, v, t)


def emit_flush_encoder(b: ProgramBuilder, e: EntropyUnit) -> None:
    """Pad the final partial byte with 1-bits (BitWriter convention)."""
    done = b.label("flush_done")
    b.beq(e.bitcnt, 0, done)
    with b.scratch(iregs=1) as t:
        b.li(t, 8)
        b.sub(t, t, e.bitcnt)
        b.sll(e.bitbuf, e.bitbuf, t)
        with b.scratch(iregs=1) as mask:
            b.li(mask, 1)
            b.sll(mask, mask, t)
            b.sub(mask, mask, 1)
            b.or_(e.bitbuf, e.bitbuf, mask)
    b.stb(e.bitbuf, e.stream)
    b.add(e.stream, e.stream, 1)
    with b.waive(
        "W-DEADWRITE",
        reason="defensive bit-buffer reset; dead after the final flush",
    ):
        b.li(e.bitcnt, 0)
        b.li(e.bitbuf, 0)
    b.bind(done)


def emit_receive_extend(b: ProgramBuilder, e: EntropyUnit, size: Reg) -> None:
    """arg0 = EXTEND(getbits(size), size): call getbits then sign-map."""
    b.mov(e.arg1, size)
    b.call(e.getbits)
    done = b.label("ext_done")
    b.beq(size, 0, done)
    with b.scratch(iregs=2) as (full, half):
        b.li(full, 1)
        b.sll(full, full, size)
        b.srl(half, full, 1)
        b.bge(e.arg0, half, done)
        b.sub(e.arg0, e.arg0, full)
        b.add(e.arg0, e.arg0, 1)
    b.bind(done)


def emit_decode_block(
    b: ProgramBuilder,
    e: EntropyUnit,
    coef_ptr: Reg,
    ss: int,
    se: int,
    pred: Reg,
) -> None:
    """Decode the spectral band [ss, se] into the coefficient block at
    ``coef_ptr`` (which the caller zero-initialized)."""
    k, sv_size, t = b.iregs(3)

    if ss == 0:
        b.call(e.decode_dc)
        b.mov(sv_size, e.arg0)
        emit_receive_extend(b, e, sv_size)
        b.add(pred, pred, e.arg0)
        b.sth(pred, coef_ptr, 0)

    first_ac = max(ss, 1)
    if se >= first_ac:
        b.li(k, first_ac)
        top = b.here("dec_ac_loop")
        done = b.label("dec_ac_done")
        not_zrl = b.label("dec_not_zrl")
        b.bgt(k, se, done)
        b.call(e.decode_ac)
        b.beq(e.arg0, 0, done)             # EOB
        b.bne(e.arg0, 0xF0, not_zrl, hint=True)
        b.add(k, k, 16)
        b.j(top)
        b.bind(not_zrl)
        b.srl(t, e.arg0, 4)
        b.add(k, k, t)                     # skip the zero run
        b.and_(sv_size, e.arg0, 0xF)
        emit_receive_extend(b, e, sv_size)
        # store at scan position k
        b.sll(t, k, 1)
        with b.scratch(iregs=1) as zt:
            b.la(zt, "zz_offsets")
            b.add(zt, zt, t)
            b.ldh(t, zt)
        b.add(t, t, coef_ptr)
        b.sth(e.arg0, t)
        b.add(k, k, 1)
        b.j(top)
        b.bind(done)

    b.release(k, sv_size, t)
