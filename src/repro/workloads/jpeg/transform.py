"""Transform-phase assembly: 8x8 FDCT+quantize and dequantize+IDCT.

Scalar and VIS block emitters that agree bit-exactly with
:mod:`repro.media.dct`:

* all DCT multiplies are ``(a*c) >> 8`` with floor semantics, which is
  precisely what the VIS ``fmul8sux16``/``fmul8ulx16`` pair computes on
  16-bit lanes;
* the 2-D order is columns-then-rows forward, rows-then-columns
  inverse;
* the packed VIS pipeline processes 4-column lane groups and leaves its
  results *transposed* — the zigzag/divisor tables in the program
  absorb the transpose (see :mod:`repro.workloads.jpeg.tables`) — with
  one scalar 8x8 transpose between the two packed passes (subword
  rearrangement overhead, Section 3.2.3);
* quantization is always scalar, using the non-pipelined integer
  divider (the paper lists quantization among the phases VIS cannot
  help).
"""

from __future__ import annotations

from typing import Dict, List

from ...asm.builder import ProgramBuilder, R_ZERO, Reg
from ...media.dct import C1, C2, C3, C4, C5, C6, C7
from ..kernels.common import emit_saturate_byte

#: Output register assignment of the 1-D butterflies: frequency -> slot.
_FREQ_SLOTS = {0: 0, 4: 1, 2: 2, 6: 3, 1: 4, 3: 5, 5: 6, 7: 7}


# ---------------------------------------------------------------------------
# Scalar 1-D butterflies (13 integer registers: x[0..7] + t[0..4]).
# ---------------------------------------------------------------------------


def emit_fdct_1d_scalar(b: ProgramBuilder, x: List[Reg], t: List[Reg]) -> Dict[int, Reg]:
    """Forward 8-point butterfly on registers; returns frequency->reg."""
    # Stage 1: sums in x[0..3], differences in t[0..3].
    for i in range(4):
        b.sub(t[i], x[i], x[7 - i])
        b.add(x[i], x[i], x[7 - i])
    # Stage 2 into x[4..7]: t0', t3', t1', t2'.
    b.add(x[4], x[0], x[3])
    b.sub(x[5], x[0], x[3])
    b.add(x[6], x[1], x[2])
    b.sub(x[7], x[1], x[2])
    # Even outputs.
    b.add(x[0], x[4], x[6])
    b.mul(x[0], x[0], C4)
    b.sra(x[0], x[0], 8)                   # F0
    b.sub(x[1], x[4], x[6])
    b.mul(x[1], x[1], C4)
    b.sra(x[1], x[1], 8)                   # F4
    b.mul(x[2], x[5], C2)
    b.sra(x[2], x[2], 8)
    b.mul(x[3], x[7], C6)
    b.sra(x[3], x[3], 8)
    b.add(x[2], x[2], x[3])                # F2
    b.mul(x[3], x[5], C6)
    b.sra(x[3], x[3], 8)
    b.mul(x[4], x[7], C2)
    b.sra(x[4], x[4], 8)
    b.sub(x[3], x[3], x[4])                # F6
    # Odd outputs (direct form, 4 taps each; every product is scaled
    # down individually, matching the packed data path exactly).
    odd_taps = (
        (C1, C3, C5, C7),
        (C3, -C7, -C1, -C5),
        (C5, -C1, C7, C3),
        (C7, -C5, C3, -C1),
    )
    for slot, taps in zip((4, 5, 6, 7), odd_taps):
        out = x[slot]
        b.mul(out, t[0], taps[0])
        b.sra(out, out, 8)
        for j in range(1, 4):
            b.mul(t[4], t[j], abs(taps[j]))
            b.sra(t[4], t[4], 8)
            if taps[j] >= 0:
                b.add(out, out, t[4])
            else:
                b.sub(out, out, t[4])
    return {freq: x[slot] for freq, slot in _FREQ_SLOTS.items()}


def emit_idct_1d_scalar(b: ProgramBuilder, y: List[Reg], t: List[Reg]) -> List[Reg]:
    """Inverse 8-point butterfly; ``y`` holds F0..F7 in natural order,
    returns sample registers x0..x7 in natural order."""
    # Even part -> t[0..3] = E0..E3.
    b.add(t[0], y[0], y[4])
    b.mul(t[0], t[0], C4)
    b.sra(t[0], t[0], 8)                   # ta
    b.sub(t[1], y[0], y[4])
    b.mul(t[1], t[1], C4)
    b.sra(t[1], t[1], 8)                   # tb
    b.mul(t[2], y[2], C2)
    b.sra(t[2], t[2], 8)
    b.mul(t[4], y[6], C6)
    b.sra(t[4], t[4], 8)
    b.add(t[2], t[2], t[4])                # tc
    b.mul(t[3], y[2], C6)
    b.sra(t[3], t[3], 8)
    b.mul(t[4], y[6], C2)
    b.sra(t[4], t[4], 8)
    b.sub(t[3], t[3], t[4])                # td
    b.add(y[0], t[0], t[2])                # E0
    b.sub(y[2], t[0], t[2])                # E3
    b.add(y[4], t[1], t[3])                # E1
    b.sub(y[6], t[1], t[3])                # E2
    # Odd part: O0..O3 from y[1], y[3], y[5], y[7] into t[0..3].
    odd_taps = (
        (C1, C3, C5, C7),
        (C3, -C7, -C1, -C5),
        (C5, -C1, C7, C3),
        (C7, -C5, C3, -C1),
    )
    odd_in = (y[1], y[3], y[5], y[7])
    for k, taps in enumerate(odd_taps):
        b.mul(t[k], odd_in[0], taps[0])
        b.sra(t[k], t[k], 8)
        for j in range(1, 4):
            b.mul(t[4], odd_in[j], abs(taps[j]))
            b.sra(t[4], t[4], 8)
            if taps[j] >= 0:
                b.add(t[k], t[k], t[4])
            else:
                b.sub(t[k], t[k], t[4])
    # Recombine: x_k = (E_k + O_k) >> 2 ; x_{7-k} = (E_k - O_k) >> 2.
    # E0=y[0], E1=y[4], E2=y[6], E3=y[2]; the odd-input registers
    # y[1], y[3], y[5], y[7] are free to hold results, and each E
    # register's difference is computed before its in-place sum.
    b.sub(y[7], y[0], t[0])
    b.sra(y[7], y[7], 2)                   # x7
    b.add(y[0], y[0], t[0])
    b.sra(y[0], y[0], 2)                   # x0
    b.sub(y[1], y[4], t[1])
    b.sra(y[1], y[1], 2)                   # x6
    b.add(y[4], y[4], t[1])
    b.sra(y[4], y[4], 2)                   # x1
    b.sub(y[3], y[6], t[2])
    b.sra(y[3], y[3], 2)                   # x5
    b.add(y[6], y[6], t[2])
    b.sra(y[6], y[6], 2)                   # x2
    b.sub(y[5], y[2], t[3])
    b.sra(y[5], y[5], 2)                   # x4
    b.add(y[2], y[2], t[3])
    b.sra(y[2], y[2], 2)                   # x3
    return [y[0], y[4], y[6], y[2], y[5], y[3], y[1], y[7]]


# ---------------------------------------------------------------------------
# Packed (VIS) 1-D butterflies on 4-column lane groups.
# ---------------------------------------------------------------------------


def emit_pmul(b: ProgramBuilder, dst: Reg, a: Reg, const: Reg, tmp: Reg) -> None:
    """Packed ``(a * c) >> 8`` per 16-bit lane: the emulated multiply.
    Safe when ``dst`` aliases ``a`` (the low partial product is taken
    first into ``tmp``)."""
    b.fmul8ulx16(tmp, a, const)
    b.fmul8sux16(dst, a, const)
    b.fpadd16(dst, dst, tmp)


def emit_fdct_1d_packed(
    b: ProgramBuilder,
    x: List[Reg],
    t: List[Reg],
    consts: Dict[str, Reg],
    ptmp: Reg,
) -> Dict[int, Reg]:
    """Packed forward butterfly; same dataflow as the scalar version."""
    for i in range(4):
        b.fpsub16(t[i], x[i], x[7 - i])
        b.fpadd16(x[i], x[i], x[7 - i])
    b.fpadd16(x[4], x[0], x[3])
    b.fpsub16(x[5], x[0], x[3])
    b.fpadd16(x[6], x[1], x[2])
    b.fpsub16(x[7], x[1], x[2])
    b.fpadd16(x[0], x[4], x[6])
    emit_pmul(b, x[0], x[0], consts["c4"], ptmp)
    b.fpsub16(x[1], x[4], x[6])
    emit_pmul(b, x[1], x[1], consts["c4"], ptmp)
    emit_pmul(b, x[2], x[5], consts["c2"], ptmp)
    emit_pmul(b, x[3], x[7], consts["c6"], ptmp)
    b.fpadd16(x[2], x[2], x[3])
    emit_pmul(b, x[3], x[5], consts["c6"], ptmp)
    emit_pmul(b, x[4], x[7], consts["c2"], ptmp)
    b.fpsub16(x[3], x[3], x[4])
    odd_taps = (
        ("c1", "c3", "c5", "c7"),
        ("c3", "-c7", "-c1", "-c5"),
        ("c5", "-c1", "c7", "c3"),
        ("c7", "-c5", "c3", "-c1"),
    )
    for slot, taps in zip((4, 5, 6, 7), odd_taps):
        out = x[slot]
        emit_pmul(b, out, t[0], consts[taps[0]], ptmp)
        for j in range(1, 4):
            name = taps[j]
            emit_pmul(b, t[4], t[j], consts[name.lstrip("-")], ptmp)
            if name.startswith("-"):
                b.fpsub16(out, out, t[4])
            else:
                b.fpadd16(out, out, t[4])
    return {freq: x[slot] for freq, slot in _FREQ_SLOTS.items()}


def emit_idct_1d_packed(
    b: ProgramBuilder,
    y: List[Reg],
    t: List[Reg],
    consts: Dict[str, Reg],
    ptmp: Reg,
) -> List[Reg]:
    """Packed inverse butterfly; same dataflow as the scalar version.

    Note the packed right-shift-by-2 is realized with a multiply by 64
    (``(v * 64) >> 8 == v >> 2`` exactly, floor semantics)."""
    b.fpadd16(t[0], y[0], y[4])
    emit_pmul(b, t[0], t[0], consts["c4"], ptmp)
    b.fpsub16(t[1], y[0], y[4])
    emit_pmul(b, t[1], t[1], consts["c4"], ptmp)
    emit_pmul(b, t[2], y[2], consts["c2"], ptmp)
    emit_pmul(b, t[4], y[6], consts["c6"], ptmp)
    b.fpadd16(t[2], t[2], t[4])
    emit_pmul(b, t[3], y[2], consts["c6"], ptmp)
    emit_pmul(b, t[4], y[6], consts["c2"], ptmp)
    b.fpsub16(t[3], t[3], t[4])
    b.fpadd16(y[0], t[0], t[2])            # E0
    b.fpsub16(y[2], t[0], t[2])            # E3
    b.fpadd16(y[4], t[1], t[3])            # E1
    b.fpsub16(y[6], t[1], t[3])            # E2
    odd_taps = (
        ("c1", "c3", "c5", "c7"),
        ("c3", "-c7", "-c1", "-c5"),
        ("c5", "-c1", "c7", "c3"),
        ("c7", "-c5", "c3", "-c1"),
    )
    odd_in = (y[1], y[3], y[5], y[7])
    for k, taps in enumerate(odd_taps):
        emit_pmul(b, t[k], odd_in[0], consts[taps[0]], ptmp)
        for j in range(1, 4):
            name = taps[j]
            emit_pmul(b, t[4], odd_in[j], consts[name.lstrip("-")], ptmp)
            if name.startswith("-"):
                b.fpsub16(t[k], t[k], t[4])
            else:
                b.fpadd16(t[k], t[k], t[4])
    # Recombine exactly as the scalar version, with the packed >>2
    # realized as a multiply by 64 (``(v*64) >> 8 == v >> 2``, floor).
    c64 = consts["c64"]
    b.fpsub16(y[7], y[0], t[0])
    emit_pmul(b, y[7], y[7], c64, ptmp)    # x7
    b.fpadd16(y[0], y[0], t[0])
    emit_pmul(b, y[0], y[0], c64, ptmp)    # x0
    b.fpsub16(y[1], y[4], t[1])
    emit_pmul(b, y[1], y[1], c64, ptmp)    # x6
    b.fpadd16(y[4], y[4], t[1])
    emit_pmul(b, y[4], y[4], c64, ptmp)    # x1
    b.fpsub16(y[3], y[6], t[2])
    emit_pmul(b, y[3], y[3], c64, ptmp)    # x5
    b.fpadd16(y[6], y[6], t[2])
    emit_pmul(b, y[6], y[6], c64, ptmp)    # x2
    b.fpsub16(y[5], y[2], t[3])
    emit_pmul(b, y[5], y[5], c64, ptmp)    # x4
    b.fpadd16(y[2], y[2], t[3])
    emit_pmul(b, y[2], y[2], c64, ptmp)    # x3
    return [y[0], y[4], y[6], y[2], y[5], y[3], y[1], y[7]]


# ---------------------------------------------------------------------------
# Quantization (always scalar; uses the non-pipelined divider).
# ---------------------------------------------------------------------------


def emit_quant_value(
    b: ProgramBuilder, v: Reg, p_div: Reg, off: int, p_out: Reg, t1: Reg, t2: Reg
) -> None:
    """q = sign(v) * ((|v| + d/2) // d); store s16 at ``p_out+off``."""
    b.ldhs(t1, p_div, off)
    b.srl(t2, t1, 1)
    negative = b.label("q_neg")
    done = b.label("q_done")
    b.blt(v, R_ZERO, negative, hint=False)
    b.add(v, v, t2)
    b.div(v, v, t1)
    b.j(done)
    b.bind(negative)
    b.sub(v, R_ZERO, v)
    b.add(v, v, t2)
    b.div(v, v, t1)
    b.sub(v, R_ZERO, v)
    b.bind(done)
    b.sth(v, p_out, off)


def emit_dequant_value(
    b: ProgramBuilder, v: Reg, p_div: Reg, off: int, t1: Reg, clip: int = 0
) -> None:
    """v = v * d, optionally saturated to +-clip (the MPEG-2-style
    mismatch-control saturation that also keeps the packed IDCT lanes
    in range)."""
    b.ldhs(t1, p_div, off)
    b.mul(v, v, t1)
    if clip:
        lo = b.label("dq_lo")
        done = b.label("dq_done")
        b.blt(v, -clip, lo, hint=False)
        b.ble(v, clip, done, hint=True)
        b.li(v, clip)
        b.j(done)
        b.bind(lo)
        b.li(v, -clip)
        b.bind(done)


# ---------------------------------------------------------------------------
# Scalar transpose (the VIS pipeline's inter-pass rearrangement).
# ---------------------------------------------------------------------------


def emit_transpose_8x8_s16(b: ProgramBuilder, p_src: Reg, p_dst: Reg) -> None:
    """Transpose an 8x8 s16 block through memory with static offsets.

    This is the subword-rearrangement overhead the packed DCT pays
    between its two 4-column passes."""
    with b.scratch(iregs=1) as t:
        for i in range(8):
            for j in range(8):
                b.ldhs(t, p_src, 2 * (8 * i + j))
                b.sth(t, p_dst, 2 * (8 * j + i))


# ---------------------------------------------------------------------------
# Scalar block pipelines.
# ---------------------------------------------------------------------------


def emit_fdct_quant_block_scalar(
    b: ProgramBuilder,
    p_plane: Reg,
    stride: int,
    p_coef: Reg,
    divisors: str,
    scratch: str,
    input_s16: bool = False,
) -> None:
    """One 8x8 block: plane bytes -> quantized s16 coefficients
    (natural layout).  Column pass, then row pass + quantization.

    With ``input_s16`` the source is a signed 16-bit block (a motion
    residual; ``stride`` is then the byte stride of its rows) and no
    level shift is applied.

    Fully unrolled (footnote-3 style) with static offsets: uses exactly
    13 scratch integer registers (the butterfly's 8+5); table base
    addresses are re-materialized into butterfly temporaries."""
    x = b.iregs(8)
    t = b.iregs(5)

    # Pass 1: transform each column; write s16 to the scratch block.
    for c in range(8):
        for i in range(8):
            if input_s16:
                b.ldhs(x[i], p_plane, i * stride + 2 * c)
            else:
                b.ldb(x[i], p_plane, i * stride + c)
                b.sub(x[i], x[i], 128)
        outs = emit_fdct_1d_scalar(b, x, t)
        b.la(t[0], scratch)
        for freq, reg in outs.items():
            b.sth(reg, t[0], 16 * freq + 2 * c)

    # Pass 2: transform each row; quantize and store.
    for r in range(8):
        b.la(t[0], scratch)
        for i in range(8):
            b.ldhs(x[i], t[0], 16 * r + 2 * i)
        outs = emit_fdct_1d_scalar(b, x, t)
        b.la(t[2], divisors)
        for freq, reg in outs.items():
            emit_quant_value(b, reg, t[2], 16 * r + 2 * freq, p_coef, t[0], t[1])

    b.release(*x, *t)


def emit_dequant_idct_block_scalar(
    b: ProgramBuilder,
    p_coef: Reg,
    divisors: str,
    p_plane: Reg,
    stride: int,
    scratch: str,
    clip: int = 0,
    p_pred: Reg = None,
    pred_stride: int = 0,
) -> None:
    """One 8x8 block: s16 coefficients -> plane bytes.

    Without ``p_pred``: intra reconstruction ``sat(sample + 128)``.
    With ``p_pred``: inter reconstruction ``sat(pred + residual)``.
    Fully unrolled; 13 scratch integer registers."""
    x = b.iregs(8)
    t = b.iregs(5)

    # Pass 1: dequantize + transform each row.
    for r in range(8):
        b.la(t[0], divisors)
        for i in range(8):
            b.ldhs(x[i], p_coef, 16 * r + 2 * i)
            emit_dequant_value(b, x[i], t[0], 16 * r + 2 * i, t[1], clip=clip)
        outs = emit_idct_1d_scalar(b, x, t)
        b.la(t[0], scratch)
        for k, reg in enumerate(outs):
            b.sth(reg, t[0], 16 * r + 2 * k)

    # Pass 2: transform each column; reconstruct bytes.
    for c in range(8):
        b.la(t[0], scratch)
        for i in range(8):
            b.ldhs(x[i], t[0], 16 * i + 2 * c)
        outs = emit_idct_1d_scalar(b, x, t)
        for k, reg in enumerate(outs):
            if p_pred is None:
                b.add(reg, reg, 128)
            else:
                b.ldb(t[0], p_pred, k * pred_stride + c)
                b.add(reg, reg, t[0])
            emit_saturate_byte(b, reg)
            b.stb(reg, p_plane, k * stride + c)

    b.release(*x, *t)


# ---------------------------------------------------------------------------
# Packed (VIS) block pipelines.
# ---------------------------------------------------------------------------


def emit_fdct_quant_block_vis(
    b: ProgramBuilder,
    p_plane: Reg,
    stride: int,
    p_coef: Reg,
    divisors: str,
    scratch: str,
    scratch2: str,
    consts: Dict[str, Reg],
    fz: Reg,
    input_s16: bool = False,
) -> None:
    """One 8x8 block via the packed pipeline.  Output coefficients are
    *transposed*; the caller's zigzag/divisor tables absorb this.

    With ``input_s16`` the source is a signed 16-bit residual block
    (loaded directly as packed lanes, no unpack / level shift).

    Requires GSR.align == 4 (for the high-lane extraction).
    """
    x = b.fregs(8)
    t = b.fregs(5)
    ptmp, raw = b.fregs(2)
    with b.scratch(iregs=2) as (ps, ps2):
        # Pass 1: packed column transform, two 4-column lane groups.
        b.la(ps, scratch)
        for group in (0, 1):
            for i in range(8):
                if input_s16:
                    b.ldf(x[i], p_plane, i * stride + 8 * group)
                    continue
                b.ldf(raw, p_plane, i * stride)
                if group == 0:
                    b.fmul8x16al(x[i], raw, consts["c256"])
                else:
                    b.faligndata(x[i], raw, fz)
                    b.fmul8x16al(x[i], x[i], consts["c256"])
                b.fpsub16(x[i], x[i], consts["c128"])
            outs = emit_fdct_1d_packed(b, x, t, consts, ptmp)
            for freq, reg in outs.items():
                b.stf(reg, ps, 16 * freq + 8 * group)

        # Subword rearrangement between the passes.
        b.la(ps2, scratch2)
        emit_transpose_8x8_s16(b, ps, ps2)

        # Pass 2: packed transform of the transposed data.
        for group in (0, 1):
            for i in range(8):
                b.ldf(x[i], ps2, 16 * i + 8 * group)
            outs = emit_fdct_1d_packed(b, x, t, consts, ptmp)
            for freq, reg in outs.items():
                b.stf(reg, ps, 16 * freq + 8 * group)

    b.release(*x, *t, ptmp, raw)

    # Scalar quantization of the 64 (transposed-layout) coefficients.
    with b.scratch(iregs=5) as (pq, pd, po, v, tq):
        b.la(pq, scratch)
        b.la(pd, divisors)
        b.mov(po, p_coef)
        with b.scratch(iregs=1) as t2:
            with b.loop(0, 64):
                b.ldhs(v, pq)
                emit_quant_value(b, v, pd, 0, po, tq, t2)
                b.add(pq, pq, 2)
                b.add(pd, pd, 2)
                b.add(po, po, 2)


def emit_dequant_idct_block_vis(
    b: ProgramBuilder,
    p_coef: Reg,
    divisors: str,
    p_plane: Reg,
    stride: int,
    scratch: str,
    scratch2: str,
    consts: Dict[str, Reg],
    fz: Reg,
    clip: int = 0,
    p_pred: Reg = None,
    pred_stride: int = 0,
) -> None:
    """One 8x8 block: transposed-layout s16 coefficients -> plane bytes
    via the packed inverse pipeline (output orientation is natural)."""
    x = b.fregs(8)
    t = b.fregs(5)
    ptmp, raw = b.fregs(2)
    # Scalar dequantization into the scratch block.
    with b.scratch(iregs=5) as (pq, pd, po, v, tq):
        b.mov(pq, p_coef)
        b.la(pd, divisors)
        b.la(po, scratch)
        with b.loop(0, 64):
            b.ldhs(v, pq)
            emit_dequant_value(b, v, pd, 0, tq, clip=clip)
            b.sth(v, po)
            b.add(pq, pq, 2)
            b.add(pd, pd, 2)
            b.add(po, po, 2)

    with b.scratch(iregs=2) as (ps, ps2):
        b.la(ps, scratch)
        b.la(ps2, scratch2)
        # Pass 1 (row transform of the natural block, since the data is
        # transposed): results back into scratch2 via the same layout.
        for group in (0, 1):
            for i in range(8):
                b.ldf(x[i], ps, 16 * i + 8 * group)
            outs = emit_idct_1d_packed(b, x, t, consts, ptmp)
            for k, reg in enumerate(outs):
                b.stf(reg, ps2, 16 * k + 8 * group)
        # Rearrange, then the column transform.
        emit_transpose_8x8_s16(b, ps2, ps)
        pp = None
        if p_pred is not None:
            pp = b.ireg()
            b.mov(pp, p_pred)
        for group in (0, 1):
            for i in range(8):
                b.ldf(x[i], ps, 16 * i + 8 * group)
            outs = emit_idct_1d_packed(b, x, t, consts, ptmp)
            for k, reg in enumerate(outs):
                if p_pred is None:
                    b.fpadd16(reg, reg, consts["c128"])
                else:
                    b.ldfw(raw, pp, k * pred_stride + 4 * group)
                    b.fmul8x16al(t[4], raw, consts["c256"])
                    b.fpadd16(reg, reg, t[4])
                b.fpack16(reg, reg)
                b.stfw(reg, p_plane, k * stride + 4 * group)
        if pp is not None:
            b.release(pp)
    b.release(*x, *t, ptmp, raw)
