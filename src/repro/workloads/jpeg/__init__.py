"""The JPEG-style image source-coding benchmarks (Table 1)."""

from .codec import (
    CjpegNpWorkload,
    CjpegWorkload,
    DjpegNpWorkload,
    DjpegWorkload,
)

__all__ = [
    "CjpegNpWorkload",
    "CjpegWorkload",
    "DjpegNpWorkload",
    "DjpegWorkload",
]
