"""Constant tables shared by the JPEG/MPEG assembly codecs.

Builds, as data buffers inside a program under construction:

* zigzag scan tables as byte offsets into an s16 coefficient block
  (the VIS pipeline uses the transposed order, absorbing the packed
  DCT's missing transpose — see :mod:`repro.media.zigzag`),
* quantization divisor tables (natural or transposed layout),
* Huffman encoder arrays (dense code/length per symbol) and decoder
  tables (8-bit lookahead LUT + canonical min/max/valptr fallback,
  the jpeglib decode structure),
* the packed 16-bit constants the VIS transform pipeline loads.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ...asm.builder import ProgramBuilder, Reg
from ...media.dct import C1, C2, C3, C4, C5, C6, C7
from ...media.huffman import AC_TABLE, DC_TABLE, HuffmanTable, table_arrays
from ...media.zigzag import ZIGZAG, ZIGZAG_T
from ..kernels.common import broadcast16


def _u16s(values) -> bytes:
    return struct.pack(f"<{len(values)}H", *[v & 0xFFFF for v in values])


def _s32s(values) -> bytes:
    return struct.pack(f"<{len(values)}i", *values)


def _u8s(values) -> bytes:
    return bytes(v & 0xFF for v in values)


@dataclass
class DecoderTables:
    """Buffer names of one Huffman table's decoder structures."""

    lut_symbol: str
    lut_length: str
    mincode: str
    maxcode: str
    valptr: str
    values: str


def _build_lookahead(table: HuffmanTable):
    """8-bit lookahead LUT: index = next 8 bits; value = (symbol, code
    length) or length 0 when the code is longer than 8 bits."""
    lut_symbol = [0] * 256
    lut_length = [0] * 256
    for symbol, (code, length) in table.codes.items():
        if length > 8:
            continue
        prefix = code << (8 - length)
        for suffix in range(1 << (8 - length)):
            lut_symbol[prefix | suffix] = symbol
            lut_length[prefix | suffix] = length
    return lut_symbol, lut_length


def declare_huffman_tables(
    builder: ProgramBuilder, prefix: str, table: HuffmanTable, num_symbols: int
) -> DecoderTables:
    """Create this table's encoder and decoder buffers; returns the
    decoder buffer names (encoder buffers are ``{prefix}_codes`` /
    ``{prefix}_lens``)."""
    codes, lengths = table_arrays(table, num_symbols)
    builder.buffer(f"{prefix}_codes", 2 * num_symbols, data=_u16s(codes))
    builder.buffer(f"{prefix}_lens", num_symbols, data=_u8s(lengths))
    lut_symbol, lut_length = _build_lookahead(table)
    builder.buffer(f"{prefix}_lut_sym", 512, data=_u16s(lut_symbol))
    builder.buffer(f"{prefix}_lut_len", 256, data=_u8s(lut_length))
    builder.buffer(f"{prefix}_mincode", 4 * 17, data=_s32s(list(table.mincode)))
    builder.buffer(f"{prefix}_maxcode", 4 * 17, data=_s32s(list(table.maxcode)))
    builder.buffer(f"{prefix}_valptr", 2 * 17, data=_u16s(list(table.valptr)))
    builder.buffer(
        f"{prefix}_values", 2 * len(table.values), data=_u16s(list(table.values))
    )
    return DecoderTables(
        lut_symbol=f"{prefix}_lut_sym",
        lut_length=f"{prefix}_lut_len",
        mincode=f"{prefix}_mincode",
        maxcode=f"{prefix}_maxcode",
        valptr=f"{prefix}_valptr",
        values=f"{prefix}_values",
    )


@dataclass
class CodecTables:
    """Names of every table buffer a codec program can reference."""

    zigzag_offsets: str          # u16[64]: byte offsets in coefficient layout
    luma_divisors: str           # s16[64], layout matching the DCT variant
    chroma_divisors: str
    dc: DecoderTables
    ac: DecoderTables
    vis_constants: Dict[str, str]


#: Packed broadcast constants the VIS transform phases load once.
VIS_CONSTANTS = {
    "c1": C1, "c2": C2, "c3": C3, "c4": C4, "c5": C5, "c6": C6, "c7": C7,
    "c64": 64, "c128": 128, "c256": 256,
}


def declare_codec_tables(
    builder: ProgramBuilder,
    luma_divisors: np.ndarray,
    chroma_divisors: np.ndarray,
    use_vis: bool,
) -> CodecTables:
    """Declare all shared tables for a JPEG/MPEG-style codec program.

    ``use_vis`` selects the transposed coefficient layout produced by
    the packed DCT pipeline (transposed zigzag and divisor tables).
    """
    order = ZIGZAG_T if use_vis else ZIGZAG
    builder.buffer("zz_offsets", 128, data=_u16s([2 * int(z) for z in order]))
    luma = luma_divisors.T if use_vis else luma_divisors
    chroma = chroma_divisors.T if use_vis else chroma_divisors
    builder.buffer(
        "luma_div", 128, data=luma.astype("<i2").tobytes()
    )
    builder.buffer(
        "chroma_div", 128, data=chroma.astype("<i2").tobytes()
    )
    dc = declare_huffman_tables(builder, "dc", DC_TABLE, 16)
    ac = declare_huffman_tables(builder, "ac", AC_TABLE, 256)
    vis_constants: Dict[str, str] = {}
    if use_vis:
        for name, value in VIS_CONSTANTS.items():
            buf = f"k_{name}"
            builder.buffer(buf, 8, data=broadcast16(value))
            vis_constants[name] = buf
    return CodecTables(
        zigzag_offsets="zz_offsets",
        luma_divisors="luma_div",
        chroma_divisors="chroma_div",
        dc=dc,
        ac=ac,
        vis_constants=vis_constants,
    )


def load_vis_constants(builder: ProgramBuilder, tables: CodecTables) -> Dict[str, Reg]:
    """Load every packed constant into a dedicated media register."""
    regs: Dict[str, Reg] = {}
    with builder.waive(
        "W-DEADWRITE",
        reason="shared constant pool; a pipeline variant may not "
        "consume every preloaded constant",
    ):
        with builder.scratch(iregs=1) as tmp:
            for name, buf in tables.vis_constants.items():
                reg = builder.freg()
                builder.la(tmp, buf)
                builder.ldf(reg, tmp)
                regs[name] = reg
    return regs
