"""Pixel-phase assembly: color conversion, chroma (de)cimation,
upsampling — scalar and VIS variants, bit-exact against
:mod:`repro.media.colorspace`.

The VIS forward conversion deinterleaves the RGB stream through a
small scratch buffer (the "byte reordering in the color conversion
phase" overhead Section 3.2.3 attributes to JPEG's VIS version), then
runs three packed multiply/accumulate pipelines.  Chroma decimation
stays scalar in both variants: the 2x2 averaging has no contiguous
SIMD shape, and the paper's methodology (criterion 3, Section 2.3.2)
only converts loops whose benefit exceeds the rearrangement overhead.
The inverse conversion exploits even-valued coefficients to fold the
-128 chroma bias into additive constants (see
:mod:`repro.media.colorspace`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ...asm.builder import ProgramBuilder, Reg
from ...media.colorspace import (
    B_FROM_CB,
    CB_COEF,
    CR_COEF,
    G_FROM_CB,
    G_FROM_CR,
    R_FROM_CR,
    Y_COEF,
)
from ..kernels.common import broadcast16, emit_saturate_byte, mul_coeff32


@dataclass
class PixelVisState:
    """Media registers holding the conversion constants."""

    regs: Dict[str, Reg]
    fz: Reg


#: au-format (coefficient in the upper 16 bits of the low word).
_AU_CONSTANTS = {
    "y_r": Y_COEF[0], "y_g": Y_COEF[1], "y_b": Y_COEF[2],
    "cb_r": CB_COEF[0], "cb_g": CB_COEF[1], "cb_b": CB_COEF[2],
    "cr_r": CR_COEF[0], "cr_g": CR_COEF[1], "cr_b": CR_COEF[2],
    "r_cr": R_FROM_CR, "g_cb": G_FROM_CB, "g_cr": G_FROM_CR, "b_cb": B_FROM_CB,
}

#: broadcast16 constants (bias terms).
_BIAS_CONSTANTS = {
    "k128": 128,
    "k256al": 256,
    # folded -128 chroma biases: 128*|c| >> 8 (exact, coefficients even)
    "r_bias": (128 * R_FROM_CR) >> 8,
    "g_bias": (128 * (-G_FROM_CB) + 128 * (-G_FROM_CR)) >> 8,
    "b_bias": (128 * B_FROM_CB) >> 8,
}


def declare_pixel_constants(builder: ProgramBuilder) -> None:
    for name, value in _AU_CONSTANTS.items():
        builder.buffer(f"px_{name}", 4, data=mul_coeff32(value))
    for name, value in _BIAS_CONSTANTS.items():
        builder.buffer(f"px_{name}", 8, data=broadcast16(value))
    builder.buffer("px_gather", 16)


#: constant subsets by conversion direction (keeps the media register
#: file within budget when pixel and transform phases interleave).
FORWARD_NAMES = (
    "y_r", "y_g", "y_b", "cb_r", "cb_g", "cb_b", "cr_r", "cr_g", "cr_b",
    "k128",
)
INVERSE_NAMES = (
    "r_cr", "g_cb", "g_cr", "b_cb", "r_bias", "g_bias", "b_bias", "k256al",
)


def load_pixel_constants(
    builder: ProgramBuilder, names=None
) -> PixelVisState:
    """Load the requested constants (default: all) into media registers."""
    if names is None:
        names = tuple(_AU_CONSTANTS) + tuple(_BIAS_CONSTANTS)
    regs: Dict[str, Reg] = {}
    with builder.waive(
        "W-DEADWRITE",
        reason="shared constant pool; a pipeline variant may not "
        "consume every preloaded constant",
    ):
        with builder.scratch(iregs=1) as tmp:
            for name in names:
                reg = builder.freg()
                builder.la(tmp, f"px_{name}")
                if name in _AU_CONSTANTS:
                    builder.ldfw(reg, tmp)
                else:
                    builder.ldf(reg, tmp)
                regs[name] = reg
        fz = builder.freg()
        builder.fzero(fz)
    return PixelVisState(regs=regs, fz=fz)


def release_pixel_constants(builder: ProgramBuilder, state: PixelVisState) -> None:
    builder.release(*state.regs.values(), state.fz)


# ---------------------------------------------------------------------------
# Forward conversion: interleaved RGB -> Y/Cb/Cr planes.
# ---------------------------------------------------------------------------


def _emit_mul_round_scalar(b, out: Reg, src: Reg, coeff: int) -> None:
    """out = (src*coeff + 0x80) >> 8 (arithmetic shift)."""
    b.mul(out, src, coeff)
    b.add(out, out, 0x80)
    b.sra(out, out, 8)


def emit_rgb_to_ycbcr_scalar(
    b: ProgramBuilder,
    p_rgb: Reg,
    p_y: Reg,
    p_cb: Reg,
    p_cr: Reg,
    region_w: int,
    region_h: int,
    rgb_width: int,
    plane_stride: int = None,
) -> None:
    """Convert a ``region_w x region_h`` window.  The RGB source has
    ``rgb_width`` pixels per row (stride ``3*rgb_width``); the output
    planes have ``plane_stride`` (default ``region_w``).  Pointer
    registers are preserved."""
    plane_stride = region_w if plane_stride is None else plane_stride
    ps, py, pcb, pcr = b.iregs(4)
    b.mov(ps, p_rgb)
    b.mov(py, p_y)
    b.mov(pcb, p_cb)
    b.mov(pcr, p_cr)
    r, g, bl, acc, t = b.iregs(5)
    with b.loop(0, region_h):
        with b.loop(0, region_w):
            b.ldb(r, ps, 0)
            b.ldb(g, ps, 1)
            b.ldb(bl, ps, 2)
            # Y
            _emit_mul_round_scalar(b, acc, r, Y_COEF[0])
            _emit_mul_round_scalar(b, t, g, Y_COEF[1])
            b.add(acc, acc, t)
            _emit_mul_round_scalar(b, t, bl, Y_COEF[2])
            b.add(acc, acc, t)
            emit_saturate_byte(b, acc)
            b.stb(acc, py)
            # Cb
            _emit_mul_round_scalar(b, acc, r, CB_COEF[0])
            _emit_mul_round_scalar(b, t, g, CB_COEF[1])
            b.add(acc, acc, t)
            _emit_mul_round_scalar(b, t, bl, CB_COEF[2])
            b.add(acc, acc, t)
            b.add(acc, acc, 128)
            emit_saturate_byte(b, acc)
            b.stb(acc, pcb)
            # Cr
            _emit_mul_round_scalar(b, acc, r, CR_COEF[0])
            _emit_mul_round_scalar(b, t, g, CR_COEF[1])
            b.add(acc, acc, t)
            _emit_mul_round_scalar(b, t, bl, CR_COEF[2])
            b.add(acc, acc, t)
            b.add(acc, acc, 128)
            emit_saturate_byte(b, acc)
            b.stb(acc, pcr)
            b.add(ps, ps, 3)
            b.add(py, py, 1)
            b.add(pcb, pcb, 1)
            b.add(pcr, pcr, 1)
        b.add(ps, ps, 3 * (rgb_width - region_w))
        b.add(py, py, plane_stride - region_w)
        b.add(pcb, pcb, plane_stride - region_w)
        b.add(pcr, pcr, plane_stride - region_w)
    b.release(ps, py, pcb, pcr, r, g, bl, acc, t)


def emit_rgb_to_ycbcr_vis(
    b: ProgramBuilder,
    state: PixelVisState,
    p_rgb: Reg,
    p_y: Reg,
    p_cb: Reg,
    p_cr: Reg,
    region_w: int,
    region_h: int,
    rgb_width: int,
    plane_stride: int = None,
) -> None:
    """VIS forward conversion, 4 pixels per group.  Requires
    ``region_w % 4 == 0`` and GSR scale 7."""
    if region_w % 4:
        raise ValueError("VIS color conversion needs width % 4 == 0")
    plane_stride = region_w if plane_stride is None else plane_stride
    k = state.regs
    ps, py, pcb, pcr, pg, t = b.iregs(6)
    b.mov(ps, p_rgb)
    b.mov(py, p_y)
    b.mov(pcb, p_cb)
    b.mov(pcr, p_cr)
    fr, fg, fb, acc, prod = b.fregs(5)
    with b.loop(0, region_h):
        with b.loop(0, region_w // 4):
            # Deinterleave 4 RGB pixels through the gather buffer
            # (subword-reordering overhead).
            b.la(pg, "px_gather")
            for j in range(4):
                b.ldb(t, ps, 3 * j + 0)
                b.stb(t, pg, j)
                b.ldb(t, ps, 3 * j + 1)
                b.stb(t, pg, 4 + j)
                b.ldb(t, ps, 3 * j + 2)
                b.stb(t, pg, 8 + j)
            b.ldfw(fr, pg, 0)
            b.ldfw(fg, pg, 4)
            b.ldfw(fb, pg, 8)
            for plane_ptr, coeffs, biased in (
                (py, ("y_r", "y_g", "y_b"), False),
                (pcb, ("cb_r", "cb_g", "cb_b"), True),
                (pcr, ("cr_r", "cr_g", "cr_b"), True),
            ):
                b.fmul8x16au(acc, fr, k[coeffs[0]])
                b.fmul8x16au(prod, fg, k[coeffs[1]])
                b.fpadd16(acc, acc, prod)
                b.fmul8x16au(prod, fb, k[coeffs[2]])
                b.fpadd16(acc, acc, prod)
                if biased:
                    b.fpadd16(acc, acc, k["k128"])
                b.fpack16(acc, acc)
                b.stfw(acc, plane_ptr)
            b.add(ps, ps, 12)
            b.add(py, py, 4)
            b.add(pcb, pcb, 4)
            b.add(pcr, pcr, 4)
        b.add(ps, ps, 3 * (rgb_width - region_w))
        b.add(py, py, plane_stride - region_w)
        b.add(pcb, pcb, plane_stride - region_w)
        b.add(pcr, pcr, plane_stride - region_w)
    b.release(ps, py, pcb, pcr, pg, t)
    b.release(fr, fg, fb, acc, prod)


# ---------------------------------------------------------------------------
# Chroma decimation (scalar in both variants).
# ---------------------------------------------------------------------------


def emit_decimate_region(
    b: ProgramBuilder,
    p_src: Reg,
    p_dst: Reg,
    out_w: int,
    out_h: int,
    src_stride: int,
    dst_stride: int,
) -> None:
    """2x2 rounded average over a ``2*out_w x 2*out_h`` source window."""
    ps, pd, a, t = b.iregs(4)
    b.mov(ps, p_src)
    b.mov(pd, p_dst)
    with b.loop(0, out_h):
        with b.loop(0, out_w):
            b.ldb(a, ps, 0)
            b.ldb(t, ps, 1)
            b.add(a, a, t)
            b.ldb(t, ps, src_stride)
            b.add(a, a, t)
            b.ldb(t, ps, src_stride + 1)
            b.add(a, a, t)
            b.add(a, a, 2)
            b.srl(a, a, 2)
            b.stb(a, pd)
            b.add(ps, ps, 2)
            b.add(pd, pd, 1)
        b.add(ps, ps, 2 * src_stride - 2 * out_w)
        b.add(pd, pd, dst_stride - out_w)
    b.release(ps, pd, a, t)


# ---------------------------------------------------------------------------
# Upsampling (pixel replication) and inverse conversion (decode side).
# ---------------------------------------------------------------------------


def emit_upsample_plane(
    b: ProgramBuilder,
    p_src: Reg,
    p_dst: Reg,
    src_w: int,
    src_h: int,
    dst_stride: int,
    use_vis: bool,
    fz: Reg = None,
) -> None:
    """Replicate each source pixel 2x2 into the destination plane."""
    ps, pd, t = b.iregs(3)
    b.mov(ps, p_src)
    b.mov(pd, p_dst)
    if use_vis:
        if src_w % 8:
            raise ValueError("VIS upsample needs width % 8 == 0")
        fa, lo, hi = b.fregs(3)
        with b.loop(0, src_h):
            with b.loop(0, src_w // 8):
                b.ldf(fa, ps)
                b.fpmerge(lo, fa, fa)          # a0 a0 a1 a1 a2 a2 a3 a3
                b.faligndata(hi, fa, fz)       # expose bytes 4..7
                b.fpmerge(hi, hi, hi)
                for offset, reg in ((0, lo), (8, hi)):
                    b.stf(reg, pd, offset)
                    b.stf(reg, pd, dst_stride + offset)
                b.add(ps, ps, 8)
                b.add(pd, pd, 16)
            b.add(pd, pd, 2 * dst_stride - 2 * src_w)
        b.release(fa, lo, hi)
    else:
        with b.loop(0, src_h):
            with b.loop(0, src_w):
                b.ldb(t, ps)
                b.stb(t, pd, 0)
                b.stb(t, pd, 1)
                b.stb(t, pd, dst_stride)
                b.stb(t, pd, dst_stride + 1)
                b.add(ps, ps, 1)
                b.add(pd, pd, 2)
            b.add(pd, pd, 2 * dst_stride - 2 * src_w)
    b.release(ps, pd, t)


def emit_ycbcr_to_rgb_scalar(
    b: ProgramBuilder,
    p_y: Reg,
    p_cb: Reg,
    p_cr: Reg,
    p_rgb: Reg,
    region_w: int,
    region_h: int,
    plane_stride: int = None,
    rgb_width: int = None,
    reuse_plane_pointers: bool = False,
) -> None:
    """Inverse conversion of a region of full-resolution planes into an
    interleaved RGB window (``rgb_width`` pixels per output row).

    With ``reuse_plane_pointers`` the plane pointer registers are used
    (and clobbered) directly — callers in register-tight loops pass
    scratch pointers they re-materialize anyway."""
    plane_stride = region_w if plane_stride is None else plane_stride
    rgb_width = region_w if rgb_width is None else rgb_width
    if reuse_plane_pointers:
        py, pcb, pcr = p_y, p_cb, p_cr
        pd = b.ireg()
    else:
        py, pcb, pcr, pd = b.iregs(4)
        b.mov(py, p_y)
        b.mov(pcb, p_cb)
        b.mov(pcr, p_cr)
    b.mov(pd, p_rgb)
    yv, cbv, crv, acc, t = b.iregs(5)
    with b.loop(0, region_h):
      with b.loop(0, region_w):
        b.ldb(yv, py)
        b.ldb(cbv, pcb)
        b.ldb(crv, pcr)
        b.sub(cbv, cbv, 128)
        b.sub(crv, crv, 128)
        # R
        _emit_mul_round_scalar(b, acc, crv, R_FROM_CR)
        b.add(acc, acc, yv)
        emit_saturate_byte(b, acc)
        b.stb(acc, pd, 0)
        # G
        _emit_mul_round_scalar(b, acc, cbv, G_FROM_CB)
        _emit_mul_round_scalar(b, t, crv, G_FROM_CR)
        b.add(acc, acc, t)
        b.add(acc, acc, yv)
        emit_saturate_byte(b, acc)
        b.stb(acc, pd, 1)
        # B
        _emit_mul_round_scalar(b, acc, cbv, B_FROM_CB)
        b.add(acc, acc, yv)
        emit_saturate_byte(b, acc)
        b.stb(acc, pd, 2)
        b.add(py, py, 1)
        b.add(pcb, pcb, 1)
        b.add(pcr, pcr, 1)
        b.add(pd, pd, 3)
      b.add(py, py, plane_stride - region_w)
      b.add(pcb, pcb, plane_stride - region_w)
      b.add(pcr, pcr, plane_stride - region_w)
      b.add(pd, pd, 3 * (rgb_width - region_w))
    if reuse_plane_pointers:
        b.release(pd, yv, cbv, crv, acc, t)
    else:
        b.release(py, pcb, pcr, pd, yv, cbv, crv, acc, t)


def emit_ycbcr_to_rgb_vis(
    b: ProgramBuilder,
    state: PixelVisState,
    p_y: Reg,
    p_cb: Reg,
    p_cr: Reg,
    p_rgb: Reg,
    region_w: int,
    region_h: int,
    plane_stride: int = None,
    rgb_width: int = None,
    reuse_plane_pointers: bool = False,
) -> None:
    """VIS inverse conversion, 4 pixels per group, re-interleaving the
    RGB output through the gather buffer.  Uses the folded -128 bias
    identity (even coefficients)."""
    if region_w % 4:
        raise ValueError("VIS inverse conversion needs width % 4 == 0")
    plane_stride = region_w if plane_stride is None else plane_stride
    rgb_width = region_w if rgb_width is None else rgb_width
    k = state.regs
    if reuse_plane_pointers:
        py, pcb, pcr = p_y, p_cb, p_cr
        pd, pg, t = b.iregs(3)
    else:
        py, pcb, pcr, pd, pg, t = b.iregs(6)
        b.mov(py, p_y)
        b.mov(pcb, p_cb)
        b.mov(pcr, p_cr)
    b.mov(pd, p_rgb)
    fy, fcb, fcr, acc, prod = b.fregs(5)
    with b.loop(0, region_h):
      with b.loop(0, region_w // 4):
        b.ldfw(fy, py)
        b.ldfw(fcb, pcb)
        b.ldfw(fcr, pcr)
        b.fmul8x16al(fy, fy, k["k256al"])      # Y as exact 16-bit lanes
        b.la(pg, "px_gather")
        # R = Y + ((cr*358 + 0x80) >> 8) - 179
        b.fmul8x16au(acc, fcr, k["r_cr"])
        b.fpadd16(acc, acc, fy)
        b.fpsub16(acc, acc, k["r_bias"])
        b.fpack16(acc, acc)
        b.stfw(acc, pg, 0)
        # G = Y + ((cb*-88 + 0x80) >> 8) + ((cr*-182 + 0x80) >> 8) + 135
        b.fmul8x16au(acc, fcb, k["g_cb"])
        b.fmul8x16au(prod, fcr, k["g_cr"])
        b.fpadd16(acc, acc, prod)
        b.fpadd16(acc, acc, fy)
        b.fpadd16(acc, acc, k["g_bias"])
        b.fpack16(acc, acc)
        b.stfw(acc, pg, 4)
        # B = Y + ((cb*454 + 0x80) >> 8) - 227
        b.fmul8x16au(acc, fcb, k["b_cb"])
        b.fpadd16(acc, acc, fy)
        b.fpsub16(acc, acc, k["b_bias"])
        b.fpack16(acc, acc)
        b.stfw(acc, pg, 8)
        # Re-interleave to RGB (reordering overhead again).
        for j in range(4):
            b.ldb(t, pg, j)
            b.stb(t, pd, 3 * j + 0)
            b.ldb(t, pg, 4 + j)
            b.stb(t, pd, 3 * j + 1)
            b.ldb(t, pg, 8 + j)
            b.stb(t, pd, 3 * j + 2)
        b.add(py, py, 4)
        b.add(pcb, pcb, 4)
        b.add(pcr, pcr, 4)
        b.add(pd, pd, 12)
      b.add(py, py, plane_stride - region_w)
      b.add(pcb, pcb, plane_stride - region_w)
      b.add(pcr, pcr, plane_stride - region_w)
      b.add(pd, pd, 3 * (rgb_width - region_w))
    if reuse_plane_pointers:
        b.release(pd, pg, t)
    else:
        b.release(py, pcb, pcr, pd, pg, t)
    b.release(fy, fcb, fcr, acc, prod)
