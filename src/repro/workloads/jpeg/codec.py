"""The four JPEG benchmarks of Table 1: cjpeg / djpeg (progressive)
and cjpeg-np / djpeg-np (non-progressive).

Structure mirrors the paper's characterization (Sections 2.1.2, 4.1):

* the progressive codecs run whole-image phases — color conversion,
  chroma decimation, all-blocks FDCT+quant, then one Huffman scan per
  spectral band, each re-traversing the image-sized coefficient
  buffer (the multi-pass working set behind their cache sensitivity);
* the non-progressive codecs run a blocked pipeline — every 16x16 MCU
  is converted, decimated, transformed and entropy-coded (or the
  reverse) before the next MCU is touched, keeping the working set a
  few hundred bytes (and the benchmarks cache-size-insensitive).

Every variant's output is validated bit-exactly against
:mod:`repro.media.jpeg`: encoders must produce the reference byte
stream, decoders the reference RGB image.
"""

from __future__ import annotations

import numpy as np

from ...asm.builder import ProgramBuilder, Reg
from ...media import jpeg
from ...media.dct import BASE_CHROMA_QUANT, BASE_LUMA_QUANT, divisors_for
from ...media.images import synthetic_image
from ..base import BuiltWorkload, Variant, Workload, expect_equal
from .entropy import (
    emit_decode_block,
    emit_encode_block,
    emit_entropy_subroutines,
    emit_flush_encoder,
    make_entropy_unit,
)
from .pixel import (
    FORWARD_NAMES,
    INVERSE_NAMES,
    declare_pixel_constants,
    emit_decimate_region,
    emit_rgb_to_ycbcr_scalar,
    emit_rgb_to_ycbcr_vis,
    emit_upsample_plane,
    emit_ycbcr_to_rgb_scalar,
    emit_ycbcr_to_rgb_vis,
    load_pixel_constants,
    release_pixel_constants,
)
from .tables import declare_codec_tables, load_vis_constants
from .transform import (
    emit_dequant_idct_block_scalar,
    emit_dequant_idct_block_vis,
    emit_fdct_quant_block_scalar,
    emit_fdct_quant_block_vis,
)

QUALITY = 75


def _store_constant_bytes(b: ProgramBuilder, ptr: Reg, data: bytes, offset: int = 0):
    with b.scratch(iregs=1) as t:
        for i, byte in enumerate(data):
            b.li(t, byte)
            b.stb(t, ptr, offset + i)


def _manual_loop(b: ProgramBuilder, count: int):
    """Context manager: counted loop using only one register (the
    bound is an immediate materialized into the assembler temp)."""
    from contextlib import contextmanager

    @contextmanager
    def _loop():
        ctr = b.ireg()
        b.li(ctr, 0)
        top = b.here("mloop")
        yield ctr
        b.add(ctr, ctr, 1)
        b.blt(ctr, count, top, hint=True)
        b.release(ctr)

    return _loop()


class _JpegWorkload(Workload):
    group = "image source coding"
    progressive = True
    encoder = True

    def build(self, variant: Variant, scale, **_options) -> BuiltWorkload:
        width, height = scale.jpeg_width, scale.jpeg_height
        rgb = synthetic_image(width, height, 3, seed=16)
        enc = jpeg.encode(rgb, QUALITY, progressive=self.progressive)
        use_vis = variant.uses_vis
        b = ProgramBuilder(f"{self.name}-{variant.value}")

        luma_div = divisors_for(BASE_LUMA_QUANT, QUALITY)
        chroma_div = divisors_for(BASE_CHROMA_QUANT, QUALITY)
        tables = declare_codec_tables(b, luma_div, chroma_div, use_vis)
        declare_pixel_constants(b)
        b.buffer("blk_scratch", 128)
        b.buffer("blk_scratch2", 128)

        if self.encoder:
            self._emit_encoder(b, rgb, width, height, use_vis, tables,
                               variant.uses_prefetch)
            expected = np.frombuffer(enc.data, dtype=np.uint8)

            def validate(machine) -> None:
                got = machine.read_buffer_array("out_stream")[: len(enc.data)]
                expect_equal(got, expected, f"{self.name} byte stream")
        else:
            dec = jpeg.decode(enc.data)
            self._emit_decoder(b, enc.data, width, height, use_vis, tables,
                               variant.uses_prefetch)
            expected = dec.rgb.reshape(-1)

            def validate(machine) -> None:
                got = machine.read_buffer_array("rgb_out")
                expect_equal(got, expected, f"{self.name} decoded image")

        return BuiltWorkload(
            name=self.name,
            variant=variant,
            program=b.build(),
            validate=validate,
            details={"image": f"{width}x{height}", "quality": QUALITY,
                     "stream_bytes": len(enc.data)},
        )

    # ------------------------------------------------------------------
    # Whole-image (progressive) pipelines.
    # ------------------------------------------------------------------

    def _component_geometry(self, width, height):
        return {
            "y": (width, height, "luma_div"),
            "cb": (width // 2, height // 2, "chroma_div"),
            "cr": (width // 2, height // 2, "chroma_div"),
        }

    def _emit_encoder(self, b, rgb, width, height, use_vis, tables, prefetch):
        ent = make_entropy_unit(b)
        b.buffer("rgb_in", rgb.size, data=rgb.tobytes())
        b.buffer("y_plane", width * height)
        b.buffer("cb_full", width * height)
        b.buffer("cr_full", width * height)
        b.buffer("cb_plane", (width // 2) * (height // 2))
        b.buffer("cr_plane", (width // 2) * (height // 2))
        for comp, (cw, ch, _d) in self._component_geometry(width, height).items():
            b.buffer(f"coef_{comp}", (cw // 8) * (ch // 8) * 128)
        b.buffer("out_stream", max(4096, rgb.size) + 64)
        b.buffer("out_len", 8)
        emit_entropy_subroutines(b, ent, tables, encoder=True, decoder=False)
        if use_vis:
            b.set_gsr(align=4, scale=7)

        # --- pixel phases ------------------------------------------------
        b.marker("color conversion")
        with b.scratch(iregs=4) as (p_rgb, p_y, p_cb, p_cr):
            b.la(p_rgb, "rgb_in")
            b.la(p_y, "y_plane")
            b.la(p_cb, "cb_full")
            b.la(p_cr, "cr_full")
            if use_vis:
                state = load_pixel_constants(b, FORWARD_NAMES)
                emit_rgb_to_ycbcr_vis(b, state, p_rgb, p_y, p_cb, p_cr,
                                      width, height, width)
                release_pixel_constants(b, state)
            else:
                emit_rgb_to_ycbcr_scalar(b, p_rgb, p_y, p_cb, p_cr,
                                         width, height, width)
        b.marker("chroma decimation")
        with b.scratch(iregs=2) as (p_src, p_dst):
            for full, half in (("cb_full", "cb_plane"), ("cr_full", "cr_plane")):
                b.la(p_src, full)
                b.la(p_dst, half)
                emit_decimate_region(b, p_src, p_dst, width // 2, height // 2,
                                     width, width // 2)

        # --- transform phase ----------------------------------------------
        b.marker("fdct + quantization")
        consts = load_vis_constants(b, tables) if use_vis else None
        fz = None
        if use_vis:
            fz = b.freg()
            b.fzero(fz)
        geometry = self._component_geometry(width, height)
        with b.scratch(iregs=3) as (p_row, p_blk, p_coef):
            for comp, (cw, ch, div) in geometry.items():
                plane = "y_plane" if comp == "y" else f"{comp}_plane"
                b.la(p_row, plane)
                b.la(p_coef, f"coef_{comp}")
                with _manual_loop(b, ch // 8):
                    b.mov(p_blk, p_row)
                    with _manual_loop(b, cw // 8):
                        if prefetch:
                            # next block row of the plane + the coef
                            # buffer write stream (Section 2.3.3)
                            b.pf(p_blk, 8 * cw)
                            b.pf(p_coef, 256)
                        if use_vis:
                            emit_fdct_quant_block_vis(
                                b, p_blk, cw, p_coef, div,
                                "blk_scratch", "blk_scratch2", consts, fz)
                        else:
                            emit_fdct_quant_block_scalar(
                                b, p_blk, cw, p_coef, div, "blk_scratch")
                        b.add(p_blk, p_blk, 8)
                        b.add(p_coef, p_coef, 128)
                    b.add(p_row, p_row, 8 * cw)
        if use_vis:
            b.release(*consts.values(), fz)

        # --- entropy phase ---------------------------------------------------
        b.marker("entropy coding")
        header = jpeg.MAGIC + np.array(
            [width, height], dtype="<u2"
        ).tobytes() + bytes([QUALITY, 1 if self.progressive else 0,
                             len(jpeg.scan_list(self.progressive)), 0])
        with b.scratch(iregs=1) as p_out:
            b.la(p_out, "out_stream")
            _store_constant_bytes(b, p_out, header)
        ent.reset_encoder(b, "out_stream", offset=12)
        self._emit_scans_encode(b, ent, width, height, geometry, prefetch)
        with b.scratch(iregs=2) as (p_out, t):
            b.la(p_out, "out_stream")
            b.sub(t, ent.stream, p_out)
            b.la(p_out, "out_len")
            b.stw(t, p_out)

    def _emit_scans_encode(self, b, ent, width, height, geometry,
                           prefetch=False):
        comp_names = {jpeg.COMP_Y: "y", jpeg.COMP_CB: "cb", jpeg.COMP_CR: "cr"}
        for comp, ss, se in jpeg.scan_list(True):
            name = comp_names[comp]
            cw, ch, _div = geometry[name]
            nblocks = (cw // 8) * (ch // 8)
            hp, pred, p_coef = b.iregs(3)
            b.mov(hp, ent.stream)
            _store_constant_bytes(b, hp, bytes([comp, ss, se, 0]))
            b.add(ent.stream, ent.stream, 8)
            b.li(ent.bitbuf, 0)
            b.li(ent.bitcnt, 0)
            b.li(pred, 0)
            b.la(p_coef, f"coef_{name}")
            with _manual_loop(b, nblocks):
                if prefetch:
                    b.pf(p_coef, 256)
                emit_encode_block(b, ent, p_coef, ss, se, pred)
                b.add(p_coef, p_coef, 128)
            emit_flush_encoder(b, ent)
            with b.scratch(iregs=1) as t:
                b.sub(t, ent.stream, hp)
                b.sub(t, t, 8)
                b.stw(t, hp, 4)
            b.release(hp, pred, p_coef)

    def _emit_decoder(self, b, data, width, height, use_vis, tables, prefetch):
        ent = make_entropy_unit(b)
        b.buffer("in_stream", len(data) + 16, data=data)
        for comp, (cw, ch, _d) in self._component_geometry(width, height).items():
            b.buffer(f"coef_{comp}", (cw // 8) * (ch // 8) * 128)
        b.buffer("y_plane", width * height)
        b.buffer("cb_plane", (width // 2) * (height // 2))
        b.buffer("cr_plane", (width // 2) * (height // 2))
        b.buffer("cb_full", width * height)
        b.buffer("cr_full", width * height)
        b.buffer("rgb_out", width * height * 3)
        emit_entropy_subroutines(b, ent, tables, encoder=False, decoder=True)
        if use_vis:
            b.set_gsr(align=4, scale=7)
        geometry = self._component_geometry(width, height)
        comp_names = {jpeg.COMP_Y: "y", jpeg.COMP_CB: "cb", jpeg.COMP_CR: "cr"}

        b.marker("entropy decoding")
        p_in = b.ireg()
        b.la(p_in, "in_stream", offset=12)
        for comp, ss, se in jpeg.scan_list(True):
            name = comp_names[comp]
            cw, ch, _div = geometry[name]
            nblocks = (cw // 8) * (ch // 8)
            slen, pred, p_coef = b.iregs(3)
            b.ldw(slen, p_in, 4)
            b.add(ent.stream, p_in, 8)
            b.li(ent.bitbuf, 0)
            b.li(ent.bitcnt, 0)
            b.li(pred, 0)
            b.la(p_coef, f"coef_{name}")
            with _manual_loop(b, nblocks):
                if prefetch:
                    b.pf(p_coef, 256)
                    b.pf(ent.stream, 128)
                emit_decode_block(b, ent, p_coef, ss, se, pred)
                b.add(p_coef, p_coef, 128)
            with b.waive(
                "W-DEADWRITE",
                reason="uniform per-component epilogue; the last "
                "component's stream-pointer advance is unread",
            ):
                b.add(p_in, p_in, 8)
                b.add(p_in, p_in, slen)
            b.release(slen, pred, p_coef)
        b.release(p_in)

        b.marker("dequantization + idct")
        consts = load_vis_constants(b, tables) if use_vis else None
        fz = None
        if use_vis:
            fz = b.freg()
            b.fzero(fz)
        with b.scratch(iregs=3) as (p_row, p_blk, p_coef):
            for comp, (cw, ch, div) in geometry.items():
                plane = "y_plane" if comp == "y" else f"{comp}_plane"
                b.la(p_row, plane)
                b.la(p_coef, f"coef_{comp}")
                with _manual_loop(b, ch // 8):
                    b.mov(p_blk, p_row)
                    with _manual_loop(b, cw // 8):
                        if prefetch:
                            b.pf(p_coef, 256)
                            b.pf(p_blk, 8 * cw)
                        if use_vis:
                            emit_dequant_idct_block_vis(
                                b, p_coef, div, p_blk, cw,
                                "blk_scratch", "blk_scratch2", consts, fz)
                        else:
                            emit_dequant_idct_block_scalar(
                                b, p_coef, div, p_blk, cw, "blk_scratch")
                        b.add(p_blk, p_blk, 8)
                        b.add(p_coef, p_coef, 128)
                    b.add(p_row, p_row, 8 * cw)
        if use_vis:
            b.release(*consts.values())

        b.marker("chroma upsampling")
        with b.scratch(iregs=2) as (p_src, p_dst):
            for half, full in (("cb_plane", "cb_full"), ("cr_plane", "cr_full")):
                b.la(p_src, half)
                b.la(p_dst, full)
                emit_upsample_plane(b, p_src, p_dst, width // 2, height // 2,
                                    width, use_vis, fz=fz)
        if use_vis:
            b.release(fz)

        b.marker("color conversion")
        with b.scratch(iregs=4) as (p_y, p_cb, p_cr, p_rgb):
            b.la(p_y, "y_plane")
            b.la(p_cb, "cb_full")
            b.la(p_cr, "cr_full")
            b.la(p_rgb, "rgb_out")
            if use_vis:
                state = load_pixel_constants(b, INVERSE_NAMES)
                emit_ycbcr_to_rgb_vis(b, state, p_y, p_cb, p_cr, p_rgb,
                                      width, height)
                release_pixel_constants(b, state)
            else:
                emit_ycbcr_to_rgb_scalar(b, p_y, p_cb, p_cr, p_rgb,
                                         width, height)


class CjpegWorkload(_JpegWorkload):
    name = "cjpeg"
    description = "JPEG progressive encoding"
    progressive = True
    encoder = True


class DjpegWorkload(_JpegWorkload):
    name = "djpeg"
    description = "JPEG progressive decoding"
    progressive = True
    encoder = False


class _JpegNpWorkload(_JpegWorkload):
    """Blocked (per-MCU) non-progressive pipeline."""

    progressive = False

    def _emit_encoder(self, b, rgb, width, height, use_vis, tables, prefetch):
        ent = make_entropy_unit(b)
        b.buffer("rgb_in", rgb.size, data=rgb.tobytes())
        b.buffer("mcu_y", 256)
        b.buffer("mcu_cbf", 256)
        b.buffer("mcu_crf", 256)
        b.buffer("mcu_cb", 64)
        b.buffer("mcu_cr", 64)
        b.buffer("mcu_coef", 768)
        b.buffer("out_stream", max(4096, rgb.size) + 64)
        b.buffer("out_len", 8)
        emit_entropy_subroutines(b, ent, tables, encoder=True, decoder=False)
        if use_vis:
            b.set_gsr(align=4, scale=7)
        consts = load_vis_constants(b, tables) if use_vis else None
        fz = None
        if use_vis:
            fz = b.freg()
            b.fzero(fz)

        header = jpeg.MAGIC + np.array(
            [width, height], dtype="<u2"
        ).tobytes() + bytes([QUALITY, 0, 1, 0])
        with b.scratch(iregs=1) as p_out:
            b.la(p_out, "out_stream")
            _store_constant_bytes(b, p_out, header)
            _store_constant_bytes(
                b, p_out, bytes([jpeg.COMP_INTERLEAVED, 0, 63, 0]), offset=12
            )
        ent.reset_encoder(b, "out_stream", offset=20)

        b.marker("blocked MCU pipeline")
        pred_y, pred_cb, pred_cr = b.iregs(3)
        b.li(pred_y, 0)
        b.li(pred_cb, 0)
        b.li(pred_cr, 0)
        p_rgb = b.ireg()
        b.la(p_rgb, "rgb_in")
        mcus_x, mcus_y = width // 16, height // 16
        with _manual_loop(b, mcus_y):
            with _manual_loop(b, mcus_x):
                if prefetch:
                    b.pf(p_rgb, 48)
                    b.pf(p_rgb, 48 + 64)
                # pixel phases for one MCU
                with b.scratch(iregs=3) as (p_y, p_cb, p_cr):
                    b.la(p_y, "mcu_y")
                    b.la(p_cb, "mcu_cbf")
                    b.la(p_cr, "mcu_crf")
                    if use_vis:
                        state = load_pixel_constants(b, FORWARD_NAMES)
                        emit_rgb_to_ycbcr_vis(b, state, p_rgb, p_y, p_cb,
                                              p_cr, 16, 16, width, 16)
                        release_pixel_constants(b, state)
                    else:
                        emit_rgb_to_ycbcr_scalar(b, p_rgb, p_y, p_cb, p_cr,
                                                 16, 16, width, 16)
                with b.scratch(iregs=2) as (p_src, p_dst):
                    for full, half in (("mcu_cbf", "mcu_cb"), ("mcu_crf", "mcu_cr")):
                        b.la(p_src, full)
                        b.la(p_dst, half)
                        emit_decimate_region(b, p_src, p_dst, 8, 8, 16, 8)
                # transform + entropy for the 4+1+1 blocks
                with b.scratch(iregs=2) as (p_blk, p_coef):
                    for by, bx in ((0, 0), (0, 1), (1, 0), (1, 1)):
                        b.la(p_blk, "mcu_y", offset=by * 128 + bx * 8)
                        b.la(p_coef, "mcu_coef")
                        if use_vis:
                            emit_fdct_quant_block_vis(
                                b, p_blk, 16, p_coef, "luma_div",
                                "blk_scratch", "blk_scratch2", consts, fz)
                        else:
                            emit_fdct_quant_block_scalar(
                                b, p_blk, 16, p_coef, "luma_div", "blk_scratch")
                        emit_encode_block(b, ent, p_coef, 0, 63, pred_y)
                    for chroma, pred in (("mcu_cb", pred_cb), ("mcu_cr", pred_cr)):
                        b.la(p_blk, chroma)
                        b.la(p_coef, "mcu_coef")
                        if use_vis:
                            emit_fdct_quant_block_vis(
                                b, p_blk, 8, p_coef, "chroma_div",
                                "blk_scratch", "blk_scratch2", consts, fz)
                        else:
                            emit_fdct_quant_block_scalar(
                                b, p_blk, 8, p_coef, "chroma_div", "blk_scratch")
                        emit_encode_block(b, ent, p_coef, 0, 63, pred)
                b.add(p_rgb, p_rgb, 48)
            b.add(p_rgb, p_rgb, 45 * width)
        emit_flush_encoder(b, ent)
        if use_vis:
            b.release(*consts.values(), fz)
        with b.scratch(iregs=2) as (p_out, t):
            b.la(p_out, "out_stream")
            b.sub(t, ent.stream, p_out)
            b.sub(t, t, 20)
            b.stw(t, p_out, 16)                # scan byte length
            b.add(t, t, 20)
            b.la(p_out, "out_len")
            b.stw(t, p_out)

    def _emit_decoder(self, b, data, width, height, use_vis, tables, prefetch):
        ent = make_entropy_unit(b)
        b.buffer("in_stream", len(data) + 16, data=data)
        b.buffer("mcu_coef", 768)
        b.buffer("mcu_y", 256)
        b.buffer("mcu_cb", 64)
        b.buffer("mcu_cr", 64)
        b.buffer("mcu_cbf", 256)
        b.buffer("mcu_crf", 256)
        b.buffer("rgb_out", width * height * 3)
        emit_entropy_subroutines(b, ent, tables, encoder=False, decoder=True)
        if use_vis:
            b.set_gsr(align=4, scale=7)
        consts = load_vis_constants(b, tables) if use_vis else None
        fz = None
        if use_vis:
            fz = b.freg()
            b.fzero(fz)

        b.marker("blocked MCU pipeline")
        with b.scratch(iregs=1) as t:
            b.la(t, "in_stream", offset=20)
            ent.reset_decoder(b, t)
        pred_y, pred_cb, pred_cr = b.iregs(3)
        b.li(pred_y, 0)
        b.li(pred_cb, 0)
        b.li(pred_cr, 0)
        p_rgb = b.ireg()
        b.la(p_rgb, "rgb_out")
        mcus_x, mcus_y = width // 16, height // 16
        with _manual_loop(b, mcus_y):
            with _manual_loop(b, mcus_x):
                if prefetch:
                    b.pf(ent.stream, 128)
                with b.scratch(iregs=2) as (p_coef, p_blk):
                    # decode + reconstruct 4 Y blocks and 2 chroma blocks
                    for index, (by, bx) in enumerate(((0, 0), (0, 1), (1, 0), (1, 1))):
                        b.la(p_coef, "mcu_coef")
                        self._clear_block(b, p_coef)
                        emit_decode_block(b, ent, p_coef, 0, 63, pred_y)
                        b.la(p_blk, "mcu_y", offset=by * 128 + bx * 8)
                        if use_vis:
                            emit_dequant_idct_block_vis(
                                b, p_coef, "luma_div", p_blk, 16,
                                "blk_scratch", "blk_scratch2", consts, fz)
                        else:
                            emit_dequant_idct_block_scalar(
                                b, p_coef, "luma_div", p_blk, 16, "blk_scratch")
                    for chroma, pred in (("mcu_cb", pred_cb), ("mcu_cr", pred_cr)):
                        b.la(p_coef, "mcu_coef")
                        self._clear_block(b, p_coef)
                        emit_decode_block(b, ent, p_coef, 0, 63, pred)
                        b.la(p_blk, chroma)
                        if use_vis:
                            emit_dequant_idct_block_vis(
                                b, p_coef, "chroma_div", p_blk, 8,
                                "blk_scratch", "blk_scratch2", consts, fz)
                        else:
                            emit_dequant_idct_block_scalar(
                                b, p_coef, "chroma_div", p_blk, 8, "blk_scratch")
                # upsample chroma into the 16x16 MCU temps
                with b.scratch(iregs=2) as (p_src, p_dst):
                    for half, full in (("mcu_cb", "mcu_cbf"), ("mcu_cr", "mcu_crf")):
                        b.la(p_src, half)
                        b.la(p_dst, full)
                        emit_upsample_plane(b, p_src, p_dst, 8, 8, 16,
                                            use_vis, fz=fz)
                # inverse conversion into the output image region
                with b.scratch(iregs=3) as (p_y, p_cb, p_cr):
                    b.la(p_y, "mcu_y")
                    b.la(p_cb, "mcu_cbf")
                    b.la(p_cr, "mcu_crf")
                    if use_vis:
                        state = load_pixel_constants(b, INVERSE_NAMES)
                        emit_ycbcr_to_rgb_vis(b, state, p_y, p_cb, p_cr,
                                              p_rgb, 16, 16, 16, width,
                                              reuse_plane_pointers=True)
                        release_pixel_constants(b, state)
                    else:
                        emit_ycbcr_to_rgb_scalar(b, p_y, p_cb, p_cr, p_rgb,
                                                 16, 16, 16, width,
                                                 reuse_plane_pointers=True)
                b.add(p_rgb, p_rgb, 48)
            b.add(p_rgb, p_rgb, 45 * width)
        if use_vis:
            b.release(*consts.values(), fz)

    @staticmethod
    def _clear_block(b: ProgramBuilder, p_coef: Reg) -> None:
        with b.scratch(iregs=1) as p:
            b.mov(p, p_coef)
            with _manual_loop(b, 16):
                b.stx(Reg(0), p)
                b.add(p, p, 8)


class CjpegNpWorkload(_JpegNpWorkload):
    name = "cjpeg-np"
    description = "JPEG non-progressive encoding"
    encoder = True


class DjpegNpWorkload(_JpegNpWorkload):
    name = "djpeg-np"
    description = "JPEG non-progressive decoding"
    encoder = False
