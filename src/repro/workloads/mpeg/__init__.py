"""The MPEG-2-style video benchmarks (Table 1)."""

from .codec import MpegDecWorkload, MpegEncWorkload

__all__ = ["MpegDecWorkload", "MpegEncWorkload"]
