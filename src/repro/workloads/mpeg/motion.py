"""Motion-estimation and motion-compensation assembly.

* Scalar SAD uses byte loads, absolute-difference branches and a
  per-row early-termination test against the best SAD so far — the
  hard-to-predict branch population behind mpeg-enc's 27% scalar
  misprediction rate (Section 3.2.2).  Early termination can only
  abandon candidates that are already no better than the incumbent, so
  the selected vector matches the reference full search exactly.
* VIS SAD replaces the ~48-instruction inner sequence with ``pdist``
  over realigned 8-byte groups (no data-dependent branches at all —
  the paper's headline pdist result).
* Prediction builders (copy / bidirectional average) and residual
  extraction come in scalar and packed forms.
"""

from __future__ import annotations

from ...asm.builder import ProgramBuilder, R_ZERO, Reg

#: "infinite" initial SAD.
SAD_HUGE = 1 << 30


def emit_sad_16x16_scalar(
    b: ProgramBuilder,
    p_cur: Reg,
    cur_stride: int,
    p_ref: Reg,
    ref_stride: int,
    sad: Reg,
    best: Reg = None,
) -> None:
    """sad = SAD of the 16x16 blocks at ``p_cur``/``p_ref``; with
    ``best`` given, abandons the candidate once ``sad >= best``."""
    pc, pr, a, t, row = b.iregs(5)
    b.mov(pc, p_cur)
    b.mov(pr, p_ref)
    b.li(sad, 0)
    b.li(row, 0)
    top = b.here("sad_row")
    done = b.label("sad_done")
    for i in range(16):
        positive = b.label("sad_pos")
        b.ldb(a, pc, i)
        b.ldb(t, pr, i)
        b.sub(a, a, t)
        b.bge(a, R_ZERO, positive, hint=False)
        b.sub(a, R_ZERO, a)
        b.bind(positive)
        b.add(sad, sad, a)
    b.add(pc, pc, cur_stride)
    b.add(pr, pr, ref_stride)
    if best is not None:
        b.bge(sad, best, done, hint=False)   # early termination
    b.add(row, row, 1)
    b.blt(row, 16, top, hint=True)
    b.bind(done)
    b.release(pc, pr, a, t, row)


def emit_sad_16x16_vis(
    b: ProgramBuilder,
    p_cur: Reg,
    cur_stride: int,
    p_ref: Reg,
    ref_stride: int,
    sad: Reg,
    spill: str,
) -> None:
    """Branch-free full SAD via ``pdist``; ``p_cur`` rows are 8-byte
    aligned (macroblocks are 16-aligned), the reference window is
    realigned with ``alignaddr``/``faligndata``."""
    pc, pr, ar, row = b.iregs(4)
    facc, fa, f1, f2, f3, fw = b.fregs(6)
    b.mov(pc, p_cur)
    b.mov(pr, p_ref)
    b.fzero(facc)
    b.li(row, 0)
    top = b.here("vsad_row")
    b.alignaddr(ar, pr, 0)
    b.ldf(f1, ar, 0)
    b.ldf(f2, ar, 8)
    b.ldf(f3, ar, 16)
    b.faligndata(fw, f1, f2)
    b.ldf(fa, pc, 0)
    b.pdist(facc, fa, fw)
    b.faligndata(fw, f2, f3)
    b.ldf(fa, pc, 8)
    b.pdist(facc, fa, fw)
    b.add(pc, pc, cur_stride)
    b.add(pr, pr, ref_stride)
    b.add(row, row, 1)
    b.blt(row, 16, top, hint=True)
    with b.scratch(iregs=1) as sp:
        b.la(sp, spill)
        b.stf(facc, sp)
        b.ldw(sad, sp)
    b.release(pc, pr, ar, row)
    b.release(facc, fa, f1, f2, f3, fw)


def emit_full_search(
    b: ProgramBuilder,
    p_cur_mb: Reg,
    p_ref_base: Reg,
    y_reg: Reg,
    x_reg: Reg,
    width: int,
    height: int,
    search_range: int,
    best_sad: Reg,
    best_dy: Reg,
    best_dx: Reg,
    use_vis: bool,
    spill: str = "mv_spill",
) -> None:
    """Full search over ``[-R, R]^2`` with frame-bounds clamping;
    results in ``best_*``.  Iteration order and tie-breaking match
    :func:`repro.media.mpeg.full_search` exactly."""
    r = search_range
    dy, dx, ty, tx, pr, sad = b.iregs(6)
    b.li(best_sad, SAD_HUGE)
    b.li(best_dy, 0)
    b.li(best_dx, 0)
    b.li(dy, -r)
    dy_top = b.here("ms_dy")
    dy_next = b.label("ms_dy_next")
    b.add(ty, y_reg, dy)
    b.blt(ty, 0, dy_next, hint=True)
    b.bgt(ty, height - 16, dy_next, hint=True)
    b.li(dx, -r)
    dx_top = b.here("ms_dx")
    dx_next = b.label("ms_dx_next")
    b.add(tx, x_reg, dx)
    b.blt(tx, 0, dx_next, hint=True)
    b.bgt(tx, width - 16, dx_next, hint=True)
    # candidate pointer = ref_base + ty*width + tx
    b.mul(pr, ty, width)
    b.add(pr, pr, tx)
    b.add(pr, pr, p_ref_base)
    if use_vis:
        emit_sad_16x16_vis(b, p_cur_mb, width, pr, width, sad, spill)
    else:
        emit_sad_16x16_scalar(b, p_cur_mb, width, pr, width, sad, best=best_sad)
    no_update = b.label("ms_keep")
    b.bge(sad, best_sad, no_update, hint=False)
    b.mov(best_sad, sad)
    b.mov(best_dy, dy)
    b.mov(best_dx, dx)
    b.bind(no_update)
    b.bind(dx_next)
    b.add(dx, dx, 1)
    b.ble(dx, r, dx_top, hint=True)
    b.bind(dy_next)
    b.add(dy, dy, 1)
    b.ble(dy, r, dy_top, hint=True)
    b.release(dy, dx, ty, tx, pr, sad)


def emit_copy_block(
    b: ProgramBuilder,
    p_src: Reg,
    src_stride: int,
    p_dst: Reg,
    dst_stride: int,
    width: int,
    rows: int,
    use_vis: bool,
) -> None:
    """Motion-compensation copy of a ``width x rows`` window into an
    aligned prediction buffer (``width`` is 8 or 16)."""
    if use_vis:
        ps, pd, ar, row = b.iregs(4)
        f1, f2, f3, fw = b.fregs(4)
        b.mov(ps, p_src)
        b.mov(pd, p_dst)
        b.li(row, 0)
        top = b.here("mc_row")
        b.alignaddr(ar, ps, 0)
        b.ldf(f1, ar, 0)
        b.ldf(f2, ar, 8)
        b.faligndata(fw, f1, f2)
        b.stf(fw, pd, 0)
        if width == 16:
            b.ldf(f3, ar, 16)
            b.faligndata(fw, f2, f3)
            b.stf(fw, pd, 8)
        b.add(ps, ps, src_stride)
        b.add(pd, pd, dst_stride)
        b.add(row, row, 1)
        b.blt(row, rows, top, hint=True)
        b.release(ps, pd, ar, row)
        b.release(f1, f2, f3, fw)
    else:
        ps, pd, t, row = b.iregs(4)
        b.mov(ps, p_src)
        b.mov(pd, p_dst)
        b.li(row, 0)
        top = b.here("mc_row")
        for i in range(width):
            b.ldb(t, ps, i)
            b.stb(t, pd, i)
        b.add(ps, ps, src_stride)
        b.add(pd, pd, dst_stride)
        b.add(row, row, 1)
        b.blt(row, rows, top, hint=True)
        b.release(ps, pd, t, row)


def emit_average_block(
    b: ProgramBuilder,
    p_a: Reg,
    p_b: Reg,
    p_dst: Reg,
    stride: int,
    width: int,
    rows: int,
    use_vis: bool,
    consts=None,
    fz: Reg = None,
) -> None:
    """Bidirectional prediction: ``dst = (a + b + 1) >> 1`` over two
    aligned prediction buffers (same stride).

    The VIS form needs GSR scale 2 / align 4 and a broadcast16(16)
    rounding constant in ``consts["round16"]``."""
    if use_vis:
        pa, pb, pd, row = b.iregs(4)
        fa, fb, alo, ahi, blo, bhi = b.fregs(6)
        b.mov(pa, p_a)
        b.mov(pb, p_b)
        b.mov(pd, p_dst)
        b.li(row, 0)
        top = b.here("avg_row")
        for group_offset in range(0, width, 8):
            b.ldf(fa, pa, group_offset)
            b.ldf(fb, pb, group_offset)
            b.fexpand(alo, fa)
            b.faligndata(ahi, fa, fz)
            b.fexpand(ahi, ahi)
            b.fexpand(blo, fb)
            b.faligndata(bhi, fb, fz)
            b.fexpand(bhi, bhi)
            b.fpadd16(alo, alo, blo)
            b.fpadd16(ahi, ahi, bhi)
            b.fpadd16(alo, alo, consts["round16"])
            b.fpadd16(ahi, ahi, consts["round16"])
            b.fpack16(alo, alo)
            b.fpack16(ahi, ahi)
            b.stfw(alo, pd, group_offset)
            b.stfw(ahi, pd, group_offset + 4)
        b.add(pa, pa, stride)
        b.add(pb, pb, stride)
        b.add(pd, pd, stride)
        b.add(row, row, 1)
        b.blt(row, rows, top, hint=True)
        b.release(pa, pb, pd, row)
        b.release(fa, fb, alo, ahi, blo, bhi)
    else:
        pa, pb, pd, a, t, row = b.iregs(6)
        b.mov(pa, p_a)
        b.mov(pb, p_b)
        b.mov(pd, p_dst)
        b.li(row, 0)
        top = b.here("avg_row")
        for i in range(width):
            b.ldb(a, pa, i)
            b.ldb(t, pb, i)
            b.add(a, a, t)
            b.add(a, a, 1)
            b.srl(a, a, 1)
            b.stb(a, pd, i)
        b.add(pa, pa, stride)
        b.add(pb, pb, stride)
        b.add(pd, pd, stride)
        b.add(row, row, 1)
        b.blt(row, rows, top, hint=True)
        b.release(pa, pb, pd, a, t, row)


def emit_residual_8x8(
    b: ProgramBuilder,
    p_cur: Reg,
    cur_stride: int,
    p_pred: Reg,
    pred_stride: int,
    residual: str,
    use_vis: bool,
    consts=None,
    fz: Reg = None,
) -> None:
    """residual block (s16, 16-byte row stride) = cur - pred."""
    if use_vis:
        pc, pp, pr, row = b.iregs(4)
        fc, fp, clo, chi, plo, phi = b.fregs(6)
        b.mov(pc, p_cur)
        b.mov(pp, p_pred)
        b.la(pr, residual)
        b.li(row, 0)
        top = b.here("res_row")
        b.ldf(fc, pc)
        b.ldf(fp, pp)
        b.fmul8x16al(clo, fc, consts["c256"])
        b.faligndata(chi, fc, fz)
        b.fmul8x16al(chi, chi, consts["c256"])
        b.fmul8x16al(plo, fp, consts["c256"])
        b.faligndata(phi, fp, fz)
        b.fmul8x16al(phi, phi, consts["c256"])
        b.fpsub16(clo, clo, plo)
        b.fpsub16(chi, chi, phi)
        b.stf(clo, pr, 0)
        b.stf(chi, pr, 8)
        b.add(pc, pc, cur_stride)
        b.add(pp, pp, pred_stride)
        b.add(pr, pr, 16)
        b.add(row, row, 1)
        b.blt(row, 8, top, hint=True)
        b.release(pc, pp, pr, row)
        b.release(fc, fp, clo, chi, plo, phi)
    else:
        pc, pp, pr, a, t, row = b.iregs(6)
        b.mov(pc, p_cur)
        b.mov(pp, p_pred)
        b.la(pr, residual)
        b.li(row, 0)
        top = b.here("res_row")
        for i in range(8):
            b.ldb(a, pc, i)
            b.ldb(t, pp, i)
            b.sub(a, a, t)
            b.sth(a, pr, 2 * i)
        b.add(pc, pc, cur_stride)
        b.add(pp, pp, pred_stride)
        b.add(pr, pr, 16)
        b.add(row, row, 1)
        b.blt(row, 8, top, hint=True)
        b.release(pc, pp, pr, a, t, row)
