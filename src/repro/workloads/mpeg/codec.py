"""The two video benchmarks of Table 1: mpeg-enc and mpeg-dec.

One I-B-B-P group of pictures (display order), coded in the MPEG order
I, P, B, B.  Motion estimation dominates mpeg-enc (Section 2.1.3); its
scalar form carries the early-termination branch population behind the
27% misprediction rate, its VIS form replaces the SAD inner loops with
``pdist`` (Section 3.2.2).  All outputs are validated bit-exactly
against :mod:`repro.media.mpeg`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...asm.builder import ProgramBuilder, Reg
from ...media import mpeg
from ...media.images import synthetic_video_yuv
from ..base import BuiltWorkload, Variant, Workload, expect_equal
from ..kernels.common import broadcast16
from ..jpeg.codec import QUALITY, _manual_loop, _store_constant_bytes
from ..jpeg.entropy import (
    emit_decode_block,
    emit_encode_block,
    emit_entropy_subroutines,
    emit_flush_encoder,
    emit_receive_extend,
    make_entropy_unit,
)
from ..jpeg.tables import declare_codec_tables, load_vis_constants
from ..jpeg.transform import (
    emit_dequant_idct_block_scalar,
    emit_dequant_idct_block_vis,
    emit_fdct_quant_block_scalar,
    emit_fdct_quant_block_vis,
)
from .motion import (
    emit_average_block,
    emit_copy_block,
    emit_full_search,
    emit_sad_16x16_scalar,
    emit_sad_16x16_vis,
    emit_residual_8x8,
)

#: luma sub-block offsets within a macroblock.
LUMA_BLOCKS = ((0, 0), (0, 8), (8, 0), (8, 8))


@dataclass(frozen=True)
class _Geometry:
    width: int
    height: int
    search_range: int

    @property
    def luma(self) -> int:
        return self.width * self.height

    @property
    def chroma(self) -> int:
        return (self.width // 2) * (self.height // 2)

    @property
    def frame_bytes(self) -> int:
        return self.luma + 2 * self.chroma

    @property
    def cw(self) -> int:
        return self.width // 2


class _MpegWorkload(Workload):
    group = "video source coding"

    #: table aliases: declare_codec_tables stores the intra matrix in
    #: the "luma_div" slot and the flat inter matrix in "chroma_div".
    INTRA_DIV = "luma_div"
    INTER_DIV = "chroma_div"

    def _inputs(self, scale):
        geom = _Geometry(scale.video_width, scale.video_height, scale.search_range)
        frames = synthetic_video_yuv(
            geom.width, geom.height, scale.video_frames, seed=42
        )
        enc = mpeg.encode(frames, QUALITY, search_range=geom.search_range)
        return geom, frames, enc

    def _declare_common(self, b: ProgramBuilder, use_vis: bool):
        tables = declare_codec_tables(
            b, mpeg.intra_divisors(QUALITY), mpeg.inter_divisors(QUALITY), use_vis
        )
        b.buffer("blk_scratch", 128)
        b.buffer("blk_scratch2", 128)
        b.buffer("blk_coef", 128)
        b.buffer("res_blk", 128)
        # +16 bytes of slack: the packed SAD/copy read an extra
        # realignment word past the last row.
        b.buffer("pred_y", 256 + 16)
        b.buffer("pred_y2", 256 + 16)
        b.buffer("pred_cb", 64 + 16)
        b.buffer("pred_cb2", 64 + 16)
        b.buffer("pred_cr", 64 + 16)
        b.buffer("pred_cr2", 64 + 16)
        b.buffer("mv_spill", 8)
        # I-frame cross-MB DC predictors live in memory (register
        # pressure: the block pipelines need the whole integer file)
        b.buffer("dc_preds", 24)
        # spilled frame-header / input-stream cursors (same reason)
        b.buffer("ptr_spill", 16)
        if use_vis:
            b.buffer("k_round16", 8, data=broadcast16(16))
        return tables

    def _load_vis(self, b, tables):
        consts = load_vis_constants(b, tables)
        with b.scratch(iregs=1) as t:
            rnd = b.freg()
            b.la(t, "k_round16")
            b.ldf(rnd, t)
            consts["round16"] = rnd
        fz = b.freg()
        b.fzero(fz)
        return consts, fz

    # -- address helpers ----------------------------------------------------

    @staticmethod
    def _plane_ptr(b, dest: Reg, buffer: str, base_offset: int,
                   y: Reg, x: Reg, stride: int) -> None:
        """dest = &buffer[base_offset + y*stride + x]."""
        b.mul(dest, y, stride)
        b.add(dest, dest, x)
        with b.scratch(iregs=1) as t:
            b.la(t, buffer, offset=base_offset)
            b.add(dest, dest, t)

    @staticmethod
    def _offset_ptr(b, dest: Reg, buffer: str, base_offset: int, coff: Reg):
        """dest = &buffer[base_offset] + coff."""
        with b.scratch(iregs=1) as t:
            b.la(t, buffer, offset=base_offset)
            b.add(dest, coff, t)

    @staticmethod
    def _chroma_offset(b, coff: Reg, y: Reg, x: Reg, cw: int) -> None:
        """coff = (y>>1)*cw + (x>>1) — one register instead of two."""
        b.srl(coff, y, 1)
        b.mul(coff, coff, cw)
        with b.scratch(iregs=1) as t:
            b.srl(t, x, 1)
            b.add(coff, coff, t)

    def _frame_offsets(self, geom: _Geometry, index_in_buffer: int):
        """(y, cb, cr) byte offsets of one frame inside a frame buffer."""
        base = index_in_buffer * geom.frame_bytes
        return base, base + geom.luma, base + geom.luma + geom.chroma

    @staticmethod
    def _emit_clear_dc_preds(b):
        with b.scratch(iregs=1) as t:
            b.la(t, "dc_preds")
            for slot in range(3):
                b.stx(Reg(0), t, 8 * slot)

    @staticmethod
    def _load_pred(b, slot: int, chained: bool) -> Reg:
        pred = b.ireg()
        if chained:
            with b.scratch(iregs=1) as t:
                b.la(t, "dc_preds")
                b.ldx(pred, t, 8 * slot)
        else:
            b.li(pred, 0)
        return pred

    @staticmethod
    def _store_pred(b, pred: Reg, slot: int, chained: bool) -> None:
        if chained:
            with b.scratch(iregs=1) as t:
                b.la(t, "dc_preds")
                b.stx(pred, t, 8 * slot)
        b.release(pred)

    # -- block-level helpers -------------------------------------------------

    def _emit_intra_block_encode(self, b, ent, p_blk, stride, pred, use_vis,
                                 consts, fz):
        with b.scratch(iregs=1) as p_coef:
            b.la(p_coef, "blk_coef")
            if use_vis:
                emit_fdct_quant_block_vis(
                    b, p_blk, stride, p_coef, self.INTRA_DIV,
                    "blk_scratch", "blk_scratch2", consts, fz)
            else:
                emit_fdct_quant_block_scalar(
                    b, p_blk, stride, p_coef, self.INTRA_DIV, "blk_scratch")
            emit_encode_block(b, ent, p_coef, 0, 63, pred)

    def _emit_intra_block_recon(self, b, p_out, stride, use_vis, consts, fz):
        with b.scratch(iregs=1) as p_coef:
            b.la(p_coef, "blk_coef")
            if use_vis:
                emit_dequant_idct_block_vis(
                    b, p_coef, self.INTRA_DIV, p_out, stride,
                    "blk_scratch", "blk_scratch2", consts, fz,
                    clip=mpeg.COEF_CLIP)
            else:
                emit_dequant_idct_block_scalar(
                    b, p_coef, self.INTRA_DIV, p_out, stride,
                    "blk_scratch", clip=mpeg.COEF_CLIP)

    def _emit_inter_block_encode(self, b, ent, p_cur, cur_stride, p_pred,
                                 pred_stride, use_vis, consts, fz):
        emit_residual_8x8(b, p_cur, cur_stride, p_pred, pred_stride,
                          "res_blk", use_vis, consts=consts, fz=fz)
        with b.scratch(iregs=2) as (p_res, p_coef):
            b.la(p_res, "res_blk")
            b.la(p_coef, "blk_coef")
            if use_vis:
                emit_fdct_quant_block_vis(
                    b, p_res, 16, p_coef, self.INTER_DIV,
                    "blk_scratch", "blk_scratch2", consts, fz, input_s16=True)
            else:
                emit_fdct_quant_block_scalar(
                    b, p_res, 16, p_coef, self.INTER_DIV,
                    "blk_scratch", input_s16=True)
            with b.scratch(iregs=1) as zero_pred:
                b.li(zero_pred, 0)
                emit_encode_block(b, ent, p_coef, 0, 63, zero_pred)

    def _emit_inter_block_recon(self, b, p_out, stride, p_pred, pred_stride,
                                use_vis, consts, fz):
        with b.scratch(iregs=1) as p_coef:
            b.la(p_coef, "blk_coef")
            if use_vis:
                emit_dequant_idct_block_vis(
                    b, p_coef, self.INTER_DIV, p_out, stride,
                    "blk_scratch", "blk_scratch2", consts, fz,
                    clip=mpeg.COEF_CLIP, p_pred=p_pred,
                    pred_stride=pred_stride)
            else:
                emit_dequant_idct_block_scalar(
                    b, p_coef, self.INTER_DIV, p_out, stride,
                    "blk_scratch", clip=mpeg.COEF_CLIP, p_pred=p_pred,
                    pred_stride=pred_stride)

    def _emit_build_pred(self, b, geom: _Geometry, ref_buffer: str,
                         ref_base: int, y, x, dy, dx, use_vis, suffix=""):
        """Copy the motion-compensated 16x16 luma + two 8x8 chroma
        windows from a reference frame into the pred buffers."""
        width = geom.width
        y_off, cb_off, cr_off = (
            ref_base, ref_base + geom.luma, ref_base + geom.luma + geom.chroma
        )
        with b.scratch(iregs=3) as (pr, ty, tx):
            b.add(ty, y, dy)
            b.add(tx, x, dx)
            self._plane_ptr(b, pr, ref_buffer, y_off, ty, tx, width)
            with b.scratch(iregs=1) as pd:
                b.la(pd, "pred_y" + suffix)
                emit_copy_block(b, pr, width, pd, 16, 16, 16, use_vis)
            # chroma coordinates: (y>>1 + dy>>1, x>>1 + dx>>1)
            b.sra(ty, dy, 1)
            b.sra(tx, dx, 1)
            with b.scratch(iregs=1) as half:
                b.srl(half, y, 1)
                b.add(ty, ty, half)
                b.srl(half, x, 1)
                b.add(tx, tx, half)
            for off, name in ((cb_off, "pred_cb"), (cr_off, "pred_cr")):
                self._plane_ptr(b, pr, ref_buffer, off, ty, tx, geom.cw)
                with b.scratch(iregs=1) as pd:
                    b.la(pd, name + suffix)
                    emit_copy_block(b, pr, geom.cw, pd, 8, 8, 8, use_vis)

    def _emit_average_preds(self, b, use_vis, consts, fz):
        """pred = average(pred, pred2) for luma + both chroma."""
        if use_vis:
            b.set_gsr(align=4, scale=2)
        with b.scratch(iregs=3) as (pa, pb, pd):
            for name, wdt, rows in (
                ("pred_y", 16, 16), ("pred_cb", 8, 8), ("pred_cr", 8, 8)
            ):
                b.la(pa, name)
                b.la(pb, name + "2")
                b.la(pd, name)
                emit_average_block(b, pa, pb, pd, wdt, wdt, rows, use_vis,
                                   consts=consts, fz=fz)
        if use_vis:
            b.set_gsr(align=4, scale=7)

    def _emit_code_mv(self, b, ent, value: Reg):
        """Size category via the DC table + extra bits."""
        b.mov(ent.arg0, value)
        b.call(ent.size_cat)
        with b.scratch(iregs=2) as (sv_bits, sv_size):
            b.mov(sv_bits, ent.arg0)
            b.mov(sv_size, ent.arg1)
            with b.scratch(iregs=1) as t:
                b.la(t, "dc_codes")
                b.sll(ent.arg0, sv_size, 1)
                b.add(t, t, ent.arg0)
                b.ldh(ent.arg0, t)
                b.la(t, "dc_lens")
                b.add(t, t, sv_size)
                b.ldb(ent.arg1, t)
            b.call(ent.putbits)
            skip = b.label("mv_nobits")
            b.beq(sv_size, 0, skip)
            b.mov(ent.arg0, sv_bits)
            b.mov(ent.arg1, sv_size)
            b.call(ent.putbits)
            b.bind(skip)

    def _emit_putbit(self, b, ent, bit: int):
        b.li(ent.arg0, bit)
        b.li(ent.arg1, 1)
        b.call(ent.putbits)


class MpegEncWorkload(_MpegWorkload):
    name = "mpeg-enc"
    description = "MPEG2 encoding of 4 frames (I-B-B-P) of a synthetic stream"

    def build(self, variant: Variant, scale, **_options) -> BuiltWorkload:
        geom, frames, enc = self._inputs(scale)
        use_vis = variant.uses_vis
        prefetch = variant.uses_prefetch
        b = ProgramBuilder(f"{self.name}-{variant.value}")
        tables = self._declare_common(b, use_vis)

        frames_blob = b"".join(
            f[0].tobytes() + f[1].tobytes() + f[2].tobytes() for f in frames
        )
        b.buffer("frames_in", len(frames_blob), data=frames_blob)
        b.buffer("ref_a", geom.frame_bytes + 16)   # reconstructed I
        b.buffer("ref_b", geom.frame_bytes + 16)   # reconstructed P
        b.buffer("out_stream", max(8192, 2 * geom.frame_bytes))
        b.buffer("out_len", 8)

        ent = make_entropy_unit(b)
        emit_entropy_subroutines(b, ent, tables, encoder=True, decoder=False)
        if use_vis:
            b.set_gsr(align=4, scale=7)
        consts, fz = self._load_vis(b, tables) if use_vis else (None, None)

        header = mpeg.MAGIC + np.array(
            [geom.width, geom.height], dtype="<u2"
        ).tobytes() + bytes([len(frames), QUALITY, geom.search_range, 0])
        with b.scratch(iregs=1) as p_out:
            b.la(p_out, "out_stream")
            _store_constant_bytes(b, p_out, header)
        with b.scratch(iregs=1) as t:
            b.la(t, "out_stream", offset=12)
            b.mov(ent.stream, t)

        for display_index in mpeg.ENCODE_ORDER:
            ftype = mpeg.GOP_TYPES[display_index]
            b.marker(f"{ftype} frame (display {display_index})")
            # frame header; its position is spilled across the frame
            with b.scratch(iregs=2) as (p_hdr, t):
                b.mov(p_hdr, ent.stream)
                _store_constant_bytes(
                    b, p_hdr,
                    bytes([mpeg.FRAME_TYPE_CODE[ftype], display_index, 0, 0]),
                )
                b.la(t, "ptr_spill")
                b.stx(p_hdr, t)
            b.add(ent.stream, ent.stream, 8)
            b.li(ent.bitbuf, 0)
            b.li(ent.bitcnt, 0)
            self._emit_frame_encode(
                b, ent, geom, ftype, display_index, use_vis, consts, fz,
                prefetch,
            )
            emit_flush_encoder(b, ent)
            with b.scratch(iregs=2) as (p_hdr, t):
                b.la(t, "ptr_spill")
                b.ldx(p_hdr, t)
                b.sub(t, ent.stream, p_hdr)
                b.sub(t, t, 8)
                b.stw(t, p_hdr, 4)
        with b.scratch(iregs=2) as (p_out, t):
            b.la(p_out, "out_stream")
            b.sub(t, ent.stream, p_out)
            b.la(p_out, "out_len")
            b.stw(t, p_out)

        expected = np.frombuffer(enc.data, dtype=np.uint8)

        def validate(machine) -> None:
            got = machine.read_buffer_array("out_stream")[: len(enc.data)]
            expect_equal(got, expected, "mpeg-enc byte stream")

        return BuiltWorkload(
            name=self.name,
            variant=variant,
            program=b.build(),
            validate=validate,
            details={
                "video": f"{geom.width}x{geom.height}x{len(frames)}",
                "search": geom.search_range,
                "stream_bytes": len(enc.data),
            },
        )

    # -- frame/macroblock emission ------------------------------------------------

    def _emit_frame_encode(self, b, ent, geom, ftype, display_index,
                           use_vis, consts, fz, prefetch):
        cur_y, cur_cb, cur_cr = self._frame_offsets(geom, display_index)
        mbs_x, mbs_y = geom.width // 16, geom.height // 16
        if ftype == "I":
            self._emit_clear_dc_preds(b)
        rec_buf = {"I": "ref_a", "P": "ref_b", "B": None}[ftype]

        with _manual_loop(b, mbs_y) as my:
            with _manual_loop(b, mbs_x) as mx:
                y, x = b.iregs(2)
                b.sll(y, my, 4)
                b.sll(x, mx, 4)
                if prefetch:
                    # next macroblock's luma rows (streaming input)
                    with b.scratch(iregs=1) as t:
                        self._plane_ptr(b, t, "frames_in", cur_y, y, x,
                                        geom.width)
                        b.pf(t, 16)
                        b.pf(t, 16 + geom.width)
                if ftype == "I":
                    self._emit_intra_mb(b, ent, geom, (cur_y, cur_cb, cur_cr),
                                        rec_buf, y, x, use_vis, consts, fz,
                                        chained_preds=True)
                elif ftype == "P":
                    self._emit_p_mb(b, ent, geom, (cur_y, cur_cb, cur_cr),
                                    rec_buf, y, x, use_vis, consts, fz)
                else:
                    self._emit_b_mb(b, ent, geom, (cur_y, cur_cb, cur_cr),
                                    y, x, use_vis, consts, fz)
                b.release(y, x)

    def _emit_intra_mb(self, b, ent, geom, cur_offsets, rec_buf, y, x,
                       use_vis, consts, fz, chained_preds=False):
        """Six intra blocks; with ``chained_preds`` the I-frame
        cross-MB DC predictor chain (spilled in ``dc_preds``), else
        per-block zero predictors (the intra-MB convention inside P/B
        frames)."""
        cur_y, cur_cb, cur_cr = cur_offsets
        width, cw = geom.width, geom.cw
        with b.scratch(iregs=1) as p_blk:
            for by, bx in LUMA_BLOCKS:
                self._plane_ptr(b, p_blk, "frames_in", cur_y, y, x, width)
                b.add(p_blk, p_blk, by * width + bx)
                pred = self._load_pred(b, 0, chained_preds)
                self._emit_intra_block_encode(
                    b, ent, p_blk, width, pred, use_vis, consts, fz)
                self._store_pred(b, pred, 0, chained_preds)
                if rec_buf:
                    self._plane_ptr(b, p_blk, rec_buf, 0, y, x, width)
                    b.add(p_blk, p_blk, by * width + bx)
                    self._emit_intra_block_recon(
                        b, p_blk, width, use_vis, consts, fz)
            rec_offsets = (geom.luma, geom.luma + geom.chroma)
            with b.scratch(iregs=1) as coff:
                self._chroma_offset(b, coff, y, x, cw)
                for comp, base in enumerate((cur_cb, cur_cr)):
                    self._offset_ptr(b, p_blk, "frames_in", base, coff)
                    pred = self._load_pred(b, 1 + comp, chained_preds)
                    self._emit_intra_block_encode(
                        b, ent, p_blk, cw, pred, use_vis, consts, fz)
                    self._store_pred(b, pred, 1 + comp, chained_preds)
                    if rec_buf:
                        self._offset_ptr(b, p_blk, rec_buf,
                                         rec_offsets[comp], coff)
                        self._emit_intra_block_recon(
                            b, p_blk, cw, use_vis, consts, fz)

    def _emit_inter_blocks(self, b, ent, geom, cur_offsets, rec_buf, y, x,
                           use_vis, consts, fz):
        """Residual-code the six blocks against the pred buffers;
        reconstruct into ``rec_buf`` when given (P frames)."""
        cur_y, cur_cb, cur_cr = cur_offsets
        width, cw = geom.width, geom.cw
        with b.scratch(iregs=2) as (p_cur, p_pred):
            p_rec = p_cur  # reused: p_cur is dead once the residual is coded
            for by, bx in LUMA_BLOCKS:
                self._plane_ptr(b, p_cur, "frames_in", cur_y, y, x, width)
                b.add(p_cur, p_cur, by * width + bx)
                b.la(p_pred, "pred_y", offset=by * 16 + bx)
                self._emit_inter_block_encode(
                    b, ent, p_cur, width, p_pred, 16, use_vis, consts, fz)
                if rec_buf:
                    self._plane_ptr(b, p_rec, rec_buf, 0, y, x, width)
                    b.add(p_rec, p_rec, by * width + bx)
                    self._emit_inter_block_recon(
                        b, p_rec, width, p_pred, 16, use_vis, consts, fz)
            rec_offsets = (geom.luma, geom.luma + geom.chroma)
            with b.scratch(iregs=1) as coff:
                self._chroma_offset(b, coff, y, x, cw)
                for comp, (base, pname) in enumerate(
                    ((cur_cb, "pred_cb"), (cur_cr, "pred_cr"))
                ):
                    self._offset_ptr(b, p_cur, "frames_in", base, coff)
                    b.la(p_pred, pname)
                    self._emit_inter_block_encode(
                        b, ent, p_cur, cw, p_pred, 8, use_vis, consts, fz)
                    if rec_buf:
                        self._offset_ptr(b, p_rec, rec_buf,
                                         rec_offsets[comp], coff)
                        self._emit_inter_block_recon(
                            b, p_rec, cw, p_pred, 8, use_vis, consts, fz)

    def _emit_p_mb(self, b, ent, geom, cur_offsets, rec_buf, y, x,
                   use_vis, consts, fz):
        cur_y = cur_offsets[0]
        best_sad, best_dy, best_dx = b.iregs(3)
        with b.scratch(iregs=2) as (p_cur, p_ref):
            self._plane_ptr(b, p_cur, "frames_in", cur_y, y, x, geom.width)
            b.la(p_ref, "ref_a")
            emit_full_search(
                b, p_cur, p_ref, y, x, geom.width, geom.height,
                geom.search_range, best_sad, best_dy, best_dx, use_vis)
        intra_path = b.label("p_intra")
        join = b.label("p_join")
        b.bge(best_sad, mpeg.INTRA_THRESHOLD, intra_path, hint=False)
        # ---- inter macroblock
        self._emit_putbit(b, ent, 1)
        self._emit_code_mv(b, ent, best_dy)
        self._emit_code_mv(b, ent, best_dx)
        self._emit_build_pred(b, geom, "ref_a", 0, y, x, best_dy, best_dx,
                              use_vis)
        b.release(best_sad, best_dy, best_dx)
        if use_vis:
            b.set_gsr(align=4, scale=7)
        self._emit_inter_blocks(b, ent, geom, cur_offsets, rec_buf, y, x,
                                use_vis, consts, fz)
        b.j(join)
        # ---- intra macroblock
        b.bind(intra_path)
        self._emit_putbit(b, ent, 0)
        if use_vis:
            b.set_gsr(align=4, scale=7)
        self._emit_intra_mb(b, ent, geom, cur_offsets, rec_buf, y, x,
                            use_vis, consts, fz, chained_preds=False)
        b.bind(join)

    def _emit_b_mb(self, b, ent, geom, cur_offsets, y, x, use_vis, consts, fz):
        cur_y = cur_offsets[0]
        fdy, fdx, bdy, bdx = b.iregs(4)
        with b.scratch(iregs=3) as (p_cur, p_ref, sad):
            self._plane_ptr(b, p_cur, "frames_in", cur_y, y, x, geom.width)
            b.la(p_ref, "ref_a")
            emit_full_search(
                b, p_cur, p_ref, y, x, geom.width, geom.height,
                geom.search_range, sad, fdy, fdx, use_vis)
            b.la(p_ref, "ref_b")
            emit_full_search(
                b, p_cur, p_ref, y, x, geom.width, geom.height,
                geom.search_range, sad, bdy, bdx, use_vis)
        self._emit_build_pred(b, geom, "ref_a", 0, y, x, fdy, fdx, use_vis)
        self._emit_build_pred(b, geom, "ref_b", 0, y, x, bdy, bdx, use_vis,
                              suffix="2")
        self._emit_average_preds(b, use_vis, consts, fz)
        bi_sad = b.ireg()
        with b.scratch(iregs=2) as (p_cur, p_pred):
            self._plane_ptr(b, p_cur, "frames_in", cur_y, y, x, geom.width)
            b.la(p_pred, "pred_y")
            if use_vis:
                emit_sad_16x16_vis(b, p_cur, geom.width, p_pred, 16, bi_sad,
                                   "mv_spill")
            else:
                emit_sad_16x16_scalar(b, p_cur, geom.width, p_pred, 16, bi_sad)
        intra_path = b.label("b_intra")
        join = b.label("b_join")
        b.bge(bi_sad, mpeg.INTRA_THRESHOLD, intra_path, hint=False)
        b.release(bi_sad)
        self._emit_putbit(b, ent, 1)
        self._emit_code_mv(b, ent, fdy)
        self._emit_code_mv(b, ent, fdx)
        self._emit_code_mv(b, ent, bdy)
        self._emit_code_mv(b, ent, bdx)
        b.release(fdy, fdx, bdy, bdx)
        if use_vis:
            b.set_gsr(align=4, scale=7)
        self._emit_inter_blocks(b, ent, geom, cur_offsets, None, y, x,
                                use_vis, consts, fz)
        b.j(join)
        b.bind(intra_path)
        self._emit_putbit(b, ent, 0)
        if use_vis:
            b.set_gsr(align=4, scale=7)
        self._emit_intra_mb(b, ent, geom, cur_offsets, None, y, x,
                            use_vis, consts, fz, chained_preds=False)
        b.bind(join)


class MpegDecWorkload(_MpegWorkload):
    name = "mpeg-dec"
    description = "MPEG2 decoding into separate YUV components"

    def build(self, variant: Variant, scale, **_options) -> BuiltWorkload:
        geom, frames, enc = self._inputs(scale)
        dec = mpeg.decode(enc.data)
        use_vis = variant.uses_vis
        prefetch = variant.uses_prefetch
        b = ProgramBuilder(f"{self.name}-{variant.value}")
        tables = self._declare_common(b, use_vis)

        b.buffer("in_stream", len(enc.data) + 16, data=enc.data)
        n_frames = len(frames)
        b.buffer("yuv_out", n_frames * geom.frame_bytes + 16)

        ent = make_entropy_unit(b)
        emit_entropy_subroutines(b, ent, tables, encoder=False, decoder=True)
        if use_vis:
            b.set_gsr(align=4, scale=7)
        consts, fz = self._load_vis(b, tables) if use_vis else (None, None)

        with b.scratch(iregs=2) as (p_in, t):
            b.la(p_in, "in_stream", offset=12)
            b.la(t, "ptr_spill")
            b.stx(p_in, t)
        for display_index in mpeg.ENCODE_ORDER:
            ftype = mpeg.GOP_TYPES[display_index]
            b.marker(f"{ftype} frame (display {display_index})")
            with b.scratch(iregs=2) as (p_in, t):
                b.la(t, "ptr_spill")
                b.ldx(p_in, t)
                b.add(p_in, p_in, 8)
                ent.reset_decoder(b, p_in)
            self._emit_frame_decode(
                b, ent, geom, ftype, display_index, use_vis, consts, fz,
                prefetch,
            )
            with b.scratch(iregs=2) as (p_in, t):
                b.la(t, "ptr_spill")
                b.ldx(p_in, t)
                with b.scratch(iregs=1) as flen:
                    b.ldw(flen, p_in, 4)
                    b.add(p_in, p_in, 8)
                    b.add(p_in, p_in, flen)
                b.stx(p_in, t)

        expected = np.concatenate(
            [np.concatenate([p.reshape(-1) for p in f]) for f in dec.frames]
        )

        def validate(machine) -> None:
            got = machine.read_buffer_array("yuv_out")[
                : n_frames * geom.frame_bytes
            ]
            expect_equal(got, expected, "mpeg-dec YUV output")

        return BuiltWorkload(
            name=self.name,
            variant=variant,
            program=b.build(),
            validate=validate,
            details={
                "video": f"{geom.width}x{geom.height}x{n_frames}",
                "stream_bytes": len(enc.data),
            },
        )

    # ------------------------------------------------------------------

    def _clear_coef(self, b):
        with b.scratch(iregs=1) as p:
            b.la(p, "blk_coef")
            for i in range(16):
                b.stx(Reg(0), p, 8 * i)

    def _emit_decode_mv(self, b, ent, value: Reg):
        b.call(ent.decode_dc)
        with b.scratch(iregs=1) as size:
            b.mov(size, ent.arg0)
            emit_receive_extend(b, ent, size)
        b.mov(value, ent.arg0)

    def _emit_frame_decode(self, b, ent, geom, ftype, display_index,
                           use_vis, consts, fz, prefetch):
        out_y, out_cb, out_cr = self._frame_offsets(geom, display_index)
        mbs_x, mbs_y = geom.width // 16, geom.height // 16
        if ftype == "I":
            self._emit_clear_dc_preds(b)
        # references live inside yuv_out (display slots 0 and 3)
        fwd_base = self._frame_offsets(geom, 0)[0]
        bwd_base = self._frame_offsets(geom, 3)[0]

        with _manual_loop(b, mbs_y) as my:
            with _manual_loop(b, mbs_x) as mx:
                y, x = b.iregs(2)
                b.sll(y, my, 4)
                b.sll(x, mx, 4)
                if prefetch:
                    b.pf(ent.stream, 128)
                if ftype == "I":
                    self._emit_decode_intra_mb(
                        b, ent, geom, (out_y, out_cb, out_cr), y, x,
                        use_vis, consts, fz, chained_preds=True)
                else:
                    mode_done = b.label("dec_mode_done")
                    intra_path = b.label("dec_intra")
                    b.li(ent.arg1, 1)
                    b.call(ent.getbits)
                    b.beq(ent.arg0, 0, intra_path, hint=False)
                    if ftype == "P":
                        dy, dx = b.iregs(2)
                        self._emit_decode_mv(b, ent, dy)
                        self._emit_decode_mv(b, ent, dx)
                        self._emit_build_pred(
                            b, geom, "yuv_out", fwd_base, y, x, dy, dx,
                            use_vis)
                        b.release(dy, dx)
                    else:
                        mvs = b.iregs(4)
                        for mv in mvs:
                            self._emit_decode_mv(b, ent, mv)
                        self._emit_build_pred(
                            b, geom, "yuv_out", fwd_base, y, x, mvs[0],
                            mvs[1], use_vis)
                        self._emit_build_pred(
                            b, geom, "yuv_out", bwd_base, y, x, mvs[2],
                            mvs[3], use_vis, suffix="2")
                        b.release(*mvs)
                        self._emit_average_preds(b, use_vis, consts, fz)
                    if use_vis:
                        b.set_gsr(align=4, scale=7)
                    self._emit_decode_inter_mb(
                        b, ent, geom, (out_y, out_cb, out_cr), y, x,
                        use_vis, consts, fz)
                    b.j(mode_done)
                    b.bind(intra_path)
                    if use_vis:
                        b.set_gsr(align=4, scale=7)
                    self._emit_decode_intra_mb(
                        b, ent, geom, (out_y, out_cb, out_cr), y, x,
                        use_vis, consts, fz, chained_preds=False)
                    b.bind(mode_done)
                b.release(y, x)

    def _emit_decode_intra_mb(self, b, ent, geom, out_offsets, y, x,
                              use_vis, consts, fz, chained_preds=False):
        out_y, out_cb, out_cr = out_offsets
        width, cw = geom.width, geom.cw
        with b.scratch(iregs=1) as p_out:
            for by, bx in LUMA_BLOCKS:
                self._clear_coef(b)
                with b.scratch(iregs=1) as p_coef:
                    b.la(p_coef, "blk_coef")
                    pred = self._load_pred(b, 0, chained_preds)
                    emit_decode_block(b, ent, p_coef, 0, 63, pred)
                    self._store_pred(b, pred, 0, chained_preds)
                self._plane_ptr(b, p_out, "yuv_out", out_y, y, x, width)
                b.add(p_out, p_out, by * width + bx)
                self._emit_intra_block_recon(b, p_out, width, use_vis,
                                             consts, fz)
            with b.scratch(iregs=1) as coff:
                self._chroma_offset(b, coff, y, x, cw)
                for comp, base in enumerate((out_cb, out_cr)):
                    self._clear_coef(b)
                    with b.scratch(iregs=1) as p_coef:
                        b.la(p_coef, "blk_coef")
                        pred = self._load_pred(b, 1 + comp, chained_preds)
                        emit_decode_block(b, ent, p_coef, 0, 63, pred)
                        self._store_pred(b, pred, 1 + comp, chained_preds)
                    self._offset_ptr(b, p_out, "yuv_out", base, coff)
                    self._emit_intra_block_recon(b, p_out, cw, use_vis,
                                                 consts, fz)

    def _emit_decode_inter_mb(self, b, ent, geom, out_offsets, y, x,
                              use_vis, consts, fz):
        out_y, out_cb, out_cr = out_offsets
        width, cw = geom.width, geom.cw
        with b.scratch(iregs=2) as (p_out, p_pred):
            for by, bx in LUMA_BLOCKS:
                self._clear_coef(b)
                with b.scratch(iregs=2) as (p_coef, zero_pred):
                    b.la(p_coef, "blk_coef")
                    b.li(zero_pred, 0)
                    emit_decode_block(b, ent, p_coef, 0, 63, zero_pred)
                self._plane_ptr(b, p_out, "yuv_out", out_y, y, x, width)
                b.add(p_out, p_out, by * width + bx)
                b.la(p_pred, "pred_y", offset=by * 16 + bx)
                self._emit_inter_block_recon(
                    b, p_out, width, p_pred, 16, use_vis, consts, fz)
            with b.scratch(iregs=1) as coff:
                self._chroma_offset(b, coff, y, x, cw)
                for comp, (base, pname) in enumerate(
                    ((out_cb, "pred_cb"), (out_cr, "pred_cr"))
                ):
                    self._clear_coef(b)
                    with b.scratch(iregs=2) as (p_coef, zero_pred):
                        b.la(p_coef, "blk_coef")
                        b.li(zero_pred, 0)
                        emit_decode_block(b, ent, p_coef, 0, 63, zero_pred)
                    self._offset_ptr(b, p_out, "yuv_out", base, coff)
                    b.la(p_pred, pname)
                    self._emit_inter_block_recon(
                        b, p_out, cw, p_pred, 8, use_vis, consts, fz)
