"""The benchmark registry: Table 1 of the paper."""

from __future__ import annotations

from typing import Dict, Iterable, List

from .base import Variant, Workload
from .jpeg import CjpegNpWorkload, CjpegWorkload, DjpegNpWorkload, DjpegWorkload
from .kernels import (
    AdditionWorkload,
    BlendWorkload,
    ConvWorkload,
    DotprodWorkload,
    ScalingWorkload,
    ThreshWorkload,
)
from .mpeg import MpegDecWorkload, MpegEncWorkload

#: Version stamp for the persistent simulation-result cache
#: (``repro.experiments.parallel``).  Bump whenever benchmark code
#: generation changes in a way that alters emitted programs — cached
#: :class:`~repro.cpu.stats.ExecutionStats` keyed under an older
#: version are invalidated wholesale.
REGISTRY_VERSION = 1

#: paper order: image processing, image source coding, video source coding.
ALL_WORKLOADS: List[Workload] = [
    AdditionWorkload(),
    BlendWorkload(),
    ConvWorkload(),
    DotprodWorkload(),
    ScalingWorkload(),
    ThreshWorkload(),
    CjpegWorkload(),
    DjpegWorkload(),
    CjpegNpWorkload(),
    DjpegNpWorkload(),
    MpegEncWorkload(),
    MpegDecWorkload(),
]

BY_NAME: Dict[str, Workload] = {w.name: w for w in ALL_WORKLOADS}

#: the six VSDK kernels (Section 2.1.1)
KERNEL_NAMES = ("addition", "blend", "conv", "dotprod", "scaling", "thresh")

#: benchmarks Figure 3 reports (>= ~5% memory stall time with VIS)
PREFETCH_NAMES = KERNEL_NAMES + ("cjpeg", "djpeg", "mpeg-dec")


def get(name: str) -> Workload:
    try:
        return BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(BY_NAME)}"
        ) from None


def names() -> Iterable[str]:
    return [w.name for w in ALL_WORKLOADS]
