"""Workload abstraction: a benchmark = program variants + validation.

Every benchmark of Table 1 is a :class:`Workload` that can build four
program variants:

* ``scalar``        — optimized scalar code (skewed streams, unrolled
                      inner loops, per footnote 3 of the paper),
* ``vis``           — the hand-VIS-ified version (Section 2.3.2),
* ``vis+pf``        — VIS plus Mowry-style software prefetching
                      (Section 2.3.3); this is Figure 3's "+PF" bar,
* ``scalar+pf``     — scalar plus prefetching (used by ablations).

``BuiltWorkload.validate`` re-checks the simulated machine's output
against the numpy reference implementation, so every timing result in
the experiments is backed by a functional-correctness check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..asm.program import Program
from ..sim.machine import Machine


class Variant(enum.Enum):
    SCALAR = "scalar"
    VIS = "vis"
    VIS_PREFETCH = "vis+pf"
    SCALAR_PREFETCH = "scalar+pf"

    @property
    def uses_vis(self) -> bool:
        return self in (Variant.VIS, Variant.VIS_PREFETCH)

    @property
    def uses_prefetch(self) -> bool:
        return self in (Variant.VIS_PREFETCH, Variant.SCALAR_PREFETCH)


class ValidationError(AssertionError):
    """The simulated output does not match the reference output."""


@dataclass
class BuiltWorkload:
    """A ready-to-simulate benchmark instance."""

    name: str
    variant: Variant
    program: Program
    #: raises ValidationError unless the machine's final memory state
    #: matches the reference computation
    validate: Callable[[Machine], None]
    #: free-form details (input geometry, parameters) for reports
    details: Dict[str, object] = field(default_factory=dict)

    def run_and_validate(self, max_instructions: int = 200_000_000) -> Machine:
        """Functional run + validation (no timing); returns the machine."""
        machine = Machine(self.program)
        machine.run_functional(max_instructions=max_instructions)
        self.validate(machine)
        return machine


class Workload:
    """Base class for the 12 benchmarks (Table 1)."""

    #: short identifier, e.g. ``"addition"``
    name: str = ""
    #: Table 1 grouping
    group: str = ""
    #: one-line description (mirrors Table 1)
    description: str = ""

    #: variants this workload supports (all four by default)
    supported_variants: Tuple[Variant, ...] = (
        Variant.SCALAR,
        Variant.VIS,
        Variant.VIS_PREFETCH,
        Variant.SCALAR_PREFETCH,
    )

    def build(self, variant: Variant, scale) -> BuiltWorkload:
        raise NotImplementedError

    def supports(self, variant: Variant) -> bool:
        return variant in self.supported_variants


def expect_equal(actual, expected, what: str) -> None:
    """Byte/array equality helper with a diagnostic message."""
    import numpy as np

    actual = np.asarray(actual)
    expected = np.asarray(expected)
    if actual.shape != expected.shape:
        raise ValidationError(
            f"{what}: shape {actual.shape} != expected {expected.shape}"
        )
    if not np.array_equal(actual, expected):
        bad = np.nonzero(actual != expected)
        first = tuple(int(axis[0]) for axis in bad)
        raise ValidationError(
            f"{what}: {len(bad[0])} mismatching elements; first at {first}: "
            f"got {actual[first]}, expected {expected[first]}"
        )
