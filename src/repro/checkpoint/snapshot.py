"""Snapshot files + the checkpointed simulation loop.

One snapshot is a single JSON file::

    {"magic": "repro-snapshot", "version": 1,
     "meta": {...identity of the simulated point...},
     "progress": {"retired": N, "cycles": C, "created": t},
     "payload_sha256": "...",
     "payload_json": "{\"machine\": ..., \"model\": ..., ...}"}

The machine/pipeline/memory/tracer state lives in ``payload_json`` as
an *embedded JSON string* and the checksum covers exactly that string —
re-canonicalising the payload after a round trip would be fragile
(``MemoryStats`` histograms have integer dict keys whose int-sorted and
string-sorted orders differ), whereas hashing the stored bytes is not.

``meta`` pins everything a snapshot must agree on to be restorable:
the point's cache key, the program digest, the processor/memory
configs, the pipeline kind and whether a tracer was attached.  A
snapshot whose meta does not match the current run is *skipped* (cold
start), never trusted.  A snapshot that fails its checksum, or does not
parse, is moved to ``<dir>/quarantine/`` and the loader falls back to
the next-older file.

Writes are atomic (temp file + ``os.replace``) so a SIGKILL mid-write
can never leave a half-snapshot with a valid name behind.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from ..cpu.stats import ExecutionStats

log = logging.getLogger("repro.checkpoint")

#: bump when the snapshot record layout (or any subsystem's
#: ``snapshot()`` payload shape) changes incompatibly
SNAPSHOT_FORMAT_VERSION = 1

#: first bytes of every snapshot record
SNAPSHOT_MAGIC = "repro-snapshot"

#: snapshot filename suffix; files are ``ckpt_<retired:015d>.ckpt.json``
#: so lexicographic order == progress order
SNAPSHOT_SUFFIX = ".ckpt.json"

#: default snapshot cadence in *simulated cycles*.  Full-scale MPEG-2
#: points run hundreds of millions of cycles, so 10M cycles yields tens
#: of snapshots on the points that need them while a tiny-scale point
#: (tens of thousands of cycles) writes none at all — which is exactly
#: the overhead contract (checkpointing-enabled tiny grids must stay
#: within a few percent of a checkpoint-free run).
DEFAULT_CHECKPOINT_INTERVAL = 10_000_000

#: snapshots retained per point (newest N; older ones are pruned after
#: every successful write)
DEFAULT_CHECKPOINT_KEEP = 2

#: subdirectory (inside a point's snapshot directory) holding corrupt
#: snapshots moved aside for post-mortem
QUARANTINE_DIRNAME = "quarantine"


class CheckpointError(RuntimeError):
    """A snapshot file is unreadable, corrupt, or not restorable."""


@dataclass
class CheckpointSession:
    """Per-point checkpointing knobs + outcome counters.

    The worker arms one session per simulation point; after the run,
    :attr:`resumed_from` names the snapshot the point restored from
    (``None`` = cold start) and flows into the run manifest.
    """

    #: where this point's snapshots live (one directory per point)
    directory: Path
    #: snapshot cadence in simulated cycles
    interval: int = DEFAULT_CHECKPOINT_INTERVAL
    #: newest snapshots retained after each write
    keep: int = DEFAULT_CHECKPOINT_KEEP
    #: the point's cache content key (part of the identity meta)
    point_key: str = ""
    #: human-readable label (for logs / fault-injection hooks)
    label: str = ""
    #: snapshot filename this run restored from (``None`` = cold start)
    resumed_from: Optional[str] = None
    snapshots_written: int = 0
    snapshots_quarantined: int = 0
    #: snapshots skipped because their identity meta did not match
    snapshots_mismatched: int = 0

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        if self.interval <= 0:
            raise ValueError("checkpoint interval must be positive")

    @property
    def chunk_size(self) -> int:
        """Trace chunk size for the checkpointed run.

        Snapshots happen only at chunk boundaries, so the chunk must be
        (much) smaller than the interval or small test intervals would
        never fire; the default interval keeps the machine's normal
        64K-event chunks, so enabling checkpointing does not perturb
        the hot loop at all.
        """
        return min(1 << 16, max(256, self.interval // 4))


# ---------------------------------------------------------------------------
# Identity meta
# ---------------------------------------------------------------------------


def identity_meta(
    machine: Any,
    model: Any,
    memory: Any,
    tracer: Any,
    benchmark: str,
    point_key: str = "",
) -> Dict[str, Any]:
    """Everything a snapshot and a would-be resumer must agree on.

    Restoring into a different program, config, pipeline kind, or
    traced-ness would silently corrupt results; any mismatch makes the
    loader skip the snapshot (cold start) instead.
    """
    from ..analyze.verify import program_digest  # lazy: avoid cycle at import

    return {
        "point_key": point_key,
        "benchmark": benchmark,
        "program": machine.program.name,
        "program_digest": program_digest(machine.program),
        "memory_size": machine.memory_size,
        "model": model.MODEL_KIND,
        "cpu": model.config.to_dict(),
        "mem": memory.config.to_dict(),
        "traced": tracer is not None,
    }


# ---------------------------------------------------------------------------
# Snapshot file I/O
# ---------------------------------------------------------------------------


def _payload_checksum(payload_json: str) -> str:
    return hashlib.sha256(payload_json.encode("utf-8")).hexdigest()


def _atomic_write(directory: Path, path: Path, text: str) -> None:
    fd, tmp = tempfile.mkstemp(
        dir=str(directory), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_snapshot(
    directory: Path,
    meta: Dict[str, Any],
    progress: Dict[str, Any],
    payload: Dict[str, Any],
) -> Path:
    """Atomically persist one snapshot; returns its path.

    ``progress`` must carry ``retired`` (used for the filename, so
    lexicographic order is progress order); ``created`` is stamped here
    if absent.  Raises :class:`CheckpointError` on I/O failure.
    """
    directory = Path(directory)
    progress = dict(progress)
    progress.setdefault("created", time.time())
    payload_json = json.dumps(payload, separators=(",", ":"))
    record = {
        "magic": SNAPSHOT_MAGIC,
        "version": SNAPSHOT_FORMAT_VERSION,
        "meta": meta,
        "progress": progress,
        "payload_sha256": _payload_checksum(payload_json),
        "payload_json": payload_json,
    }
    name = f"ckpt_{int(progress['retired']):015d}{SNAPSHOT_SUFFIX}"
    path = directory / name
    try:
        directory.mkdir(parents=True, exist_ok=True)
        _atomic_write(directory, path, json.dumps(record, sort_keys=True))
    except OSError as exc:
        raise CheckpointError(f"cannot write snapshot {path}: {exc}") from exc
    return path


def load_snapshot(
    path: Path,
) -> Tuple[Dict[str, Any], Dict[str, Any], Dict[str, Any]]:
    """Read and verify one snapshot file -> ``(meta, progress, payload)``.

    Raises :class:`CheckpointError` on unreadable files, bad
    magic/version, malformed JSON, or a payload checksum mismatch.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckpointError(f"cannot read snapshot {path}: {exc}") from exc
    try:
        record = json.loads(text)
    except ValueError as exc:
        raise CheckpointError(
            f"snapshot {path.name} is not valid JSON (torn write?)"
        ) from exc
    if not isinstance(record, dict) or record.get("magic") != SNAPSHOT_MAGIC:
        raise CheckpointError(f"snapshot {path.name} has bad magic")
    if record.get("version") != SNAPSHOT_FORMAT_VERSION:
        raise CheckpointError(
            f"snapshot {path.name} has unsupported version "
            f"{record.get('version')!r}"
        )
    payload_json = record.get("payload_json")
    if not isinstance(payload_json, str):
        raise CheckpointError(f"snapshot {path.name} has no payload")
    if record.get("payload_sha256") != _payload_checksum(payload_json):
        raise CheckpointError(
            f"snapshot {path.name} failed its payload checksum"
        )
    try:
        payload = json.loads(payload_json)
    except ValueError as exc:  # checksum passed but payload malformed
        raise CheckpointError(
            f"snapshot {path.name} has malformed payload JSON"
        ) from exc
    meta = record.get("meta")
    progress = record.get("progress")
    if not isinstance(meta, dict) or not isinstance(progress, dict):
        raise CheckpointError(f"snapshot {path.name} has malformed envelope")
    return meta, progress, payload


def list_snapshots(directory: Path) -> List[Path]:
    """Snapshot files in ``directory``, oldest first (empty list if the
    directory does not exist)."""
    directory = Path(directory)
    try:
        entries = sorted(
            p for p in directory.iterdir()
            if p.name.startswith("ckpt_") and p.name.endswith(SNAPSHOT_SUFFIX)
        )
    except OSError:
        return []
    return entries


def quarantine_snapshot(path: Path) -> bool:
    """Move a corrupt snapshot into ``quarantine/`` next to it (never
    trust it, never crash); returns ``True`` if the move happened."""
    path = Path(path)
    qdir = path.parent / QUARANTINE_DIRNAME
    try:
        qdir.mkdir(exist_ok=True)
        os.replace(path, qdir / path.name)
    except OSError as exc:
        log.warning(
            "corrupt snapshot %s could not be quarantined (%s); ignoring it",
            path.name, exc,
        )
        return False
    log.warning(
        "quarantined corrupt snapshot %s -> %s/", path.name, QUARANTINE_DIRNAME
    )
    return True


def prune_snapshots(directory: Path, keep: int) -> int:
    """Delete all but the newest ``keep`` snapshots; returns the count
    removed.  Failures are logged, never raised."""
    removed = 0
    snapshots = list_snapshots(directory)
    if keep > 0:
        snapshots = snapshots[:-keep]
    for path in snapshots:
        try:
            path.unlink()
            removed += 1
        except OSError as exc:
            log.warning("could not prune snapshot %s: %s", path, exc)
    return removed


def snapshot_progress(directory: Path) -> Optional[Tuple[str, Dict[str, Any]]]:
    """Name + progress dict of the newest *readable* snapshot in a
    point's directory, without restoring its payload.  Crash recovery
    uses this for provenance: a replayed point can report how far its
    resumable snapshot had progressed before the kill.  ``None`` means
    no readable snapshot (cold start)."""
    for path in reversed(list_snapshots(directory)):
        try:
            _meta, progress, _payload = load_snapshot(path)
        except CheckpointError:
            continue
        return path.name, progress
    return None


def load_newest_valid(
    session: CheckpointSession, expected_meta: Dict[str, Any]
) -> Optional[Tuple[str, Dict[str, Any]]]:
    """Newest restorable snapshot for this point -> ``(name, payload)``.

    Walks newest -> oldest: corrupt files are quarantined and the next
    older one is tried; an identity-meta mismatch (different program /
    config / pipeline / traced-ness) skips the file.  ``None`` means
    cold start.
    """
    for path in reversed(list_snapshots(session.directory)):
        try:
            meta, _progress, payload = load_snapshot(path)
        except CheckpointError as exc:
            log.warning("%s; falling back to an older snapshot", exc)
            quarantine_snapshot(path)
            session.snapshots_quarantined += 1
            continue
        if meta != expected_meta:
            log.warning(
                "snapshot %s does not match this point's identity "
                "(stale program/config?); skipping it", path.name,
            )
            session.snapshots_mismatched += 1
            continue
        return path.name, payload
    return None


# ---------------------------------------------------------------------------
# Whole-stack state capture / restore
# ---------------------------------------------------------------------------


def build_state(
    machine: Any, model: Any, memory: Any, tracer: Any = None
) -> Dict[str, Any]:
    """Serialize every layer of a quiescent (chunk-boundary) stack."""
    return {
        "machine": machine.snapshot(),
        "model": model.snapshot(),
        "memory": memory.snapshot(),
        "tracer": tracer.snapshot() if tracer is not None else None,
    }


def restore_state(
    payload: Dict[str, Any],
    machine: Any,
    model: Any,
    memory: Any,
    tracer: Any = None,
) -> None:
    """Restore every layer from :func:`build_state` output.

    Raises :class:`CheckpointError` if any layer rejects its state
    (callers treat that like a corrupt snapshot).
    """
    try:
        machine.restore(payload["machine"])
        model.restore(payload["model"])
        memory.restore(payload["memory"])
        if tracer is not None:
            tracer_state = payload.get("tracer")
            if tracer_state is None:
                raise ValueError("snapshot carries no tracer state")
            tracer.restore(tracer_state)
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise CheckpointError(f"snapshot payload rejected: {exc}") from exc


# ---------------------------------------------------------------------------
# The checkpointed simulation loop
# ---------------------------------------------------------------------------


def run_with_checkpoints(
    session: CheckpointSession,
    machine: Any,
    model: Any,
    memory: Any,
    tracer: Any,
    benchmark: str,
    max_steps: Optional[int] = None,
) -> "ExecutionStats":
    """Drive one simulation with periodic snapshots; returns its
    :class:`~repro.cpu.stats.ExecutionStats`.

    Identical in observable behaviour to
    ``model.simulate(machine.run(...), benchmark)`` — the trace-chunk
    partition provably cannot change the stats — except that:

    * before the first cycle, the newest valid snapshot for this point
      (if any) is restored and execution resumes mid-program
      (``session.resumed_from`` records which file);
    * at every chunk boundary where at least ``session.interval``
      simulated cycles elapsed since the last snapshot, the whole stack
      is serialized and atomically written, then snapshots beyond
      ``session.keep`` are pruned.

    Snapshots capture only quiescent state: the functional generator is
    suspended right after yielding a chunk and the model has consumed
    that chunk completely, so no instruction is mid-decode and no
    pipeline event is half-applied.
    """
    expected_meta = identity_meta(
        machine, model, memory, tracer, benchmark, session.point_key
    )
    model.begin(benchmark)
    resume = False
    found = load_newest_valid(session, expected_meta)
    if found is not None:
        name, payload = found
        restore_state(payload, machine, model, memory, tracer)
        session.resumed_from = name
        resume = True
        log.info(
            "%s: resumed from snapshot %s (retired=%d, cycle=%d)",
            session.label or benchmark, name,
            model.retire.retired, model.retire.total_cycles,
        )
    last_cycles = model.retire.total_cycles
    interval = session.interval
    inject_label = f"ckpt:{session.label or benchmark}"
    # The vector engine replays memoized traces without materializing
    # machine state until the end of the run; it reports that window via
    # can_snapshot().  Engines without the method are always quiescent
    # at a chunk boundary.
    can_snapshot = getattr(machine, "can_snapshot", None)
    for chunk in machine.run(
        max_instructions=max_steps,
        chunk_size=session.chunk_size,
        observer=tracer,
        resume=resume,
    ):
        model.feed_chunk(chunk)
        if machine.run_pc < 0:
            break  # program halted: the final (partial) chunk
        cycles = model.retire.total_cycles
        if cycles - last_cycles >= interval and (
            can_snapshot is None or can_snapshot()
        ):
            progress = {
                "retired": model.retire.retired,
                "cycles": cycles,
            }
            write_snapshot(
                session.directory, expected_meta, progress,
                build_state(machine, model, memory, tracer),
            )
            session.snapshots_written += 1
            prune_snapshots(session.directory, session.keep)
            last_cycles = cycles
            # chaos hook: lets the test harness kill/hang a worker
            # right after it persisted a snapshot (lazy import keeps
            # the checkpoint layer independent of the fault layer)
            from ..experiments.faults import maybe_inject

            maybe_inject(inject_label)
    stats: "ExecutionStats" = model.finish()
    return stats
