"""Cycle-level checkpoint/restore for preemptible simulations.

A long simulation point (a full-scale MPEG-2 grid cell runs hundreds of
millions of cycles) used to be the unit of failure recovery: PR 3's
fault layer retries a SIGKILLed *point* from cycle 0.  This package
makes the simulator itself restorable, so a point killed at cycle 180M
resumes from its newest on-disk snapshot instead of starting over —
with **byte-identical** final :class:`~repro.cpu.stats.ExecutionStats`
versus an uninterrupted run.

The unit of capture is a *chunk boundary*: the functional machine
yields its dynamic trace in chunks, and between chunks every layer of
the stack is quiescent (no instruction is mid-decode, no pipeline event
is half-applied), so ``snapshot()`` observes a complete, consistent
machine state.  Snapshots cover:

* the functional machine (registers incl. GSR, the full memory image,
  resume PC, executed-instruction counters),
* the active pipeline model (in-order or OoO: reg-ready scoreboard, FU
  pools, memory queue, retire/branch rings, fetch/redirect state),
* the branch predictor + return-address stack,
* the :class:`~repro.mem.MemorySystem` (cache tag arrays with LRU/dirty
  state, MSHRs, prefetch bookkeeping, port/bank occupancy, stats),
* the :class:`~repro.cpu.stats.RetireUnit` partial stall accounting and
  — when auditing — the tracer/aggregator replicas.

Snapshot files are versioned, sha256-checksummed and written atomically
(temp + ``os.replace``); corrupt snapshots are quarantined and the
loader falls back to the next-older one, then to a cold start.  See
EXPERIMENTS.md, "Checkpointing".
"""

from .snapshot import (
    DEFAULT_CHECKPOINT_INTERVAL,
    DEFAULT_CHECKPOINT_KEEP,
    SNAPSHOT_FORMAT_VERSION,
    SNAPSHOT_SUFFIX,
    CheckpointError,
    CheckpointSession,
    build_state,
    identity_meta,
    list_snapshots,
    load_newest_valid,
    load_snapshot,
    quarantine_snapshot,
    restore_state,
    run_with_checkpoints,
    write_snapshot,
)

__all__ = [
    "DEFAULT_CHECKPOINT_INTERVAL",
    "DEFAULT_CHECKPOINT_KEEP",
    "SNAPSHOT_FORMAT_VERSION",
    "SNAPSHOT_SUFFIX",
    "CheckpointError",
    "CheckpointSession",
    "build_state",
    "identity_meta",
    "list_snapshots",
    "load_newest_valid",
    "load_snapshot",
    "quarantine_snapshot",
    "restore_state",
    "run_with_checkpoints",
    "write_snapshot",
]
