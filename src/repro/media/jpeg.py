"""JPEG-style image codec (reference implementation).

Mirrors the phase structure of the IJG release 6a codecs the paper
benchmarks (Section 2.1.2): color conversion, 4:2:0 chroma decimation,
8x8 forward DCT, quantization, zigzag scanning and Huffman bitstream
coding — in both a *non-progressive* form (one interleaved MCU scan,
blocked pipeline, tiny working set) and a *progressive* form (a DC scan
plus spectral-selection AC scans per component, each re-traversing the
image-sized coefficient buffer — the multi-pass behaviour behind the
paper's cache-size sensitivity result for cjpeg/djpeg).

The bitstream container is repo-specific (``SJPG``), not
standards-compliant: Huffman tables are fixed (see
:mod:`repro.media.huffman`), there is no marker/stuffing layer.
DESIGN.md substitution 4 documents this.

Every phase output is exposed so the simulated assembly benchmarks can
be validated phase-by-phase and bit-exactly end-to-end.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .bitstream import (
    BitReader,
    BitWriter,
    magnitude_bits,
    magnitude_category,
    receive_extend,
)
from .colorspace import (
    decimate420,
    rgb_to_ycbcr,
    upsample420,
    ycbcr_to_rgb,
)
from .dct import (
    BASE_CHROMA_QUANT,
    BASE_LUMA_QUANT,
    dequantize,
    divisors_for,
    fdct2d,
    idct2d,
    quantize,
)
from .huffman import AC_TABLE, DC_TABLE
from .zigzag import ZIGZAG

MAGIC = b"SJPG"

#: Spectral-selection bands of the progressive mode (after the DC scan).
PROGRESSIVE_BANDS: Tuple[Tuple[int, int], ...] = ((1, 5), (6, 20), (21, 63))

#: Component ids.
COMP_Y, COMP_CB, COMP_CR = 0, 1, 2
COMP_INTERLEAVED = 255


def plane_to_blocks(plane: np.ndarray) -> np.ndarray:
    """``(h, w)`` -> ``(n_blocks, 8, 8)`` in raster block order."""
    h, w = plane.shape
    if h % 8 or w % 8:
        raise ValueError("plane dimensions must be multiples of 8")
    return (
        plane.reshape(h // 8, 8, w // 8, 8).swapaxes(1, 2).reshape(-1, 8, 8)
    )


def blocks_to_plane(blocks: np.ndarray, h: int, w: int) -> np.ndarray:
    return (
        blocks.reshape(h // 8, w // 8, 8, 8).swapaxes(1, 2).reshape(h, w)
    )


def quantized_planes(
    rgb: np.ndarray, quality: int
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Run the pixel phases: returns ``(planes, coefficients)`` where
    planes are the post-conversion uint8 component planes and
    coefficients the quantized DCT blocks per component."""
    y, cb, cr = rgb_to_ycbcr(rgb)
    cb = decimate420(cb)
    cr = decimate420(cr)
    luma_div = divisors_for(BASE_LUMA_QUANT, quality)
    chroma_div = divisors_for(BASE_CHROMA_QUANT, quality)
    planes = {"y": y, "cb": cb, "cr": cr}
    coefficients = {}
    for name, plane in planes.items():
        divisors = luma_div if name == "y" else chroma_div
        blocks = plane_to_blocks(plane).astype(np.int64) - 128
        coefficients[name] = quantize(fdct2d(blocks), divisors).astype(np.int16)
    return planes, coefficients


# ---------------------------------------------------------------------------
# Scan-level entropy coding.
# ---------------------------------------------------------------------------


def encode_block(
    writer: BitWriter,
    zz: np.ndarray,
    ss: int,
    se: int,
    dc_pred: int,
) -> int:
    """Huffman-encode one zigzag-ordered block restricted to the
    spectral band [ss, se]; returns the updated DC predictor."""
    if ss == 0:
        dc = int(zz[0])
        diff = dc - dc_pred
        size = magnitude_category(diff)
        DC_TABLE.encode(writer, size)
        if size:
            writer.write(magnitude_bits(diff, size), size)
        dc_pred = dc
    run = 0
    for k in range(max(ss, 1), se + 1):
        value = int(zz[k])
        if value == 0:
            run += 1
            continue
        while run > 15:
            AC_TABLE.encode(writer, 0xF0)  # ZRL
            run -= 16
        size = magnitude_category(value)
        AC_TABLE.encode(writer, (run << 4) | size)
        writer.write(magnitude_bits(value, size), size)
        run = 0
    if run > 0 and se >= max(ss, 1):
        AC_TABLE.encode(writer, 0x00)  # EOB
    return dc_pred


def decode_block(
    reader: BitReader,
    zz: np.ndarray,
    ss: int,
    se: int,
    dc_pred: int,
) -> int:
    """Inverse of :func:`encode_block`; fills ``zz`` in place."""
    if ss == 0:
        size = DC_TABLE.decode(reader)
        diff = receive_extend(reader.read(size), size) if size else 0
        dc_pred += diff
        zz[0] = dc_pred
    k = max(ss, 1)
    while k <= se:
        symbol = AC_TABLE.decode(reader)
        if symbol == 0x00:  # EOB
            break
        if symbol == 0xF0:  # ZRL
            k += 16
            continue
        run, size = symbol >> 4, symbol & 0xF
        k += run
        if k > se:
            raise ValueError("AC coefficient index escaped the band")
        zz[k] = receive_extend(reader.read(size), size)
        k += 1
    return dc_pred


# ---------------------------------------------------------------------------
# Whole-image codec.
# ---------------------------------------------------------------------------


@dataclass
class EncodeResult:
    data: bytes
    planes: Dict[str, np.ndarray]
    coefficients: Dict[str, np.ndarray]
    scans: List[Tuple[int, int, int, bytes]] = field(default_factory=list)


@dataclass
class DecodeResult:
    rgb: np.ndarray
    planes: Dict[str, np.ndarray]
    coefficients: Dict[str, np.ndarray]


def _scan_list(progressive: bool) -> List[Tuple[int, int, int]]:
    """(component, ss, se) triples in scan order."""
    if not progressive:
        return [(COMP_INTERLEAVED, 0, 63)]
    scans: List[Tuple[int, int, int]] = [
        (comp, 0, 0) for comp in (COMP_Y, COMP_CB, COMP_CR)
    ]
    for lo, hi in PROGRESSIVE_BANDS:
        for comp in (COMP_Y, COMP_CB, COMP_CR):
            scans.append((comp, lo, hi))
    return scans


#: public alias used by the assembly codecs (the scan schedule is part
#: of the stream format).
def scan_list(progressive: bool):
    return _scan_list(progressive)


_COMP_NAMES = {COMP_Y: "y", COMP_CB: "cb", COMP_CR: "cr"}


def _mcu_block_sequence(width: int, height: int):
    """Block indices visited by one interleaved (non-progressive) scan:
    per 16x16 MCU, four Y blocks then one Cb and one Cr block."""
    mcus_x, mcus_y = width // 16, height // 16
    luma_stride = width // 8
    chroma_stride = width // 16
    for my in range(mcus_y):
        for mx in range(mcus_x):
            for by, bx in ((0, 0), (0, 1), (1, 0), (1, 1)):
                yield COMP_Y, (2 * my + by) * luma_stride + 2 * mx + bx
            yield COMP_CB, my * chroma_stride + mx
            yield COMP_CR, my * chroma_stride + mx
    return


def encode(rgb: np.ndarray, quality: int = 75, progressive: bool = False) -> EncodeResult:
    height, width = rgb.shape[:2]
    if width % 16 or height % 16:
        raise ValueError("image dimensions must be multiples of 16")
    planes, coefficients = quantized_planes(rgb, quality)
    zigzagged = {
        name: blocks.reshape(-1, 64)[:, ZIGZAG] for name, blocks in coefficients.items()
    }

    scans_payload: List[Tuple[int, int, int, bytes]] = []
    for comp, ss, se in _scan_list(progressive):
        writer = BitWriter()
        if comp == COMP_INTERLEAVED:
            preds = {COMP_Y: 0, COMP_CB: 0, COMP_CR: 0}
            for block_comp, index in _mcu_block_sequence(width, height):
                zz = zigzagged[_COMP_NAMES[block_comp]][index]
                preds[block_comp] = encode_block(writer, zz, 0, 63, preds[block_comp])
        else:
            pred = 0
            for zz in zigzagged[_COMP_NAMES[comp]]:
                pred = encode_block(writer, zz, ss, se, pred)
        scans_payload.append((comp, ss, se, writer.getvalue()))

    out = bytearray()
    out += MAGIC
    out += struct.pack(
        "<HHBBBB", width, height, quality, 1 if progressive else 0,
        len(scans_payload), 0,
    )
    for comp, ss, se, payload in scans_payload:
        out += struct.pack("<BBBBI", comp, ss, se, 0, len(payload))
        out += payload
    return EncodeResult(
        data=bytes(out),
        planes=planes,
        coefficients=coefficients,
        scans=scans_payload,
    )


def decode(data: bytes) -> DecodeResult:
    if data[:4] != MAGIC:
        raise ValueError("not an SJPG stream")
    width, height, quality, progressive, n_scans, _ = struct.unpack(
        "<HHBBBB", data[4:12]
    )
    offset = 12
    shapes = {
        "y": (height, width),
        "cb": (height // 2, width // 2),
        "cr": (height // 2, width // 2),
    }
    zigzagged = {
        name: np.zeros((h // 8) * (w // 8) * 64, dtype=np.int64).reshape(-1, 64)
        for name, (h, w) in shapes.items()
    }

    for _ in range(n_scans):
        comp, ss, se, _pad, nbytes = struct.unpack(
            "<BBBBI", data[offset : offset + 8]
        )
        offset += 8
        reader = BitReader(data[offset : offset + nbytes])
        offset += nbytes
        if comp == COMP_INTERLEAVED:
            preds = {COMP_Y: 0, COMP_CB: 0, COMP_CR: 0}
            for block_comp, index in _mcu_block_sequence(width, height):
                zz = zigzagged[_COMP_NAMES[block_comp]][index]
                preds[block_comp] = decode_block(reader, zz, 0, 63, preds[block_comp])
        else:
            pred = 0
            for zz in zigzagged[_COMP_NAMES[comp]]:
                pred = decode_block(reader, zz, ss, se, pred)

    luma_div = divisors_for(BASE_LUMA_QUANT, quality)
    chroma_div = divisors_for(BASE_CHROMA_QUANT, quality)
    planes: Dict[str, np.ndarray] = {}
    coefficients: Dict[str, np.ndarray] = {}
    for name, (h, w) in shapes.items():
        divisors = luma_div if name == "y" else chroma_div
        natural = np.zeros_like(zigzagged[name])
        natural[:, ZIGZAG] = zigzagged[name]
        blocks = natural.reshape(-1, 8, 8)
        coefficients[name] = blocks.astype(np.int16)
        samples = idct2d(dequantize(blocks, divisors)) + 128
        planes[name] = np.clip(
            blocks_to_plane(samples, h, w), 0, 255
        ).astype(np.uint8)

    rgb = ycbcr_to_rgb(
        planes["y"], upsample420(planes["cb"]), upsample420(planes["cr"])
    )
    return DecodeResult(rgb=rgb, planes=planes, coefficients=coefficients)
