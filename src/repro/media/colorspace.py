"""Integer RGB <-> YCbCr conversion and 4:2:0 chroma (de)cimation.

Per-product rounding (``(x*c + 0x80) >> 8``) is used instead of a
single rounded sum so that the VIS variant — three ``fmul8x16au``
products accumulated with ``fpadd16`` — matches the scalar code
bit-for-bit (at most +-1 from the ideal conversion, well inside the
paper's "visually imperceptible" criterion).
"""

from __future__ import annotations

import numpy as np

# 8.8 fixed-point ITU-601 coefficients.
Y_COEF = (77, 150, 29)
CB_COEF = (-43, -85, 128)
CR_COEF = (128, -107, -21)

# Inverse coefficients.  All chosen *even* so that
# ``((x-128)*c + 0x80) >> 8  ==  ((x*c + 0x80) >> 8) - (128*c >> 8)``
# holds exactly — the identity that lets the VIS ``fmul8x16au`` path
# (which multiplies unsigned bytes) match the signed scalar math
# bit-for-bit by folding the -128 bias into an additive constant.
R_FROM_CR = 358
G_FROM_CB = -88
G_FROM_CR = -182
B_FROM_CB = 454


def _mul_round(x: np.ndarray, coeff: int) -> np.ndarray:
    return (x * coeff + 0x80) >> 8


def rgb_to_ycbcr(rgb: np.ndarray):
    """``(h, w, 3)`` uint8 -> three ``(h, w)`` uint8 planes."""
    r = rgb[:, :, 0].astype(np.int64)
    g = rgb[:, :, 1].astype(np.int64)
    b = rgb[:, :, 2].astype(np.int64)
    y = _mul_round(r, Y_COEF[0]) + _mul_round(g, Y_COEF[1]) + _mul_round(b, Y_COEF[2])
    cb = (
        _mul_round(r, CB_COEF[0])
        + _mul_round(g, CB_COEF[1])
        + _mul_round(b, CB_COEF[2])
        + 128
    )
    cr = (
        _mul_round(r, CR_COEF[0])
        + _mul_round(g, CR_COEF[1])
        + _mul_round(b, CR_COEF[2])
        + 128
    )
    clip = lambda p: np.clip(p, 0, 255).astype(np.uint8)
    return clip(y), clip(cb), clip(cr)


def ycbcr_to_rgb(y: np.ndarray, cb: np.ndarray, cr: np.ndarray) -> np.ndarray:
    """Three ``(h, w)`` uint8 planes -> ``(h, w, 3)`` uint8."""
    yy = y.astype(np.int64)
    cbd = cb.astype(np.int64) - 128
    crd = cr.astype(np.int64) - 128
    r = yy + _mul_round(crd, R_FROM_CR)
    g = yy + _mul_round(cbd, G_FROM_CB) + _mul_round(crd, G_FROM_CR)
    b = yy + _mul_round(cbd, B_FROM_CB)
    out = np.stack([r, g, b], axis=-1)
    return np.clip(out, 0, 255).astype(np.uint8)


def decimate420(plane: np.ndarray) -> np.ndarray:
    """2x2 rounded average: ``(h, w)`` -> ``(h//2, w//2)``."""
    h, w = plane.shape
    if h % 2 or w % 2:
        raise ValueError("4:2:0 decimation requires even dimensions")
    p = plane.astype(np.int64)
    total = p[0::2, 0::2] + p[0::2, 1::2] + p[1::2, 0::2] + p[1::2, 1::2]
    return ((total + 2) >> 2).astype(np.uint8)


def upsample420(plane: np.ndarray) -> np.ndarray:
    """Pixel replication: ``(h, w)`` -> ``(2h, 2w)``."""
    return np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)
