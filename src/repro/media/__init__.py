"""Reference (numpy) media implementations the benchmarks validate against."""

from . import bitstream, colorspace, dct, huffman, images, jpeg, kernels, metrics, mpeg, ppm, zigzag

__all__ = [
    "bitstream",
    "colorspace",
    "dct",
    "huffman",
    "images",
    "jpeg",
    "kernels",
    "metrics",
    "mpeg",
    "ppm",
    "zigzag",
]
