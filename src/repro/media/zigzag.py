"""Zigzag scan order for 8x8 coefficient blocks."""

from __future__ import annotations

import numpy as np


def _build_order() -> np.ndarray:
    order = np.empty(64, dtype=np.int64)
    row = col = 0
    for i in range(64):
        order[i] = row * 8 + col
        if (row + col) % 2 == 0:  # moving up-right
            if col == 7:
                row += 1
            elif row == 0:
                col += 1
            else:
                row -= 1
                col += 1
        else:  # moving down-left
            if row == 7:
                col += 1
            elif col == 0:
                row += 1
            else:
                row += 1
                col -= 1
    return order


#: flat index into a row-major 8x8 block, for scan positions 0..63
ZIGZAG = _build_order()

#: inverse permutation: natural index -> scan position
ZIGZAG_INV = np.argsort(ZIGZAG)

#: zigzag over the *transposed* block: used by the VIS DCT path, whose
#: packed column pipeline leaves coefficients transposed in memory
#: (the permutation table absorbs the missing transpose for free).
ZIGZAG_T = np.array([(z % 8) * 8 + z // 8 for z in ZIGZAG], dtype=np.int64)


def zigzag_scan(block: np.ndarray) -> np.ndarray:
    """Flatten an ``(..., 8, 8)`` block into ``(..., 64)`` scan order."""
    flat = block.reshape(*block.shape[:-2], 64)
    return flat[..., ZIGZAG]


def zigzag_unscan(scanned: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_scan`."""
    out = np.empty_like(scanned)
    out[..., ZIGZAG] = scanned
    return out.reshape(*scanned.shape[:-1], 8, 8)
