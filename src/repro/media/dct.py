"""Integer 8x8 DCT/IDCT shared by the JPEG- and MPEG-style codecs.

A fixed-point separable transform with 8-bit cosine constants and
*floor* scaling (``>> 8`` after every multiply) — floor rather than
round so that the packed VIS multiply idiom (``fmul8sux16`` +
``fmul8ulx16``), which computes exactly ``(a*b) >> 8`` per 16-bit lane,
matches the scalar code bit-for-bit.  Every intermediate provably fits
in 16 bits, which is what makes the transform VIS-able at all (the
packed data path has no wider accumulator — Section 3.2.3's
"limited parallelism" discussion).

Scaling convention: one forward pass scales by ~2x orthonormal, so the
2-D forward transform is ~4x orthonormal; quantizers divide by ``4*Q``
and the inverse transform folds the matching ``>> 2`` into each pass.
"""

from __future__ import annotations

import numpy as np

# round(cos(k*pi/16) * 256)
C1, C2, C3, C4, C5, C6, C7 = 251, 237, 213, 181, 142, 98, 50


def fdct1d(x: np.ndarray) -> np.ndarray:
    """Forward 8-point DCT along the last axis (integer, floor shifts)."""
    x = x.astype(np.int64)
    x0, x1, x2, x3, x4, x5, x6, x7 = (x[..., k] for k in range(8))
    s07, d07 = x0 + x7, x0 - x7
    s16, d16 = x1 + x6, x1 - x6
    s25, d25 = x2 + x5, x2 - x5
    s34, d34 = x3 + x4, x3 - x4
    t0, t3 = s07 + s34, s07 - s34
    t1, t2 = s16 + s25, s16 - s25
    out = np.empty_like(x)
    # Every product is scaled down individually ("floor after each
    # multiply") because that is what the packed VIS multiply computes;
    # the scalar assembly mirrors it for bit-exactness.
    out[..., 0] = ((t0 + t1) * C4) >> 8
    out[..., 4] = ((t0 - t1) * C4) >> 8
    out[..., 2] = ((t3 * C2) >> 8) + ((t2 * C6) >> 8)
    out[..., 6] = ((t3 * C6) >> 8) - ((t2 * C2) >> 8)
    out[..., 1] = (
        ((d07 * C1) >> 8) + ((d16 * C3) >> 8)
        + ((d25 * C5) >> 8) + ((d34 * C7) >> 8)
    )
    out[..., 3] = (
        ((d07 * C3) >> 8) - ((d16 * C7) >> 8)
        - ((d25 * C1) >> 8) - ((d34 * C5) >> 8)
    )
    out[..., 5] = (
        ((d07 * C5) >> 8) - ((d16 * C1) >> 8)
        + ((d25 * C7) >> 8) + ((d34 * C3) >> 8)
    )
    out[..., 7] = (
        ((d07 * C7) >> 8) - ((d16 * C5) >> 8)
        + ((d25 * C3) >> 8) - ((d34 * C1) >> 8)
    )
    return out


def idct1d(y: np.ndarray) -> np.ndarray:
    """Inverse 8-point DCT along the last axis, including the per-pass
    ``>> 2`` normalization."""
    y = y.astype(np.int64)
    y0, y1, y2, y3, y4, y5, y6, y7 = (y[..., k] for k in range(8))
    ta = ((y0 + y4) * C4) >> 8
    tb = ((y0 - y4) * C4) >> 8
    tc = ((y2 * C2) >> 8) + ((y6 * C6) >> 8)
    td = ((y2 * C6) >> 8) - ((y6 * C2) >> 8)
    e0, e3 = ta + tc, ta - tc
    e1, e2 = tb + td, tb - td
    o0 = (
        ((y1 * C1) >> 8) + ((y3 * C3) >> 8)
        + ((y5 * C5) >> 8) + ((y7 * C7) >> 8)
    )
    o1 = (
        ((y1 * C3) >> 8) - ((y3 * C7) >> 8)
        - ((y5 * C1) >> 8) - ((y7 * C5) >> 8)
    )
    o2 = (
        ((y1 * C5) >> 8) - ((y3 * C1) >> 8)
        + ((y5 * C7) >> 8) + ((y7 * C3) >> 8)
    )
    o3 = (
        ((y1 * C7) >> 8) - ((y3 * C5) >> 8)
        + ((y5 * C3) >> 8) - ((y7 * C1) >> 8)
    )
    out = np.empty_like(y)
    out[..., 0] = (e0 + o0) >> 2
    out[..., 7] = (e0 - o0) >> 2
    out[..., 1] = (e1 + o1) >> 2
    out[..., 6] = (e1 - o1) >> 2
    out[..., 2] = (e2 + o2) >> 2
    out[..., 5] = (e2 - o2) >> 2
    out[..., 3] = (e3 + o3) >> 2
    out[..., 4] = (e3 - o3) >> 2
    return out


def fdct2d(block: np.ndarray) -> np.ndarray:
    """2-D forward transform of ``(..., 8, 8)`` level-shifted samples.

    Columns first, then rows — the order of both assembly pipelines
    (the packed VIS data path naturally transforms down the columns of
    a 4-column lane group, so the scalar code and this reference adopt
    the same order for bit-exact agreement)."""
    cols = np.swapaxes(fdct1d(np.swapaxes(block, -1, -2)), -1, -2)
    return fdct1d(cols)


def idct2d(coefficients: np.ndarray) -> np.ndarray:
    """2-D inverse transform (rows first, then columns — the inverse of
    :func:`fdct2d`'s order); output is level-shifted samples (no +128,
    no clamping — the codecs own the final reconstruction step)."""
    rows = idct1d(coefficients)
    return np.swapaxes(idct1d(np.swapaxes(rows, -1, -2)), -1, -2)


def quantize(coefficients: np.ndarray, divisors: np.ndarray) -> np.ndarray:
    """Symmetric rounded division: ``sign(c) * ((|c| + d/2) // d)``.

    ``divisors`` is the 8x8 table of ``4*Q`` values (the factor 4
    absorbs the transform's scaling)."""
    c = coefficients.astype(np.int64)
    d = divisors.astype(np.int64)
    magnitude = (np.abs(c) + (d >> 1)) // d
    return np.where(c < 0, -magnitude, magnitude)


def dequantize(levels: np.ndarray, divisors: np.ndarray) -> np.ndarray:
    return levels.astype(np.int64) * divisors.astype(np.int64)


#: The standard JPEG Annex K luminance and chrominance quantizers.
BASE_LUMA_QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.int64,
)

BASE_CHROMA_QUANT = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.int64,
)


def quality_scaled_table(base: np.ndarray, quality: int) -> np.ndarray:
    """The standard IJG quality scaling of a base quantization table."""
    if not 1 <= quality <= 100:
        raise ValueError("quality must be in 1..100")
    scale = 5000 // quality if quality < 50 else 200 - 2 * quality
    table = (base * scale + 50) // 100
    return np.clip(table, 1, 255).astype(np.int64)


def divisors_for(base: np.ndarray, quality: int) -> np.ndarray:
    """Quantization divisors matched to this transform's 4x scaling."""
    return quality_scaled_table(base, quality) * 4
