"""Minimal PPM (P6) / PGM (P5) reader and writer.

The paper's inputs are PPM images (``sf16.ppm`` etc.); this module lets
users run the benchmarks on their own images and lets the examples save
the synthetic inputs/outputs for inspection.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

import numpy as np

PathLike = Union[str, Path]


def _read_token(stream: io.BufferedReader) -> bytes:
    """Read one whitespace-delimited token, skipping ``#`` comments."""
    token = b""
    while True:
        ch = stream.read(1)
        if not ch:
            raise ValueError("unexpected end of PNM header")
        if ch == b"#":
            while ch not in (b"\n", b""):
                ch = stream.read(1)
            continue
        if ch.isspace():
            if token:
                return token
            continue
        token += ch


def read_pnm(path: PathLike) -> np.ndarray:
    """Read a binary PPM (P6) or PGM (P5) file.

    Returns ``(h, w, 3)`` uint8 for PPM and ``(h, w)`` uint8 for PGM.
    """
    with open(path, "rb") as f:
        magic = _read_token(f)
        if magic not in (b"P5", b"P6"):
            raise ValueError(f"unsupported PNM magic {magic!r}")
        width = int(_read_token(f))
        height = int(_read_token(f))
        maxval = int(_read_token(f))
        if maxval != 255:
            raise ValueError("only 8-bit PNM images are supported")
        bands = 3 if magic == b"P6" else 1
        data = f.read(width * height * bands)
        if len(data) != width * height * bands:
            raise ValueError("truncated PNM pixel data")
    pixels = np.frombuffer(data, dtype=np.uint8)
    if bands == 3:
        return pixels.reshape(height, width, 3)
    return pixels.reshape(height, width)


def write_pnm(path: PathLike, image: np.ndarray) -> None:
    """Write a uint8 image as binary PPM (3-band) or PGM (1-band)."""
    if image.dtype != np.uint8:
        raise ValueError("PNM writer requires uint8 data")
    if image.ndim == 3 and image.shape[2] == 3:
        magic, (height, width) = b"P6", image.shape[:2]
    elif image.ndim == 2:
        magic, (height, width) = b"P5", image.shape
    else:
        raise ValueError(f"unsupported image shape {image.shape}")
    with open(path, "wb") as f:
        f.write(magic + b"\n%d %d\n255\n" % (width, height))
        f.write(image.tobytes())
