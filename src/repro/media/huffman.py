"""Canonical Huffman coding for the JPEG/MPEG-style entropy phases.

The codecs use fixed tables (as typical JPEG encoders use the Annex K
defaults): the table *construction* happens once here, from a synthetic
frequency model with realistic decay, and both the Python reference
codecs and the simulated assembly programs consume the resulting
canonical tables — the encoder as ``(code, length)`` arrays, the
decoder as the classic JPEG ``mincode/maxcode/valptr`` tables.

The variable-length, data-dependent structure of this phase is exactly
what Section 3.2.3 identifies as inherently sequential and
un-VIS-able.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .bitstream import BitReader, BitWriter

MAX_CODE_LENGTH = 16


def build_code_lengths(frequencies: Dict[int, int]) -> Dict[int, int]:
    """Huffman code lengths from symbol frequencies, limited to
    :data:`MAX_CODE_LENGTH` bits with the standard JPEG ``adjust_bits``
    procedure (moving over-deep leaves up the tree)."""
    if not frequencies:
        raise ValueError("no symbols")
    if len(frequencies) == 1:
        symbol = next(iter(frequencies))
        return {symbol: 1}
    heap: List[Tuple[int, int, Tuple[int, ...]]] = []
    for tiebreak, (symbol, freq) in enumerate(sorted(frequencies.items())):
        if freq <= 0:
            raise ValueError(f"non-positive frequency for symbol {symbol}")
        heap.append((freq, tiebreak, (symbol,)))
    heapq.heapify(heap)
    counter = len(heap)
    depths: Dict[int, int] = {symbol: 0 for symbol in frequencies}
    while len(heap) > 1:
        f1, _, group1 = heapq.heappop(heap)
        f2, _, group2 = heapq.heappop(heap)
        for symbol in group1 + group2:
            depths[symbol] += 1
        counter += 1
        heapq.heappush(heap, (f1 + f2, counter, group1 + group2))

    max_depth = max(depths.values())
    if max_depth <= MAX_CODE_LENGTH:
        return depths

    # JPEG K.3-style length limiting: operate on the per-length counts,
    # then hand lengths back to symbols in frequency order.
    bits = [0] * (max_depth + 1)
    for depth in depths.values():
        bits[depth] += 1
    for length in range(max_depth, MAX_CODE_LENGTH, -1):
        while bits[length] > 0:
            shallower = length - 2
            while bits[shallower] == 0:
                shallower -= 1
            bits[length] -= 2
            bits[length - 1] += 1
            bits[shallower + 1] += 2
            bits[shallower] -= 1
    by_frequency = sorted(
        frequencies, key=lambda symbol: (-frequencies[symbol], symbol)
    )
    limited: Dict[int, int] = {}
    index = 0
    for length in range(1, MAX_CODE_LENGTH + 1):
        for _ in range(bits[length]):
            limited[by_frequency[index]] = length
            index += 1
    assert index == len(by_frequency)
    return limited


@dataclass(frozen=True)
class HuffmanTable:
    """A canonical Huffman code over integer symbols."""

    #: symbol -> (code, length), canonical order
    codes: Dict[int, Tuple[int, int]]
    #: symbols sorted by (length, symbol) — the decoder's value table
    values: Tuple[int, ...]
    #: per length 1..16: smallest code, largest code (-1 = none),
    #: index of the first value of that length
    mincode: Tuple[int, ...]
    maxcode: Tuple[int, ...]
    valptr: Tuple[int, ...]

    @classmethod
    def from_frequencies(cls, frequencies: Dict[int, int]) -> "HuffmanTable":
        lengths = build_code_lengths(frequencies)
        ordered = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
        codes: Dict[int, Tuple[int, int]] = {}
        values: List[int] = []
        mincode = [0] * (MAX_CODE_LENGTH + 1)
        maxcode = [-1] * (MAX_CODE_LENGTH + 1)
        valptr = [0] * (MAX_CODE_LENGTH + 1)
        code = 0
        previous_length = 0
        for index, (symbol, length) in enumerate(ordered):
            code <<= length - previous_length
            if previous_length != length:
                mincode[length] = code
                valptr[length] = index
            previous_length = length
            codes[symbol] = (code, length)
            maxcode[length] = code
            values.append(symbol)
            code += 1
        return cls(
            codes=codes,
            values=tuple(values),
            mincode=tuple(mincode),
            maxcode=tuple(maxcode),
            valptr=tuple(valptr),
        )

    def encode(self, writer: BitWriter, symbol: int) -> None:
        code, length = self.codes[symbol]
        writer.write(code, length)

    def decode(self, reader: BitReader) -> int:
        """The classic JPEG canonical decode loop: lengthen the code one
        bit at a time until it falls inside a populated range."""
        code = reader.read_bit()
        length = 1
        while code > self.maxcode[length] or self.maxcode[length] < 0:
            length += 1
            if length > MAX_CODE_LENGTH:
                raise ValueError("corrupt Huffman stream")
            code = (code << 1) | reader.read_bit()
        return self.values[self.valptr[length] + (code - self.mincode[length])]

    def max_length(self) -> int:
        return max(length for _, length in self.codes.values())


def _dc_frequencies() -> Dict[int, int]:
    """Plausible DC size-category distribution (small diffs dominate)."""
    return {size: max(1, int(12000 * 0.55 ** size)) for size in range(12)}


def _ac_frequencies() -> Dict[int, int]:
    """Plausible AC (run, size) distribution: EOB and short runs with
    small magnitudes dominate, long runs and big magnitudes are rare."""
    freqs: Dict[int, int] = {0x00: 60000}  # EOB
    freqs[0xF0] = 400  # ZRL
    for run in range(16):
        for size in range(1, 11):
            weight = 40000 * (0.6 ** run) * (0.45 ** (size - 1))
            freqs[(run << 4) | size] = max(1, int(weight))
    return freqs


#: Fixed tables shared by the JPEG-style codecs (luma and chroma use
#: the same tables; the paper's codecs likewise use default tables).
DC_TABLE = HuffmanTable.from_frequencies(_dc_frequencies())
AC_TABLE = HuffmanTable.from_frequencies(_ac_frequencies())


def table_arrays(table: HuffmanTable, num_symbols: int) -> Tuple[List[int], List[int]]:
    """Dense ``(code, length)`` arrays indexed by symbol, for the
    assembly encoders' lookup buffers."""
    codes = [0] * num_symbols
    lengths = [0] * num_symbols
    for symbol, (code, length) in table.codes.items():
        codes[symbol] = code
        lengths[symbol] = length
    return codes, lengths
