"""Reference (numpy) semantics of the six VSDK image-processing kernels.

These are the ground truth the assembly benchmarks are validated
against, bit-exactly, in both their scalar and VIS variants.  The
arithmetic is therefore defined in terms of what the VIS data path
computes (fixed-point multiplies that round and scale by 256, truncating
saturating packs) and the scalar variants mirror the same math — the
paper's methodology likewise required VIS-induced precision changes to
be imperceptible (Section 2.3.2); we hold ourselves to exact equality
instead.

Kernel notes
------------
* ``addition``/``blend``/``scaling`` treat 3-band interleaved images as
  flat byte streams (the per-byte math is band-independent).
* ``conv3x3``/``thresh`` operate on one band, as the VSDK one-band
  variants do (the paper's results include both one- and three-band
  kernels; it reports the representative set).
* ``scaling`` is a linear point transform ``a*x/256 + b`` with
  saturation (brightness/contrast scaling), the VSDK meaning of image
  scaling.
* ``dotprod`` follows the VIS 16x16 emulated multiply: per-element
  ``(a*b) >> 8`` accumulated in four 16-bit lanes; inputs are bounded
  so no lane ever wraps, making the lane-sum equal to the natural
  scalar dot product.
"""

from __future__ import annotations

import numpy as np


def addition(src1: np.ndarray, src2: np.ndarray) -> np.ndarray:
    """Rounded mean of two byte streams: ``(a + b + 1) >> 1``."""
    a = src1.astype(np.int32)
    b = src2.astype(np.int32)
    return ((a + b + 1) >> 1).astype(np.uint8)


def blend(src1: np.ndarray, src2: np.ndarray, alpha: np.ndarray) -> np.ndarray:
    """Alpha blend ``dst = alpha*src1 + (255-alpha)*src2`` in the VIS
    fixed-point formulation:

    * alpha is expanded to 16-bit fixed point (``alpha << 4``),
    * each product uses the fmul8x16 rounding ``(x*a + 0x80) >> 8``,
    * the sum is packed with truncation and saturation (``>> 4``).
    """
    alpha16 = alpha.astype(np.int64) << 4
    inv16 = 4096 - alpha16
    m1 = (src1.astype(np.int64) * alpha16 + 0x80) >> 8
    m2 = (src2.astype(np.int64) * inv16 + 0x80) >> 8
    out = (m1 + m2) >> 4
    return np.clip(out, 0, 255).astype(np.uint8)


def conv3x3(src: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """General 3x3 convolution with 8.8 fixed-point taps and a
    saturating sum of the nine rounded products (Table 1).

    ``src`` is one band, ``(h, w)`` uint8; ``kernel`` is ``(3, 3)``
    int16 taps scaled by 256.  Each tap product is rounded and scaled
    as fmul8x16au does: ``(pixel*tap + 0x80) >> 8``.  Border pixels of
    the output are left 0 (the VIS version uses edge masks to handle
    them; the benchmarks compute the interior).
    """
    h, w = src.shape
    out = np.zeros((h, w), dtype=np.uint8)
    acc = np.zeros((h - 2, w - 2), dtype=np.int64)
    s = src.astype(np.int64)
    for ky in range(3):
        for kx in range(3):
            tap = int(kernel[ky, kx])
            window = s[ky : ky + h - 2, kx : kx + w - 2]
            acc += (window * tap + 0x80) >> 8
    out[1 : h - 1, 1 : w - 1] = np.clip(acc, 0, 255).astype(np.uint8)
    return out


def dotprod(a: np.ndarray, b: np.ndarray) -> int:
    """16x16 dot product with the VIS emulated multiply:
    per element ``(a*b) >> 8`` (arithmetic shift), accumulated in four
    16-bit lanes and then summed.

    Raises if any lane accumulation would wrap 16 bits — the workload
    generator picks input magnitudes so this never happens, which makes
    the scalar single-accumulator formulation numerically identical.
    """
    products = (a.astype(np.int64) * b.astype(np.int64)) >> 8
    lanes = [int(products[lane::4].sum()) for lane in range(4)]
    for lane_sum in lanes:
        if not -32768 <= lane_sum <= 32767:
            raise ValueError("dotprod lane accumulator would wrap 16 bits")
    return sum(lanes)


def scaling(src: np.ndarray, scale: int, bias: int) -> np.ndarray:
    """Linear point scaling ``clamp((x*scale + 0x80 >> 8) + bias)``
    with an 8.8 fixed-point scale factor."""
    x = src.astype(np.int64)
    out = ((x * scale + 0x80) >> 8) + bias
    return np.clip(out, 0, 255).astype(np.uint8)


def thresh(src: np.ndarray, low: int, high: int, map_value: int) -> np.ndarray:
    """Double-limit thresholding (Table 1): where ``low <= x <= high``
    the output is ``map_value``, otherwise the source value."""
    x = src.astype(np.int64)
    inside = (x >= low) & (x <= high)
    return np.where(inside, np.int64(map_value), x).astype(np.uint8)


#: A sharpening kernel in 8.8 fixed point (sums to 256 -> unity gain).
SHARPEN_KERNEL = np.array(
    [[-32, -32, -32], [-32, 512, -32], [-32, -32, -32]], dtype=np.int16
)

#: Default linear-scaling parameters (contrast boost + small bias).
SCALE_FACTOR = 288  # 1.125 in 8.8 fixed point
SCALE_BIAS = 4

#: Default double-limit threshold parameters.
THRESH_LOW = 80
THRESH_HIGH = 160
THRESH_MAP = 255
