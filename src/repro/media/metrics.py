"""Image-quality metrics used by the examples and codec tests."""

from __future__ import annotations

import numpy as np


def mse(a: np.ndarray, b: np.ndarray) -> float:
    """Mean squared error between two same-shape images."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    diff = a.astype(np.float64) - b.astype(np.float64)
    return float((diff ** 2).mean())


def psnr(a: np.ndarray, b: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (inf for identical images)."""
    error = mse(a, b)
    if error == 0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / error))


def sad(a: np.ndarray, b: np.ndarray) -> int:
    """Sum of absolute differences (the motion-estimation metric)."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(np.abs(a.astype(np.int64) - b.astype(np.int64)).sum())
