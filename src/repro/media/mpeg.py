"""MPEG-2-style video codec (reference implementation).

Mirrors the structure of the MPEG Software Simulation Group codec the
paper benchmarks (Section 2.1.3): an I-B-B-P group of pictures, 16x16
macroblocks with 4:2:0 chroma, full-search integer-pel motion
estimation (the compute bottleneck of mpeg-enc), bidirectional
averaging for B pictures, residual DCT/quantization with MPEG-style
coefficient saturation, run-length + Huffman entropy coding, and
decoder-side motion-compensated reconstruction.

Simplifications versus a conforming MPEG-2 stream (DESIGN.md
substitution 4): our own container format, JPEG-style VLC tables in
place of the MPEG-2 code tables, no half-pel refinement, no
rate control (fixed quality), B-macroblocks choose between
bidirectional and intra modes only.  None of these change the phase
structure or the compute/memory character the paper measures.

Everything is bit-exact against the assembly benchmarks: encoders must
produce this byte stream, decoders these frames.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .bitstream import (
    BitReader,
    BitWriter,
    magnitude_bits,
    magnitude_category,
    receive_extend,
)
from .dct import BASE_LUMA_QUANT, divisors_for, fdct2d, idct2d, quantize
from .jpeg import decode_block, encode_block
from .zigzag import ZIGZAG

MAGIC = b"SMPG"

#: display-order frame types for one 4-frame GOP and the encode order.
GOP_TYPES = ("I", "B", "B", "P")
ENCODE_ORDER = (0, 3, 1, 2)
FRAME_TYPE_CODE = {"I": 0, "P": 1, "B": 2}

#: inter/intra macroblock decision threshold on the 16x16 luma SAD.
INTRA_THRESHOLD = 3000

#: MPEG-style mismatch-control saturation of dequantized coefficients;
#: also guarantees the packed IDCT's 16-bit lanes cannot overflow.
COEF_CLIP = 4000

#: flat non-intra quantizer matrix (MPEG-2 default).
FLAT_QUANT = np.full((8, 8), 16, dtype=np.int64)


def intra_divisors(quality: int) -> np.ndarray:
    return divisors_for(BASE_LUMA_QUANT, quality)

def inter_divisors(quality: int) -> np.ndarray:
    return divisors_for(FLAT_QUANT, quality)


def dequantize_clipped(levels: np.ndarray, divisors: np.ndarray) -> np.ndarray:
    out = levels.astype(np.int64) * divisors.astype(np.int64)
    return np.clip(out, -COEF_CLIP, COEF_CLIP)


def sad16(cur: np.ndarray, ref: np.ndarray) -> int:
    return int(np.abs(cur.astype(np.int64) - ref.astype(np.int64)).sum())


def full_search(
    cur: np.ndarray,
    ref: np.ndarray,
    mb_y: int,
    mb_x: int,
    search_range: int,
) -> Tuple[int, int, int]:
    """Full-search motion estimation for the 16x16 block at
    (mb_y, mb_x) (pixel coordinates).  Returns (dy, dx, sad) — the
    first strict minimum in (dy, dx) raster order, candidates clamped
    to the frame (the assembly versions iterate identically)."""
    height, width = ref.shape
    block = cur[mb_y : mb_y + 16, mb_x : mb_x + 16]
    best = (0, 0, 1 << 40)
    for dy in range(-search_range, search_range + 1):
        y = mb_y + dy
        if y < 0 or y + 16 > height:
            continue
        for dx in range(-search_range, search_range + 1):
            x = mb_x + dx
            if x < 0 or x + 16 > width:
                continue
            sad = sad16(block, ref[y : y + 16, x : x + 16])
            if sad < best[2]:
                best = (dy, dx, sad)
    return best


def _average(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return ((a.astype(np.int64) + b.astype(np.int64) + 1) >> 1).astype(np.uint8)


def _chroma_mv(dy: int, dx: int) -> Tuple[int, int]:
    return dy >> 1, dx >> 1


@dataclass
class _FramePlanes:
    y: np.ndarray
    cb: np.ndarray
    cr: np.ndarray

    def copy(self) -> "_FramePlanes":
        return _FramePlanes(self.y.copy(), self.cb.copy(), self.cr.copy())


def _code_motion_vector(writer: BitWriter, value: int) -> None:
    """Size category + extra bits (the DC Huffman table carries the
    category, exactly as the assembly does)."""
    from .huffman import DC_TABLE

    size = magnitude_category(value)
    DC_TABLE.encode(writer, size)
    if size:
        writer.write(magnitude_bits(value, size), size)


def _decode_motion_vector(reader: BitReader) -> int:
    from .huffman import DC_TABLE

    size = DC_TABLE.decode(reader)
    return receive_extend(reader.read(size), size) if size else 0


def _encode_intra_block(writer, samples, divisors, pred: int) -> int:
    coef = quantize(fdct2d(samples.astype(np.int64) - 128), divisors)
    zz = coef.reshape(64)[ZIGZAG]
    return encode_block(writer, zz, 0, 63, pred)


def _encode_residual_block(writer, residual, divisors) -> None:
    coef = quantize(fdct2d(residual.astype(np.int64)), divisors)
    zz = coef.reshape(64)[ZIGZAG]
    encode_block(writer, zz, 0, 63, 0)


def _decode_coef_block(reader, divisors) -> np.ndarray:
    zz = np.zeros(64, dtype=np.int64)
    decode_block(reader, zz, 0, 63, 0)
    natural = np.zeros(64, dtype=np.int64)
    natural[ZIGZAG] = zz
    return dequantize_clipped(natural.reshape(8, 8), divisors)


def _decode_intra_block(reader, divisors, pred: int) -> Tuple[np.ndarray, int]:
    zz = np.zeros(64, dtype=np.int64)
    pred = decode_block(reader, zz, 0, 63, pred)
    natural = np.zeros(64, dtype=np.int64)
    natural[ZIGZAG] = zz
    samples = idct2d(dequantize_clipped(natural.reshape(8, 8), divisors)) + 128
    return np.clip(samples, 0, 255).astype(np.uint8), pred


def _reconstruct_residual_block(reader, divisors, pred_block) -> np.ndarray:
    residual = idct2d(_decode_coef_block(reader, divisors))
    return np.clip(pred_block.astype(np.int64) + residual, 0, 255).astype(np.uint8)


def _luma_blocks(mb_y, mb_x):
    for by, bx in ((0, 0), (0, 8), (8, 0), (8, 8)):
        yield mb_y + by, mb_x + bx


@dataclass
class EncodeResult:
    data: bytes
    reconstructed: List[_FramePlanes] = field(default_factory=list)
    frame_payloads: List[bytes] = field(default_factory=list)
    mode_counts: Dict[str, int] = field(default_factory=dict)


def encode(
    frames: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    quality: int = 75,
    search_range: int = 3,
) -> EncodeResult:
    """Encode one GOP (display order: I B B P ...).  ``frames`` is a
    list of ``(Y, Cb, Cr)`` uint8 planes with 4:2:0 chroma."""
    if len(frames) != len(GOP_TYPES):
        raise ValueError(f"expected {len(GOP_TYPES)} frames")
    height, width = frames[0][0].shape
    if height % 16 or width % 16:
        raise ValueError("frame dimensions must be multiples of 16")
    intra_div = intra_divisors(quality)
    inter_div = inter_divisors(quality)
    inputs = [_FramePlanes(*f) for f in frames]
    recon: Dict[int, _FramePlanes] = {}
    payloads: Dict[int, bytes] = {}
    mode_counts = {"intra": 0, "inter": 0, "bi": 0}

    for display_index in ENCODE_ORDER:
        ftype = GOP_TYPES[display_index]
        cur = inputs[display_index]
        writer = BitWriter()
        if ftype == "I":
            rec = _encode_intra_frame(writer, cur, intra_div, mode_counts)
        elif ftype == "P":
            rec = _encode_predicted_frame(
                writer, cur, recon[0], intra_div, inter_div,
                search_range, mode_counts,
            )
        else:
            rec = _encode_bidirectional_frame(
                writer, cur, recon[0], recon[3], intra_div, inter_div,
                search_range, mode_counts,
            )
        payloads[display_index] = writer.getvalue()
        if ftype in ("I", "P"):
            recon[display_index] = rec

    out = bytearray()
    out += MAGIC
    out += struct.pack(
        "<HHBBBB", width, height, len(frames), quality, search_range, 0
    )
    ordered_payloads = []
    for display_index in ENCODE_ORDER:
        payload = payloads[display_index]
        out += struct.pack(
            "<BBHI",
            FRAME_TYPE_CODE[GOP_TYPES[display_index]],
            display_index,
            0,
            len(payload),
        )
        out += payload
        ordered_payloads.append(payload)
    reconstructed = [recon[0], recon[3]]
    return EncodeResult(
        data=bytes(out),
        reconstructed=reconstructed,
        frame_payloads=ordered_payloads,
        mode_counts=mode_counts,
    )


def _encode_intra_frame(writer, cur, intra_div, mode_counts) -> _FramePlanes:
    height, width = cur.y.shape
    rec = _FramePlanes(
        np.zeros_like(cur.y), np.zeros_like(cur.cb), np.zeros_like(cur.cr)
    )
    preds = {"y": 0, "cb": 0, "cr": 0}
    for mb_y in range(0, height, 16):
        for mb_x in range(0, width, 16):
            mode_counts["intra"] += 1
            for by, bx in _luma_blocks(mb_y, mb_x):
                block = cur.y[by : by + 8, bx : bx + 8]
                preds["y"] = _encode_intra_block(writer, block, intra_div, preds["y"])
                rec.y[by : by + 8, bx : bx + 8] = _roundtrip_intra(
                    block, intra_div
                )
            cy, cx = mb_y // 2, mb_x // 2
            for name, plane, rplane in (
                ("cb", cur.cb, rec.cb), ("cr", cur.cr, rec.cr)
            ):
                block = plane[cy : cy + 8, cx : cx + 8]
                preds[name] = _encode_intra_block(writer, block, intra_div, preds[name])
                rplane[cy : cy + 8, cx : cx + 8] = _roundtrip_intra(block, intra_div)
    return rec


def _roundtrip_intra(block, divisors) -> np.ndarray:
    coef = quantize(fdct2d(block.astype(np.int64) - 128), divisors)
    samples = idct2d(dequantize_clipped(coef, divisors)) + 128
    return np.clip(samples, 0, 255).astype(np.uint8)


def _roundtrip_residual(residual, divisors) -> np.ndarray:
    coef = quantize(fdct2d(residual.astype(np.int64)), divisors)
    return idct2d(dequantize_clipped(coef, divisors))


def _encode_inter_macroblock(
    writer, cur, pred: _FramePlanes, rec: Optional[_FramePlanes],
    mb_y, mb_x, inter_div,
) -> None:
    """Code the residual blocks of one inter macroblock (and optionally
    reconstruct into ``rec``)."""
    for by, bx in _luma_blocks(mb_y, mb_x):
        residual = (
            cur.y[by : by + 8, bx : bx + 8].astype(np.int64)
            - pred.y[by - mb_y : by - mb_y + 8, bx - mb_x : bx - mb_x + 8]
        )
        _encode_residual_block(writer, residual, inter_div)
        if rec is not None:
            rec.y[by : by + 8, bx : bx + 8] = np.clip(
                pred.y[by - mb_y : by - mb_y + 8, bx - mb_x : bx - mb_x + 8]
                + _roundtrip_residual(residual, inter_div),
                0, 255,
            ).astype(np.uint8)
    cy, cx = mb_y // 2, mb_x // 2
    for name in ("cb", "cr"):
        cur_block = getattr(cur, name)[cy : cy + 8, cx : cx + 8].astype(np.int64)
        pred_block = getattr(pred, name)
        residual = cur_block - pred_block
        _encode_residual_block(writer, residual, inter_div)
        if rec is not None:
            getattr(rec, name)[cy : cy + 8, cx : cx + 8] = np.clip(
                pred_block + _roundtrip_residual(residual, inter_div), 0, 255
            ).astype(np.uint8)


def _encode_intra_macroblock(
    writer, cur, rec: Optional[_FramePlanes], mb_y, mb_x, intra_div
) -> None:
    for by, bx in _luma_blocks(mb_y, mb_x):
        block = cur.y[by : by + 8, bx : bx + 8]
        _encode_intra_block(writer, block, intra_div, 0)
        if rec is not None:
            rec.y[by : by + 8, bx : bx + 8] = _roundtrip_intra(block, intra_div)
    cy, cx = mb_y // 2, mb_x // 2
    for name in ("cb", "cr"):
        block = getattr(cur, name)[cy : cy + 8, cx : cx + 8]
        _encode_intra_block(writer, block, intra_div, 0)
        if rec is not None:
            getattr(rec, name)[cy : cy + 8, cx : cx + 8] = _roundtrip_intra(
                block, intra_div
            )


def _extract_pred(ref: _FramePlanes, mb_y, mb_x, dy, dx) -> _FramePlanes:
    cdy, cdx = _chroma_mv(dy, dx)
    cy, cx = mb_y // 2 + cdy, mb_x // 2 + cdx
    return _FramePlanes(
        ref.y[mb_y + dy : mb_y + dy + 16, mb_x + dx : mb_x + dx + 16],
        ref.cb[cy : cy + 8, cx : cx + 8],
        ref.cr[cy : cy + 8, cx : cx + 8],
    )


def _encode_predicted_frame(
    writer, cur, ref, intra_div, inter_div, search_range, mode_counts
) -> _FramePlanes:
    height, width = cur.y.shape
    rec = _FramePlanes(
        np.zeros_like(cur.y), np.zeros_like(cur.cb), np.zeros_like(cur.cr)
    )
    for mb_y in range(0, height, 16):
        for mb_x in range(0, width, 16):
            dy, dx, sad = full_search(cur.y, ref.y, mb_y, mb_x, search_range)
            if sad < INTRA_THRESHOLD:
                mode_counts["inter"] += 1
                writer.write(1, 1)
                _code_motion_vector(writer, dy)
                _code_motion_vector(writer, dx)
                pred = _extract_pred(ref, mb_y, mb_x, dy, dx)
                _encode_inter_macroblock(
                    writer, cur, pred, rec, mb_y, mb_x, inter_div
                )
            else:
                mode_counts["intra"] += 1
                writer.write(0, 1)
                _encode_intra_macroblock(writer, cur, rec, mb_y, mb_x, intra_div)
    return rec


def _encode_bidirectional_frame(
    writer, cur, fwd_ref, bwd_ref, intra_div, inter_div, search_range,
    mode_counts,
) -> None:
    height, width = cur.y.shape
    for mb_y in range(0, height, 16):
        for mb_x in range(0, width, 16):
            fdy, fdx, _fsad = full_search(cur.y, fwd_ref.y, mb_y, mb_x, search_range)
            bdy, bdx, _bsad = full_search(cur.y, bwd_ref.y, mb_y, mb_x, search_range)
            fwd = _extract_pred(fwd_ref, mb_y, mb_x, fdy, fdx)
            bwd = _extract_pred(bwd_ref, mb_y, mb_x, bdy, bdx)
            pred = _FramePlanes(
                _average(fwd.y, bwd.y),
                _average(fwd.cb, bwd.cb),
                _average(fwd.cr, bwd.cr),
            )
            bi_sad = sad16(cur.y[mb_y : mb_y + 16, mb_x : mb_x + 16], pred.y)
            if bi_sad < INTRA_THRESHOLD:
                mode_counts["bi"] += 1
                writer.write(1, 1)
                _code_motion_vector(writer, fdy)
                _code_motion_vector(writer, fdx)
                _code_motion_vector(writer, bdy)
                _code_motion_vector(writer, bdx)
                _encode_inter_macroblock(
                    writer, cur, pred, None, mb_y, mb_x, inter_div
                )
            else:
                mode_counts["intra"] += 1
                writer.write(0, 1)
                _encode_intra_macroblock(writer, cur, None, mb_y, mb_x, intra_div)
    return None


# ---------------------------------------------------------------------------
# Decoder.
# ---------------------------------------------------------------------------


@dataclass
class DecodeResult:
    frames: List[Tuple[np.ndarray, np.ndarray, np.ndarray]]
    frame_types: List[str]


def decode(data: bytes) -> DecodeResult:
    if data[:4] != MAGIC:
        raise ValueError("not an SMPG stream")
    width, height, n_frames, quality, search_range, _ = struct.unpack(
        "<HHBBBB", data[4:12]
    )
    intra_div = intra_divisors(quality)
    inter_div = inter_divisors(quality)
    offset = 12
    display: Dict[int, _FramePlanes] = {}
    refs: Dict[int, _FramePlanes] = {}
    types: Dict[int, str] = {}
    for _ in range(n_frames):
        type_code, display_index, _pad, nbytes = struct.unpack(
            "<BBHI", data[offset : offset + 8]
        )
        offset += 8
        reader = BitReader(data[offset : offset + nbytes])
        offset += nbytes
        ftype = {0: "I", 1: "P", 2: "B"}[type_code]
        types[display_index] = ftype
        if ftype == "I":
            frame = _decode_intra_frame(reader, width, height, intra_div)
            refs[display_index] = frame
        elif ftype == "P":
            frame = _decode_predicted_frame(
                reader, width, height, refs[0], intra_div, inter_div
            )
            refs[display_index] = frame
        else:
            frame = _decode_bidirectional_frame(
                reader, width, height, refs[0], refs[3], intra_div, inter_div
            )
        display[display_index] = frame
    ordered = [display[i] for i in sorted(display)]
    return DecodeResult(
        frames=[(f.y, f.cb, f.cr) for f in ordered],
        frame_types=[types[i] for i in sorted(types)],
    )


def _empty_frame(width, height) -> _FramePlanes:
    return _FramePlanes(
        np.zeros((height, width), dtype=np.uint8),
        np.zeros((height // 2, width // 2), dtype=np.uint8),
        np.zeros((height // 2, width // 2), dtype=np.uint8),
    )


def _decode_intra_frame(reader, width, height, intra_div) -> _FramePlanes:
    out = _empty_frame(width, height)
    preds = {"y": 0, "cb": 0, "cr": 0}
    for mb_y in range(0, height, 16):
        for mb_x in range(0, width, 16):
            for by, bx in _luma_blocks(mb_y, mb_x):
                block, preds["y"] = _decode_intra_block(reader, intra_div, preds["y"])
                out.y[by : by + 8, bx : bx + 8] = block
            cy, cx = mb_y // 2, mb_x // 2
            for name in ("cb", "cr"):
                block, preds[name] = _decode_intra_block(reader, intra_div, preds[name])
                getattr(out, name)[cy : cy + 8, cx : cx + 8] = block
    return out


def _decode_macroblock_intra(reader, out, mb_y, mb_x, intra_div) -> None:
    for by, bx in _luma_blocks(mb_y, mb_x):
        block, _ = _decode_intra_block(reader, intra_div, 0)
        out.y[by : by + 8, bx : bx + 8] = block
    cy, cx = mb_y // 2, mb_x // 2
    for name in ("cb", "cr"):
        block, _ = _decode_intra_block(reader, intra_div, 0)
        getattr(out, name)[cy : cy + 8, cx : cx + 8] = block


def _decode_macroblock_inter(reader, out, pred: _FramePlanes, mb_y, mb_x, inter_div):
    for by, bx in _luma_blocks(mb_y, mb_x):
        pred_block = pred.y[by - mb_y : by - mb_y + 8, bx - mb_x : bx - mb_x + 8]
        out.y[by : by + 8, bx : bx + 8] = _reconstruct_residual_block(
            reader, inter_div, pred_block
        )
    cy, cx = mb_y // 2, mb_x // 2
    for name in ("cb", "cr"):
        getattr(out, name)[cy : cy + 8, cx : cx + 8] = _reconstruct_residual_block(
            reader, inter_div, getattr(pred, name)
        )


def _decode_predicted_frame(reader, width, height, ref, intra_div, inter_div):
    out = _empty_frame(width, height)
    for mb_y in range(0, height, 16):
        for mb_x in range(0, width, 16):
            if reader.read_bit():
                dy = _decode_motion_vector(reader)
                dx = _decode_motion_vector(reader)
                pred = _extract_pred(ref, mb_y, mb_x, dy, dx)
                _decode_macroblock_inter(reader, out, pred, mb_y, mb_x, inter_div)
            else:
                _decode_macroblock_intra(reader, out, mb_y, mb_x, intra_div)
    return out


def _decode_bidirectional_frame(
    reader, width, height, fwd_ref, bwd_ref, intra_div, inter_div
):
    out = _empty_frame(width, height)
    for mb_y in range(0, height, 16):
        for mb_x in range(0, width, 16):
            if reader.read_bit():
                fdy = _decode_motion_vector(reader)
                fdx = _decode_motion_vector(reader)
                bdy = _decode_motion_vector(reader)
                bdx = _decode_motion_vector(reader)
                fwd = _extract_pred(fwd_ref, mb_y, mb_x, fdy, fdx)
                bwd = _extract_pred(bwd_ref, mb_y, mb_x, bdy, bdx)
                pred = _FramePlanes(
                    _average(fwd.y, bwd.y),
                    _average(fwd.cb, bwd.cb),
                    _average(fwd.cr, bwd.cr),
                )
                _decode_macroblock_inter(reader, out, pred, mb_y, mb_x, inter_div)
            else:
                _decode_macroblock_intra(reader, out, mb_y, mb_x, intra_div)
    return out
