"""Deterministic synthetic images and video.

The paper uses 1024x640 3-band images from the Intel Media Benchmark
(``sf16.ppm``, ``rose16.ppm``, ``winter16.ppm``) and the ``mei16v2``
MPEG bit stream, none of which are redistributable.  These generators
produce visually plausible stand-ins: smooth low-frequency structure
(so DCT coding and cache-reuse behaviour are realistic) plus seeded
noise (so the data is not degenerate), and translating content for
video (so motion estimation finds real motion vectors).
"""

from __future__ import annotations

from typing import List

import numpy as np


def synthetic_image(
    width: int,
    height: int,
    bands: int = 3,
    seed: int = 1999,
    noise: float = 6.0,
) -> np.ndarray:
    """A ``(height, width, bands)`` uint8 image with natural-image-like
    spectral decay: gradients + a few 2-D cosines + mild noise."""
    rng = np.random.default_rng(seed)
    y = np.linspace(0.0, 1.0, height, dtype=np.float64)[:, None]
    x = np.linspace(0.0, 1.0, width, dtype=np.float64)[None, :]
    planes = []
    for band in range(bands):
        base = 96.0 + 48.0 * np.sin(2 * np.pi * (x * (band + 1) * 0.7 + 0.2 * band))
        base = base + 40.0 * np.cos(2 * np.pi * y * (1.3 + 0.5 * band))
        for harmonic in range(2, 5):
            amp = 30.0 / harmonic
            phase = rng.uniform(0, 2 * np.pi)
            base = base + amp * np.sin(
                2 * np.pi * (harmonic * x + (harmonic - 1) * y) + phase
            )
        base = base + rng.normal(0.0, noise, size=(height, width))
        planes.append(base)
    image = np.stack(planes, axis=-1)
    return np.clip(np.rint(image), 0, 255).astype(np.uint8)


def synthetic_alpha(width: int, height: int, seed: int = 7) -> np.ndarray:
    """A single-band alpha matte with smooth spatial variation."""
    matte = synthetic_image(width, height, bands=1, seed=seed, noise=3.0)
    return matte[:, :, 0]


def synthetic_gray(width: int, height: int, seed: int = 11) -> np.ndarray:
    """A single-band (grayscale) image."""
    return synthetic_image(width, height, bands=1, seed=seed)[:, :, 0]


def synthetic_video(
    width: int,
    height: int,
    frames: int,
    seed: int = 42,
    max_shift: int = 1,
) -> List[np.ndarray]:
    """A list of ``(height, width)`` uint8 luma frames with global
    translation plus a small independently-moving block, so that
    full-search motion estimation has genuine work to do."""
    rng = np.random.default_rng(seed)
    margin = max_shift * frames + 8
    backdrop = synthetic_image(
        width + 2 * margin, height + 2 * margin, bands=1, seed=seed
    )[:, :, 0]
    out = []
    ox, oy = margin, margin
    obj_w, obj_h = max(8, width // 6), max(8, height // 6)
    obj = synthetic_image(obj_w, obj_h, bands=1, seed=seed + 1)[:, :, 0]
    obj_x, obj_y = width // 4, height // 3
    for f in range(frames):
        frame = backdrop[oy : oy + height, ox : ox + width].copy()
        fx = min(max(obj_x + f * 1, 0), width - obj_w)
        fy = min(max(obj_y + f * 2, 0), height - obj_h)
        frame[fy : fy + obj_h, fx : fx + obj_w] = obj
        noise = rng.normal(0.0, 1.5, size=frame.shape)
        frame = np.clip(frame.astype(np.float64) + noise, 0, 255)
        out.append(np.rint(frame).astype(np.uint8))
        ox += rng.integers(0, max_shift + 1)
        oy += rng.integers(0, max_shift + 1)
    return out


def synthetic_video_yuv(
    width: int,
    height: int,
    frames: int,
    seed: int = 42,
) -> List[tuple]:
    """4:2:0 YUV frames: ``(Y, U, V)`` with chroma at half resolution."""
    luma = synthetic_video(width, height, frames, seed=seed)
    chroma_u = synthetic_video(width // 2, height // 2, frames, seed=seed + 100)
    chroma_v = synthetic_video(width // 2, height // 2, frames, seed=seed + 200)
    return [(luma[f], chroma_u[f], chroma_v[f]) for f in range(frames)]
