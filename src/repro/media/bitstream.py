"""MSB-first bit-level I/O used by the entropy-coding phases.

The assembly encoders/decoders implement exactly this bit order and
padding, so the byte streams are interchangeable between the Python
reference codecs and the simulated benchmarks.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates bits MSB-first; the final partial byte is padded
    with 1-bits (as JPEG does)."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._accumulator = 0
        self._count = 0

    def write(self, value: int, length: int) -> None:
        if length < 0 or value < 0 or value >= (1 << length):
            raise ValueError(f"bad bit write: value={value} length={length}")
        self._accumulator = (self._accumulator << length) | value
        self._count += length
        while self._count >= 8:
            self._count -= 8
            self._bytes.append((self._accumulator >> self._count) & 0xFF)
        self._accumulator &= (1 << self._count) - 1

    @property
    def bit_length(self) -> int:
        return 8 * len(self._bytes) + self._count

    def getvalue(self) -> bytes:
        """Flush (padding with 1s) and return the byte stream."""
        if self._count:
            pad = 8 - self._count
            out = bytes(self._bytes) + bytes(
                [((self._accumulator << pad) | ((1 << pad) - 1)) & 0xFF]
            )
            return out
        return bytes(self._bytes)


class BitReader:
    """Reads bits MSB-first from a byte stream.  Reading past the end
    yields 1-bits (the padding convention), so a well-formed stream
    never misdecodes and a truncated one fails loudly downstream."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._accumulator = 0
        self._count = 0

    def read(self, length: int) -> int:
        while self._count < length:
            byte = self._data[self._pos] if self._pos < len(self._data) else 0xFF
            self._pos += 1
            self._accumulator = (self._accumulator << 8) | byte
            self._count += 8
        self._count -= length
        value = (self._accumulator >> self._count) & ((1 << length) - 1)
        self._accumulator &= (1 << self._count) - 1
        return value

    def read_bit(self) -> int:
        return self.read(1)

    @property
    def bits_consumed(self) -> int:
        return 8 * self._pos - self._count


def receive_extend(bits: int, size: int) -> int:
    """JPEG's RECEIVE/EXTEND: decode ``size`` magnitude bits into a
    signed value."""
    if size == 0:
        return 0
    if bits < (1 << (size - 1)):
        return bits - (1 << size) + 1
    return bits


def magnitude_category(value: int) -> int:
    """JPEG size category: number of bits needed for ``|value|``."""
    return abs(value).bit_length()


def magnitude_bits(value: int, size: int) -> int:
    """The extra bits encoding ``value`` in category ``size``."""
    if value >= 0:
        return value
    return value + (1 << size) - 1
