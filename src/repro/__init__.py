"""Reproduction of "Performance of Image and Video Processing with
General-Purpose Processors and Media ISA Extensions" (ISCA 1999).

Public API quick tour::

    from repro import (
        ProgramBuilder, Machine, ProcessorConfig, MemoryConfig,
        simulate_program, Variant, get_workload, DEFAULT_SCALE,
    )

    built = get_workload("addition").build(Variant.VIS, DEFAULT_SCALE)
    stats, machine = simulate_program(
        built.program, ProcessorConfig.ooo_4way(),
        DEFAULT_SCALE.memory_config(),
    )
    built.validate(machine)          # bit-exact output check
    print(stats.cycles, stats.components())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results.
"""

from .asm.builder import ProgramBuilder
from .asm.program import Program
from .cpu.config import ProcessorConfig
from .cpu.stats import ExecutionStats
from .mem.config import MemoryConfig
from .sim.machine import Machine, SimulationError
from .experiments.runner import RunCache, simulate_program
from .workloads.base import Variant
from .workloads.params import (
    DEFAULT_SCALE,
    PAPER_SCALE,
    SMALL_SCALE,
    TINY_SCALE,
    WorkloadScale,
)
from .workloads.suite import ALL_WORKLOADS, get as get_workload

__version__ = "1.0.0"

__all__ = [
    "ProgramBuilder",
    "Program",
    "ProcessorConfig",
    "ExecutionStats",
    "MemoryConfig",
    "Machine",
    "SimulationError",
    "RunCache",
    "simulate_program",
    "Variant",
    "DEFAULT_SCALE",
    "PAPER_SCALE",
    "SMALL_SCALE",
    "TINY_SCALE",
    "WorkloadScale",
    "ALL_WORKLOADS",
    "get_workload",
    "__version__",
]
