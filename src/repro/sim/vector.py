"""Vectorized execution engine: block-compiled functional execute,
structure-of-arrays trace chunks, and whole-trace memoization.

The scalar :class:`~repro.sim.machine.Machine` interprets one closure
per dynamic instruction.  :class:`VectorMachine` keeps the same
architectural semantics (the scalar closures remain the reference and
the fallback) but restructures the hot path three ways:

1. **Straight-line batching.**  The static program is partitioned into
   basic blocks once.  A block that executes often enough (the JIT
   threshold) is compiled — with ``exec`` — into a single Python
   function that performs the whole block's register/memory updates
   inline and emits its trace events with one ``list.extend`` per
   straight-line segment instead of one ``append`` per instruction.
   Rare/complex opcodes (``pst``, the FP ops) delegate to the scalar
   closure for that instruction *in position*, so event order is
   preserved exactly.  Cold blocks and irregular entry points (a
   corrupted link register, resume cursors) fall back to the scalar
   closures, which are decoded lazily per instruction.

2. **Structure-of-arrays chunks.**  ``run()`` yields
   :class:`VectorChunk` objects instead of raw ``(sidx, aux)`` tuple
   lists.  A chunk carries parallel ``sidx``/``aux`` sequences plus
   lazily-computed per-chunk aggregates (Figure-2 category counts,
   branch counts) that the timing models consume in batch; iterating a
   chunk still produces the classic tuples, so every scalar consumer
   (attached tracers, audits, tests) works unchanged.

3. **Trace memoization.**  The dynamic trace of a program is a pure
   function of the program.  The first complete run records its chunks
   and final architectural state; subsequent runs of the *same machine*
   (an experiment grid re-timing one program under many CPU/memory
   configs) replay the recorded chunks without re-interpreting a single
   instruction.  Replay restores the exact final registers, memory
   image, cursors, and instruction count, so workload validation and
   downstream stats are byte-identical.  Mid-run machine snapshots are
   unavailable while replaying (:meth:`VectorMachine.can_snapshot`
   returns False); the checkpoint layer skips snapshot writes for
   those runs, and ``resume=True`` runs always execute genuinely
   through the scalar reference path.

Equivalence guarantees and fallback conditions are documented in
DESIGN.md §"Execution engines"; ``tests/test_engine_differential.py``
enforces them bit-for-bit against the scalar engine.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..isa import vis
from ..isa.bits import MASK64, s64
from ..isa.registers import GSR, LINK, gsr_scale
from .machine import (
    _BRANCH_CONDS,
    _FP_OPS,
    _LOADS,
    _STORES,
    _VIS_BINOPS,
    _VIS_UNOPS,
    _div_trunc,
    _rem_trunc,
    Event,
    Machine,
    SimulationError,
)
from .static_info import K_BRANCH

#: block execution count after which a block is exec-compiled
DEFAULT_JIT_THRESHOLD = 16
#: traces longer than this many events are not memoized (memory bound)
DEFAULT_MEMO_MAX_EVENTS = 2_000_000


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ[name])
    except (KeyError, ValueError):
        return default


#: integer ALU ops inlined by the block compiler; the expression
#: templates mirror ``machine._INT_BINOPS`` lambda-for-lambda
_ALU_EXPR = {
    "add": "({a} + {b}) & _M",
    "sub": "({a} - {b}) & _M",
    "mul": "(_s({a}) * _s({b})) & _M",
    "div": "_div({a}, {b})",
    "rem": "_rem({a}, {b})",
    "and_": "({a} & {b}) & _M",
    "or_": "({a} | {b}) & _M",
    "xor": "({a} ^ {b}) & _M",
    "andn": "({a} & ~{b}) & _M",
    "sll": "({a} << ({b} & 63)) & _M",
    "srl": "({a} & _M) >> ({b} & 63)",
    "sra": "(_s({a}) >> ({b} & 63)) & _M",
    "slt": "(1 if _s({a}) < _s({b}) else 0)",
    "sltu": "(1 if ({a} & _M) < ({b} & _M) else 0)",
    "seq": "(1 if ({a} & _M) == ({b} & _M) else 0)",
}

_BRANCH_CMP = {
    "beq": "==", "bne": "!=", "blt": "<",
    "ble": "<=", "bgt": ">", "bge": ">=",
}
assert set(_BRANCH_CMP) == set(_BRANCH_CONDS)

#: opcodes the block compiler delegates to the scalar closure (rare in
#: the media kernels; delegation preserves exact semantics and event
#: order at the cost of one closure call)
_DELEGATED = frozenset(_FP_OPS) | {"pst"}


class VectorChunk:
    """One trace chunk in structure-of-arrays form.

    ``sidx``/``aux`` are parallel tuples; iteration yields the scalar
    engine's ``(sidx, aux)`` event tuples so any tuple-consuming code
    path works unchanged.  Per-chunk aggregates are derived lazily from
    a :class:`StaticProgramInfo`'s numpy columns and cached — a
    replayed chunk pays for them once across every timing configuration
    of the grid.
    """

    __slots__ = ("sidx", "aux", "n", "_counts4", "_branches", "_cond")

    def __init__(self, sidx: Tuple[int, ...], aux: Tuple[int, ...]) -> None:
        self.sidx = sidx
        self.aux = aux
        self.n = len(sidx)
        self._counts4: Optional[List[int]] = None
        self._branches = 0
        self._cond = 0

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[Event]:
        return iter(zip(self.sidx, self.aux))

    def aggregates(self, info) -> Tuple[List[int], int, int]:
        """(figure-2 category counts, branch count, cond-branch count)."""
        if self._counts4 is None:
            sarr = np.array(self.sidx, dtype=np.int32)
            self._counts4 = np.bincount(
                info.category_arr[sarr], minlength=4
            ).tolist()
            kinds = info.kind_arr[sarr]
            self._branches = int((kinds >= K_BRANCH).sum())
            self._cond = int((kinds == K_BRANCH).sum())
        return self._counts4, self._branches, self._cond


class _TraceMemo:
    """A complete recorded run: chunks, per-chunk cursors, final state."""

    __slots__ = ("chunks", "cursors", "executed", "final_regs", "final_mem")

    def __init__(self) -> None:
        self.chunks: List[VectorChunk] = []
        self.cursors: List[Tuple[int, int]] = []
        self.executed = 0
        self.final_regs: List[int] = []
        self.final_mem = b""


class VectorMachine(Machine):
    """Drop-in :class:`Machine` with the vectorized hot path."""

    ENGINE = "vector"

    def __init__(self, program, extra_memory: int = 0) -> None:
        self._jit_threshold = _env_int(
            "REPRO_VECTOR_JIT", DEFAULT_JIT_THRESHOLD
        )
        self._memo_max = _env_int(
            "REPRO_TRACE_MEMO_MAX", DEFAULT_MEMO_MAX_EVENTS
        )
        self._trace_memo: Optional[_TraceMemo] = None
        self._replaying = False
        super().__init__(program, extra_memory)
        self._find_blocks()
        self._bcode: List = [None] * len(self._blocks)
        self._bcounts: List[int] = [0] * len(self._blocks)
        # Shared codegen namespace, built from the scalar op tables so
        # the two engines can never drift apart on helper identity.
        ns = {
            "_M": MASK64,
            "_s": s64,
            "_div": _div_trunc,
            "_rem": _rem_trunc,
            "_ck": self._check_addr,
            "_ifb": int.from_bytes,
            "_gs": gsr_scale,
            "_code": self._code,
            "_v_faligndata": vis.faligndata,
            "_v_pdist": vis.pdist,
            "_v_array8": vis.array8,
            "_v_fpack16": vis.fpack16,
            "_v_fpack32": vis.fpack32,
            "_v_fpackfix": vis.fpackfix,
        }
        for name, fn in _VIS_BINOPS.items():
            ns["_v_" + name] = fn
        for name, fn in _VIS_UNOPS.items():
            ns["_v_" + name] = fn
        self._gen_ns = ns

    # -- lazy scalar decode ------------------------------------------------

    def _build_code(self) -> List:
        """Per-instruction trampolines: decode on first execution, then
        self-replace in the code table.  Cold code never pays decode."""
        code: List = []
        decode = self._decode
        instructions = self.program.instructions

        def make(idx: int):
            def trampoline():
                fn = decode(instructions[idx], idx)
                code[idx] = fn
                return fn()

            return trampoline

        code.extend(make(i) for i in range(len(instructions)))
        return code

    # -- block discovery ---------------------------------------------------

    def _find_blocks(self) -> None:
        """Partition the program into single-entry straight-line blocks.

        Only the *last* instruction of a block may transfer control
        (branch/jump/call/ret/halt), so a compiled block body runs to
        its end unconditionally — the invariant the block compiler and
        the ``executed`` accounting in :meth:`_vector_run` rely on.
        """
        instructions = self.program.instructions
        n = len(instructions)
        leaders = {0} if n else set()
        for idx, instr in enumerate(instructions):
            if instr.spec.is_control or instr.op == "halt":
                if idx + 1 < n:
                    leaders.add(idx + 1)
                if 0 <= instr.target < n:
                    leaders.add(instr.target)
        starts = sorted(leaders)
        #: (start, end) per block; block index by leader pc (-1 = not
        #: a leader, reachable only via an irregular resume/ret target)
        self._blocks: List[Tuple[int, int]] = []
        self._bindex: List[int] = [-1] * n
        for bi, start in enumerate(starts):
            end = starts[bi + 1] if bi + 1 < len(starts) else n
            self._blocks.append((start, end))
            self._bindex[start] = bi

    # -- block compiler ----------------------------------------------------

    def _compile_block(self, bi: int):
        """exec-compile one basic block into a single closure.

        The generated function mutates ``regs``/``mem`` exactly like
        the scalar closures, appends the identical event tuples in the
        identical order (batched into per-segment ``extend`` calls),
        and returns the next pc.  Opcodes in ``_DELEGATED`` call the
        scalar closure in position; everything else is inlined.
        """
        start, end = self._blocks[bi]
        instructions = self.program.instructions
        ns = dict(self._gen_ns)
        lines: List[str] = []
        seg: List[str] = []  # pending event expressions
        seg_static = True  # every pending event a compile-time constant

        def flush() -> None:
            nonlocal seg_static
            if not seg:
                return
            if seg_static:
                name = f"_EV{len(ns)}"
                if len(seg) == 1:
                    ns[name] = eval(seg[0], ns)
                    lines.append(f"    _ap({name})")
                else:
                    ns[name] = tuple(eval(e, ns) for e in seg)
                    lines.append(f"    _ex({name})")
            elif len(seg) == 1:
                lines.append(f"    _ap({seg[0]})")
            else:
                lines.append("    _ex((" + ", ".join(seg) + ",))")
            seg.clear()
            seg_static = True

        def emit_event(expr: str, static: bool) -> None:
            nonlocal seg_static
            seg.append(expr)
            if not static:
                seg_static = False

        for i in range(start, end):
            instr = instructions[i]
            op = instr.op
            srcs = instr.srcs
            if op in _DELEGATED:
                flush()
                lines.append(f"    _code[{i}]()")
            elif op in _ALU_EXPR:
                a = f"regs[{srcs[0]}]"
                b = f"regs[{srcs[1]}]" if len(srcs) == 2 else repr(instr.imm)
                expr = _ALU_EXPR[op].format(a=a, b=b)
                lines.append(f"    regs[{instr.dst}] = {expr}")
                emit_event(f"({i}, 0)", True)
            elif op == "li":
                lines.append(f"    regs[{instr.dst}] = {instr.imm & MASK64}")
                emit_event(f"({i}, 0)", True)
            elif op == "mov":
                lines.append(f"    regs[{instr.dst}] = regs[{srcs[0]}]")
                emit_event(f"({i}, 0)", True)
            elif op == "nop":
                emit_event(f"({i}, 0)", True)
            elif op == "halt":
                flush()
                lines.append("    return -1")
            elif op in _LOADS:
                size, signed, _low32 = _LOADS[op]
                av = f"_a{i}"
                lines.append(f"    {av} = regs[{srcs[0]}] + {instr.imm}")
                lines.append(
                    f"    if {av} < 0 or {av} + {size} > {self.memory_size}:"
                )
                lines.append(f"        _ck({av}, {size})")
                lines.append(
                    f"    _v = _ifb(mem[{av}:{av} + {size}], 'little')"
                )
                if signed:
                    lines.append(f"    if _v >= {1 << (8 * size - 1)}:")
                    lines.append(f"        _v -= {1 << (8 * size)}")
                lines.append(f"    regs[{instr.dst}] = _v & _M")
                emit_event(f"({i}, {av})", False)
            elif op in _STORES:
                size = _STORES[op]
                smask = (1 << (8 * size)) - 1
                val_reg, base = srcs
                av = f"_a{i}"
                lines.append(f"    {av} = regs[{base}] + {instr.imm}")
                lines.append(
                    f"    if {av} < 0 or {av} + {size} > {self.memory_size}:"
                )
                lines.append(f"        _ck({av}, {size})")
                lines.append(
                    f"    mem[{av}:{av} + {size}] = "
                    f"(regs[{val_reg}] & {smask}).to_bytes({size}, 'little')"
                )
                emit_event(f"({i}, {av})", False)
            elif op == "pf":
                av = f"_a{i}"
                lines.append(f"    {av} = regs[{srcs[0]}] + {instr.imm}")
                lines.append(f"    if not 0 <= {av} < {self.memory_size}:")
                lines.append(f"        {av} = 0")
                emit_event(f"({i}, {av})", False)
            elif op in _BRANCH_CMP:
                flush()
                a, b = srcs
                ns[f"_T{i}"] = (i, 1)
                ns[f"_N{i}"] = (i, 0)
                lines.append(
                    f"    if _s(regs[{a}]) {_BRANCH_CMP[op]} _s(regs[{b}]):"
                )
                lines.append(f"        _ap(_T{i})")
                lines.append(f"        return {instr.target}")
                lines.append(f"    _ap(_N{i})")
                lines.append(f"    return {i + 1}")
            elif op == "j":
                flush()
                ns[f"_T{i}"] = (i, 1)
                lines.append(f"    _ap(_T{i})")
                lines.append(f"    return {instr.target}")
            elif op == "call":
                flush()
                ns[f"_T{i}"] = (i, 1)
                lines.append(f"    regs[{LINK}] = {i + 1}")
                lines.append(f"    _ap(_T{i})")
                lines.append(f"    return {instr.target}")
            elif op == "ret":
                flush()
                ns[f"_T{i}"] = (i, 1)
                lines.append(f"    _ap(_T{i})")
                lines.append(f"    return regs[{LINK}]")
            elif op in _VIS_BINOPS:
                lines.append(
                    f"    regs[{instr.dst}] = "
                    f"_v_{op}(regs[{srcs[0]}], regs[{srcs[1]}])"
                )
                emit_event(f"({i}, 0)", True)
            elif op in _VIS_UNOPS:
                lines.append(
                    f"    regs[{instr.dst}] = _v_{op}(regs[{srcs[0]}])"
                )
                emit_event(f"({i}, 0)", True)
            elif op == "fzero":
                lines.append(f"    regs[{instr.dst}] = 0")
                emit_event(f"({i}, 0)", True)
            elif op == "fone":
                lines.append(f"    regs[{instr.dst}] = {MASK64}")
                emit_event(f"({i}, 0)", True)
            elif op in ("fpack16", "fpack32", "fpackfix"):
                lines.append(
                    f"    regs[{instr.dst}] = "
                    f"_v_{op}(regs[{srcs[0]}], _gs(regs[{GSR}]))"
                )
                emit_event(f"({i}, 0)", True)
            elif op == "faligndata":
                lines.append(
                    f"    regs[{instr.dst}] = _v_faligndata("
                    f"regs[{srcs[0]}], regs[{srcs[1]}], regs[{GSR}] & 7)"
                )
                emit_event(f"({i}, 0)", True)
            elif op == "alignaddr":
                if len(srcs) > 1:
                    addend = f"regs[{srcs[1]}]"
                else:
                    addend = repr(instr.imm if instr.imm is not None else 0)
                av = f"_a{i}"
                lines.append(f"    {av} = regs[{srcs[0]}] + {addend}")
                lines.append(f"    regs[{instr.dst}] = {av} & ~7 & _M")
                lines.append(
                    f"    regs[{GSR}] = (regs[{GSR}] & ~7) | ({av} & 7)"
                )
                emit_event(f"({i}, 0)", True)
            elif op == "pdist":
                a, b, acc = srcs
                lines.append(
                    f"    regs[{instr.dst}] = "
                    f"_v_pdist(regs[{a}], regs[{b}], regs[{acc}])"
                )
                emit_event(f"({i}, 0)", True)
            elif op == "array8":
                lines.append(
                    f"    regs[{instr.dst}] = "
                    f"_v_array8(regs[{srcs[0]}], {instr.imm or 0})"
                )
                emit_event(f"({i}, 0)", True)
            elif op == "rdgsr":
                lines.append(f"    regs[{instr.dst}] = regs[{GSR}]")
                emit_event(f"({i}, 0)", True)
            elif op == "wrgsr":
                lines.append(f"    regs[{GSR}] = regs[{srcs[0]}] & 0x7F")
                emit_event(f"({i}, 0)", True)
            else:
                # Unknown to the block compiler: delegate (the scalar
                # decoder raises for genuinely unknown opcodes).
                flush()
                lines.append(f"    _code[{i}]()")
        if not lines or not lines[-1].lstrip().startswith("return"):
            flush()
            lines.append(f"    return {end}")

        src = (
            "def _blk(regs=_regs, mem=_mem, _ap=_ap_, _ex=_ex_):\n"
            + "\n".join(lines)
            + "\n"
        )
        ns["_regs"] = self.regs
        ns["_mem"] = self.memory
        ns["_ap_"] = self._events.append
        ns["_ex_"] = self._events.extend
        exec(src, ns)
        return ns["_blk"]

    # -- snapshot interaction ----------------------------------------------

    def can_snapshot(self) -> bool:
        """Mid-run snapshots are meaningless while replaying a memoized
        trace (architectural state is only reconstructed at the end of
        the run); the checkpoint layer checks this before writing."""
        return not self._replaying

    def snapshot(self) -> Dict:
        if self._replaying:
            raise SimulationError(
                "machine state is unavailable mid-replay; snapshot at "
                "the end of the run or use the scalar engine"
            )
        return super().snapshot()

    # -- execution ---------------------------------------------------------

    def run(
        self,
        max_instructions: Optional[int] = None,
        chunk_size: int = 1 << 16,
        observer=None,
        resume: bool = False,
    ):
        if max_instructions is None:
            max_instructions = self.default_step_budget()
        if resume:
            # Resume cursors can point mid-block; the scalar reference
            # path handles them exactly (and resumed runs are partial,
            # so they are never memoized).
            yield from Machine.run(
                self,
                max_instructions=max_instructions,
                chunk_size=chunk_size,
                observer=observer,
                resume=True,
            )
            return
        memo = self._trace_memo
        if memo is not None and memo.executed <= max_instructions:
            yield from self._replay(memo, observer)
            return
        yield from self._vector_run(max_instructions, chunk_size, observer)

    def _vector_run(self, max_instructions: int, chunk_size: int, observer):
        events = self._events
        events.clear()
        code = self._code
        bcode = self._bcode
        bcounts = self._bcounts
        bindex = self._bindex
        blocks = self._blocks
        threshold = self._jit_threshold
        pc = 0
        executed = 0

        recording = self._memo_max > 0
        memo = _TraceMemo() if recording else None

        def boundary(chunk_pc: int, chunk_executed: int) -> VectorChunk:
            nonlocal recording
            self.run_pc = chunk_pc
            self.run_executed = chunk_executed
            sidx, aux = zip(*events)
            chunk = VectorChunk(sidx, aux)
            if recording:
                memo.chunks.append(chunk)
                memo.cursors.append((chunk_pc, chunk_executed))
                if chunk_executed > self._memo_max:
                    recording = False
                    memo.chunks.clear()
                    memo.cursors.clear()
            if observer is not None:
                observer.on_functional_chunk(chunk.n)
            return chunk

        try:
            while pc >= 0:
                bi = bindex[pc]
                if bi >= 0:
                    blk = bcode[bi]
                    if blk is not None:
                        pc = blk()
                        executed += blocks[bi][1] - blocks[bi][0]
                    else:
                        count = bcounts[bi] + 1
                        bcounts[bi] = count
                        start, end = blocks[bi]
                        if count >= threshold:
                            blk = self._compile_block(bi)
                            bcode[bi] = blk
                            pc = blk()
                        else:
                            for _ in range(end - start):
                                pc = code[pc]()
                        executed += end - start
                else:
                    pc = code[pc]()
                    executed += 1
                # The pc guard mirrors the scalar invariant that a
                # mid-run chunk boundary never carries a halted cursor
                # (there halt appends no event; here a halting block
                # may have filled the chunk, so the check is explicit —
                # the whole tail is delivered in the final chunk).
                if len(events) >= chunk_size and pc >= 0:
                    yield boundary(pc, executed)
                    events.clear()
                if executed > max_instructions:
                    raise SimulationError(
                        f"exceeded {max_instructions} instructions "
                        f"(step-budget watchdog; pc={pc}, "
                        f"program={self.program.name!r})"
                    )
        except IndexError:
            raise SimulationError(
                f"control flow escaped the program (pc={pc})"
            ) from None
        # The final halt is not traced.
        self.run_pc = -1
        self.run_executed = executed
        self.instruction_count += executed - 1
        if events:
            chunk = boundary(-1, executed)
            if recording:
                self._seal_memo(memo, executed)
            yield chunk
            events.clear()
        elif recording:
            self._seal_memo(memo, executed)

    def _seal_memo(self, memo: _TraceMemo, executed: int) -> None:
        memo.executed = executed
        memo.final_regs = list(self.regs)
        memo.final_mem = bytes(self.memory)
        self._trace_memo = memo

    def _apply_memo_final(self, memo: _TraceMemo) -> None:
        self.regs[:] = memo.final_regs
        self.memory[:] = memo.final_mem
        self.instruction_count += memo.executed - 1
        self.run_pc = -1
        self.run_executed = memo.executed

    def _replay(self, memo: _TraceMemo, observer):
        if not memo.chunks:
            # A trace with no events (a lone halt) yields nothing,
            # exactly like the scalar engine; only the final state and
            # cursors are observable.
            self._apply_memo_final(memo)
            return
        self._replaying = True
        try:
            last = len(memo.chunks) - 1
            for pos, chunk in enumerate(memo.chunks):
                if pos == last:
                    # Final state must be visible at the final chunk:
                    # consumers stop iterating the moment run_pc goes
                    # negative, before this generator body resumes.
                    self._replaying = False
                    self._apply_memo_final(memo)
                else:
                    self.run_pc, self.run_executed = memo.cursors[pos]
                if observer is not None:
                    observer.on_functional_chunk(chunk.n)
                yield chunk
        finally:
            self._replaying = False
