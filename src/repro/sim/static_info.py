"""Pre-computed per-static-instruction metadata for the timing models.

The dynamic trace from :class:`repro.sim.machine.Machine` carries only
``(static_index, aux)``; everything else the in-order and out-of-order
models need is static and is flattened here into parallel lists for
fast indexed access in the hot simulation loops.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..asm.program import Program
from ..isa.opcodes import Category, OpClass, spec

# Instruction kinds (dispatch codes for the timing loops).
K_SIMPLE = 0
K_LOAD = 1
K_STORE = 2
K_PREFETCH = 3
K_BRANCH = 4  # conditional
K_UNCOND = 5  # j / call / ret

# Functional-unit classes (Table 2).
FU_INT = 0
FU_FP = 1
FU_ADDR = 2  # address generation for memory operations
FU_VADD = 3
FU_VMUL = 4
NUM_FU_TYPES = 5

FU_NAMES = ("integer", "fp", "addrgen", "vis-adder", "vis-multiplier")

# Figure 2 categories.
CAT_FU = 0
CAT_BRANCH = 1
CAT_MEMORY = 2
CAT_VIS = 3
CATEGORY_NAMES = ("FU", "Branch", "Memory", "VIS")

_OPCLASS_TO_FU = {
    OpClass.IALU: FU_INT,
    OpClass.IMUL: FU_INT,
    OpClass.IDIV: FU_INT,
    OpClass.FALU: FU_FP,
    OpClass.FMUL: FU_FP,
    OpClass.FDIV: FU_FP,
    OpClass.LOAD: FU_ADDR,
    OpClass.STORE: FU_ADDR,
    OpClass.PREFETCH: FU_ADDR,
    OpClass.BRANCH: FU_INT,
    OpClass.JUMP: FU_INT,
    OpClass.CALL: FU_INT,
    OpClass.RET: FU_INT,
    OpClass.VIS_ADD: FU_VADD,
    OpClass.VIS_MUL: FU_VMUL,
}

_CATEGORY_CODE = {
    Category.FU: CAT_FU,
    Category.BRANCH: CAT_BRANCH,
    Category.MEMORY: CAT_MEMORY,
    Category.VIS: CAT_VIS,
}


class StaticProgramInfo:
    """Flattened static metadata, one entry per static instruction."""

    def __init__(self, program: Program) -> None:
        self.program = program
        n = len(program.instructions)
        self.kind: List[int] = [0] * n
        self.fu: List[int] = [0] * n
        self.latency: List[int] = [1] * n
        self.pipelined: List[bool] = [True] * n
        self.dst: List[int] = [-1] * n
        self.dst2: List[int] = [-1] * n
        self.srcs: List[Tuple[int, ...]] = [()] * n
        self.category: List[int] = [0] * n
        self.hint_taken: List[bool] = [True] * n
        self.is_call: List[bool] = [False] * n
        self.is_ret: List[bool] = [False] * n
        self.size: List[int] = [0] * n  # memory access size in bytes
        self.op_name: List[str] = [""] * n

        for i, instr in enumerate(program.instructions):
            op = spec(instr.op)
            self.op_name[i] = instr.op
            self.fu[i] = _OPCLASS_TO_FU[op.opclass]
            self.latency[i] = op.latency
            self.pipelined[i] = op.pipelined
            self.dst[i] = instr.dst
            self.dst2[i] = instr.dst2
            self.srcs[i] = instr.srcs
            self.category[i] = _CATEGORY_CODE[op.category]
            self.hint_taken[i] = bool(instr.hint_taken)
            if op.opclass == OpClass.LOAD:
                self.kind[i] = K_LOAD
            elif op.opclass == OpClass.STORE:
                self.kind[i] = K_STORE
            elif op.opclass == OpClass.PREFETCH:
                self.kind[i] = K_PREFETCH
            elif op.opclass == OpClass.BRANCH:
                self.kind[i] = K_BRANCH
            elif op.opclass in (OpClass.JUMP, OpClass.CALL, OpClass.RET):
                self.kind[i] = K_UNCOND
                self.is_call[i] = op.opclass == OpClass.CALL
                self.is_ret[i] = op.opclass == OpClass.RET
            else:
                self.kind[i] = K_SIMPLE
            if op.is_memory:
                self.size[i] = _access_size(instr.op)

        # numpy columns for the vector engine's per-chunk aggregates
        # (VectorChunk.aggregates): fancy-indexed by dynamic sidx.
        self.kind_arr = np.array(self.kind, dtype=np.int8)
        self.category_arr = np.array(self.category, dtype=np.int8)

    def __len__(self) -> int:
        return len(self.kind)


def _access_size(op_name: str) -> int:
    sizes = {
        "ldb": 1, "ldbs": 1, "stb": 1, "ldfb": 1, "stfb": 1,
        "ldh": 2, "ldhs": 2, "sth": 2, "ldfh": 2, "stfh": 2,
        "ldw": 4, "ldws": 4, "stw": 4, "ldfw": 4, "stfw": 4,
        "ldx": 8, "stx": 8, "ldf": 8, "stf": 8, "pst": 8,
        "pf": 64,
    }
    return sizes[op_name]
