"""Execution-engine selection.

Two functionally-identical engines exist:

``scalar``
    :class:`repro.sim.machine.Machine` — one closure per dynamic
    instruction.  The reference implementation; always correct, never
    caches traces, supports mid-run snapshots unconditionally.

``vector``
    :class:`repro.sim.vector.VectorMachine` — block-compiled straight
    line execution, structure-of-arrays chunks, and trace memoization.
    Byte-identical results (enforced by
    ``tests/test_engine_differential.py``); the default.

Resolution order: explicit argument > ``REPRO_ENGINE`` environment
variable > ``DEFAULT_ENGINE``.  The engine changes *how fast* a point
simulates, never *what* it produces, so it is deliberately excluded
from disk-cache keys and checkpoint identity metadata — artifacts
produced under either engine are interchangeable.
"""

from __future__ import annotations

import os
from typing import Optional

from .machine import Machine
from .vector import VectorMachine

DEFAULT_ENGINE = "vector"

ENGINES = {
    "scalar": Machine,
    "vector": VectorMachine,
}


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an engine name (argument > env > default), validated."""
    name = engine or os.environ.get("REPRO_ENGINE") or DEFAULT_ENGINE
    if name not in ENGINES:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {sorted(ENGINES)}"
        )
    return name


def make_machine(
    program, engine: Optional[str] = None, extra_memory: int = 0
) -> Machine:
    """Instantiate the selected engine's machine for ``program``."""
    return ENGINES[resolve_engine(engine)](program, extra_memory)
