"""Functional SVIS machine.

Executes a :class:`repro.asm.Program` over a flat little-endian memory,
producing (a) the final architectural state — validated against numpy
references by the workload suite — and (b) a dynamic trace consumed by
the timing models in :mod:`repro.cpu`.

The trace is a stream of ``(static_index, aux)`` tuples, one per retired
instruction: ``aux`` is the effective byte address for memory
operations, the taken/not-taken outcome (1/0) for conditional branches,
and 0 otherwise.  All other per-instruction facts are static and come
from :class:`repro.sim.static_info.StaticProgramInfo`.

Each static instruction is pre-decoded into a Python closure returning
the next PC; this keeps the interpreter loop tight enough to simulate
the scaled benchmark suite in minutes (see DESIGN.md substitution 1).
"""

from __future__ import annotations

import base64
import struct
import zlib
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..asm.program import Program
from ..isa import vis
from ..isa.bits import MASK64, s64
from ..isa.registers import GSR, LINK, NUM_REGS, ZERO, gsr_scale

Event = Tuple[int, int]


class SimulationError(RuntimeError):
    """A functional-execution fault (bad address, div-by-zero, runaway)."""


# -- default step-budget watchdog -------------------------------------------
#
# A program with a malformed loop (e.g. a hypothesis-generated
# ProgramBuilder program whose exit branch never fires) used to spin
# for the full 200M-instruction ceiling before failing — minutes of
# apparent hang in pytest.  The default budget is instead proportional
# to program size: measured dynamic/static ratios across the suite top
# out near ~3.2k and dynamic/memory-byte ratios near ~14, so the
# constants below leave >10x headroom for every real workload at every
# scale while bounding a 10-instruction runaway to ~1M steps (~1 s).

#: flat floor of the default step budget
STEP_BUDGET_BASE = 1_000_000
#: budget granted per static instruction
STEP_BUDGET_PER_INSTRUCTION = 1_000
#: budget granted per byte of program memory (dynamic counts scale
#: with data footprint, which is how WorkloadScale grows programs)
STEP_BUDGET_PER_BYTE = 200


class Machine:
    """Functional simulator for one program instance."""

    def __init__(self, program: Program, extra_memory: int = 0) -> None:
        self.program = program
        self.memory_size = program.memory_size + extra_memory
        self.memory = bytearray(self.memory_size)
        self.regs: List[int] = [0] * NUM_REGS
        self.instruction_count = 0
        #: resume cursor for :meth:`run`: the PC of the next instruction
        #: as of the latest yielded chunk boundary (``-1`` once the
        #: program has halted), and the cumulative executed-instruction
        #: count at that boundary.  Captured by :meth:`snapshot` so a
        #: restored machine can continue with ``run(resume=True)``.
        self.run_pc = 0
        self.run_executed = 0
        self._events: List[Event] = []
        self._code = self._build_code()
        self.reset()

    def _build_code(self) -> List:
        """Compile the whole program to next-PC closures (eager).

        :class:`repro.sim.vector.VectorMachine` overrides this with a
        lazy per-instruction variant so cold code never pays decode.
        """
        return [
            self._decode(instr, idx)
            for idx, instr in enumerate(self.program.instructions)
        ]

    # -- state management ------------------------------------------------------

    def reset(self) -> None:
        """Reset registers and reload every buffer's initial contents."""
        for i in range(NUM_REGS):
            self.regs[i] = 0
        self.memory[:] = b"\x00" * self.memory_size
        for buf in self.program.buffers.values():
            if buf.data is not None:
                self.memory[buf.address : buf.address + len(buf.data)] = buf.data
        self.instruction_count = 0
        self.run_pc = 0
        self.run_executed = 0
        self._events.clear()

    # -- checkpoint/restore -----------------------------------------------------

    def snapshot(self) -> Dict:
        """Serialize the architectural state at a chunk boundary.

        The memory image is zlib-compressed (level 1: the images are
        dominated by long zero runs) and base64-encoded so the whole
        snapshot stays JSON-safe.
        """
        return {
            "memory_size": self.memory_size,
            "regs": list(self.regs),
            "memory_b64": base64.b64encode(
                zlib.compress(bytes(self.memory), 1)
            ).decode("ascii"),
            "instruction_count": self.instruction_count,
            "run_pc": self.run_pc,
            "run_executed": self.run_executed,
        }

    def restore(self, state: Dict) -> None:
        """Restore :meth:`snapshot` state *in place* (the decoded
        closures capture ``self.regs`` / ``self.memory``, so both are
        mutated, never replaced).  Raises ``ValueError`` on any shape
        mismatch instead of restoring partially-checked state."""
        if state["memory_size"] != self.memory_size:
            raise ValueError(
                f"snapshot memory size {state['memory_size']} != "
                f"machine memory size {self.memory_size}"
            )
        regs = state["regs"]
        if len(regs) != NUM_REGS:
            raise ValueError(f"snapshot has {len(regs)} registers")
        raw = zlib.decompress(base64.b64decode(state["memory_b64"]))
        if len(raw) != self.memory_size:
            raise ValueError(
                f"snapshot memory image is {len(raw)} bytes, "
                f"expected {self.memory_size}"
            )
        run_pc = int(state["run_pc"])
        if run_pc < -1 or run_pc >= len(self._code):
            raise ValueError(f"snapshot resume pc {run_pc} out of range")
        self.regs[:] = [int(r) for r in regs]
        self.memory[:] = raw
        self.instruction_count = int(state["instruction_count"])
        self.run_pc = run_pc
        self.run_executed = int(state["run_executed"])
        self._events.clear()

    def read_buffer(self, name: str) -> bytes:
        buf = self.program.buffers[name]
        return bytes(self.memory[buf.address : buf.address + buf.size])

    def read_buffer_array(self, name: str, dtype="u1") -> np.ndarray:
        """Read a buffer as a little-endian numpy array."""
        return np.frombuffer(self.read_buffer(name), dtype=np.dtype(dtype).newbyteorder("<"))

    def write_buffer(self, name: str, data: bytes, offset: int = 0) -> None:
        buf = self.program.buffers[name]
        if offset + len(data) > buf.size:
            raise ValueError(f"write overruns buffer {name!r}")
        self.memory[buf.address + offset : buf.address + offset + len(data)] = data

    # -- execution ----------------------------------------------------------------

    def default_step_budget(self) -> int:
        """The default ``max_instructions`` watchdog: proportional to
        program size (static instructions + memory footprint), so a
        malformed program raises :class:`SimulationError` in seconds
        instead of hanging pytest, while every real workload keeps
        >10x headroom (see the module constants)."""
        return (
            STEP_BUDGET_BASE
            + STEP_BUDGET_PER_INSTRUCTION * len(self._code)
            + STEP_BUDGET_PER_BYTE * self.memory_size
        )

    def run(
        self,
        max_instructions: Optional[int] = None,
        chunk_size: int = 1 << 16,
        observer=None,
        resume: bool = False,
    ) -> Iterator[List[Event]]:
        """Execute from the entry point, yielding trace chunks.

        ``max_instructions`` is the runaway watchdog; ``None`` (the
        default) uses :meth:`default_step_budget`.

        Each yielded list is reused storage: consume (or copy) it before
        advancing the generator.

        ``observer`` (optional, e.g. a :class:`repro.trace.Tracer`) is
        notified once per yielded chunk via
        ``observer.on_functional_chunk(len(chunk))`` — the audit layer
        uses this to prove the timing models retire exactly the
        instructions the functional machine executed.  The check is
        per-chunk, not per-instruction, so it costs nothing in the
        interpreter loop.

        ``resume=True`` continues from the :attr:`run_pc` /
        :attr:`run_executed` cursor (set at every chunk boundary and
        restored by :meth:`restore`) instead of the entry point — the
        checkpoint layer's resume path.  Because the cursor is only
        ever a chunk boundary, the concatenation of the chunks from the
        original run and the resumed run is exactly the trace of an
        uninterrupted run.
        """
        if max_instructions is None:
            max_instructions = self.default_step_budget()
        events = self._events
        events.clear()
        code = self._code
        if resume:
            if self.run_pc < 0:
                raise SimulationError(
                    "cannot resume: the program already halted"
                )
            pc = self.run_pc
            executed = self.run_executed
        else:
            pc = 0
            executed = 0
        try:
            while pc >= 0:
                pc = code[pc]()
                executed += 1
                if len(events) >= chunk_size:
                    self.run_pc = pc
                    self.run_executed = executed
                    if observer is not None:
                        observer.on_functional_chunk(len(events))
                    yield events
                    events.clear()
                if executed > max_instructions:
                    raise SimulationError(
                        f"exceeded {max_instructions} instructions "
                        f"(step-budget watchdog; pc={pc}, "
                        f"program={self.program.name!r})"
                    )
        except IndexError:
            raise SimulationError(
                f"control flow escaped the program (pc={pc})"
            ) from None
        # The final halt is not traced.
        self.run_pc = -1
        self.run_executed = executed
        self.instruction_count += executed - 1
        if events:
            if observer is not None:
                observer.on_functional_chunk(len(events))
            yield events
            events.clear()

    def run_to_completion(
        self, max_instructions: Optional[int] = None
    ) -> List[Event]:
        """Execute and return the whole trace as one list (tests/small runs)."""
        trace: List[Event] = []
        for chunk in self.run(max_instructions=max_instructions):
            trace.extend(chunk)
        return trace

    def run_functional(self, max_instructions: Optional[int] = None) -> int:
        """Execute for side effects only; returns the instruction count."""
        count = 0
        for chunk in self.run(max_instructions=max_instructions):
            count += len(chunk)
        return count

    # -- decode -----------------------------------------------------------------------

    def _check_addr(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > self.memory_size:
            raise SimulationError(
                f"memory access out of range: addr=0x{addr:x} size={size} "
                f"(memory is {self.memory_size} bytes)"
            )

    def _decode(self, instr, idx: int):
        """Compile one static instruction to a closure returning next PC."""
        regs = self.regs
        mem = self.memory
        events = self._events
        append = events.append
        op = instr.op
        dst = instr.dst
        srcs = instr.srcs
        imm = instr.imm
        target = instr.target
        nxt = idx + 1
        check = self._check_addr

        # ---- integer ALU -------------------------------------------------
        if op in _INT_BINOPS:
            fn = _INT_BINOPS[op]
            if len(srcs) == 2:
                a, b = srcs

                def run_rr(fn=fn, a=a, b=b):
                    regs[dst] = fn(regs[a], regs[b])
                    append((idx, 0))
                    return nxt

                return run_rr

            (a,) = srcs
            const = imm

            def run_ri(fn=fn, a=a, const=const):
                regs[dst] = fn(regs[a], const)
                append((idx, 0))
                return nxt

            return run_ri

        if op == "li":

            def run_li(value=imm & MASK64):
                regs[dst] = value
                append((idx, 0))
                return nxt

            return run_li

        if op == "mov":
            (a,) = srcs

            def run_mov(a=a):
                regs[dst] = regs[a]
                append((idx, 0))
                return nxt

            return run_mov

        if op == "nop":

            def run_nop():
                append((idx, 0))
                return nxt

            return run_nop

        if op == "halt":

            def run_halt():
                # the terminating halt is not part of the workload and
                # is excluded from the trace
                return -1

            return run_halt

        # ---- floating point -----------------------------------------------
        if op in _FP_OPS:
            return _FP_OPS[op](self, instr, idx)

        # ---- memory ---------------------------------------------------------
        if op in _LOADS:
            size, signed, to_low32 = _LOADS[op]
            (base,) = srcs
            off = imm

            def run_load(base=base, off=off, size=size, signed=signed):
                addr = regs[base] + off
                check(addr, size)
                value = int.from_bytes(mem[addr : addr + size], "little")
                if signed and value >= 1 << (8 * size - 1):
                    value -= 1 << (8 * size)
                regs[dst] = value & MASK64
                append((idx, addr))
                return nxt

            return run_load

        if op in _STORES:
            size = _STORES[op]
            val_reg, base = srcs
            off = imm

            def run_store(val_reg=val_reg, base=base, off=off, size=size):
                addr = regs[base] + off
                check(addr, size)
                mem[addr : addr + size] = (
                    regs[val_reg] & ((1 << (8 * size)) - 1)
                ).to_bytes(size, "little")
                append((idx, addr))
                return nxt

            return run_store

        if op == "pst":
            val_reg, mask_reg, base = srcs
            off = imm

            def run_pst(val_reg=val_reg, mask_reg=mask_reg, base=base, off=off):
                addr = regs[base] + off
                check(addr, 8)
                mask = regs[mask_reg] & 0xFF
                value = regs[val_reg]
                for k in range(8):
                    if mask & (1 << k):
                        mem[addr + k] = (value >> (8 * k)) & 0xFF
                append((idx, addr))
                return nxt

            return run_pst

        if op == "pf":
            (base,) = srcs
            off = imm

            def run_pf(base=base, off=off):
                addr = regs[base] + off
                # Non-binding and non-faulting: out-of-range prefetches
                # are dropped, as on real hardware.
                if 0 <= addr < self.memory_size:
                    append((idx, addr))
                else:
                    append((idx, 0))
                return nxt

            return run_pf

        # ---- control flow ------------------------------------------------------
        if op in _BRANCH_CONDS:
            cond = _BRANCH_CONDS[op]
            a, b = srcs

            def run_branch(cond=cond, a=a, b=b, target=target):
                if cond(s64(regs[a]), s64(regs[b])):
                    append((idx, 1))
                    return target
                append((idx, 0))
                return nxt

            return run_branch

        if op == "j":

            def run_jump(target=target):
                append((idx, 1))
                return target

            return run_jump

        if op == "call":

            def run_call(target=target):
                regs[LINK] = nxt
                append((idx, 1))
                return target

            return run_call

        if op == "ret":

            def run_ret():
                append((idx, 1))
                return regs[LINK]

            return run_ret

        # ---- VIS -------------------------------------------------------------------
        if op in _VIS_BINOPS:
            fn = _VIS_BINOPS[op]
            a, b = srcs[0], srcs[1]

            def run_vis2(fn=fn, a=a, b=b):
                regs[dst] = fn(regs[a], regs[b])
                append((idx, 0))
                return nxt

            return run_vis2

        if op in _VIS_UNOPS:
            fn = _VIS_UNOPS[op]
            (a,) = srcs

            def run_vis1(fn=fn, a=a):
                regs[dst] = fn(regs[a])
                append((idx, 0))
                return nxt

            return run_vis1

        if op == "fzero":

            def run_fzero():
                regs[dst] = 0
                append((idx, 0))
                return nxt

            return run_fzero

        if op == "fone":

            def run_fone():
                regs[dst] = MASK64
                append((idx, 0))
                return nxt

            return run_fone

        if op in ("fpack16", "fpack32", "fpackfix"):
            fn = {
                "fpack16": vis.fpack16,
                "fpack32": vis.fpack32,
                "fpackfix": vis.fpackfix,
            }[op]
            a = srcs[0]

            def run_pack(fn=fn, a=a):
                regs[dst] = fn(regs[a], gsr_scale(regs[GSR]))
                append((idx, 0))
                return nxt

            return run_pack

        if op == "faligndata":
            a, b = srcs[0], srcs[1]

            def run_align(a=a, b=b):
                regs[dst] = vis.faligndata(regs[a], regs[b], regs[GSR] & 7)
                append((idx, 0))
                return nxt

            return run_align

        if op == "alignaddr":
            a = srcs[0]
            b = srcs[1] if len(srcs) > 1 else None
            const = imm if imm is not None else 0

            def run_alignaddr(a=a, b=b, const=const):
                addr = regs[a] + (regs[b] if b is not None else const)
                regs[dst] = addr & ~7 & MASK64
                regs[GSR] = (regs[GSR] & ~7) | (addr & 7)
                append((idx, 0))
                return nxt

            return run_alignaddr

        if op == "pdist":
            a, b, acc = srcs

            def run_pdist(a=a, b=b, acc=acc):
                regs[dst] = vis.pdist(regs[a], regs[b], regs[acc])
                append((idx, 0))
                return nxt

            return run_pdist

        if op == "array8":
            (a,) = srcs
            bits = imm or 0

            def run_array8(a=a, bits=bits):
                regs[dst] = vis.array8(regs[a], bits)
                append((idx, 0))
                return nxt

            return run_array8

        if op == "rdgsr":

            def run_rdgsr():
                regs[dst] = regs[GSR]
                append((idx, 0))
                return nxt

            return run_rdgsr

        if op == "wrgsr":
            (a,) = srcs

            def run_wrgsr(a=a):
                regs[GSR] = regs[a] & 0x7F
                append((idx, 0))
                return nxt

            return run_wrgsr

        raise SimulationError(f"no decoder for opcode {op!r}")


# ---------------------------------------------------------------------------
# Operation tables used by the decoder.
# ---------------------------------------------------------------------------


def _div_trunc(a: int, b: int) -> int:
    a, b = s64(a), s64(b)
    if b == 0:
        raise SimulationError("integer division by zero")
    return (abs(a) // abs(b) * (1 if (a >= 0) == (b >= 0) else -1)) & MASK64


def _rem_trunc(a: int, b: int) -> int:
    a, b = s64(a), s64(b)
    if b == 0:
        raise SimulationError("integer remainder by zero")
    return (a - s64(_div_trunc(a, b)) * b) & MASK64


_INT_BINOPS = {
    "add": lambda a, b: (a + b) & MASK64,
    "sub": lambda a, b: (a - b) & MASK64,
    "mul": lambda a, b: (s64(a) * s64(b)) & MASK64,
    "div": _div_trunc,
    "rem": _rem_trunc,
    "and_": lambda a, b: (a & b) & MASK64,
    "or_": lambda a, b: (a | b) & MASK64,
    "xor": lambda a, b: (a ^ b) & MASK64,
    "andn": lambda a, b: (a & ~b) & MASK64,
    "sll": lambda a, b: (a << (b & 63)) & MASK64,
    "srl": lambda a, b: (a & MASK64) >> (b & 63),
    "sra": lambda a, b: (s64(a) >> (b & 63)) & MASK64,
    "slt": lambda a, b: 1 if s64(a) < s64(b) else 0,
    "sltu": lambda a, b: 1 if (a & MASK64) < (b & MASK64) else 0,
    "seq": lambda a, b: 1 if (a & MASK64) == (b & MASK64) else 0,
}

#: op -> (size, sign-extend, low-32-only)
_LOADS = {
    "ldb": (1, False, False),
    "ldbs": (1, True, False),
    "ldh": (2, False, False),
    "ldhs": (2, True, False),
    "ldw": (4, False, False),
    "ldws": (4, True, False),
    "ldx": (8, False, False),
    "ldf": (8, False, False),
    "ldfw": (4, False, True),
    "ldfb": (1, False, True),
    "ldfh": (2, False, True),
}

_STORES = {
    "stb": 1,
    "sth": 2,
    "stw": 4,
    "stx": 8,
    "stf": 8,
    "stfw": 4,
    "stfb": 1,
    "stfh": 2,
}

_BRANCH_CONDS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "ble": lambda a, b: a <= b,
    "bgt": lambda a, b: a > b,
    "bge": lambda a, b: a >= b,
}

_VIS_BINOPS = {
    "fpadd16": vis.fpadd16,
    "fpadd32": vis.fpadd32,
    "fpsub16": vis.fpsub16,
    "fpsub32": vis.fpsub32,
    "fand": vis.fand,
    "for_": vis.for_,
    "fxor": vis.fxor,
    "fandnot": vis.fandnot,
    "fmul8x16": vis.fmul8x16,
    "fmul8x16au": vis.fmul8x16au,
    "fmul8x16al": vis.fmul8x16al,
    "fmul8sux16": vis.fmul8sux16,
    "fmul8ulx16": vis.fmul8ulx16,
    "fpmerge": vis.fpmerge,
    "fcmpgt16": vis.fcmpgt16,
    "fcmple16": vis.fcmple16,
    "fcmpeq16": vis.fcmpeq16,
    "fcmpne16": vis.fcmpne16,
    "fcmpgt32": vis.fcmpgt32,
    "fcmpeq32": vis.fcmpeq32,
    "edge8": vis.edge8,
    "edge16": vis.edge16,
    "edge32": vis.edge32,
}

_VIS_UNOPS = {
    "fexpand": vis.fexpand,
    "fnot": vis.fnot,
    "fsrc": lambda a: a & MASK64,
}


# ---------------------------------------------------------------------------
# Floating point (rarely used by the media benchmarks, provided for ISA
# completeness).  Doubles are stored bit-for-bit in the 64-bit registers.
# ---------------------------------------------------------------------------


def _bits_to_double(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & MASK64))[0]


def _double_to_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def _make_fp_binop(fn):
    def factory(machine: Machine, instr, idx: int):
        regs = machine.regs
        append = machine._events.append
        a, b = instr.srcs
        dst = instr.dst
        nxt = idx + 1

        def run(a=a, b=b, dst=dst):
            regs[dst] = _double_to_bits(
                fn(_bits_to_double(regs[a]), _bits_to_double(regs[b]))
            )
            append((idx, 0))
            return nxt

        return run

    return factory


def _fdiv_impl(x: float, y: float) -> float:
    if y == 0.0:
        raise SimulationError("floating-point division by zero")
    return x / y


def _make_fmov(machine: Machine, instr, idx: int):
    regs = machine.regs
    append = machine._events.append
    (a,) = instr.srcs
    dst = instr.dst
    nxt = idx + 1

    def run(a=a, dst=dst):
        regs[dst] = regs[a]
        append((idx, 0))
        return nxt

    return run


def _make_fitod(machine: Machine, instr, idx: int):
    regs = machine.regs
    append = machine._events.append
    (a,) = instr.srcs
    dst = instr.dst
    nxt = idx + 1

    def run(a=a, dst=dst):
        regs[dst] = _double_to_bits(float(s64(regs[a])))
        append((idx, 0))
        return nxt

    return run


def _make_fdtoi(machine: Machine, instr, idx: int):
    regs = machine.regs
    append = machine._events.append
    (a,) = instr.srcs
    dst = instr.dst
    nxt = idx + 1

    def run(a=a, dst=dst):
        regs[dst] = int(_bits_to_double(regs[a])) & MASK64
        append((idx, 0))
        return nxt

    return run


_FP_OPS = {
    "fadd": _make_fp_binop(lambda x, y: x + y),
    "fsub": _make_fp_binop(lambda x, y: x - y),
    "fmuld": _make_fp_binop(lambda x, y: x * y),
    "fdivd": _make_fp_binop(_fdiv_impl),
    "fmovd": _make_fmov,
    "fitod": _make_fitod,
    "fdtoi": _make_fdtoi,
}
