"""Semantics of the VIS-like media extension ("SVIS") packed operations.

This module encodes the functional behaviour of every media instruction
class in Table 4 of the paper:

* packed arithmetic and logical operations,
* subword rearrangement and realignment (pack / expand / merge / align),
* partitioned compares and edge-mask generation,
* memory-related helpers (partial-store masks; the loads/stores
  themselves live in the functional machine),
* special-purpose operations (``pdist``, ``array8``, GSR access).

All functions are pure: 64-bit unsigned ints in, 64-bit unsigned ints
(or small masks) out.  Lane 0 is the least-significant lane (see
:mod:`repro.isa.bits`).  The same functions back both the functional
simulator and the hypothesis property tests that compare them against
numpy reference math.
"""

from __future__ import annotations

from .bits import (
    MASK8,
    MASK16,
    MASK64,
    clamp,
    join8,
    join16,
    join32,
    s16,
    s32,
    s8,
    split8,
    split16,
    split32,
)

# ---------------------------------------------------------------------------
# Packed arithmetic (modular / wrap-around, like real VIS).
# ---------------------------------------------------------------------------


def fpadd16(a: int, b: int) -> int:
    """Four partitioned 16-bit additions (wrap-around)."""
    return join16([x + y for x, y in zip(split16(a), split16(b))])


def fpsub16(a: int, b: int) -> int:
    """Four partitioned 16-bit subtractions (wrap-around)."""
    return join16([x - y for x, y in zip(split16(a), split16(b))])


def fpadd32(a: int, b: int) -> int:
    """Two partitioned 32-bit additions (wrap-around)."""
    return join32([x + y for x, y in zip(split32(a), split32(b))])


def fpsub32(a: int, b: int) -> int:
    """Two partitioned 32-bit subtractions (wrap-around)."""
    return join32([x - y for x, y in zip(split32(a), split32(b))])


# ---------------------------------------------------------------------------
# Packed multiplies.  As in real VIS there is no direct 16x16 multiply;
# it is emulated with fmul8sux16 + fmul8ulx16 + fpadd16 (Section 2.2.2).
# ---------------------------------------------------------------------------


def fmul8x16(a: int, b: int) -> int:
    """Multiply four unsigned bytes (low 32 bits of ``a``) by four signed
    16-bit values in ``b``; each rounded product is scaled down by 256.

    This is the workhorse for 8-bit pixel times 16-bit coefficient math
    (blend, scaling, convolution).
    """
    bytes_a = [(a >> (8 * i)) & MASK8 for i in range(4)]
    lanes_b = split16(b)
    out = []
    for x, y in zip(bytes_a, lanes_b):
        product = x * s16(y)
        out.append((product + 0x80) >> 8)
    return join16(out)


def fmul8x16au(a: int, b: int) -> int:
    """Multiply four unsigned bytes of ``a`` by the *upper* 16 bits of the
    low 32-bit word of ``b`` (a single scalar coefficient)."""
    coeff = s16((b >> 16) & MASK16)
    bytes_a = [(a >> (8 * i)) & MASK8 for i in range(4)]
    return join16([((x * coeff) + 0x80) >> 8 for x in bytes_a])


def fmul8x16al(a: int, b: int) -> int:
    """Like :func:`fmul8x16au` but uses the *lower* 16 bits of ``b``."""
    coeff = s16(b & MASK16)
    bytes_a = [(a >> (8 * i)) & MASK8 for i in range(4)]
    return join16([((x * coeff) + 0x80) >> 8 for x in bytes_a])


def fmul8sux16(a: int, b: int) -> int:
    """Partial product for the emulated 16x16 multiply: multiplies the
    *signed upper byte* of each 16-bit lane of ``a`` by the corresponding
    signed 16-bit lane of ``b`` (the byte keeps its weight of 256, so no
    shift is applied)."""
    out = []
    for x, y in zip(split16(a), split16(b)):
        out.append(s8(x >> 8) * s16(y))
    return join16(out)


def fmul8ulx16(a: int, b: int) -> int:
    """Partial product for the emulated 16x16 multiply: multiplies the
    *unsigned lower byte* of each 16-bit lane of ``a`` by the signed
    16-bit lane of ``b`` and scales down by 256 (arithmetic shift)."""
    out = []
    for x, y in zip(split16(a), split16(b)):
        out.append((x & MASK8) * s16(y) >> 8)
    return join16(out)


def mul16x16_scaled(a: int, b: int) -> int:
    """Reference for the 3-instruction 16x16 idiom: per-lane
    ``(s16(a) * s16(b)) >> 8`` modulo 2**16.

    ``fpadd16(fmul8sux16(a, b), fmul8ulx16(a, b))`` equals this exactly
    (the identity is exercised by the property tests).
    """
    out = []
    for x, y in zip(split16(a), split16(b)):
        out.append((s16(x) * s16(y)) >> 8)
    return join16(out)


# ---------------------------------------------------------------------------
# Subword rearrangement and realignment.
# ---------------------------------------------------------------------------


def fpack16(a: int, scale: int) -> int:
    """Pack four signed 16-bit lanes into four saturated unsigned bytes.

    Each lane is left-shifted by the GSR scale factor, interpreted as a
    fixed-point value with 7 fraction bits, and saturated into [0, 255].
    Returns the bytes in the low 32 bits of the result.
    """
    out = 0
    for i, lane in enumerate(split16(a)):
        value = (s16(lane) << (scale & 0xF)) >> 7
        out |= clamp(value, 0, 255) << (8 * i)
    return out


def fpack32(a: int, scale: int) -> int:
    """Pack two signed 32-bit lanes into two saturated unsigned bytes
    (low 16 bits of the result), using the same fixed-point convention
    as :func:`fpack16` but with 15 fraction bits."""
    out = 0
    for i, lane in enumerate(split32(a)):
        value = (s32(lane) << (scale & 0xF)) >> 15
        out |= clamp(value, 0, 255) << (8 * i)
    return out


def fpackfix(a: int, scale: int) -> int:
    """Pack two signed 32-bit lanes into two saturated signed 16-bit
    lanes (low 32 bits of the result)."""
    out = 0
    for i, lane in enumerate(split32(a)):
        value = (s32(lane) << (scale & 0xF)) >> 16
        out |= (clamp(value, -32768, 32767) & MASK16) << (16 * i)
    return out


def fexpand(a: int) -> int:
    """Expand four unsigned bytes (low 32 bits of ``a``) into four 16-bit
    fixed-point lanes (each byte shifted left by 4)."""
    return join16([((a >> (8 * i)) & MASK8) << 4 for i in range(4)])


def fpmerge(a: int, b: int) -> int:
    """Interleave the four low bytes of ``a`` and ``b``:
    result bytes = a0 b0 a1 b1 a2 b2 a3 b3 (lane 0 first)."""
    out = []
    for i in range(4):
        out.append((a >> (8 * i)) & MASK8)
        out.append((b >> (8 * i)) & MASK8)
    return join8(out)


def faligndata(a: int, b: int, align: int) -> int:
    """Extract 8 bytes starting at byte offset ``align`` (0..7) from the
    16-byte concatenation of ``a`` (lower addresses) and ``b``."""
    combined = (b << 64) | (a & MASK64)
    return (combined >> (8 * (align & 7))) & MASK64


def alignaddr_addr(address: int) -> int:
    """The address produced by ``alignaddr``: the operand rounded down to
    an 8-byte boundary.  The offset ``address & 7`` goes to the GSR."""
    return address & ~7


# ---------------------------------------------------------------------------
# Partitioned compares and edge masks.
# ---------------------------------------------------------------------------


def _cmp16(a: int, b: int, op) -> int:
    mask = 0
    for i, (x, y) in enumerate(zip(split16(a), split16(b))):
        if op(s16(x), s16(y)):
            mask |= 1 << i
    return mask


def fcmpgt16(a: int, b: int) -> int:
    """4-bit mask: bit i set when signed lane a_i > b_i."""
    return _cmp16(a, b, lambda x, y: x > y)


def fcmple16(a: int, b: int) -> int:
    return _cmp16(a, b, lambda x, y: x <= y)


def fcmpeq16(a: int, b: int) -> int:
    return _cmp16(a, b, lambda x, y: x == y)


def fcmpne16(a: int, b: int) -> int:
    return _cmp16(a, b, lambda x, y: x != y)


def fcmpgt32(a: int, b: int) -> int:
    mask = 0
    for i, (x, y) in enumerate(zip(split32(a), split32(b))):
        if s32(x) > s32(y):
            mask |= 1 << i
    return mask


def fcmpeq32(a: int, b: int) -> int:
    mask = 0
    for i, (x, y) in enumerate(zip(split32(a), split32(b))):
        if s32(x) == s32(y):
            mask |= 1 << i
    return mask


def _edge(addr1: int, addr2: int, granule: int) -> int:
    """Generic edge-mask generation for ``edge8/16/32``.

    Returns a byte-mask (bit k = byte offset k within the 8-byte word is
    live) selecting the bytes of the aligned word containing ``addr1``
    that fall inside [addr1, addr2].  This is the boundary mask used with
    partial stores to avoid branch code at row edges (Section 2.2.2).
    """
    word = addr1 & ~7
    start = addr1 & 7
    # Round the start down to the element granule, as real edge ops do.
    start -= start % granule
    if addr2 < word:
        return 0
    end = min(addr2 - word, 7)
    mask = 0
    for k in range(start, end + 1):
        mask |= 1 << k
    return mask


def edge8(addr1: int, addr2: int) -> int:
    return _edge(addr1, addr2, 1)


def edge16(addr1: int, addr2: int) -> int:
    return _edge(addr1, addr2, 2)


def edge32(addr1: int, addr2: int) -> int:
    return _edge(addr1, addr2, 4)


# ---------------------------------------------------------------------------
# Logical operations on the media register file.
# ---------------------------------------------------------------------------


def fand(a: int, b: int) -> int:
    return a & b & MASK64


def for_(a: int, b: int) -> int:
    return (a | b) & MASK64


def fxor(a: int, b: int) -> int:
    return (a ^ b) & MASK64


def fandnot(a: int, b: int) -> int:
    """b AND NOT a (clear the bits selected by ``a``)."""
    return (~a & b) & MASK64


def fnot(a: int) -> int:
    return ~a & MASK64


def fzero() -> int:
    return 0


def fone() -> int:
    return MASK64


# ---------------------------------------------------------------------------
# Special-purpose operations.
# ---------------------------------------------------------------------------


def pdist(a: int, b: int, accumulator: int) -> int:
    """Pixel-distance: accumulate the sum of absolute differences of the
    eight unsigned bytes of ``a`` and ``b`` into ``accumulator``.

    Replaces a ~48-instruction scalar SAD sequence in motion estimation
    (Section 3.2.2).
    """
    total = accumulator
    for x, y in zip(split8(a), split8(b)):
        total += x - y if x >= y else y - x
    return total & MASK64


def array8(x: int, bits: int) -> int:
    """Blocked-byte address conversion for 3D graphics data reuse.

    Interleaves the low bits of the X/Y/Z fixed-point coordinates packed
    in ``x`` into a blocked address.  Included for ISA completeness; the
    paper notes none of the 12 benchmarks use it (Section 2.3.2).
    """
    z = (x >> 44) & 0x1FF
    y = (x >> 22) & 0x1FF
    xx = x & 0x1FF
    lower = ((z & 0x3) << 4) | ((y & 0x3) << 2) | (xx & 0x3)
    middle = ((z >> 2) & 0xF) << 8 | ((y >> 2) & 0xF) << 4 | ((xx >> 2) & 0xF)
    size = bits & 0x3
    upper_y = (y >> 6) & 0x7
    upper_x = (xx >> 6) & (0x7 << size | 0x7)
    upper = (upper_y << (3 + size)) | upper_x
    return (upper << 20) | (middle << 6) | lower


def partial_store_merge(old: int, new: int, byte_mask: int) -> int:
    """Merge ``new`` into ``old`` under an 8-bit byte mask (bit k selects
    byte offset k).  This is the data path of the ``pst`` instruction."""
    out = old
    for k in range(8):
        if byte_mask & (1 << k):
            shift = 8 * k
            out = (out & ~(MASK8 << shift)) | (new & (MASK8 << shift))
    return out & MASK64
