"""Register-file layout of the SVIS machine.

A single unified numbering is used throughout the simulator so that the
timing models can keep one scoreboard array:

* ``0 .. 31``   — integer registers ``r0 .. r31`` (``r0`` is wired to 0)
* ``32 .. 63``  — 64-bit media/FP registers ``f0 .. f31``
* ``64``        — the Graphics Status Register (GSR)

Software conventions (enforced by the assembler's register allocator):
``r0`` zero, ``r1`` assembler temporary, ``r30`` stack, ``r31`` link.
"""

from __future__ import annotations

NUM_IREGS = 32
NUM_FREGS = 32

IREG_BASE = 0
FREG_BASE = NUM_IREGS
GSR = FREG_BASE + NUM_FREGS
NUM_REGS = GSR + 1

ZERO = 0      # r0: hardwired zero
AT = 1        # r1: assembler temporary
SP = 30       # r30: stack pointer
LINK = 31     # r31: link register

# GSR bit fields: low 3 bits = alignment offset, bits 3..6 = pack scale.
GSR_ALIGN_MASK = 0x7
GSR_SCALE_SHIFT = 3
GSR_SCALE_MASK = 0xF


def ireg(index: int) -> int:
    """Unified register number of integer register ``r<index>``."""
    if not 0 <= index < NUM_IREGS:
        raise ValueError(f"integer register index out of range: {index}")
    return IREG_BASE + index


def freg(index: int) -> int:
    """Unified register number of media register ``f<index>``."""
    if not 0 <= index < NUM_FREGS:
        raise ValueError(f"media register index out of range: {index}")
    return FREG_BASE + index


def is_ireg(reg: int) -> bool:
    return IREG_BASE <= reg < IREG_BASE + NUM_IREGS


def is_freg(reg: int) -> bool:
    return FREG_BASE <= reg < FREG_BASE + NUM_FREGS


def reg_name(reg: int) -> str:
    """Human-readable name for disassembly."""
    if is_ireg(reg):
        return f"r{reg - IREG_BASE}"
    if is_freg(reg):
        return f"f{reg - FREG_BASE}"
    if reg == GSR:
        return "gsr"
    return f"?{reg}"


def gsr_align(gsr_value: int) -> int:
    return gsr_value & GSR_ALIGN_MASK


def gsr_scale(gsr_value: int) -> int:
    return (gsr_value >> GSR_SCALE_SHIFT) & GSR_SCALE_MASK


def pack_gsr(align: int = 0, scale: int = 0) -> int:
    """Build a GSR value from an alignment offset and pack scale."""
    return (align & GSR_ALIGN_MASK) | ((scale & GSR_SCALE_MASK) << GSR_SCALE_SHIFT)
