"""SVIS: a RISC ISA with a VIS-like media extension.

The ISA package is the ground truth for instruction semantics and
classification.  It is consumed by the assembler (:mod:`repro.asm`),
the functional machine (:mod:`repro.sim`) and the timing models
(:mod:`repro.cpu`).
"""

from .instruction import Instruction
from .opcodes import OPCODES, Category, OpClass, OpSpec, VisGroup, spec, vis_opcodes
from .registers import (
    AT,
    GSR,
    LINK,
    NUM_IREGS,
    NUM_FREGS,
    NUM_REGS,
    ZERO,
    freg,
    gsr_align,
    gsr_scale,
    ireg,
    is_freg,
    is_ireg,
    pack_gsr,
    reg_name,
)

__all__ = [
    "Instruction",
    "OPCODES",
    "Category",
    "OpClass",
    "OpSpec",
    "VisGroup",
    "spec",
    "vis_opcodes",
    "AT",
    "GSR",
    "LINK",
    "NUM_IREGS",
    "NUM_FREGS",
    "NUM_REGS",
    "ZERO",
    "freg",
    "gsr_align",
    "gsr_scale",
    "ireg",
    "is_freg",
    "is_ireg",
    "pack_gsr",
    "reg_name",
]
