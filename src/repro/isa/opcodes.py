"""Opcode registry for the SVIS ISA.

Each opcode carries the metadata the timing models need: which
functional-unit class executes it (Table 2), its latency, whether it is
pipelined, and which dynamic-instruction category it counts towards in
the paper's Figure 2 (FU / Branch / Memory / VIS).

The VIS subset mirrors Table 4's classification:

* packed arithmetic and logical operations,
* subword rearrangement and realignment,
* partitioned compares and edge operations,
* memory-related operations (partial stores, short loads/stores),
* special-purpose operations (pdist, array8, GSR access).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class OpClass(enum.Enum):
    """Functional-unit class of an opcode (drives issue + latency)."""

    IALU = "ialu"
    IMUL = "imul"
    IDIV = "idiv"
    FALU = "falu"
    FMUL = "fmul"
    FDIV = "fdiv"
    LOAD = "load"
    STORE = "store"
    PREFETCH = "prefetch"
    BRANCH = "branch"
    JUMP = "jump"
    CALL = "call"
    RET = "ret"
    VIS_ADD = "vis_add"  # executes on the VIS adder
    VIS_MUL = "vis_mul"  # executes on the VIS multiplier


class Category(enum.Enum):
    """Dynamic-instruction category used by Figure 2."""

    FU = "FU"
    BRANCH = "Branch"
    MEMORY = "Memory"
    VIS = "VIS"


#: Table 4 grouping, used for documentation and the ISA-inventory tests.
class VisGroup(enum.Enum):
    ARITHMETIC = "packed arithmetic and logical"
    REARRANGE = "subword rearrangement and realignment"
    COMPARE = "partitioned compares and edge operations"
    MEMORY = "memory-related operations"
    SPECIAL = "special-purpose operations"


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    name: str
    opclass: OpClass
    category: Category
    latency: int = 1
    pipelined: bool = True
    vis_group: VisGroup = None

    @property
    def is_memory(self) -> bool:
        return self.opclass in (OpClass.LOAD, OpClass.STORE, OpClass.PREFETCH)

    @property
    def is_control(self) -> bool:
        return self.opclass in (
            OpClass.BRANCH,
            OpClass.JUMP,
            OpClass.CALL,
            OpClass.RET,
        )

    @property
    def is_vis(self) -> bool:
        return self.opclass in (OpClass.VIS_ADD, OpClass.VIS_MUL)


OPCODES: Dict[str, OpSpec] = {}


def _op(
    name: str,
    opclass: OpClass,
    category: Category,
    latency: int = 1,
    pipelined: bool = True,
    vis_group: VisGroup = None,
) -> None:
    OPCODES[name] = OpSpec(name, opclass, category, latency, pipelined, vis_group)


# -- Integer ALU (latency 1, Table 2) ---------------------------------------
for _name in (
    "add",
    "sub",
    "and_",
    "or_",
    "xor",
    "andn",
    "sll",
    "srl",
    "sra",
    "slt",
    "sltu",
    "seq",
    "li",
    "mov",
    "nop",
):
    _op(_name, OpClass.IALU, Category.FU, latency=1)

_op("halt", OpClass.IALU, Category.FU, latency=1)

_op("mul", OpClass.IMUL, Category.FU, latency=7)
_op("div", OpClass.IDIV, Category.FU, latency=12, pipelined=False)
_op("rem", OpClass.IDIV, Category.FU, latency=12, pipelined=False)

# -- Floating point (default 4; moves/converts 4; divide 12 non-pipelined) --
for _name in ("fadd", "fsub"):
    _op(_name, OpClass.FALU, Category.FU, latency=4)
for _name in ("fmovd", "fitod", "fdtoi"):
    _op(_name, OpClass.FALU, Category.FU, latency=4)
_op("fmuld", OpClass.FMUL, Category.FU, latency=4)
_op("fdivd", OpClass.FDIV, Category.FU, latency=12, pipelined=False)

# -- Loads (latency comes from the cache model) ------------------------------
for _name in ("ldb", "ldbs", "ldh", "ldhs", "ldw", "ldws", "ldx", "ldf", "ldfw"):
    _op(_name, OpClass.LOAD, Category.MEMORY)
# VIS short loads (8/16-bit into the media register file): Table 4 memory ops.
_op("ldfb", OpClass.LOAD, Category.MEMORY, vis_group=VisGroup.MEMORY)
_op("ldfh", OpClass.LOAD, Category.MEMORY, vis_group=VisGroup.MEMORY)

# -- Stores -------------------------------------------------------------------
for _name in ("stb", "sth", "stw", "stx", "stf", "stfw"):
    _op(_name, OpClass.STORE, Category.MEMORY)
_op("stfb", OpClass.STORE, Category.MEMORY, vis_group=VisGroup.MEMORY)
_op("stfh", OpClass.STORE, Category.MEMORY, vis_group=VisGroup.MEMORY)
# Partial store under an 8-bit byte mask.
_op("pst", OpClass.STORE, Category.MEMORY, vis_group=VisGroup.MEMORY)

# -- Software prefetch (non-binding, into L1) ---------------------------------
_op("pf", OpClass.PREFETCH, Category.MEMORY)

# -- Control flow -------------------------------------------------------------
for _name in ("beq", "bne", "blt", "ble", "bgt", "bge"):
    _op(_name, OpClass.BRANCH, Category.BRANCH)
_op("j", OpClass.JUMP, Category.BRANCH)
_op("call", OpClass.CALL, Category.BRANCH)
_op("ret", OpClass.RET, Category.BRANCH)

# -- VIS packed arithmetic and logical (VIS adder, latency 1) ------------------
for _name in ("fpadd16", "fpadd32", "fpsub16", "fpsub32"):
    _op(_name, OpClass.VIS_ADD, Category.VIS, latency=1, vis_group=VisGroup.ARITHMETIC)
for _name in ("fand", "for_", "fxor", "fandnot", "fnot", "fzero", "fone", "fsrc"):
    _op(_name, OpClass.VIS_ADD, Category.VIS, latency=1, vis_group=VisGroup.ARITHMETIC)

# -- VIS multiplies + pdist (VIS multiplier, latency 3, Table 2) ---------------
for _name in ("fmul8x16", "fmul8x16au", "fmul8x16al", "fmul8sux16", "fmul8ulx16"):
    _op(_name, OpClass.VIS_MUL, Category.VIS, latency=3, vis_group=VisGroup.ARITHMETIC)
_op("pdist", OpClass.VIS_MUL, Category.VIS, latency=3, vis_group=VisGroup.SPECIAL)

# -- Subword rearrangement and realignment (VIS adder, latency 1) --------------
for _name in ("fpack16", "fpack32", "fpackfix", "fexpand", "fpmerge", "faligndata"):
    _op(_name, OpClass.VIS_ADD, Category.VIS, latency=1, vis_group=VisGroup.REARRANGE)
_op("alignaddr", OpClass.VIS_ADD, Category.VIS, latency=1, vis_group=VisGroup.REARRANGE)

# -- Partitioned compares and edge operations ----------------------------------
for _name in (
    "fcmpgt16",
    "fcmple16",
    "fcmpeq16",
    "fcmpne16",
    "fcmpgt32",
    "fcmpeq32",
):
    _op(_name, OpClass.VIS_ADD, Category.VIS, latency=1, vis_group=VisGroup.COMPARE)
for _name in ("edge8", "edge16", "edge32"):
    _op(_name, OpClass.VIS_ADD, Category.VIS, latency=1, vis_group=VisGroup.COMPARE)

# -- Special purpose ------------------------------------------------------------
_op("array8", OpClass.VIS_ADD, Category.VIS, latency=1, vis_group=VisGroup.SPECIAL)
_op("rdgsr", OpClass.VIS_ADD, Category.VIS, latency=1, vis_group=VisGroup.SPECIAL)
_op("wrgsr", OpClass.VIS_ADD, Category.VIS, latency=1, vis_group=VisGroup.SPECIAL)


def spec(name: str) -> OpSpec:
    """Look up the :class:`OpSpec` for a mnemonic, raising ``KeyError``
    with a helpful message for typos."""
    try:
        return OPCODES[name]
    except KeyError:
        raise KeyError(f"unknown opcode {name!r}") from None


def vis_opcodes() -> Tuple[str, ...]:
    """All mnemonics that belong to the media extension (Table 4)."""
    return tuple(
        name for name, op in OPCODES.items() if op.vis_group is not None
    )
