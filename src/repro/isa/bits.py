"""Fixed-width integer helpers for the SVIS ISA.

All architectural registers are modelled as unsigned 64-bit Python ints.
Packed (SIMD) values use **little-endian lane order**: lane 0 occupies the
least-significant bits, matching the byte at the lowest memory address
under the machine's little-endian loads.  (Real VIS/SPARC is big-endian;
the semantics here are self-consistent end to end and validated against
the numpy references, which is what the reproduction requires.)
"""

from __future__ import annotations

from typing import List

MASK8 = 0xFF
MASK16 = 0xFFFF
MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF


def u64(value: int) -> int:
    """Wrap an arbitrary Python int to unsigned 64-bit."""
    return value & MASK64


def s64(value: int) -> int:
    """Interpret the low 64 bits of ``value`` as a signed 64-bit int."""
    value &= MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def s32(value: int) -> int:
    value &= MASK32
    return value - (1 << 32) if value >= (1 << 31) else value


def s16(value: int) -> int:
    value &= MASK16
    return value - (1 << 16) if value >= (1 << 15) else value


def s8(value: int) -> int:
    value &= MASK8
    return value - (1 << 8) if value >= (1 << 7) else value


def split16(value: int) -> List[int]:
    """Split a 64-bit value into four unsigned 16-bit lanes (lane 0 = LSB)."""
    return [(value >> (16 * i)) & MASK16 for i in range(4)]


def join16(lanes: List[int]) -> int:
    """Join four 16-bit lanes (lane 0 = LSB) into a 64-bit value."""
    out = 0
    for i, lane in enumerate(lanes):
        out |= (lane & MASK16) << (16 * i)
    return out


def split32(value: int) -> List[int]:
    """Split a 64-bit value into two unsigned 32-bit lanes (lane 0 = LSB)."""
    return [value & MASK32, (value >> 32) & MASK32]


def join32(lanes: List[int]) -> int:
    return (lanes[0] & MASK32) | ((lanes[1] & MASK32) << 32)


def split8(value: int) -> List[int]:
    """Split a 64-bit value into eight unsigned bytes (lane 0 = LSB)."""
    return [(value >> (8 * i)) & MASK8 for i in range(8)]


def join8(lanes: List[int]) -> int:
    out = 0
    for i, lane in enumerate(lanes):
        out |= (lane & MASK8) << (8 * i)
    return out


def clamp(value: int, lo: int, hi: int) -> int:
    """Saturate ``value`` into [lo, hi]."""
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value
