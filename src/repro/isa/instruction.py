"""The static instruction record produced by the assembler."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .opcodes import OpSpec, spec
from .registers import reg_name


@dataclass
class Instruction:
    """One static SVIS instruction.

    ``dst``/``srcs`` use the unified register numbering of
    :mod:`repro.isa.registers`; ``-1`` means "no destination".  Memory
    opcodes use ``srcs[0]`` as the base address register and ``imm`` as
    the byte offset.  Branches compare ``srcs[0]`` with ``srcs[1]`` and
    carry a resolved static ``target`` index plus a static prediction
    hint (the compiler-set bias bit consumed by the agree predictor).
    """

    op: str
    dst: int = -1
    dst2: int = -1  # second destination (e.g. alignaddr also writes the GSR)
    srcs: Tuple[int, ...] = ()
    imm: Optional[int] = None
    target: int = -1
    hint_taken: bool = True
    comment: str = ""

    _spec: OpSpec = field(default=None, repr=False, compare=False)

    @property
    def spec(self) -> OpSpec:
        if self._spec is None:
            self._spec = spec(self.op)
        return self._spec

    def disassemble(self, index: int = -1) -> str:
        """Render the instruction as assembly-like text."""
        parts = [self.op]
        operands = []
        if self.dst >= 0:
            operands.append(reg_name(self.dst))
        operands.extend(reg_name(s) for s in self.srcs)
        if self.imm is not None:
            operands.append(str(self.imm))
        if self.target >= 0:
            operands.append(f"@{self.target}")
        text = f"{parts[0]} " + ", ".join(operands)
        prefix = f"{index:6d}: " if index >= 0 else ""
        suffix = f"  ; {self.comment}" if self.comment else ""
        return prefix + text.strip() + suffix
