"""Parallel experiment runner + persistent on-disk simulation cache.

The figure drivers (:mod:`repro.experiments.figures`) describe their
work as a grid of independent *simulation points* — (benchmark,
variant, processor config, memory config, workload scale) tuples whose
timing results are pure functions of those inputs.  This module
exploits that purity twice:

* :class:`ParallelRunner` fans the points of a grid out over a
  ``ProcessPoolExecutor`` (``--jobs`` on the CLI, default
  ``os.cpu_count()``) and merges the resulting
  :class:`~repro.cpu.stats.ExecutionStats` back **in enumeration
  order**, so serial and parallel runs produce byte-identical tables
  and CSVs regardless of completion order.

* :class:`DiskCache` persists each point's stats as a JSON record under
  ``results/.simcache/`` keyed by a content hash of every
  timing-relevant input (processor + memory configs, workload scale,
  benchmark, variant, and the workload registry version).  Repeated
  CLI runs, the pytest-benchmark harness, and the golden-figure
  regression tests all skip already-simulated points.  Writes are
  atomic (temp file + ``os.replace``), loads are corruption-tolerant
  (a truncated or garbled record is treated as a miss and rewritten),
  and a version stamp invalidates the whole cache when the record
  format or the workload registry changes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cpu.config import ProcessorConfig
from ..cpu.stats import ExecutionStats
from ..mem.config import MemoryConfig
from ..workloads.base import Variant
from ..workloads.params import DEFAULT_SCALE, WorkloadScale
from ..workloads.suite import REGISTRY_VERSION
from .runner import RunCache

#: Bump when the on-disk record layout changes; combined with
#: :data:`repro.workloads.suite.REGISTRY_VERSION` into the cache stamp.
CACHE_FORMAT_VERSION = 1

#: Default location of the persistent cache, relative to the CLI's
#: output directory.
DEFAULT_CACHE_DIRNAME = ".simcache"


# ---------------------------------------------------------------------------
# Simulation points
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SimPoint:
    """One independent cell of an experiment grid.

    Pure and picklable: everything the timing result depends on is a
    field, so a point can be shipped to a worker process or hashed into
    a persistent cache key.
    """

    benchmark: str
    variant: Variant
    cpu: ProcessorConfig
    mem: MemoryConfig
    scale: WorkloadScale

    def describe(self) -> Dict:
        """The full JSON-safe description hashed into the cache key."""
        return {
            "benchmark": self.benchmark,
            "variant": self.variant.value,
            "cpu": self.cpu.to_dict(),
            "mem": self.mem.to_dict(),
            "scale": self.scale.to_dict(),
            "registry_version": REGISTRY_VERSION,
        }

    def content_key(self) -> str:
        """Stable hex digest of :meth:`describe`; the cache filename."""
        blob = json.dumps(
            self.describe(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Human-readable progress label."""
        return f"{self.benchmark}[{self.variant.value}]@{self.cpu.name}"


# ---------------------------------------------------------------------------
# Persistent on-disk result cache
# ---------------------------------------------------------------------------


class DiskCache:
    """JSON-record store for simulated :class:`ExecutionStats`.

    Layout::

        <root>/CACHE_VERSION     # "<format>.<registry>" stamp
        <root>/<sha256>.json     # one record per simulation point

    Records carry the point description alongside the stats so the
    cache is self-describing (``jq .point`` shows what produced a
    record).  Any unreadable record — truncated write, garbled JSON,
    stale schema — is treated as a miss and overwritten on the next
    store; the cache never raises on load.
    """

    STAMP_NAME = "CACHE_VERSION"

    def __init__(self, root, registry_version: int = REGISTRY_VERSION) -> None:
        self.root = Path(root)
        self.version = f"{CACHE_FORMAT_VERSION}.{registry_version}"
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._ensure_stamp()

    # -- invalidation stamp -------------------------------------------------

    def _ensure_stamp(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        stamp = self.root / self.STAMP_NAME
        try:
            current = stamp.read_text().strip()
        except OSError:
            current = None
        if current != self.version:
            if current is not None:
                self.clear()
            self._atomic_write(stamp, self.version)

    def clear(self) -> int:
        """Drop every record (keeps the directory); returns the count."""
        dropped = 0
        for record in self.root.glob("*.json"):
            try:
                record.unlink()
                dropped += 1
            except OSError:
                pass
        return dropped

    # -- records ------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[ExecutionStats]:
        """Return the cached stats for ``key``, or ``None`` on any
        miss — including corrupted, truncated, or mismatched records."""
        try:
            with open(self.path_for(key), "r") as f:
                record = json.load(f)
            if record.get("key") != key or record.get("version") != self.version:
                raise ValueError("stale or mismatched record")
            stats = ExecutionStats.from_dict(record["stats"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def store(
        self,
        key: str,
        stats: ExecutionStats,
        point: Optional[SimPoint] = None,
        elapsed: Optional[float] = None,
    ) -> Path:
        """Atomically persist one record (write temp + ``os.replace``),
        so a crash mid-write can never leave a half-record behind."""
        record = {
            "version": self.version,
            "key": key,
            "point": point.describe() if point is not None else None,
            "elapsed_s": elapsed,
            "stats": stats.to_dict(),
        }
        path = self.path_for(key)
        self._atomic_write(path, json.dumps(record, sort_keys=True))
        self.stores += 1
        return path

    def _atomic_write(self, path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=str(self.root), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                f.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


# ---------------------------------------------------------------------------
# Worker-side execution
# ---------------------------------------------------------------------------

#: Per-worker-process build/validation caches, keyed by scale content
#: key so a worker reuses expensive codec program construction across
#: the points it is handed.
_WORKER_CACHES: Dict[str, RunCache] = {}


def _simulate_point(
    point: SimPoint, validate: bool, audit: bool = False
) -> Tuple[ExecutionStats, float]:
    """Top-level (picklable) worker entry: simulate one point."""
    cache_key = point.scale.content_key()
    cache = _WORKER_CACHES.get(cache_key)
    if cache is None or cache.validate != validate or cache.audit != audit:
        cache = RunCache(scale=point.scale, validate=validate, audit=audit)
        _WORKER_CACHES[cache_key] = cache
    start = time.perf_counter()
    stats = cache.run(point.benchmark, point.variant, point.cpu, point.mem)
    return stats, time.perf_counter() - start


#: Progress callback signature: (k, n, point, elapsed_s, cached).
ProgressFn = Callable[[int, int, SimPoint, float, bool], None]


def print_progress(stream=None) -> ProgressFn:
    """The CLI's reporter: ``[k/n] label ... 1.24s`` or ``(cached)``."""
    import sys

    out = stream or sys.stderr

    def report(k: int, n: int, point: SimPoint, elapsed: float, cached: bool):
        suffix = "(cached)" if cached else f"{elapsed:.2f}s"
        print(f"[{k}/{n}] {point.label()} ... {suffix}", file=out, flush=True)

    return report


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


@dataclass
class ParallelRunner:
    """Run simulation-point grids, in parallel, through the disk cache.

    Implements the same point-running protocol as
    :class:`~repro.experiments.runner.RunCache` (``.scale`` +
    ``.run_points()``), so every figure driver accepts either.

    * ``jobs <= 1`` runs in-process through a private :class:`RunCache`
      (shared workload builds, functional validation) — identical to
      the legacy serial path.
    * ``jobs > 1`` fans un-cached points out over a process pool and
      merges results back in enumeration order, so output is
      byte-identical to the serial path.
    """

    scale: WorkloadScale = DEFAULT_SCALE
    jobs: int = 1
    cache: Optional[DiskCache] = None
    validate: bool = True
    #: audit every *simulated* point against the event-stream
    #: recomputation (``--audit``); points served from the persistent
    #: cache were audited when they were first simulated with auditing
    #: on — combine with ``--no-cache`` to force a full re-audit.
    audit: bool = False
    progress: Optional[ProgressFn] = None
    #: points simulated (cache misses) across the runner's lifetime
    simulated: int = 0
    #: points served from the persistent cache
    cache_hits: int = 0
    _local: Optional[RunCache] = field(default=None, repr=False)

    @classmethod
    def create(
        cls,
        scale: WorkloadScale = DEFAULT_SCALE,
        jobs: Optional[int] = None,
        cache_dir=None,
        validate: bool = True,
        progress: Optional[ProgressFn] = None,
        audit: bool = False,
    ) -> "ParallelRunner":
        """Convenience constructor mirroring the CLI flags."""
        return cls(
            scale=scale,
            jobs=jobs if jobs is not None else (os.cpu_count() or 1),
            cache=DiskCache(cache_dir) if cache_dir is not None else None,
            validate=validate,
            progress=progress,
            audit=audit,
        )

    # -- protocol -----------------------------------------------------------

    def run(
        self,
        name: str,
        variant: Variant,
        cpu_config: ProcessorConfig,
        mem_config: MemoryConfig,
    ) -> ExecutionStats:
        """Single-point convenience (RunCache-compatible)."""
        point = SimPoint(name, variant, cpu_config, mem_config, self.scale)
        return self.run_points([point])[0]

    def run_points(self, points: Sequence[SimPoint]) -> List[ExecutionStats]:
        """Resolve every point; results align 1:1 with ``points``."""
        points = list(points)
        n = len(points)
        results: List[Optional[ExecutionStats]] = [None] * n
        reported = 0

        # Phase 1: persistent-cache lookups, in enumeration order.
        keys = [p.content_key() for p in points]
        todo: Dict[str, List[int]] = {}  # key -> indices needing it
        for i, (point, key) in enumerate(zip(points, keys)):
            if key in todo:  # duplicate within this grid
                todo[key].append(i)
                continue
            stats = self.cache.load(key) if self.cache is not None else None
            if stats is not None:
                results[i] = stats
                self.cache_hits += 1
                reported += 1
                self._report(reported, n, point, 0.0, cached=True)
            else:
                todo[key] = [i]

        # Phase 2: simulate the misses (one run per unique key).
        if todo:
            reported = self._simulate(points, keys, todo, results, reported, n)

        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    # -- internals ----------------------------------------------------------

    def _report(
        self, k: int, n: int, point: SimPoint, elapsed: float, cached: bool
    ) -> None:
        if self.progress is not None:
            self.progress(k, n, point, elapsed, cached)

    def _finish(
        self,
        key: str,
        indices: List[int],
        stats: ExecutionStats,
        elapsed: float,
        points: List[SimPoint],
        results: List[Optional[ExecutionStats]],
    ) -> None:
        for idx in indices:
            results[idx] = stats
        self.simulated += 1
        if self.cache is not None:
            self.cache.store(key, stats, point=points[indices[0]], elapsed=elapsed)

    def _simulate(
        self,
        points: List[SimPoint],
        keys: List[str],
        todo: Dict[str, List[int]],
        results: List[Optional[ExecutionStats]],
        reported: int,
        n: int,
    ) -> int:
        ordered = list(todo.items())  # enumeration order (dict is ordered)
        if self.jobs <= 1 or len(ordered) == 1:
            if (
                self._local is None
                or self._local.scale != self.scale
                or self._local.audit != self.audit
            ):
                self._local = RunCache(
                    scale=self.scale, validate=self.validate, audit=self.audit
                )
            for key, indices in ordered:
                point = points[indices[0]]
                start = time.perf_counter()
                stats = self._local.run(
                    point.benchmark, point.variant, point.cpu, point.mem
                )
                elapsed = time.perf_counter() - start
                self._finish(key, indices, stats, elapsed, points, results)
                reported += 1
                self._report(reported, n, point, elapsed, cached=False)
            return reported

        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(
                    _simulate_point, points[indices[0]], self.validate,
                    self.audit,
                ): (key, indices)
                for key, indices in ordered
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    key, indices = futures[future]
                    stats, elapsed = future.result()
                    self._finish(key, indices, stats, elapsed, points, results)
                    reported += 1
                    self._report(
                        reported, n, points[indices[0]], elapsed, cached=False
                    )
        return reported
