"""Parallel experiment runner + persistent on-disk simulation cache.

The figure drivers (:mod:`repro.experiments.figures`) describe their
work as a grid of independent *simulation points* — (benchmark,
variant, processor config, memory config, workload scale) tuples whose
timing results are pure functions of those inputs.  This module
exploits that purity twice:

* :class:`ParallelRunner` fans the points of a grid out over a
  ``ProcessPoolExecutor`` (``--jobs`` on the CLI, default
  ``os.cpu_count()``) and merges the resulting
  :class:`~repro.cpu.stats.ExecutionStats` back **in enumeration
  order**, so serial and parallel runs produce byte-identical tables
  and CSVs regardless of completion order.

* :class:`DiskCache` persists each point's stats as a JSON record under
  ``results/.simcache/`` keyed by a content hash of every
  timing-relevant input (processor + memory configs, workload scale,
  benchmark, variant, and the workload registry version).  Repeated
  CLI runs, the pytest-benchmark harness, and the golden-figure
  regression tests all skip already-simulated points.  Writes are
  atomic (temp file + ``os.replace``) and *logged* (never silently
  swallowed) when they fail; records carry a sha256 payload checksum
  verified on load, so torn or corrupted entries are quarantined under
  ``<cache>/quarantine/`` and recomputed rather than trusted; a
  version stamp invalidates the whole cache when the record format or
  the workload registry changes.

Fault tolerance (see :mod:`repro.experiments.faults`): each point is
resolved in isolation — a worker that raises, hangs past
``point_timeout``, or dies outright (``BrokenProcessPool``) costs only
that point.  Transient losses are retried with deterministic backoff
on a rebuilt pool; deterministic failures either abort the grid with a
structured :class:`~repro.experiments.faults.GridFailure` naming the
point, or — with ``keep_going`` — turn into
:class:`~repro.experiments.faults.PointFailure` entries in the result
list so figures render explicit ``FAILED`` markers.  Every outcome is
journaled to the optional :class:`~repro.experiments.faults.RunManifest`
so a killed run resumes where it died.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import sys
import tempfile
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analyze import ANALYZER_VERSION
from ..checkpoint import DEFAULT_CHECKPOINT_INTERVAL, DEFAULT_CHECKPOINT_KEEP
from ..cpu.config import ProcessorConfig
from ..cpu.stats import ExecutionStats
from ..mem.config import MemoryConfig
from ..workloads.base import Variant
from ..workloads.params import DEFAULT_SCALE, WorkloadScale
from ..workloads.suite import REGISTRY_VERSION
from ..workloads.suite import names as _workload_names
from .faults import (
    STATUS_AUDIT,
    STATUS_TIMEOUT,
    STATUS_WORKER_LOST,
    GridFailure,
    PointFailure,
    RetryPolicy,
    RunManifest,
    classify,
    maybe_inject,
    point_alarm,
)
from .runner import RunCache

log = logging.getLogger("repro.experiments.cache")

#: Bump when the on-disk record layout changes; combined with
#: :data:`repro.workloads.suite.REGISTRY_VERSION` and
#: :data:`repro.analyze.ANALYZER_VERSION` into the cache stamp (a
#: gate-semantics change must re-verify cached points, not reuse them).
#: v2: records gained the ``payload_sha256`` checksum.
CACHE_FORMAT_VERSION = 2

#: Default location of the persistent cache, relative to the CLI's
#: output directory.
DEFAULT_CACHE_DIRNAME = ".simcache"

#: Subdirectory (inside the cache root) where corrupted records are
#: moved for post-mortem instead of being trusted or deleted.
QUARANTINE_DIRNAME = "quarantine"

#: Subdirectory (inside the cache root) holding the digest-keyed
#: static-verification verdict memo (see :mod:`repro.analyze.verify`)
ANALYSIS_MEMO_DIRNAME = "analysis"

#: Subdirectory (inside the cache root) holding cycle-level checkpoint
#: snapshots, one directory per point keyed by its content hash (see
#: :mod:`repro.checkpoint`)
CHECKPOINT_DIRNAME = "checkpoints"

#: Subdirectory (inside the cache root) holding cross-process fill
#: claims (advisory O_EXCL lock files, one per in-flight cache key)
FILL_LOCKS_DIRNAME = "locks"

#: Age past which an orphaned fill claim (its holder was SIGKILLed
#: before releasing) is considered stale and broken by the next
#: claimant.  Generous: a legitimate fill of a full-scale point can
#: run for minutes, and breaking a *live* claim only costs a duplicate
#: computation, never a torn record (writes stay atomic either way).
DEFAULT_FILL_STALE_S = 600.0


# ---------------------------------------------------------------------------
# Simulation points
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SimPoint:
    """One independent cell of an experiment grid.

    Pure and picklable: everything the timing result depends on is a
    field, so a point can be shipped to a worker process or hashed into
    a persistent cache key.
    """

    benchmark: str
    variant: Variant
    cpu: ProcessorConfig
    mem: MemoryConfig
    scale: WorkloadScale

    def describe(self) -> Dict:
        """The full JSON-safe description hashed into the cache key."""
        return {
            "benchmark": self.benchmark,
            "variant": self.variant.value,
            "cpu": self.cpu.to_dict(),
            "mem": self.mem.to_dict(),
            "scale": self.scale.to_dict(),
            "registry_version": REGISTRY_VERSION,
            "analyzer_version": ANALYZER_VERSION,
        }

    def content_key(self) -> str:
        """Stable hex digest of :meth:`describe`; the cache filename."""
        blob = json.dumps(
            self.describe(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Human-readable progress label."""
        return f"{self.benchmark}[{self.variant.value}]@{self.cpu.name}"


# ---------------------------------------------------------------------------
# Persistent on-disk result cache
# ---------------------------------------------------------------------------


class DiskCache:
    """JSON-record store for simulated :class:`ExecutionStats`.

    Layout::

        <root>/CACHE_VERSION     # "<format>.<registry>" stamp
        <root>/<sha256>.json     # one record per simulation point
        <root>/quarantine/       # corrupted records, moved aside

    Records carry the point description alongside the stats so the
    cache is self-describing (``jq .point`` shows what produced a
    record), plus a sha256 checksum of the stats payload.  Loading
    never raises: a record that is unreadable, unparseable, or fails
    its checksum is **quarantined** (moved into ``quarantine/`` with a
    logged warning) and treated as a miss, so the point is recomputed
    instead of a torn write poisoning a figure.  Write failures (e.g.
    a read-only results directory) are logged and counted in
    :attr:`write_errors`, never silently swallowed.
    """

    STAMP_NAME = "CACHE_VERSION"

    def __init__(
        self,
        root,
        registry_version: int = REGISTRY_VERSION,
        analyzer_version: int = ANALYZER_VERSION,
    ) -> None:
        self.root = Path(root)
        self.version = (
            f"{CACHE_FORMAT_VERSION}.{registry_version}.{analyzer_version}"
        )
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: records that failed checksum/parse and were moved aside
        self.quarantined = 0
        #: store() calls that could not persist their record
        self.write_errors = 0
        #: cross-process fill claims taken by this process
        self.claims = 0
        #: orphaned fill claims broken (holder died without releasing)
        self.stale_claims_broken = 0
        #: the cache directory could not be prepared; loads still work
        #: if records exist, stores are logged no-ops
        self.read_only = False
        self._ensure_stamp()

    # -- invalidation stamp -------------------------------------------------

    def _ensure_stamp(self) -> None:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            self.read_only = True
            log.warning(
                "cannot create cache directory %s (%s); caching disabled "
                "for this run", self.root, exc,
            )
            return
        stamp = self.root / self.STAMP_NAME
        try:
            current = stamp.read_text().strip()
        except OSError:
            current = None  # missing stamp: fresh (or pre-stamp) cache
        if current != self.version:
            if current is not None:
                self.clear()
            try:
                self._atomic_write(stamp, self.version)
            except OSError as exc:
                self.read_only = True
                log.warning(
                    "cannot write cache version stamp %s (%s); treating "
                    "cache as read-only", stamp, exc,
                )

    def clear(self) -> int:
        """Drop every record (keeps the directory); returns the count."""
        dropped = 0
        for record in self.root.glob("*.json"):
            try:
                record.unlink()
                dropped += 1
            except OSError as exc:
                log.warning("could not drop cache record %s: %s", record, exc)
        return dropped

    # -- records ------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    @staticmethod
    def payload_checksum(stats_dict: Dict) -> str:
        """sha256 over the canonical JSON of the stats payload."""
        blob = json.dumps(stats_dict, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt record aside (never trust, never crash)."""
        self.quarantined += 1
        qdir = self.root / QUARANTINE_DIRNAME
        try:
            qdir.mkdir(exist_ok=True)
            os.replace(path, qdir / path.name)
            log.warning(
                "quarantined corrupt cache record %s -> %s/ (%s); "
                "the point will be recomputed",
                path.name, QUARANTINE_DIRNAME, reason,
            )
        except OSError as exc:
            log.warning(
                "corrupt cache record %s (%s) could not be quarantined "
                "(%s); ignoring it", path.name, reason, exc,
            )

    def load(self, key: str) -> Optional[ExecutionStats]:
        """Return the cached stats for ``key``, or ``None`` on any
        miss.  Corrupted/truncated records are quarantined + logged."""
        path = self.path_for(key)
        try:
            with open(path, "r") as f:
                record = json.load(f)
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as exc:
            log.warning("cannot read cache record %s: %s", path, exc)
            self.misses += 1
            return None
        except ValueError:
            self._quarantine(path, "unparseable JSON (torn write?)")
            self.misses += 1
            return None
        try:
            if record.get("key") != key or record.get("version") != self.version:
                # stale schema or registry: a plain miss, overwritten
                # by the next store
                self.misses += 1
                return None
            payload = record["stats"]
            if record.get("payload_sha256") != self.payload_checksum(payload):
                self._quarantine(path, "payload checksum mismatch")
                self.misses += 1
                return None
            stats = ExecutionStats.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            self._quarantine(path, "malformed record")
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def store(
        self,
        key: str,
        stats: ExecutionStats,
        point: Optional[SimPoint] = None,
        elapsed: Optional[float] = None,
    ) -> Optional[Path]:
        """Atomically persist one record (write temp + ``os.replace``),
        so a crash mid-write can never leave a half-record behind.
        Returns ``None`` (with a logged warning) if the write failed —
        e.g. a read-only results directory — instead of aborting the
        grid or hiding the problem."""
        payload = stats.to_dict()
        record = {
            "version": self.version,
            "key": key,
            "point": point.describe() if point is not None else None,
            "elapsed_s": elapsed,
            "payload_sha256": self.payload_checksum(payload),
            "stats": payload,
        }
        path = self.path_for(key)
        try:
            self._atomic_write(path, json.dumps(record, sort_keys=True))
        except OSError as exc:
            self.write_errors += 1
            log.warning(
                "cache write failed for %s (%s); continuing without "
                "persisting this point", path, exc,
            )
            return None
        self.stores += 1
        return path

    def _atomic_write(self, path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=str(self.root), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                f.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- cross-process fill claims ------------------------------------------

    def lock_path(self, key: str) -> Path:
        return self.root / FILL_LOCKS_DIRNAME / f"{key}.lock"

    def try_claim(
        self, key: str, stale_after: float = DEFAULT_FILL_STALE_S
    ) -> Optional["FillClaim"]:
        """Try to claim the *fill* of ``key`` across processes.

        Returns a :class:`FillClaim` (release it, ideally via ``with``)
        when this process won the O_EXCL race and should compute the
        point, or ``None`` when another live process already holds the
        claim — the caller should then poll :meth:`load` until the
        record appears (or the claim goes stale and a retry wins).

        The claim is *advisory*: it exists so two servers/workers
        racing the same key do not compute it twice.  It is never
        required for safety — record writes stay atomic and
        checksummed with or without it — so every failure mode degrades
        to "compute anyway":

        * an unwritable cache (read-only results dir) returns an
          unbacked claim, so the caller still proceeds;
        * a claim older than ``stale_after`` (its holder was SIGKILLed
          mid-fill) is broken and re-taken by the next claimant.
        """
        lock = self.lock_path(key)
        try:
            lock.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            return FillClaim(self, key, path=None)  # degraded: no locking
        payload = json.dumps({"pid": os.getpid(), "time": time.time()})
        for _attempt in (1, 2):
            try:
                fd = os.open(str(lock), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if (
                    self.claim_age(key) > stale_after
                    or self.claim_holder_dead(key)
                ):
                    self.stale_claims_broken += 1
                    log.warning(
                        "breaking stale fill claim for %s "
                        "(older than %gs, or holder dead)",
                        key[:16], stale_after,
                    )
                    try:
                        os.unlink(lock)
                    except OSError:
                        pass
                    continue  # one more O_EXCL attempt
                return None
            except OSError:
                return FillClaim(self, key, path=None)  # degraded: no locking
            with os.fdopen(fd, "w") as f:
                f.write(payload)
            self.claims += 1
            return FillClaim(self, key, path=lock)
        return None  # lost the post-stale-break re-race

    def claim_age(self, key: str) -> float:
        """Seconds since the current claim on ``key`` was taken
        (``-1.0`` when no claim exists)."""
        try:
            return max(0.0, time.time() - self.lock_path(key).stat().st_mtime)
        except OSError:
            return -1.0

    def claim_holder_dead(self, key: str) -> bool:
        """``True`` when the claim on ``key`` names a pid that provably
        no longer exists on this host (its holder was SIGKILLed without
        releasing).  Conservative: any doubt — unreadable payload,
        foreign-looking pid, permission error — reads as *alive*, so a
        live fill is never hijacked; the age-based stale break still
        backstops those cases."""
        try:
            payload = json.loads(
                self.lock_path(key).read_text(encoding="utf-8")
            )
            pid = int(payload["pid"])
        except (OSError, ValueError, KeyError, TypeError):
            return False
        if pid <= 0 or pid == os.getpid():
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except OSError:
            pass  # e.g. EPERM: alive but not ours
        return False

    def release_claim(self, key: str) -> None:
        try:
            os.unlink(self.lock_path(key))
        except OSError:
            pass

    def wait_for(
        self,
        key: str,
        timeout: float = DEFAULT_FILL_STALE_S,
        poll_interval: float = 0.05,
        stale_after: float = DEFAULT_FILL_STALE_S,
    ) -> Optional[ExecutionStats]:
        """Block until another process's in-flight fill of ``key``
        lands, then return it — or ``None`` when the claim disappears
        or goes stale without a record (the caller should claim and
        compute).  Purely a convenience for synchronous callers; the
        asyncio server implements the same loop non-blockingly."""
        deadline = time.monotonic() + timeout
        while True:
            stats = self.load(key)
            if stats is not None:
                return stats
            age = self.claim_age(key)
            if age < 0 or age > stale_after or self.claim_holder_dead(key):
                return None  # released without a record, stale, or dead
            if time.monotonic() >= deadline:
                return None
            time.sleep(poll_interval)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


class FillClaim:
    """RAII handle for one cross-process cache-fill claim.

    ``path`` is ``None`` for a *degraded* claim — the lock directory
    was unwritable, so no exclusion is provided but the caller still
    proceeds (liveness over dedup, mirroring the cache's own
    read-only degradation)."""

    def __init__(self, cache: DiskCache, key: str, path: Optional[Path]):
        self.cache = cache
        self.key = key
        self.path = path
        self.released = False

    @property
    def degraded(self) -> bool:
        return self.path is None

    def release(self) -> None:
        if self.released:
            return
        self.released = True
        if self.path is not None:
            self.cache.release_claim(self.key)

    def __enter__(self) -> "FillClaim":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


# ---------------------------------------------------------------------------
# Worker-side execution
# ---------------------------------------------------------------------------

#: Per-worker-process build/validation caches, keyed by scale content
#: key so a worker reuses expensive codec program construction across
#: the points it is handed.
_WORKER_CACHES: Dict[str, RunCache] = {}


def _checkpoint_session(
    point: SimPoint,
    key: str,
    checkpoint_dir,
    checkpoint_interval: int,
    checkpoint_keep: int,
):
    """Build the per-point :class:`~repro.checkpoint.CheckpointSession`
    (``None`` when checkpointing is off).  Each point snapshots into its
    own content-keyed directory, so concurrent workers never collide."""
    if checkpoint_dir is None:
        return None
    from ..checkpoint import CheckpointSession

    return CheckpointSession(
        directory=Path(checkpoint_dir) / key,
        interval=checkpoint_interval,
        keep=checkpoint_keep,
        point_key=key,
        label=point.label(),
    )


def _simulate_point(
    point: SimPoint,
    validate: bool,
    audit: bool = False,
    timeout: Optional[float] = None,
    max_steps: Optional[int] = None,
    max_cycles: Optional[int] = None,
    lint: bool = True,
    lint_memo_dir: Optional[Path] = None,
    checkpoint_dir=None,
    checkpoint_interval: int = 0,
    checkpoint_keep: int = 0,
    engine: Optional[str] = None,
) -> Tuple[ExecutionStats, float, Optional[str]]:
    """Top-level (picklable) worker entry: simulate one point.

    ``timeout`` arms the worker-side wall-clock watchdog (SIGALRM), so
    a hung point raises :class:`~repro.experiments.faults.PointTimeout`
    back to the parent instead of blocking the pool; the fault-injection
    hook fires *inside* the alarm so injected hangs are caught too.

    ``checkpoint_dir`` (when set) arms cycle-level checkpointing: the
    run restores from this point's newest valid snapshot, writes a new
    one every ``checkpoint_interval`` cycles, and the third element of
    the returned tuple names the snapshot it resumed from (``None`` =
    cold start) so the parent can journal it.
    """
    label = point.label()
    with point_alarm(timeout, label):
        maybe_inject(label)
        cache_key = point.scale.content_key()
        cache = _WORKER_CACHES.get(cache_key)
        if (
            cache is None
            or cache.validate != validate
            or cache.audit != audit
            or cache.max_steps != max_steps
            or cache.max_cycles != max_cycles
            or cache.lint != lint
            or cache.lint_memo_dir != lint_memo_dir
            or cache.engine != engine
        ):
            cache = RunCache(
                scale=point.scale, validate=validate, audit=audit,
                max_steps=max_steps, max_cycles=max_cycles, lint=lint,
                lint_memo_dir=lint_memo_dir, engine=engine,
            )
            _WORKER_CACHES[cache_key] = cache
        session = _checkpoint_session(
            point, point.content_key(), checkpoint_dir,
            checkpoint_interval, checkpoint_keep,
        )
        start = time.perf_counter()
        stats = cache.run(
            point.benchmark, point.variant, point.cpu, point.mem,
            checkpoint=session,
        )
        elapsed = time.perf_counter() - start
        resumed_from = session.resumed_from if session is not None else None
        return stats, elapsed, resumed_from


#: Progress callback signature: (k, n, point, elapsed_s, cached).
ProgressFn = Callable[[int, int, SimPoint, float, bool], None]


def print_progress(stream=None) -> ProgressFn:
    """The CLI's reporter: ``[k/n] label ... 1.24s`` or ``(cached)``."""
    out = stream or sys.stderr

    def report(k: int, n: int, point: SimPoint, elapsed: float, cached: bool):
        suffix = "(cached)" if cached else f"{elapsed:.2f}s"
        print(f"[{k}/{n}] {point.label()} ... {suffix}", file=out, flush=True)

    return report


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


@dataclass
class ParallelRunner:
    """Run simulation-point grids, in parallel, through the disk cache.

    Implements the same point-running protocol as
    :class:`~repro.experiments.runner.RunCache` (``.scale`` +
    ``.run_points()``), so every figure driver accepts either.

    * ``jobs <= 1`` runs in-process through a private :class:`RunCache`
      (shared workload builds, functional validation) — identical to
      the legacy serial path.
    * ``jobs > 1`` fans un-cached points out over a process pool and
      merges results back in enumeration order, so output is
      byte-identical to the serial path.

    Failure semantics: every point is resolved in isolation.  By
    default (``keep_going=False``) the first deterministic failure
    raises :class:`~repro.experiments.faults.GridFailure` naming the
    point; with ``keep_going=True`` the grid completes around failures
    and the returned list carries
    :class:`~repro.experiments.faults.PointFailure` placeholders.
    Transient worker losses are retried per :attr:`retry` on a rebuilt
    pool either way.  Audit divergences
    (:class:`~repro.trace.AuditError`) are never isolated — they mean
    the simulator itself is wrong and always propagate.
    """

    scale: WorkloadScale = DEFAULT_SCALE
    jobs: int = 1
    cache: Optional[DiskCache] = None
    validate: bool = True
    #: audit every *simulated* point against the event-stream
    #: recomputation (``--audit``); points served from the persistent
    #: cache were audited when they were first simulated with auditing
    #: on — combine with ``--no-cache`` to force a full re-audit.
    audit: bool = False
    progress: Optional[ProgressFn] = None
    #: complete the grid around failed points instead of aborting
    keep_going: bool = False
    #: per-point wall-clock bound (seconds); enforced in the worker by
    #: SIGALRM and backstopped by a parent-side hard deadline that
    #: kills and rebuilds the pool
    point_timeout: Optional[float] = None
    #: bounded, deterministically-jittered retries for transient
    #: failures (worker death / pool breakage)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: journal of per-point outcomes for ``--resume``
    manifest: Optional[RunManifest] = None
    #: recycle worker processes after N points (guards against leaks
    #: in long grids); requires the spawn start method
    max_tasks_per_child: Optional[int] = None
    #: runaway watchdogs threaded to every simulation (``None`` = the
    #: machine's size-proportional default / unbounded cycles)
    max_steps: Optional[int] = None
    max_cycles: Optional[int] = None
    #: pre-run static verification gate (CLI ``--no-lint`` disables);
    #: a gating program raises
    #: :class:`~repro.analyze.VerificationError`, isolated like any
    #: other deterministic point failure
    lint: bool = True
    #: persistent digest-keyed gate-verdict memo directory; ``None``
    #: (the default) derives ``<cache.root>/analysis`` when a persistent
    #: cache is attached, so ``--no-cache`` also disables it
    lint_memo_dir: Optional[Path] = None
    #: execution engine for every simulation (``scalar`` /
    #: ``vector``; ``None`` = ``REPRO_ENGINE`` or the default).  Either
    #: engine produces byte-identical stats, so the engine is *not*
    #: part of the disk-cache key.
    engine: Optional[str] = None
    #: cycle-level checkpoint snapshot root (``None`` = checkpointing
    #: off); one subdirectory per point, keyed by its content hash
    checkpoint_dir: Optional[Path] = None
    #: snapshot cadence in simulated cycles
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL
    #: newest snapshots retained per point
    checkpoint_keep: int = DEFAULT_CHECKPOINT_KEEP
    #: points simulated (cache misses) across the runner's lifetime
    simulated: int = 0
    #: points served from the persistent cache
    cache_hits: int = 0
    #: points restored from the resume manifest
    resumed: int = 0
    #: simulations that restored mid-flight from a checkpoint snapshot
    checkpoint_resumes: int = 0
    #: transient retries performed
    retried: int = 0
    #: process pools torn down and rebuilt after breakage/timeouts
    pool_rebuilds: int = 0
    #: structured failures collected this run (empty on a clean grid)
    failures: List[PointFailure] = field(default_factory=list)
    _local: Optional[RunCache] = field(default=None, repr=False)

    @classmethod
    def create(
        cls,
        scale: WorkloadScale = DEFAULT_SCALE,
        jobs: Optional[int] = None,
        cache_dir=None,
        validate: bool = True,
        progress: Optional[ProgressFn] = None,
        audit: bool = False,
        keep_going: bool = False,
        point_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        manifest: Optional[RunManifest] = None,
        max_tasks_per_child: Optional[int] = None,
        max_steps: Optional[int] = None,
        max_cycles: Optional[int] = None,
        lint: bool = True,
        engine: Optional[str] = None,
        checkpoint_dir=None,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        checkpoint_keep: int = DEFAULT_CHECKPOINT_KEEP,
    ) -> "ParallelRunner":
        """Convenience constructor mirroring the CLI flags."""
        return cls(
            scale=scale,
            jobs=jobs if jobs is not None else (os.cpu_count() or 1),
            cache=DiskCache(cache_dir) if cache_dir is not None else None,
            validate=validate,
            progress=progress,
            audit=audit,
            keep_going=keep_going,
            point_timeout=point_timeout,
            retry=retry if retry is not None else RetryPolicy(),
            manifest=manifest,
            max_tasks_per_child=max_tasks_per_child,
            max_steps=max_steps,
            max_cycles=max_cycles,
            lint=lint,
            engine=engine,
            checkpoint_dir=(
                Path(checkpoint_dir) if checkpoint_dir is not None else None
            ),
            checkpoint_interval=checkpoint_interval,
            checkpoint_keep=checkpoint_keep,
        )

    # -- protocol -----------------------------------------------------------

    def run(
        self,
        name: str,
        variant: Variant,
        cpu_config: ProcessorConfig,
        mem_config: MemoryConfig,
    ) -> ExecutionStats:
        """Single-point convenience (RunCache-compatible).  Under
        ``keep_going`` the result may be a :class:`PointFailure`."""
        point = SimPoint(name, variant, cpu_config, mem_config, self.scale)
        return self.run_points([point])[0]

    def run_points(self, points: Sequence[SimPoint]) -> List[ExecutionStats]:
        """Resolve every point; results align 1:1 with ``points``.

        Entries are :class:`ExecutionStats`, or — only under
        ``keep_going`` — :class:`PointFailure` placeholders for points
        that could not be resolved.
        """
        points = list(points)
        known = set(_workload_names())
        for point in points:
            if point.benchmark not in known:
                raise KeyError(point.benchmark)
        n = len(points)
        results: List[Optional[ExecutionStats]] = [None] * n
        reported = 0

        # Phase 0/1: resume-manifest and persistent-cache lookups, in
        # enumeration order.
        keys = [p.content_key() for p in points]
        todo: Dict[str, List[int]] = {}  # key -> indices needing it
        for i, (point, key) in enumerate(zip(points, keys)):
            if key in todo:  # duplicate within this grid
                todo[key].append(i)
                continue
            stats = None
            if self.manifest is not None:
                stats = self.manifest.completed.get(key)
                if stats is not None:
                    self.resumed += 1
            if stats is None and self.cache is not None:
                stats = self.cache.load(key)
                if stats is not None:
                    self.cache_hits += 1
            if stats is not None:
                results[i] = stats
                reported += 1
                self._report(reported, n, point, 0.0, cached=True)
            else:
                todo[key] = [i]

        # Phase 2: simulate the misses (one run per unique key).
        if todo:
            reported = self._simulate(points, keys, todo, results, reported, n)

        missing = [i for i, r in enumerate(results) if r is None]
        assert not missing, f"unresolved points at indices {missing}"
        return results  # type: ignore[return-value]

    # -- internals ----------------------------------------------------------

    def _report(
        self, k: int, n: int, point: SimPoint, elapsed: float, cached: bool
    ) -> None:
        if self.progress is not None:
            self.progress(k, n, point, elapsed, cached)

    def _finish(
        self,
        key: str,
        indices: List[int],
        stats: ExecutionStats,
        elapsed: float,
        points: List[SimPoint],
        results: List[Optional[ExecutionStats]],
        resumed_from: Optional[str] = None,
    ) -> None:
        for idx in indices:
            results[idx] = stats
        self.simulated += 1
        if resumed_from is not None:
            self.checkpoint_resumes += 1
        if self.cache is not None:
            self.cache.store(key, stats, point=points[indices[0]], elapsed=elapsed)
        if self.manifest is not None:
            self.manifest.record_ok(
                key, stats, label=points[indices[0]].label(), elapsed=elapsed,
                resumed_from=resumed_from,
            )

    def _record_failure(
        self,
        failure: PointFailure,
        indices: List[int],
        points: List[SimPoint],
        results: List[Optional[ExecutionStats]],
        reported: int,
        n: int,
    ) -> int:
        """Book one failed point: journal it, then either abort the
        grid (default) or mark the result slots and carry on."""
        self.failures.append(failure)
        if self.manifest is not None:
            self.manifest.record_failure(failure)
        if not self.keep_going:
            raise GridFailure(failure)
        for idx in indices:
            results[idx] = failure
        reported += 1
        self._report(
            reported, n, points[indices[0]], failure.elapsed, cached=False
        )
        return reported

    def _simulate(
        self,
        points: List[SimPoint],
        keys: List[str],
        todo: Dict[str, List[int]],
        results: List[Optional[ExecutionStats]],
        reported: int,
        n: int,
    ) -> int:
        ordered = list(todo.items())  # enumeration order (dict is ordered)
        if self.jobs <= 1 or len(ordered) == 1:
            return self._simulate_serial(ordered, points, results, reported, n)
        return self._simulate_parallel(ordered, points, results, reported, n)

    def _memo_dir(self) -> Optional[Path]:
        """Where gate verdicts persist (``None`` = memo off)."""
        if self.lint_memo_dir is not None:
            return self.lint_memo_dir
        if self.cache is not None and not self.cache.read_only:
            return self.cache.root / ANALYSIS_MEMO_DIRNAME
        return None

    # -- serial path --------------------------------------------------------

    def _simulate_serial(
        self, ordered, points, results, reported: int, n: int
    ) -> int:
        if (
            self._local is None
            or self._local.scale != self.scale
            or self._local.audit != self.audit
            or self._local.max_steps != self.max_steps
            or self._local.max_cycles != self.max_cycles
            or self._local.lint != self.lint
            or self._local.lint_memo_dir != self._memo_dir()
            or self._local.engine != self.engine
        ):
            self._local = RunCache(
                scale=self.scale, validate=self.validate, audit=self.audit,
                max_steps=self.max_steps, max_cycles=self.max_cycles,
                lint=self.lint, lint_memo_dir=self._memo_dir(),
                engine=self.engine,
            )
        for key, indices in ordered:
            point = points[indices[0]]
            attempt = 0
            while True:
                attempt += 1
                session = _checkpoint_session(
                    point, key, self.checkpoint_dir,
                    self.checkpoint_interval, self.checkpoint_keep,
                )
                start = time.perf_counter()
                try:
                    with point_alarm(self.point_timeout, point.label()):
                        maybe_inject(point.label())
                        stats = self._local.run(
                            point.benchmark, point.variant,
                            point.cpu, point.mem, checkpoint=session,
                        )
                except Exception as exc:
                    status, _transient = classify(exc)
                    if status == STATUS_AUDIT:
                        raise  # audit divergences are never isolated
                    if self.retry.should_retry(status, attempt):
                        # e.g. a timed-out point with checkpointing on:
                        # the retry resumes from the snapshot just
                        # written, so each attempt makes progress
                        self.retried += 1
                        time.sleep(self.retry.delay(key, attempt))
                        continue
                    failure = PointFailure.from_exception(
                        exc, point.label(), key=key, attempts=attempt,
                        elapsed=time.perf_counter() - start,
                    )
                    reported = self._record_failure(
                        failure, indices, points, results, reported, n
                    )
                    break
                elapsed = time.perf_counter() - start
                self._finish(
                    key, indices, stats, elapsed, points, results,
                    resumed_from=(
                        session.resumed_from if session is not None else None
                    ),
                )
                reported += 1
                self._report(reported, n, point, elapsed, cached=False)
                break
        return reported

    # -- parallel path ------------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        kwargs: Dict = {"max_workers": self.jobs}
        if self.max_tasks_per_child:
            # worker recycling needs a restartable start method
            import multiprocessing

            if sys.version_info >= (3, 11):
                kwargs["max_tasks_per_child"] = self.max_tasks_per_child
                kwargs["mp_context"] = multiprocessing.get_context("spawn")
            else:  # pragma: no cover - py<3.11 fallback
                log.warning(
                    "max_tasks_per_child needs Python >= 3.11; ignoring"
                )
        return ProcessPoolExecutor(**kwargs)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a (possibly broken or hung) pool down hard: cancel what
        never started, kill the worker processes so a hung point cannot
        block shutdown, and never raise."""
        try:
            processes = list(getattr(pool, "_processes", {}).values())
        except Exception:  # pragma: no cover - defensive
            processes = []
        for proc in processes:
            try:
                proc.kill()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass

    def _hard_deadline(self, now: float) -> Optional[float]:
        """Parent-side backstop for a worker SIGALRM cannot interrupt:
        twice the point timeout plus scheduling slack."""
        if self.point_timeout is None:
            return None
        return now + 2.0 * self.point_timeout + 2.0

    def _requeue_or_fail(
        self,
        key: str,
        indices: List[int],
        status: str,
        message: str,
        pending: deque,
        attempts: Dict[str, int],
        not_before: Dict[str, float],
        points,
        results,
        reported: int,
        n: int,
    ) -> int:
        """A point was lost transiently (worker death / pool breakage):
        retry it with backoff if the budget allows, else book the
        structured failure."""
        point = points[indices[0]]
        if self.retry.should_retry(status, attempts[key]):
            self.retried += 1
            delay = self.retry.delay(key, attempts[key])
            not_before[key] = time.monotonic() + delay
            log.warning(
                "%s: %s (attempt %d); retrying in %.2fs",
                point.label(), status, attempts[key], delay,
            )
            pending.append((key, indices))
            return reported
        failure = PointFailure(
            status=status,
            label=point.label(),
            key=key,
            error_type="BrokenProcessPool"
            if status == STATUS_WORKER_LOST else "PointTimeout",
            message=message,
            attempts=attempts[key],
        )
        return self._record_failure(
            failure, indices, points, results, reported, n
        )

    def _simulate_parallel(
        self, ordered, points, results, reported: int, n: int
    ) -> int:
        pending: deque = deque(ordered)
        attempts: Dict[str, int] = {key: 0 for key, _ in ordered}
        not_before: Dict[str, float] = {}
        inflight: Dict = {}  # future -> (key, indices, hard_deadline)
        pool = self._new_pool()
        try:
            while pending or inflight:
                now = time.monotonic()
                # ---- submit up to the worker count; rotate past
                # backoff-gated heads so ready work is never starved
                scanned, limit = 0, len(pending)
                while (
                    pending and len(inflight) < self.jobs and scanned <= limit
                ):
                    key, indices = pending[0]
                    if not_before.get(key, 0.0) > now:
                        pending.rotate(-1)
                        scanned += 1
                        continue
                    pending.popleft()
                    attempts[key] += 1
                    future = pool.submit(
                        _simulate_point, points[indices[0]], self.validate,
                        self.audit, self.point_timeout, self.max_steps,
                        self.max_cycles, self.lint, self._memo_dir(),
                        self.checkpoint_dir, self.checkpoint_interval,
                        self.checkpoint_keep, self.engine,
                    )
                    inflight[future] = (key, indices, self._hard_deadline(now))
                if not inflight:  # everything gated on backoff
                    time.sleep(0.02)
                    continue

                done, _ = wait(
                    set(inflight), timeout=0.1, return_when=FIRST_COMPLETED
                )
                broken: List[Tuple[str, List[int]]] = []
                for future in done:
                    key, indices, _deadline = inflight.pop(future)
                    point = points[indices[0]]
                    try:
                        stats, elapsed, resumed_from = future.result()
                    except BrokenExecutor:
                        broken.append((key, indices))
                        continue
                    except Exception as exc:
                        status, _transient = classify(exc)
                        if status == STATUS_AUDIT:
                            raise
                        if self.retry.should_retry(
                            status, attempts[key]
                        ):
                            self.retried += 1
                            not_before[key] = (
                                time.monotonic()
                                + self.retry.delay(key, attempts[key])
                            )
                            pending.append((key, indices))
                            continue
                        failure = PointFailure.from_exception(
                            exc, point.label(), key=key,
                            attempts=attempts[key],
                        )
                        reported = self._record_failure(
                            failure, indices, points, results, reported, n
                        )
                        continue
                    self._finish(
                        key, indices, stats, elapsed, points, results,
                        resumed_from=resumed_from,
                    )
                    reported += 1
                    self._report(reported, n, point, elapsed, cached=False)

                # ---- pool breakage: a worker died (SIGKILL / OOM).
                # Every in-flight future is doomed with it; rebuild the
                # pool and retry/fail each lost point.
                if broken:
                    self.pool_rebuilds += 1
                    victims = broken + [
                        (key, indices) for key, indices, _dl in inflight.values()
                    ]
                    inflight.clear()
                    self._kill_pool(pool)
                    pool = self._new_pool()
                    log.warning(
                        "worker pool broke; rebuilt (%d point(s) rescheduled)",
                        len(victims),
                    )
                    for key, indices in victims:
                        reported = self._requeue_or_fail(
                            key, indices, STATUS_WORKER_LOST,
                            "worker process died (pool breakage)",
                            pending, attempts, not_before,
                            points, results, reported, n,
                        )
                    continue

                # ---- hard-deadline sweep: a worker hung in a way the
                # SIGALRM watchdog could not interrupt.  Kill the pool,
                # fail the expired point(s), requeue innocent bystanders
                # without charging their retry budget.
                now = time.monotonic()
                expired = [
                    future for future, (_k, _i, deadline) in inflight.items()
                    if deadline is not None and now > deadline
                ]
                if expired:
                    self.pool_rebuilds += 1
                    bystanders = []
                    timed_out = []
                    for future, (key, indices, deadline) in list(
                        inflight.items()
                    ):
                        if future in expired:
                            timed_out.append((key, indices))
                        else:
                            attempts[key] -= 1  # not their fault
                            bystanders.append((key, indices))
                    inflight.clear()
                    self._kill_pool(pool)
                    pool = self._new_pool()
                    pending.extendleft(reversed(bystanders))
                    for key, indices in timed_out:
                        reported = self._requeue_or_fail(
                            key, indices, STATUS_TIMEOUT,
                            f"exceeded hard deadline "
                            f"(~2x --point-timeout={self.point_timeout:g}s); "
                            f"worker killed",
                            pending, attempts, not_before,
                            points, results, reported, n,
                        )
        finally:
            self._kill_pool(pool)
        return reported
