"""Experiment harness: regenerates every table and figure of the paper."""

from .figures import (
    ARCH_CONFIGS,
    ablation,
    branch_stats,
    cache_sweep,
    figure1,
    figure2,
    figure3,
    mshr_study,
)
from .runner import RunCache, simulate_program

__all__ = [
    "ARCH_CONFIGS",
    "ablation",
    "branch_stats",
    "cache_sweep",
    "figure1",
    "figure2",
    "figure3",
    "mshr_study",
    "RunCache",
    "simulate_program",
]
