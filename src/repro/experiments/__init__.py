"""Experiment harness: regenerates every table and figure of the paper."""

from .figures import (
    ARCH_CONFIGS,
    BASELINE_CONFIG,
    ablation,
    branch_stats,
    cache_sweep,
    figure1,
    figure2,
    figure3,
    mshr_study,
)
from .faults import (
    GridFailure,
    PointFailure,
    PointTimeout,
    RetryPolicy,
    RunManifest,
)
from .parallel import DiskCache, ParallelRunner, SimPoint
from .runner import RunCache, simulate_program

__all__ = [
    "ARCH_CONFIGS",
    "BASELINE_CONFIG",
    "ablation",
    "branch_stats",
    "cache_sweep",
    "figure1",
    "figure2",
    "figure3",
    "mshr_study",
    "DiskCache",
    "GridFailure",
    "ParallelRunner",
    "PointFailure",
    "PointTimeout",
    "RetryPolicy",
    "RunManifest",
    "SimPoint",
    "RunCache",
    "simulate_program",
]
