"""Plain-text tables + CSV output for the experiment drivers."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Fixed-width table (first column left-aligned)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]

    def fmt(row):
        first = row[0].ljust(widths[0])
        rest = [c.rjust(w) for c, w in zip(row[1:], widths[1:])]
        return "  ".join([first] + rest)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def write_csv(path, headers: Sequence[str], rows: Sequence[Sequence]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def stacked_bar(components: Dict[str, float], width: int = 40) -> str:
    """ASCII rendition of one Figure-1 stacked bar (percent units)."""
    glyphs = {"Busy": "#", "FU stall": "=", "L1 hit": "+", "L1 miss": "."}
    total = sum(components.values())
    out = []
    for name, value in components.items():
        out.append(glyphs.get(name, "?") * max(0, round(value * width / 100)))
    bar = "".join(out)
    return f"|{bar}| {total:5.1f}"
