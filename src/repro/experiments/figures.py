"""Experiment drivers: one function per paper artifact.

Each driver returns ``(headers, rows, text)`` so the CLI can print the
table and write a CSV, and the pytest benchmarks can assert on the
numbers.  See DESIGN.md's per-experiment index (E1..E10).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..cpu.config import ProcessorConfig
from ..mem.config import MemoryConfig
from ..workloads.base import Variant
from ..workloads.params import WorkloadScale
from ..workloads.suite import KERNEL_NAMES, PREFETCH_NAMES, names
from .runner import RunCache

#: Figure 1's three architecture variants, in paper order.
ARCH_CONFIGS = (
    ProcessorConfig.inorder_1way(),
    ProcessorConfig.inorder_4way(),
    ProcessorConfig.ooo_4way(),
)


def figure1(
    cache: RunCache,
    benchmarks: Tuple[str, ...] = None,
) -> Tuple[List[str], List[List], Dict]:
    """E1 — normalized execution time, six bars per benchmark with the
    Busy / FU-stall / L1-hit / L1-miss breakdown."""
    mem = cache.scale.memory_config()
    headers = [
        "benchmark", "variant", "config", "norm time",
        "busy", "fu stall", "l1 hit", "l1 miss", "cycles",
    ]
    rows: List[List] = []
    raw: Dict = {}
    for name in benchmarks or names():
        base_cycles = None
        for variant in (Variant.SCALAR, Variant.VIS):
            for config in ARCH_CONFIGS:
                stats = cache.run(name, variant, config, mem)
                if base_cycles is None:
                    base_cycles = stats.cycles
                comp = stats.components_normalized(base_cycles)
                rows.append([
                    name,
                    "VIS" if variant is Variant.VIS else "base",
                    config.name,
                    f"{100 * stats.cycles / base_cycles:.1f}",
                    f"{comp['Busy']:.1f}",
                    f"{comp['FU stall']:.1f}",
                    f"{comp['L1 hit']:.1f}",
                    f"{comp['L1 miss']:.1f}",
                    stats.cycles,
                ])
                raw[(name, variant, config.name)] = stats
    return headers, rows, raw


def figure2(
    cache: RunCache,
    benchmarks: Tuple[str, ...] = None,
) -> Tuple[List[str], List[List], Dict]:
    """E2 — dynamic retired-instruction mix (FU / Branch / Memory /
    VIS), base vs. VIS on the 4-way out-of-order processor."""
    mem = cache.scale.memory_config()
    config = ProcessorConfig.ooo_4way()
    headers = [
        "benchmark", "variant", "total %", "FU", "Branch", "Memory", "VIS",
        "instructions",
    ]
    rows: List[List] = []
    raw: Dict = {}
    for name in benchmarks or names():
        base_total = None
        for variant in (Variant.SCALAR, Variant.VIS):
            stats = cache.run(name, variant, config, mem)
            counts = stats.category_counts
            total = stats.instructions
            if base_total is None:
                base_total = total
            rows.append([
                name,
                "VIS" if variant is Variant.VIS else "base",
                f"{100 * total / base_total:.1f}",
                counts["FU"],
                counts["Branch"],
                counts["Memory"],
                counts["VIS"],
                total,
            ])
            raw[(name, variant)] = stats
    return headers, rows, raw


def figure3(
    cache: RunCache,
    benchmarks: Tuple[str, ...] = None,
) -> Tuple[List[str], List[List], Dict]:
    """E3 — software prefetching: VIS vs VIS+PF on the 4-way
    out-of-order processor (the 9 benchmarks with memory stall time)."""
    mem = cache.scale.memory_config()
    config = ProcessorConfig.ooo_4way()
    headers = [
        "benchmark", "variant", "norm time", "busy", "fu stall",
        "l1 hit", "l1 miss", "pf issued", "pf late",
    ]
    rows: List[List] = []
    raw: Dict = {}
    for name in benchmarks or PREFETCH_NAMES:
        base = cache.run(name, Variant.VIS, config, mem)
        pf = cache.run(name, Variant.VIS_PREFETCH, config, mem)
        for label, stats in (("VIS", base), ("+PF", pf)):
            comp = stats.components_normalized(base.cycles)
            rows.append([
                name, label,
                f"{100 * stats.cycles / base.cycles:.1f}",
                f"{comp['Busy']:.1f}",
                f"{comp['FU stall']:.1f}",
                f"{comp['L1 hit']:.1f}",
                f"{comp['L1 miss']:.1f}",
                stats.memory.prefetches,
                stats.memory.prefetch_late,
            ])
        raw[name] = (base, pf)
    return headers, rows, raw


def cache_sweep(
    cache: RunCache,
    level: str = "l2",
    benchmarks: Tuple[str, ...] = None,
) -> Tuple[List[str], List[List], Dict]:
    """E4/E5 — L2 (or L1) capacity sweep on the VIS + out-of-order
    system.  Capacities are the scaled equivalents of the paper's
    128K..2M (L2) and 1K..64K (L1) ranges."""
    config = ProcessorConfig.ooo_4way()
    base_mem = cache.scale.memory_config()
    if level == "l2":
        sizes = [base_mem.l2_size * (1 << k) for k in range(5)]
        make = base_mem.with_l2_size
        paper_sizes = [128 << 10 << k for k in range(5)]
    else:
        raw_sizes = [
            max(base_mem.line_size * 4, base_mem.l1_size >> k)
            for k in reversed(range(4))
        ]
        sizes = sorted(set(raw_sizes))
        make = base_mem.with_l1_size
        paper_sizes = [64 << 10 >> k for k in reversed(range(len(sizes)))]
    headers = ["benchmark"] + [
        f"{size}B (~{paper // 1024}K)" for size, paper in zip(sizes, paper_sizes)
    ] + ["speedup largest/smallest"]
    rows: List[List] = []
    raw: Dict = {}
    for name in benchmarks or names():
        cycles = []
        for size in sizes:
            stats = cache.run(name, Variant.VIS, config, make(size))
            cycles.append(stats.cycles)
            raw[(name, size)] = stats
        rows.append(
            [name]
            + [f"{100 * c / cycles[0]:.1f}" for c in cycles]
            + [f"{cycles[0] / cycles[-1]:.2f}x"]
        )
    return headers, rows, raw


def branch_stats(
    cache: RunCache,
    benchmarks: Tuple[str, ...] = None,
) -> Tuple[List[str], List[List], Dict]:
    """E7 — branch misprediction rates, base vs VIS (Section 3.2.2:
    conv 10%->0%, thresh 6%->0%, mpeg-enc 27%->10%)."""
    mem = cache.scale.memory_config()
    config = ProcessorConfig.ooo_4way()
    headers = ["benchmark", "base mispredict", "VIS mispredict",
               "base branches", "VIS branches"]
    rows: List[List] = []
    raw: Dict = {}
    for name in benchmarks or names():
        base = cache.run(name, Variant.SCALAR, config, mem)
        vis = cache.run(name, Variant.VIS, config, mem)
        rows.append([
            name,
            f"{base.mispredict_rate:.1%}",
            f"{vis.mispredict_rate:.1%}",
            base.branches,
            vis.branches,
        ])
        raw[name] = (base, vis)
    return headers, rows, raw


def mshr_study(
    cache: RunCache,
    benchmarks: Tuple[str, ...] = None,
) -> Tuple[List[str], List[List], Dict]:
    """E8 — load-miss overlap and MSHR contention (Section 3.1: 2-3
    overlapped misses typical; write backup causes contention)."""
    mem = cache.scale.memory_config()
    config = ProcessorConfig.ooo_4way()
    headers = [
        "benchmark", "variant", "max overlap", "mean overlap",
        "mshr-full stalls", "combine-limit stalls", "l1 miss rate",
    ]
    rows: List[List] = []
    raw: Dict = {}
    for name in benchmarks or names():
        for variant in (Variant.SCALAR, Variant.VIS, Variant.VIS_PREFETCH):
            stats = cache.run(name, variant, config, mem)
            overlap = stats.memory.load_miss_overlap
            total = sum(overlap.values()) or 1
            mean = sum(k * v for k, v in overlap.items()) / total
            rows.append([
                name, variant.value,
                stats.memory.max_load_miss_overlap,
                f"{mean:.2f}",
                stats.memory.mshr_full_stalls,
                stats.memory.combine_limit_stalls,
                f"{stats.memory.l1_miss_rate:.3f}",
            ])
            raw[(name, variant)] = stats
    return headers, rows, raw


def ablation(
    cache_factory,
    scale: WorkloadScale,
) -> Tuple[List[str], List[List], Dict]:
    """E10 — footnote 3: effect of stream skewing + unrolling on the
    scalar kernels (paper: 1.2x-6.7x from these source tweaks)."""
    from ..workloads.suite import get

    mem = scale.memory_config()
    config = ProcessorConfig.ooo_4way()
    headers = ["kernel", "tuned cycles", "naive cycles", "benefit"]
    rows: List[List] = []
    raw: Dict = {}
    from .runner import simulate_program

    for name in KERNEL_NAMES:
        workload = get(name)
        tuned = workload.build(Variant.SCALAR, scale, skew=True, unroll=2)
        naive = workload.build(Variant.SCALAR, scale, skew=False, unroll=1)
        tuned_stats, _ = simulate_program(tuned.program, config, mem, name)
        naive_stats, _ = simulate_program(
            naive.program, config, scale.memory_config(), name
        )
        rows.append([
            name, tuned_stats.cycles, naive_stats.cycles,
            f"{naive_stats.cycles / tuned_stats.cycles:.2f}x",
        ])
        raw[name] = (tuned_stats, naive_stats)
    return headers, rows, raw
