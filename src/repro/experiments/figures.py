"""Experiment drivers: one function per paper artifact.

Each driver returns ``(headers, rows, text)`` so the CLI can print the
table and write a CSV, and the pytest benchmarks can assert on the
numbers.  See DESIGN.md's per-experiment index (E1..E10).

Drivers are written in two phases so the grid can run on any point
runner: first *enumerate* every simulation point of the figure as a
:class:`~repro.experiments.parallel.SimPoint`, then hand the whole
grid to ``runner.run_points()`` — either the in-process serial
:class:`~repro.experiments.runner.RunCache` or the multi-process,
disk-cached :class:`~repro.experiments.parallel.ParallelRunner` — and
assemble rows from the returned stats, which align 1:1 with the
enumerated points regardless of completion order.

Failure semantics: when the runner runs with ``keep_going`` (CLI
``--keep-going``), result slots for points that could not be resolved
hold :class:`~repro.experiments.faults.PointFailure` placeholders
instead of stats.  Every driver renders those as explicit
``FAILED(<status>)`` markers — and ``-`` for any derived cell that
needs the missing number — so a partially-failed grid still produces a
complete, honest table instead of crashing or silently dropping rows.
Cells whose *normalization baseline* failed render
``FAILED(baseline)``: the point itself simulated fine, but the number
the paper normalizes against is missing.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from ..cpu.config import ProcessorConfig
from ..mem.config import MemoryConfig
from ..workloads.base import Variant
from ..workloads.params import WorkloadScale
from ..workloads.suite import KERNEL_NAMES, PREFETCH_NAMES, names
from .parallel import SimPoint

#: Figure 1's three architecture variants, in paper order.
ARCH_CONFIGS = (
    ProcessorConfig.inorder_1way(),
    ProcessorConfig.inorder_4way(),
    ProcessorConfig.ooo_4way(),
)

#: Figure 1's normalization baseline (Section 3: times are "normalized
#: to the base machine"): the single-issue in-order scalar run.
BASELINE_CONFIG = ARCH_CONFIGS[0]

#: Filler for table cells that cannot be derived because an input
#: point failed (see the module docstring).
NA = "-"


def _failed(stats) -> bool:
    """True when a result slot holds a PointFailure placeholder."""
    return bool(getattr(stats, "failed", False))


def _marker(stats) -> str:
    """The explicit failure marker for a failed result slot."""
    mk = getattr(stats, "marker", None)
    return mk() if callable(mk) else "FAILED"


def figure1(
    runner,
    benchmarks: Tuple[str, ...] = None,
) -> Tuple[List[str], List[List], Dict]:
    """E1 — normalized execution time, six bars per benchmark with the
    Busy / FU-stall / L1-hit / L1-miss breakdown."""
    scale = runner.scale
    mem = scale.memory_config()
    headers = [
        "benchmark", "variant", "config", "norm time",
        "busy", "fu stall", "l1 hit", "l1 miss", "cycles",
    ]
    grid = [
        (name, variant, config)
        for name in (benchmarks or names())
        for variant in (Variant.SCALAR, Variant.VIS)
        for config in ARCH_CONFIGS
    ]
    stats_list = runner.run_points(
        [SimPoint(n, v, c, mem, scale) for n, v, c in grid]
    )
    raw: Dict = {
        (n, v, c.name): stats for (n, v, c), stats in zip(grid, stats_list)
    }
    rows: List[List] = []
    for name, variant, config in grid:
        # Normalize against the explicit base machine (scalar on the
        # 1-way in-order config), not whichever point completed first —
        # out-of-order completion in parallel mode must not change the
        # normalized columns.
        base = raw[(name, Variant.SCALAR, BASELINE_CONFIG.name)]
        stats = raw[(name, variant, config.name)]
        vlabel = "VIS" if variant is Variant.VIS else "base"
        if _failed(stats):
            rows.append([
                name, vlabel, config.name, _marker(stats),
                NA, NA, NA, NA, NA,
            ])
            continue
        if _failed(base):
            # The point simulated, but the number the paper normalizes
            # against is missing — absolute cycles only.
            rows.append([
                name, vlabel, config.name, "FAILED(baseline)",
                NA, NA, NA, NA, stats.cycles,
            ])
            continue
        base_cycles = base.cycles
        comp = stats.components_normalized(base_cycles)
        rows.append([
            name,
            vlabel,
            config.name,
            f"{100 * stats.cycles / base_cycles:.1f}",
            f"{comp['Busy']:.1f}",
            f"{comp['FU stall']:.1f}",
            f"{comp['L1 hit']:.1f}",
            f"{comp['L1 miss']:.1f}",
            stats.cycles,
        ])
    return headers, rows, raw


def figure2(
    runner,
    benchmarks: Tuple[str, ...] = None,
) -> Tuple[List[str], List[List], Dict]:
    """E2 — dynamic retired-instruction mix (FU / Branch / Memory /
    VIS), base vs. VIS on the 4-way out-of-order processor."""
    scale = runner.scale
    mem = scale.memory_config()
    config = ProcessorConfig.ooo_4way()
    headers = [
        "benchmark", "variant", "total %", "FU", "Branch", "Memory", "VIS",
        "instructions",
    ]
    grid = [
        (name, variant)
        for name in (benchmarks or names())
        for variant in (Variant.SCALAR, Variant.VIS)
    ]
    stats_list = runner.run_points(
        [SimPoint(n, v, config, mem, scale) for n, v in grid]
    )
    raw: Dict = {key: stats for key, stats in zip(grid, stats_list)}
    rows: List[List] = []
    for name, variant in grid:
        stats = raw[(name, variant)]
        base = raw[(name, Variant.SCALAR)]
        vlabel = "VIS" if variant is Variant.VIS else "base"
        if _failed(stats):
            rows.append([name, vlabel, _marker(stats), NA, NA, NA, NA, NA])
            continue
        counts = stats.category_counts
        total = (
            "FAILED(baseline)" if _failed(base)
            else f"{100 * stats.instructions / base.instructions:.1f}"
        )
        rows.append([
            name,
            vlabel,
            total,
            counts["FU"],
            counts["Branch"],
            counts["Memory"],
            counts["VIS"],
            stats.instructions,
        ])
    return headers, rows, raw


def figure3(
    runner,
    benchmarks: Tuple[str, ...] = None,
) -> Tuple[List[str], List[List], Dict]:
    """E3 — software prefetching: VIS vs VIS+PF on the 4-way
    out-of-order processor (the 9 benchmarks with memory stall time)."""
    scale = runner.scale
    mem = scale.memory_config()
    config = ProcessorConfig.ooo_4way()
    headers = [
        "benchmark", "variant", "norm time", "busy", "fu stall",
        "l1 hit", "l1 miss", "pf issued", "pf late",
    ]
    bench_names = tuple(benchmarks or PREFETCH_NAMES)
    grid = [
        (name, variant)
        for name in bench_names
        for variant in (Variant.VIS, Variant.VIS_PREFETCH)
    ]
    stats_list = runner.run_points(
        [SimPoint(n, v, config, mem, scale) for n, v in grid]
    )
    by_key = {key: stats for key, stats in zip(grid, stats_list)}
    rows: List[List] = []
    raw: Dict = {}
    for name in bench_names:
        base = by_key[(name, Variant.VIS)]
        pf = by_key[(name, Variant.VIS_PREFETCH)]
        for label, stats in (("VIS", base), ("+PF", pf)):
            if _failed(stats):
                rows.append([
                    name, label, _marker(stats), NA, NA, NA, NA, NA, NA,
                ])
                continue
            if _failed(base):
                # The +PF point simulated but its VIS normalization
                # baseline failed.
                rows.append([
                    name, label, "FAILED(baseline)", NA, NA, NA, NA,
                    stats.memory.prefetches,
                    stats.memory.prefetch_late,
                ])
                continue
            comp = stats.components_normalized(base.cycles)
            rows.append([
                name, label,
                f"{100 * stats.cycles / base.cycles:.1f}",
                f"{comp['Busy']:.1f}",
                f"{comp['FU stall']:.1f}",
                f"{comp['L1 hit']:.1f}",
                f"{comp['L1 miss']:.1f}",
                stats.memory.prefetches,
                stats.memory.prefetch_late,
            ])
        raw[name] = (base, pf)
    return headers, rows, raw


def cache_sweep(
    runner,
    level: str = "l2",
    benchmarks: Tuple[str, ...] = None,
) -> Tuple[List[str], List[List], Dict]:
    """E4/E5 — L2 (or L1) capacity sweep on the VIS + out-of-order
    system.  Capacities are the scaled equivalents of the paper's
    128K..2M (L2) and 1K..64K (L1) ranges."""
    scale = runner.scale
    config = ProcessorConfig.ooo_4way()
    base_mem = scale.memory_config()
    if level == "l2":
        sizes = [base_mem.l2_size * (1 << k) for k in range(5)]
        make = base_mem.with_l2_size
        paper_sizes = [128 << 10 << k for k in range(5)]
    else:
        raw_sizes = [
            max(base_mem.line_size * 4, base_mem.l1_size >> k)
            for k in reversed(range(4))
        ]
        sizes = sorted(set(raw_sizes))
        make = base_mem.with_l1_size
        paper_sizes = [64 << 10 >> k for k in reversed(range(len(sizes)))]
    headers = ["benchmark"] + [
        f"{size}B (~{paper // 1024}K)" for size, paper in zip(sizes, paper_sizes)
    ] + ["speedup largest/smallest"]
    bench_names = tuple(benchmarks or names())
    grid = [(name, size) for name in bench_names for size in sizes]
    stats_list = runner.run_points(
        [SimPoint(n, Variant.VIS, config, make(s), scale) for n, s in grid]
    )
    raw: Dict = {key: stats for key, stats in zip(grid, stats_list)}
    rows: List[List] = []
    for name in bench_names:
        cells = [raw[(name, size)] for size in sizes]
        base = cells[0]  # normalized to the smallest capacity
        cols: List = []
        for stats in cells:
            if _failed(stats):
                cols.append(_marker(stats))
            elif _failed(base):
                cols.append("FAILED(baseline)")
            else:
                cols.append(f"{100 * stats.cycles / base.cycles:.1f}")
        if _failed(base) or _failed(cells[-1]):
            speedup = NA
        else:
            speedup = f"{base.cycles / cells[-1].cycles:.2f}x"
        rows.append([name] + cols + [speedup])
    return headers, rows, raw


def branch_stats(
    runner,
    benchmarks: Tuple[str, ...] = None,
) -> Tuple[List[str], List[List], Dict]:
    """E7 — branch misprediction rates, base vs VIS (Section 3.2.2:
    conv 10%->0%, thresh 6%->0%, mpeg-enc 27%->10%)."""
    scale = runner.scale
    mem = scale.memory_config()
    config = ProcessorConfig.ooo_4way()
    headers = ["benchmark", "base mispredict", "VIS mispredict",
               "base branches", "VIS branches"]
    bench_names = tuple(benchmarks or names())
    grid = [
        (name, variant)
        for name in bench_names
        for variant in (Variant.SCALAR, Variant.VIS)
    ]
    stats_list = runner.run_points(
        [SimPoint(n, v, config, mem, scale) for n, v in grid]
    )
    by_key = {key: stats for key, stats in zip(grid, stats_list)}
    rows: List[List] = []
    raw: Dict = {}
    for name in bench_names:
        base = by_key[(name, Variant.SCALAR)]
        vis = by_key[(name, Variant.VIS)]
        rows.append([
            name,
            _marker(base) if _failed(base) else f"{base.mispredict_rate:.1%}",
            _marker(vis) if _failed(vis) else f"{vis.mispredict_rate:.1%}",
            NA if _failed(base) else base.branches,
            NA if _failed(vis) else vis.branches,
        ])
        raw[name] = (base, vis)
    return headers, rows, raw


def mshr_study(
    runner,
    benchmarks: Tuple[str, ...] = None,
) -> Tuple[List[str], List[List], Dict]:
    """E8 — load-miss overlap and MSHR contention (Section 3.1: 2-3
    overlapped misses typical; write backup causes contention)."""
    scale = runner.scale
    mem = scale.memory_config()
    config = ProcessorConfig.ooo_4way()
    headers = [
        "benchmark", "variant", "max overlap", "mean overlap",
        "mshr-full stalls", "combine-limit stalls", "l1 miss rate",
    ]
    grid = [
        (name, variant)
        for name in (benchmarks or names())
        for variant in (Variant.SCALAR, Variant.VIS, Variant.VIS_PREFETCH)
    ]
    stats_list = runner.run_points(
        [SimPoint(n, v, config, mem, scale) for n, v in grid]
    )
    raw: Dict = {key: stats for key, stats in zip(grid, stats_list)}
    rows: List[List] = []
    for name, variant in grid:
        stats = raw[(name, variant)]
        if _failed(stats):
            rows.append([
                name, variant.value, _marker(stats), NA, NA, NA, NA,
            ])
            continue
        overlap = stats.memory.load_miss_overlap
        total = sum(overlap.values()) or 1
        mean = sum(k * v for k, v in overlap.items()) / total
        rows.append([
            name, variant.value,
            stats.memory.max_load_miss_overlap,
            f"{mean:.2f}",
            stats.memory.mshr_full_stalls,
            stats.memory.combine_limit_stalls,
            f"{stats.memory.l1_miss_rate:.3f}",
        ])
    return headers, rows, raw


#: E11 design-space sweep grid: out-of-order issue width × window size.
#: Windows deliberately extend well past the paper's machines: the
#: narrow-width × huge-window corner is exactly the provably-wasteful
#: region a static pruning oracle exists to skip.
SWEEP_WIDTHS = (1, 2, 4, 8)
SWEEP_WINDOWS = (8, 16, 32, 64, 128, 256, 512, 1024)

#: the sweep's default benchmark subset (kernels with distinct
#: bottleneck profiles: VIS-adder-bound, dep-chain-bound, branch-heavy)
SWEEP_BENCHMARKS = ("addition", "dotprod", "thresh")


def sweep_memory_config(scale) -> MemoryConfig:
    """The sweep's near-ideal memory system (low-latency L2 and DRAM).

    E11 explores the *CPU* design space, so memory latencies are
    idealized to isolate issue-width/window bottlenecks — the classic
    ILP-study methodology.  This is also what makes static pruning
    effective: with memory time mostly hidden, measured cycles sit
    close to the analyzer's CPU-side lower bounds, so bound dominance
    can actually fire.  The memory-bound regime is covered by E1-E9,
    which keep the paper's full hierarchy latencies.
    """
    return replace(
        scale.memory_config(),
        l2_hit_cycles=4,
        mem_latency_cycles=8,
        mem_bank_busy_cycles=2,
    )


def sweep_config(width: int, window: int) -> ProcessorConfig:
    """One out-of-order sweep point; functional units scale with width
    the way the paper's 1-way/4-way points do."""
    iu = max(1, width // 2)
    vu = max(1, width // 4)
    return ProcessorConfig(
        name=f"ooo-{width}w-win{window}",
        out_of_order=True,
        issue_width=width,
        window_size=window,
        int_alu_units=iu,
        fp_units=iu,
        addr_units=iu,
        vis_add_units=vu,
        vis_mul_units=vu,
    )


def sweep_cost(config: ProcessorConfig) -> int:
    """The sweep's hardware-cost metric (issue width × window slots)."""
    return config.issue_width * config.window_size


def design_sweep(
    runner,
    benchmarks: Tuple[str, ...] = None,
    prune: bool = False,
) -> Tuple[List[str], List[List], Dict]:
    """E11 — design-space sweep over issue width × window size (VIS
    variant), with optional static pruning.

    With ``prune=True`` each config's static cycle lower bound
    (:func:`repro.analyze.throughput.analyze_throughput`) is compared
    against already-simulated points in ascending cost order: a point
    whose lower bound is dominated by a simulated point (cheaper and at
    least as fast, or no costlier and strictly faster) can never join
    the cost/cycles Pareto frontier, so it is skipped and journaled to
    the run manifest as a ``pruned`` record.  Because measured cycles
    of a dominated point can only be *worse* than its lower bound, the
    frontier rows are byte-identical with and without pruning.
    """
    from ..analyze.throughput import analyze_throughput
    from ..workloads.suite import get

    scale = runner.scale
    mem = sweep_memory_config(scale)
    variant = Variant.VIS
    configs = sorted(
        (
            sweep_config(w, win)
            for w in SWEEP_WIDTHS
            for win in SWEEP_WINDOWS
        ),
        key=lambda c: (sweep_cost(c), c.issue_width, c.name),
    )
    headers = [
        "benchmark", "config", "width", "window", "cost",
        "static lower", "cycles", "status", "frontier",
    ]
    manifest = getattr(runner, "manifest", None)
    rows: List[List] = []
    raw: Dict = {"pruned": 0, "simulated": 0, "stats": {}}
    for name in (benchmarks or SWEEP_BENCHMARKS):
        built = get(name).build(variant, scale)
        simulated: List[Tuple[int, int, str]] = []  # (cost, cycles, cfg)
        cells: Dict[str, List] = {}
        for config in configs:
            cost = sweep_cost(config)
            lower = analyze_throughput(built.program, config, mem).lower
            dominator = None
            if prune:
                for cost_p, cycles_p, name_p in simulated:
                    if (cost_p < cost and cycles_p <= lower) or (
                        cost_p <= cost and cycles_p < lower
                    ):
                        dominator = name_p
                        break
            if dominator is not None:
                raw["pruned"] += 1
                point = SimPoint(name, variant, config, mem, scale)
                if manifest is not None:
                    manifest.record_pruned(
                        point.content_key(),
                        point.label(),
                        lower=lower,
                        cost=cost,
                        dominated_by=dominator,
                    )
                cells[config.name] = [
                    name, config.name, config.issue_width,
                    config.window_size, cost, lower, NA,
                    f"pruned({dominator})", "",
                ]
                continue
            stats = runner.run(name, variant, config, mem)
            if _failed(stats):
                cells[config.name] = [
                    name, config.name, config.issue_width,
                    config.window_size, cost, lower, _marker(stats),
                    "failed", "",
                ]
                continue
            raw["simulated"] += 1
            raw["stats"][(name, config.name)] = stats
            simulated.append((cost, stats.cycles, config.name))
            cells[config.name] = [
                name, config.name, config.issue_width,
                config.window_size, cost, lower, stats.cycles,
                "simulated", "",
            ]
        # cost/cycles Pareto frontier over the simulated points
        for cost, cycles, cfg_name in simulated:
            dominated = any(
                (c2 <= cost and y2 < cycles) or (c2 < cost and y2 <= cycles)
                for c2, y2, n2 in simulated
                if n2 != cfg_name
            )
            if not dominated:
                cells[cfg_name][8] = "*"
        rows.extend(
            cells[config.name] for config in configs
            if config.name in cells
        )
    return headers, rows, raw


def ablation(
    cache_factory,
    scale: WorkloadScale,
) -> Tuple[List[str], List[List], Dict]:
    """E10 — footnote 3: effect of stream skewing + unrolling on the
    scalar kernels (paper: 1.2x-6.7x from these source tweaks).

    Runs outside the point grid: the skew/unroll build knobs are not
    part of :class:`SimPoint`, so these runs are never disk-cached.
    """
    from ..workloads.suite import get

    mem = scale.memory_config()
    config = ProcessorConfig.ooo_4way()
    headers = ["kernel", "tuned cycles", "naive cycles", "benefit"]
    rows: List[List] = []
    raw: Dict = {}
    from .runner import simulate_program

    for name in KERNEL_NAMES:
        workload = get(name)
        tuned = workload.build(Variant.SCALAR, scale, skew=True, unroll=2)
        naive = workload.build(Variant.SCALAR, scale, skew=False, unroll=1)
        tuned_stats, _ = simulate_program(tuned.program, config, mem, name)
        naive_stats, _ = simulate_program(
            naive.program, config, scale.memory_config(), name
        )
        rows.append([
            name, tuned_stats.cycles, naive_stats.cycles,
            f"{naive_stats.cycles / tuned_stats.cycles:.2f}x",
        ])
        raw[name] = (tuned_stats, naive_stats)
    return headers, rows, raw
