"""Fault tolerance for experiment grids.

The 246-point paper grid is only useful if it *finishes*: one worker
OOM-killed by the OS, one malformed program spinning forever, or one
torn cache record must not abort the run and discard every in-flight
point.  This module supplies the pieces the runner, cache and CLI
thread together:

* **failure taxonomy** — :class:`PointFailure` captures what went wrong
  with one :class:`~repro.experiments.parallel.SimPoint` (status,
  exception type, message, traceback, attempt count) instead of letting
  ``future.result()`` unwind the pool; :class:`GridFailure` is the
  fail-fast wrapper raised when ``--keep-going`` is off.

* **retry policy** — :class:`RetryPolicy` bounds retries for the
  *transient* classes (worker death / ``BrokenProcessPool``) with
  deterministic exponential backoff + jitter; deterministic failures
  (:class:`~repro.sim.machine.SimulationError`,
  :class:`~repro.trace.AuditError`, timeouts) are never retried —
  see :func:`classify`.

* **watchdog** — :class:`PointTimeout` plus :func:`point_alarm`, a
  ``SIGALRM``-based wall-clock bound a worker arms around one
  simulation so a hung point raises instead of blocking the pool.

* **run manifest** — :class:`RunManifest`, an append-only JSONL
  journal of per-point outcomes (including the full stats payload)
  under the results directory, so ``--resume`` restarts a killed grid
  from where it died even with the disk cache disabled.

* **fault injection** — :func:`maybe_inject`, an env-gated test hook
  (``REPRO_FAULT_PLAN``) that the chaos harness (``tests/chaos.py``)
  uses to deterministically kill, hang, slow-roll or fail workers.
  With the variable unset the hook is a single global check.
"""

from __future__ import annotations

import json
import logging
import os
import random
import signal
import threading
import time
import traceback as _traceback
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from ..cpu.stats import ExecutionStats

log = logging.getLogger("repro.experiments.faults")

# ---------------------------------------------------------------------------
# Failure taxonomy
# ---------------------------------------------------------------------------

#: a deterministic exception inside the point (bad program, bug, ...)
STATUS_FAILED = "failed"
#: the per-point wall-clock watchdog fired
STATUS_TIMEOUT = "timed-out"
#: the worker process died (SIGKILL / OOM / pool breakage)
STATUS_WORKER_LOST = "worker-lost"
#: attribution-audit divergence — never isolated, always fatal (exit 3)
STATUS_AUDIT = "audit"
#: the point repeatedly killed its worker (>= the poison threshold of
#: consecutive attributed pool-rebuild generations) and was quarantined
#: by the serving layer instead of being retried forever; released only
#: by ``cache gc --release-poisoned``
STATUS_POISONED = "poisoned"

#: statuses that are worth retrying: the fault is in the *environment*
#: (a killed worker, a broken pool), not a deterministic property of
#: the point itself.
TRANSIENT_STATUSES = frozenset({STATUS_WORKER_LOST})


class PointTimeout(RuntimeError):
    """The per-point wall-clock watchdog (``--point-timeout``) fired."""


class GridFailure(RuntimeError):
    """A point failed and ``--keep-going`` was off.

    Carries the structured :class:`PointFailure` so callers still know
    exactly which point died and why, even on the fail-fast path.
    """

    def __init__(self, failure: "PointFailure") -> None:
        super().__init__(
            f"{failure.label}: {failure.status} "
            f"({failure.error_type}: {failure.message})"
        )
        self.failure = failure


@dataclass
class PointFailure:
    """Structured outcome of a simulation point that did not produce
    stats.  Appears *in place of* an :class:`ExecutionStats` in the
    list returned by ``run_points`` under ``--keep-going``, so figure
    drivers can render explicit ``FAILED`` markers."""

    status: str
    label: str
    key: str = ""
    error_type: str = ""
    message: str = ""
    traceback_text: str = ""
    attempts: int = 1
    elapsed: float = 0.0

    #: discriminator figures/drivers can test without isinstance
    failed: bool = True

    def marker(self) -> str:
        """The cell rendered into tables/CSVs for this point."""
        return f"FAILED({self.status})"

    def summary(self) -> str:
        first = self.message.splitlines()[0] if self.message else ""
        return (
            f"{self.marker()} {self.label}"
            f" [attempt {self.attempts}]"
            + (f": {self.error_type}: {first}" if self.error_type else "")
        )

    def to_dict(self) -> Dict:
        return {
            "status": self.status,
            "label": self.label,
            "key": self.key,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback_text,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_exception(
        cls,
        exc: BaseException,
        label: str,
        key: str = "",
        attempts: int = 1,
        elapsed: float = 0.0,
    ) -> "PointFailure":
        status, _transient = classify(exc)
        return cls(
            status=status,
            label=label,
            key=key,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback_text="".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
            attempts=attempts,
            elapsed=elapsed,
        )


def classify(exc: BaseException) -> tuple:
    """``(status, transient)`` for an exception raised while resolving
    one point.

    * pool breakage / lost workers are *transient* — a retry on a fresh
      pool may well succeed (the classic case: one point OOM-kills its
      worker and takes innocent in-flight neighbours with it);
    * timeouts are deterministic (a hung point will hang again) —
      reported, never retried;
    * audit divergences are never isolated at all: they mean the
      simulator is wrong, so they propagate and the run exits 3;
    * everything else (``SimulationError``, ``ValidationError``,
      arbitrary bugs) is a deterministic property of the point.
    """
    from concurrent.futures import BrokenExecutor

    from ..trace import AuditError

    if isinstance(exc, AuditError):
        return STATUS_AUDIT, False
    if isinstance(exc, BrokenExecutor):
        return STATUS_WORKER_LOST, True
    if isinstance(exc, PointTimeout):
        return STATUS_TIMEOUT, False
    return STATUS_FAILED, False


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff + jitter.

    ``delay(key, attempt)`` is a pure function of the policy seed, the
    point's cache key and the attempt number, so two runs of the same
    grid back off identically — chaos tests stay reproducible.
    """

    #: additional attempts after the first (0 disables retries)
    max_retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 1.0
    seed: int = 0
    #: statuses worth retrying.  Default: transient environment faults
    #: only (worker death / pool breakage).  With checkpointing armed
    #: the CLI also opts timeouts in — a timed-out point resumed from
    #: its newest snapshot makes forward progress each attempt, so the
    #: retry is no longer a pointless re-run of a deterministic hang.
    retry_statuses: frozenset = TRANSIENT_STATUSES

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of point ``key``."""
        raw = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        rng = random.Random(f"{self.seed}:{key}:{attempt}")
        return raw * (0.5 + rng.random() / 2)  # full jitter in [raw/2, raw]

    def should_retry(self, status: str, attempt: int) -> bool:
        return status in self.retry_statuses and attempt <= self.max_retries


# ---------------------------------------------------------------------------
# Per-point wall-clock watchdog (worker side)
# ---------------------------------------------------------------------------


@contextmanager
def point_alarm(timeout: Optional[float], label: str = ""):
    """Raise :class:`PointTimeout` if the body runs longer than
    ``timeout`` seconds of wall clock.

    Implemented with ``SIGALRM`` so it interrupts the pure-Python
    simulator loops between bytecodes; silently inert when ``timeout``
    is ``None``, on non-POSIX platforms, or off the main thread (the
    parent's hard deadline still covers those cases).
    """
    usable = (
        timeout is not None
        and timeout > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _fire(signum, frame):
        raise PointTimeout(
            f"point exceeded --point-timeout={timeout:g}s"
            + (f" ({label})" if label else "")
        )

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.setitimer(signal.ITIMER_REAL, float(timeout))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ---------------------------------------------------------------------------
# Run manifest (resumable runs)
# ---------------------------------------------------------------------------

#: bump when the manifest line format changes
MANIFEST_FORMAT_VERSION = 1


class RunManifest:
    """Append-only JSONL journal of per-point outcomes.

    Layout: a header line, then one line per resolved point::

        {"type": "header", "version": 1, "cache_version": "2.3", ...}
        {"type": "point", "key": "...", "status": "ok", "stats": {...}}
        {"type": "point", "key": "...", "status": "worker-lost", ...}

    * Appends are single ``write`` calls of one ``\\n``-terminated line
      followed by flush+fsync, so a SIGKILL can tear at most the final
      line — which the loader tolerates and drops.
    * ``ok`` lines carry the full stats payload, so ``--resume``
      restores completed points even when the disk cache is disabled
      or a cache record was quarantined.
    * A header version/cache-version mismatch discards the journal
      (with a logged warning) rather than resuming across a format or
      registry change.
    * On ``--resume`` the journal is **compacted** before reopening:
      only the latest record per point is kept (header + one line per
      key, rewritten atomically via temp + ``os.replace``), so a long
      run that is killed and resumed repeatedly re-parses a bounded
      journal instead of unbounded append-only history.
    """

    def __init__(
        self,
        path,
        resume: bool = False,
        cache_version: str = "",
    ) -> None:
        self.path = Path(path)
        self.cache_version = cache_version
        #: key -> ExecutionStats restored from a previous run
        self.completed: Dict[str, ExecutionStats] = {}
        #: key -> failure dict recorded by a previous run
        self.failures: Dict[str, Dict] = {}
        #: raw journal lines, latest per key (for compaction)
        self._latest: Dict[str, str] = {}
        self._header_line: Optional[str] = None
        self.resumed = bool(resume and self.path.exists())
        if self.resumed:
            self._load()
        if self.resumed:
            self._compact()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if self.resumed else "w"
        self._fh = open(self.path, mode, encoding="utf-8")
        if not self.resumed:
            self._append({
                "type": "header",
                "version": MANIFEST_FORMAT_VERSION,
                "cache_version": self.cache_version,
                "created": time.time(),
            })

    # -- journal I/O --------------------------------------------------------

    def _append(self, record: Dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        try:
            self._fh.write(line + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError as exc:  # unwritable results dir: degrade, loudly
            log.warning("manifest append failed (%s): %s", self.path, exc)

    def _load(self) -> None:
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            log.warning("cannot read manifest %s: %s", self.path, exc)
            self.resumed = False
            return
        lines = raw.splitlines()
        if not lines:
            self.resumed = False
            return
        try:
            header = json.loads(lines[0])
            ok_header = (
                header.get("type") == "header"
                and header.get("version") == MANIFEST_FORMAT_VERSION
                and header.get("cache_version") == self.cache_version
            )
        except ValueError:
            ok_header = False
        if not ok_header:
            log.warning(
                "manifest %s is from an incompatible run; starting fresh",
                self.path,
            )
            self.resumed = False
            return
        self._header_line = lines[0]
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except ValueError:
                # torn final append from the killed run — drop it
                continue
            if record.get("type") != "point" or "key" not in record:
                continue
            key = record["key"]
            self._latest[key] = line
            if record.get("status") == "ok" and record.get("stats"):
                try:
                    self.completed[key] = ExecutionStats.from_dict(
                        record["stats"]
                    )
                except (KeyError, TypeError, ValueError):
                    self._latest.pop(key, None)
                    continue
                self.failures.pop(key, None)
            else:
                self.failures[key] = record
                self.completed.pop(key, None)

    def _compact(self) -> None:
        """Rewrite the journal as header + latest record per point.

        Atomic (temp file + ``os.replace`` in the manifest's own
        directory) and best-effort: an unwritable results dir degrades
        to keeping the uncompacted journal, loudly."""
        if self._header_line is None:
            return
        payload = "\n".join(
            [self._header_line, *self._latest.values()]
        ) + "\n"
        tmp = self.path.with_name(self.path.name + ".compact.tmp")
        try:
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError as exc:
            log.warning("manifest compaction failed (%s): %s", self.path, exc)
            try:
                tmp.unlink()
            except OSError:
                pass

    # -- recording ----------------------------------------------------------

    def record_ok(
        self,
        key: str,
        stats: ExecutionStats,
        label: str = "",
        elapsed: float = 0.0,
        resumed_from: Optional[str] = None,
    ) -> None:
        """Record a resolved point.  ``resumed_from`` names the
        checkpoint snapshot this attempt restored from (``None`` = cold
        start); it is journalled only when set, so records from
        non-checkpointed runs stay byte-stable."""
        self.completed[key] = stats
        self.failures.pop(key, None)
        record = {
            "type": "point",
            "key": key,
            "status": "ok",
            "label": label,
            "elapsed_s": round(elapsed, 6),
            "stats": stats.to_dict(),
        }
        if resumed_from is not None:
            record["resumed_from"] = resumed_from
        self._append(record)

    def record_failure(self, failure: PointFailure) -> None:
        record = {"type": "point", **failure.to_dict()}
        record.pop("traceback", None)  # keep the journal compact
        self.failures[failure.key] = record
        self._append(record)

    def record_pruned(
        self,
        key: str,
        label: str,
        lower: int,
        cost: int,
        dominated_by: str,
    ) -> None:
        """Journal a config point skipped by static bound dominance
        (``--prune-static``): its cycle lower bound is already beaten
        by the simulated ``dominated_by`` point at no greater hardware
        cost, so it cannot join the Pareto frontier.  Pruned records
        are provenance only — ``--resume`` ignores them (they are not
        ``point`` records) and a later unpruned run simulates the
        point normally."""
        self._append({
            "type": "pruned",
            "key": key,
            "label": label,
            "lower": lower,
            "cost": cost,
            "dominated_by": dominated_by,
        })

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass

    def __enter__(self) -> "RunManifest":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Deterministic fault injection (chaos-test hook)
# ---------------------------------------------------------------------------

#: environment variable naming the JSON fault plan (see tests/chaos.py)
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

#: cached (plan_path, entries) so the common no-plan case costs one
#: environment lookup per process
_PLAN_CACHE: Optional[tuple] = None


def _load_plan() -> tuple:
    global _PLAN_CACHE
    path = os.environ.get(ENV_FAULT_PLAN)
    if _PLAN_CACHE is not None and _PLAN_CACHE[0] == path:
        return _PLAN_CACHE
    entries: List[Dict] = []
    if path:
        try:
            plan = json.loads(Path(path).read_text(encoding="utf-8"))
            entries = list(plan.get("faults", []))
        except (OSError, ValueError) as exc:
            log.warning("unreadable fault plan %s: %s", path, exc)
    _PLAN_CACHE = (path, entries)
    return _PLAN_CACHE


def _claim_shot(path: str, index: int, times: int) -> bool:
    """Atomically claim one of ``times`` firings of plan entry ``index``
    across processes: each firing is an ``O_EXCL``-created token file
    next to the plan, so a kill-once fault kills exactly once no matter
    how many workers race on it."""
    for shot in range(times):
        token = f"{path}.fired.{index}.{shot}"
        try:
            fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        except OSError:
            return False
        os.close(fd)
        return True
    return False


def maybe_inject(label: str) -> None:
    """Fire any matching fault from the ``REPRO_FAULT_PLAN`` plan.

    Test-only by construction: with the environment variable unset this
    is one cached tuple comparison.  Actions:

    * ``kill``  — ``SIGKILL`` the current process (worker death /
      ``BrokenProcessPool`` in the parent);
    * ``hang``  — sleep far past any timeout (watchdog coverage);
    * ``sleep`` — slow-roll the point by ``seconds`` (straggler);
    * ``error`` — raise ``RuntimeError`` (deterministic failure).
    """
    path, entries = _load_plan()
    if not entries:
        return
    for index, entry in enumerate(entries):
        if entry.get("match", "") not in label:
            continue
        times = int(entry.get("times", 1))
        if times >= 0 and not _claim_shot(path, index, times):
            continue
        action = entry.get("action", "error")
        seconds = float(entry.get("seconds", 0.0))
        log.warning("fault injection: %s on %s", action, label)
        if action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif action == "hang":
            time.sleep(seconds or 3600.0)
        elif action == "sleep":
            time.sleep(seconds)
        else:
            raise RuntimeError(f"injected fault ({entry.get('match', '')})")
