"""Command-line entry point: regenerate every table and figure.

Examples::

    python -m repro.experiments.cli figure1
    python -m repro.experiments.cli figure3 --scale small
    python -m repro.experiments.cli l2-sweep --benchmarks cjpeg djpeg
    python -m repro.experiments.cli all --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..cpu.config import ProcessorConfig
from ..mem.config import MemoryConfig
from ..workloads.params import DEFAULT_SCALE, SMALL_SCALE, TINY_SCALE
from ..workloads.suite import names
from . import figures
from .report import format_table, write_csv
from .runner import RunCache

SCALES = {"default": DEFAULT_SCALE, "small": SMALL_SCALE, "tiny": TINY_SCALE}

EXPERIMENTS = {
    "figure1": ("E1: normalized execution time (Figure 1)",
                lambda cache, bm: figures.figure1(cache, bm)),
    "figure2": ("E2: dynamic instruction mix (Figure 2)",
                lambda cache, bm: figures.figure2(cache, bm)),
    "figure3": ("E3: software prefetching (Figure 3)",
                lambda cache, bm: figures.figure3(cache, bm)),
    "l2-sweep": ("E4: L2 cache-size sweep (Section 4.1)",
                 lambda cache, bm: figures.cache_sweep(cache, "l2", bm)),
    "l1-sweep": ("E5: L1 cache-size sweep (Section 4.1)",
                 lambda cache, bm: figures.cache_sweep(cache, "l1", bm)),
    "branch-stats": ("E7: branch misprediction rates (Section 3.2.2)",
                     lambda cache, bm: figures.branch_stats(cache, bm)),
    "mshr": ("E8: MSHR occupancy / load-miss overlap (Section 3.1)",
             lambda cache, bm: figures.mshr_study(cache, bm)),
}


def _print_params() -> None:
    cpu = ProcessorConfig.ooo_4way()
    mem = MemoryConfig()
    print("Table 2 (processor):")
    for field, value in vars(cpu).items():
        print(f"  {field:24s} {value}")
    print("Table 3 (memory):")
    for field, value in vars(mem).items():
        print(f"  {field:24s} {value}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["ablation", "params", "all"],
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="default",
        help="workload/cache scale (DESIGN.md substitution 3)",
    )
    parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help=f"subset of: {', '.join(names())}",
    )
    parser.add_argument("--out", default="results", help="CSV output directory")
    parser.add_argument(
        "--no-validate", action="store_true",
        help="skip functional output validation (faster re-runs)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "params":
        _print_params()
        return 0

    scale = SCALES[args.scale]
    cache = RunCache(scale=scale, validate=not args.no_validate)
    benchmarks = tuple(args.benchmarks) if args.benchmarks else None
    todo = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.experiment == "ablation":
        todo = ["ablation"]

    for key in todo:
        start = time.time()
        if key == "ablation":
            title = "E10: footnote-3 source-tuning ablation"
            headers, rows, _ = figures.ablation(None, scale)
        else:
            title, fn = EXPERIMENTS[key]
            headers, rows, _ = fn(cache, benchmarks)
        print()
        print(format_table(headers, rows, title=f"{title} [scale={args.scale}]"))
        csv_path = write_csv(
            Path(args.out) / f"{key.replace('-', '_')}_{args.scale}.csv",
            headers, rows,
        )
        print(f"[{time.time() - start:6.1f}s] wrote {csv_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
